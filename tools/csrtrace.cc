/**
 * @file
 * csrtrace -- create, inspect and verify .csrt columnar KV traces.
 *
 * Four subcommands:
 *
 *   csrtrace convert --in FILE|- --out T.csrt
 *                    [--preset twitter|meta|generic]
 *                    [--col-ts N] [--col-key N] [--col-op N]
 *                    [--col-size N] [--col-cost N]
 *                    [--delim C|tab] [--ts-unit ns|us|ms|s]
 *                    [--skip-lines N] [--block-size N]
 *       Streaming CSV/TSV ingestion (constant memory; "-" reads
 *       stdin).  Presets bake in the Twitter cluster-trace and Meta
 *       kvcache column layouts; the generic preset maps columns
 *       explicitly.  String keys are FNV-1a hashed to 64 bits.
 *
 *   csrtrace record --out T.csrt --ops N
 *                   [--workload zipf|uniform|hotspot|scan]
 *                   [--keys N] [--zipf-theta F] [--hot-frac F]
 *                   [--hot-prob F] [--write-frac F] [--seed N]
 *                   [--value-size N] [--cost NS] [--block-size N]
 *       Capture a synthetic KeyGenerator stream (the same generator
 *       the serve harness replays) into a trace: replaying the
 *       capture reproduces the generator-driven run exactly.  For
 *       capturing a *live* csrserve session, see csrserve --record.
 *
 *   csrtrace info --file T.csrt
 *       Header fields, op mix and per-column encoding breakdown.
 *
 *   csrtrace verify --file T.csrt
 *       Full structural walk (every block decoded) plus payload
 *       checksum.  Exit 0 and "ok" on a sound file; exit 3 with the
 *       failing byte offset otherwise.
 *
 * Deterministic output goes to stdout, timing to stderr.  Exit codes
 * follow robust/Errors.h: 0 ok, 2 config, 3 trace format.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "replay/Ingest.h"
#include "replay/TraceReader.h"
#include "replay/TraceWriter.h"
#include "robust/Errors.h"
#include "serve/KeyGenerator.h"
#include "util/CliArgs.h"
#include "util/Table.h"

using namespace csr;
using namespace csr::replay;

namespace
{

std::uint32_t
blockSizeFlag(const CliArgs &args)
{
    const std::uint64_t n =
        args.getUInt("block-size", format::kDefaultBlockSize);
    if (n == 0 || n > (1u << 24))
        throw ConfigError("--block-size must be in [1, 2^24] records");
    return static_cast<std::uint32_t>(n);
}

int
runConvert(const CliArgs &args)
{
    args.requireKnown({"in", "out", "preset", "col-ts", "col-key",
                       "col-op", "col-size", "col-cost", "delim",
                       "ts-unit", "skip-lines", "block-size"});
    const std::string in_path = args.get("in", "");
    const std::string out_path = args.get("out", "");
    if (in_path.empty() || out_path.empty())
        throw ConfigError("convert needs --in FILE|- and --out FILE");
    const IngestConfig config = IngestConfig::fromArgs(args);

    std::ifstream file;
    if (in_path != "-") {
        file.open(in_path);
        if (!file)
            throw ConfigError("cannot open '" + in_path +
                              "' for reading");
    }
    std::istream &in = in_path == "-" ? std::cin : file;

    TraceWriter writer(out_path, blockSizeFlag(args));
    const IngestStats stats = ingestText(in, config, writer);
    writer.finish();

    TextTable table("convert: " + in_path + " -> " + out_path);
    table.setHeader({"metric", "value"});
    table.addRow({"input lines", TextTable::count(stats.lines)});
    table.addRow({"skipped lines", TextTable::count(stats.skipped)});
    table.addRow({"records", TextTable::count(stats.records)});
    table.addRow({"blocks", TextTable::count(writer.blockCount())});
    table.print(std::cout);
    return exitcode::kOk;
}

int
runRecord(const CliArgs &args)
{
    args.requireKnown({"out", "ops", "workload", "keys", "zipf-theta",
                       "hot-frac", "hot-prob", "write-frac",
                       "value-size", "cost", "block-size"});
    const std::string out_path = args.get("out", "");
    if (out_path.empty())
        throw ConfigError("record needs --out FILE");
    const std::uint64_t ops = args.getUInt("ops", 100000);
    if (ops == 0)
        throw ConfigError("--ops must be >= 1");

    serve::WorkloadMix mix;
    mix.dist = serve::parseKeyDist(args.get("workload", "zipf"));
    mix.numKeys = args.getUInt("keys", mix.numKeys);
    mix.zipfTheta = args.getDouble("zipf-theta", mix.zipfTheta);
    mix.hotFraction = args.getDouble("hot-frac", mix.hotFraction);
    mix.hotProbability = args.getDouble("hot-prob", mix.hotProbability);
    mix.writeFraction = args.getDouble("write-frac", mix.writeFraction);
    const std::uint64_t seed = args.seed(1);

    const auto value_size = static_cast<std::uint32_t>(
        args.getUInt("value-size", 8));
    const auto cost = static_cast<std::uint32_t>(
        args.getUInt("cost", 0));

    serve::KeyGenerator generator(mix, seed);
    TraceWriter writer(out_path, blockSizeFlag(args));
    for (std::uint64_t i = 0; i < ops; ++i) {
        const serve::Op op = generator.next();
        ReplayRecord rec;
        rec.tsNs = i * 1000; // synthetic 1us spacing, monotone clock
        rec.key = op.key;
        rec.op = op.write ? TraceOp::Set : TraceOp::Get;
        rec.valueSize = value_size;
        rec.costHint = cost;
        writer.append(rec);
    }
    writer.finish();

    TextTable table("record: " + mix.describe() + " seed=" +
                    std::to_string(seed) + " -> " + out_path);
    table.setHeader({"metric", "value"});
    table.addRow({"records", TextTable::count(writer.recordCount())});
    table.addRow({"blocks", TextTable::count(writer.blockCount())});
    table.print(std::cout);
    return exitcode::kOk;
}

TraceReader
openTrace(const CliArgs &args)
{
    const std::string path = args.get("file", "");
    if (path.empty())
        throw ConfigError("pass --file T.csrt");
    return TraceReader(path);
}

int
runInfo(const CliArgs &args)
{
    args.requireKnown({"file"});
    TraceReader reader = openTrace(args);

    std::uint64_t ops[3] = {0, 0, 0};
    std::uint64_t varint_cols[format::kColumns] = {};
    std::uint64_t min_ts = ~0ull, max_ts = 0;
    ReplayBlock block;
    for (std::uint64_t b = 0; b < reader.blockCount(); ++b) {
        reader.readBlock(b, block);
        for (std::size_t i = 0; i < block.size(); ++i) {
            ++ops[block.op[i]];
            if (block.tsNs[i] < min_ts)
                min_ts = block.tsNs[i];
            if (block.tsNs[i] > max_ts)
                max_ts = block.tsNs[i];
        }
        for (unsigned c = 0; c < format::kColumns; ++c)
            if (reader.columnEncoding(b, c) ==
                format::kEncodingVarint)
                ++varint_cols[c];
    }

    TextTable table("info: " + reader.path());
    table.setHeader({"field", "value"});
    table.addRow({"file bytes", TextTable::count(reader.fileBytes())});
    table.addRow({"records", TextTable::count(reader.recordCount())});
    table.addRow({"blocks", TextTable::count(reader.blockCount())});
    table.addRow({"block size", TextTable::count(reader.blockSize())});
    table.addRow({"gets", TextTable::count(ops[0])});
    table.addRow({"sets", TextTable::count(ops[1])});
    table.addRow({"dels", TextTable::count(ops[2])});
    if (reader.recordCount()) {
        table.addRow({"first ts ns", TextTable::count(min_ts)});
        table.addRow({"last ts ns", TextTable::count(max_ts)});
        const double bytes_per_rec =
            static_cast<double>(reader.fileBytes()) /
            static_cast<double>(reader.recordCount());
        table.addRow({"bytes/record",
                      TextTable::num(bytes_per_rec, 2)});
    }
    static const char *kColNames[format::kColumns] = {
        "ts", "key", "op", "value-size", "cost-hint"};
    for (unsigned c = 0; c < format::kColumns; ++c)
        table.addRow({std::string("varint blocks (") + kColNames[c] +
                          ")",
                      TextTable::count(varint_cols[c]) + "/" +
                          TextTable::count(reader.blockCount())});
    table.print(std::cout);
    return exitcode::kOk;
}

int
runVerify(const CliArgs &args)
{
    args.requireKnown({"file"});
    TraceReader reader = openTrace(args);
    reader.verifyChecksum();
    // Checksum catches bit rot; a full decode additionally exercises
    // every structural invariant (column bounds, op values, varint
    // termination).
    ReplayBlock block;
    std::uint64_t records = 0;
    for (std::uint64_t b = 0; b < reader.blockCount(); ++b) {
        reader.readBlock(b, block);
        records += block.size();
    }
    std::cout << "ok: " << reader.path() << " (" << records
              << " records, " << reader.blockCount() << " blocks, "
              << reader.fileBytes() << " bytes)\n";
    return exitcode::kOk;
}

void
usage()
{
    std::cerr
        << "usage: csrtrace convert|record|info|verify [--key value ...]\n"
           "  convert: --in FILE|- --out T.csrt\n"
           "           --preset twitter|meta|generic\n"
           "           --col-ts N --col-key N --col-op N --col-size N\n"
           "           --col-cost N --delim C|tab --ts-unit ns|us|ms|s\n"
           "           --skip-lines N --block-size N\n"
           "  record:  --out T.csrt --ops N\n"
           "           --workload zipf|uniform|hotspot|scan --keys N\n"
           "           --zipf-theta F --hot-frac F --hot-prob F\n"
           "           --write-frac F --seed N --value-size N\n"
           "           --cost NS --block-size N\n"
           "  info:    --file T.csrt\n"
           "  verify:  --file T.csrt\n"
           "  exit codes: 0 ok, 2 config, 3 trace format\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return exitcode::kGeneric;
    }
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
        usage();
        return exitcode::kOk;
    }
    try {
        const CliArgs args(argc, argv, /*first=*/2);
        if (args.helpRequested()) {
            usage();
            return exitcode::kOk;
        }
        if (mode == "convert")
            return runConvert(args);
        if (mode == "record")
            return runRecord(args);
        if (mode == "info")
            return runInfo(args);
        if (mode == "verify")
            return runVerify(args);
    } catch (const Error &e) {
        std::cerr << "csrtrace: " << e.kind() << ": " << e.what()
                  << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "csrtrace: " << e.what() << "\n";
        return exitcode::kGeneric;
    }
    usage();
    return exitcode::kGeneric;
}
