/**
 * @file
 * csrserve -- driver for the csr::serve online cache service, in
 * three modes.
 *
 * In-process (default): stand up a sharded CacheService over a
 * synthetic latency-distribution backend and replay a deterministic
 * workload against it from N closed-loop workers:
 *
 *   csrserve --policy acl --shards 8 --workers 8 --ops 1000000 \
 *            [--workload zipf|hotspot|scan|uniform] [--keys N]
 *            [--zipf-theta F] [--hot-frac F] [--hot-prob F]
 *            [--write-frac F] [--qps N] [--seed N]
 *            [--shard-bytes N] [--assoc N] [--block-bytes N]
 *            [--ewma-alpha F] [--inflight-wait-ms F]
 *            [--slow-frac F] [--slow-ns N] [--fast-ns N] [--jitter F]
 *            [--spin] [--affinity shard|free] [--validate]
 *            [--hitpath locked|seqlock] [--stripes auto|N]
 *            [--json FILE] [--trace FILE] [--metrics FILE]
 *
 * Server (--listen HOST:PORT): same service, but fronted by the RESP
 * protocol server (csr::serve::net) -- GET/SET/DEL/PING/INFO over N
 * epoll worker threads -- until SIGINT/SIGTERM, then the summary:
 *
 *   csrserve --listen 127.0.0.1:7411 --net-workers 4 \
 *            --policy acl --hitpath seqlock --stripes auto
 *
 * Client (--connect HOST:PORT): replay the same deterministic op
 * stream over C RESP connections against a remote csrserve; the
 * summary table is built from the server's INFO totals, so a wire
 * run of a fresh server prints the same deterministic numbers as an
 * in-process run with the same flags:
 *
 *   csrserve --connect 127.0.0.1:7411 --connections 4 \
 *            --ops 200000 --seed 7 --shards 8 [--expect-fresh]
 *
 * Trace replay/capture (src/replay): the in-process and --connect
 * modes accept --replay T.csrt to drive a recorded .csrt trace
 * (Get/Set/Del records) instead of the synthetic generator, and the
 * in-process and --listen modes accept --record T.csrt to capture
 * the live op stream into one -- so a production-shaped workload can
 * be captured once and replayed bit-identically against any policy,
 * in-process or over the wire (`csrtrace` converts/inspects traces).
 *
 * Output contract, same as csrsim sweep's: the deterministic summary
 * (hits, misses, aggregate miss cost) goes to stdout and the
 * wall-clock timing (QPS, latency percentiles) to stderr, so under
 * the default --affinity shard the stdout of two runs with the same
 * seed is byte-identical for ANY --workers value -- that is what CI
 * diffs.  --affinity free drops that guarantee in exchange for real
 * lock contention (the TSan soak's mode).
 *
 * --spin makes the backend burn its simulated latency in wall-clock
 * time instead of only modelling it; determinism of the summary is
 * unaffected.
 *
 * Errors map to the usual exit codes (robust/Errors.h): 0 ok,
 * 2 ConfigError, 6 geometry, 7 invariant, 9 timeout, 11 net.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cache/PolicyFactory.h"
#include "replay/TraceWriter.h"
#include "robust/Errors.h"
#include "serve/CacheService.h"
#include "serve/ChaosBackend.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"
#include "serve/net/ClientLoad.h"
#include "serve/net/Server.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Tracer.h"
#include "util/CliArgs.h"
#include "util/Logging.h"

using namespace csr;
using namespace csr::serve;

namespace
{

/** Fail fast on an unwritable output path (csrsim's probe). */
void
ensureWritable(const std::string &path, const std::string &flag)
{
    if (path.empty())
        return;
    std::FILE *pre = std::fopen(path.c_str(), "rb");
    const bool existed = pre != nullptr;
    if (pre)
        std::fclose(pre);
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f)
        throw ConfigError("--" + flag + ": cannot open '" + path +
                          "' for writing");
    std::fclose(f);
    if (!existed)
        std::remove(path.c_str());
}

/** RAII --trace recording session (csrsim's). */
class TraceSession
{
  public:
    explicit TraceSession(const std::string &path) : path_(path)
    {
        if (path_.empty())
            return;
#if defined(CSR_TELEMETRY_DISABLED)
        warn("built with CSR_TELEMETRY=OFF: '%s' will contain no "
             "events", path_.c_str());
#endif
        telemetry::Tracer::instance().clear();
        telemetry::setTracingEnabled(true);
    }

    ~TraceSession()
    {
        if (path_.empty())
            return;
        telemetry::setTracingEnabled(false);
        telemetry::Tracer::instance().writeChromeTrace(path_);
        inform("wrote %zu trace events to %s",
               telemetry::Tracer::instance().eventCount(), path_.c_str());
    }

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    std::string path_;
};

/**
 * RAII --record capture: a replay::TraceWriter behind a mutex,
 * attached as the service's op recorder so every live get/put/del --
 * harness-driven or arriving over the wire -- lands in a .csrt trace
 * that `csrserve --replay` / `csrsim replay` can play back.  Capture
 * order is the recorder mutex's acquisition order, so the file is
 * deterministic only for single-threaded drivers (--workers 1 /
 * --net-workers 1).  Call finish() after the run (it throws on I/O
 * errors); the destructor seals best-effort on error paths.
 */
class RecordSession
{
  public:
    RecordSession(CacheService &service, const std::string &path)
        : service_(service), path_(path)
    {
        if (path_.empty())
            return;
        writer_ = std::make_unique<replay::TraceWriter>(path_);
        service_.setRecorder([this](Addr key, unsigned op) {
            std::lock_guard<std::mutex> lock(mutex_);
            replay::ReplayRecord rec;
            rec.tsNs = seq_ * 1000; // synthetic 1us monotone clock
            ++seq_;
            rec.key = key;
            rec.op = static_cast<replay::TraceOp>(op);
            rec.valueSize = 8;
            writer_->append(rec);
        });
    }

    ~RecordSession()
    {
        if (!writer_)
            return;
        service_.setRecorder({});
        try {
            writer_->finish();
        } catch (const std::exception &e) {
            warn("--record: %s", e.what());
        }
    }

    RecordSession(const RecordSession &) = delete;
    RecordSession &operator=(const RecordSession &) = delete;

    /** Detach the hook and seal the file.  @throws TraceFormatError
     *  on a failed write/close. */
    void
    finish()
    {
        if (!writer_)
            return;
        service_.setRecorder({});
        writer_->finish();
        inform("recorded %llu ops (%llu blocks) to %s",
               static_cast<unsigned long long>(
                   writer_->recordCount()),
               static_cast<unsigned long long>(writer_->blockCount()),
               path_.c_str());
        writer_.reset();
    }

  private:
    CacheService &service_;
    std::string path_;
    std::mutex mutex_;
    std::uint64_t seq_ = 0;
    std::unique_ptr<replay::TraceWriter> writer_;
};

void
usage()
{
    std::cerr
        << "usage: csrserve [--key value ...]\n"
           "  service:  --policy " << policyNamesJoined() << "\n"
        << "            --shards N (pow2) --shard-bytes N --assoc N\n"
           "            --block-bytes N --ewma-alpha F\n"
           "            --hitpath locked|seqlock (lock-free read hits)\n"
           "            --stripes auto|N (pow2 locked sub-shards; 1 =\n"
           "              the single-mutex shard, byte for byte)\n"
           "            --inflight-wait-ms F (coalesced-miss bound;\n"
           "              0 = wait forever)\n"
           "  backend:  --fast-ns F --slow-ns F --slow-frac F\n"
           "            --jitter F --spin (burn latency for real)\n"
           "  load:     --ops N --workers N (0=hw) --qps N (0=unpaced)\n"
           "            --workload zipf|hotspot|scan|uniform --keys N\n"
           "            --zipf-theta F --hot-frac F --hot-prob F\n"
           "            --write-frac F --seed N\n"
           "            --affinity shard|free (shard = deterministic)\n"
           "            --replay T.csrt (replay a recorded trace\n"
           "              instead of the synthetic workload; --ops\n"
           "              bounds it, default = the whole trace)\n"
           "  network:  --listen HOST:PORT (RESP server until SIGTERM;\n"
           "              port 0 = ephemeral) --net-workers N (0=hw)\n"
           "            --max-conns N (0=unlimited; refuse past it)\n"
           "            --drain-ms F (graceful-drain deadline, 5000)\n"
           "            --idle-timeout-ms F --read-deadline-ms F\n"
           "              (0 disables either)\n"
           "            --shed-pending-ops N --shed-write-bytes N\n"
           "              (server-wide -BUSY watermarks; 0 disables)\n"
           "            --connect HOST:PORT (drive a remote server)\n"
           "            --connections C --pipeline W --net-timeout S\n"
           "            --expect-fresh (client: fail unless server\n"
           "              totals == ops sent)\n"
           "            --allow-errors (client: count -ERR/-BUSY\n"
           "              replies instead of failing on them)\n"
           "  breaker:  --breaker 0|1 --breaker-window N\n"
           "            --breaker-rate F --breaker-timeouts N\n"
           "            --breaker-backoff-ms F --breaker-backoff-max-ms F\n"
           "            --stale-while-broken (serve last-known values\n"
           "              while a shard's breaker is open)\n"
           "  chaos:    --chaos-rate F --chaos-seed N (deterministic\n"
           "              wire+backend fault injection)\n"
           "            --chaos-resets (enable lossy connection\n"
           "              resets; breaks the summary contract)\n"
           "  output:   --json FILE --trace FILE --metrics FILE\n"
           "            --record T.csrt (capture the live op stream\n"
           "              as a replayable trace; deterministic at\n"
           "              --workers 1 / --net-workers 1)\n"
           "            --validate (check invariants after the run)\n"
           "  exit codes: 0 ok, 2 config, 6 geometry, 7 invariant,\n"
           "              9 timeout, 11 net, 12 circuit open\n";
}

/** Emit the post-run reports every mode shares: deterministic table
 *  to stdout, timing to stderr, optional JSON and metrics files. */
void
report(const CliArgs &args, const HarnessResult &result,
       const std::string &policy, const std::string &workload,
       const std::string &title,
       net::NetServer *server = nullptr)
{
    result.summaryTable(title).print(std::cout);
    // Timing to stderr: stdout stays byte-diffable across --workers
    // under shard affinity.
    result.timingTable().print(std::cerr);

    if (!args.jsonPath().empty()) {
        std::ofstream os(args.jsonPath());
        result.writeJsonObject(os, policy, workload);
        os << "\n";
        inform("wrote JSON to %s", args.jsonPath().c_str());
    }

    if (!args.metricsPath().empty()) {
        MetricRegistry registry;
        result.exportMetrics(registry);
        if (server)
            server->exportMetrics(registry);
        registry.writeJson(args.metricsPath());
        inform("wrote metrics to %s", args.metricsPath().c_str());
    }
}

std::atomic<bool> g_shutdown{false};

void
onSignal(int)
{
    g_shutdown.store(true);
}

/** --listen: serve RESP until SIGINT/SIGTERM, then drain and
 *  summarize (both signals take the same path, so either produces
 *  the identical deterministic table). */
int
runServer(const CliArgs &args)
{
    const ServeConfig serve_config = ServeConfig::fromArgs(args);
    SyntheticBackend synthetic(
        SyntheticBackendConfig::fromArgs(args));
    net::NetServerConfig net_config =
        net::NetServerConfig::fromArgs(args);
    const double drain_ms = args.getDouble("drain-ms", 5000.0);
    if (drain_ms <= 0.0)
        throw ConfigError("--drain-ms must be positive");

    // Chaos wraps the backend only when enabled, so a --chaos-rate 0
    // run is structurally identical to one without the flags.
    Backend *backend = &synthetic;
    std::unique_ptr<ChaosBackend> chaos_backend;
    if (net_config.chaos.enabled()) {
        chaos_backend = std::make_unique<ChaosBackend>(
            synthetic, net_config.chaos);
        backend = chaos_backend.get();
    }
    CacheService service(serve_config, *backend);
    RecordSession recorder(service, args.get("record", ""));
    net::NetServer server(service, net_config);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    {
        const TraceSession session(args.tracePath());
        server.start();
        // The resolved port on stdout so a script driving port 0 can
        // scrape it; everything else to stderr.
        std::cout << "listening " << net_config.host << ":"
                  << server.port() << std::endl;
        inform("csrserve: RESP server on %s:%u (%u workers), "
               "SIGINT/SIGTERM to stop",
               net_config.host.c_str(), server.port(),
               net_config.workers ? net_config.workers : 0u);
        while (!g_shutdown.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        const net::DrainReport drained = server.drain(drain_ms);
        server.stop();
        std::cerr << "drain: " << drained.drainedConns
                  << " conns flushed (" << drained.forcedCloses
                  << " forced), " << drained.failedFetches
                  << " in-flight fetches failed, " << drained.drainMs
                  << " ms"
                  << (drained.deadlineExpired
                          ? " (DEADLINE EXPIRED)"
                          : "")
                  << "\n";
    }
    recorder.finish();
    if (args.has("validate"))
        service.checkInvariants();

    // The summary is the service's view: the same deterministic
    // totals an in-process run of the same op stream prints.  The
    // shed count is the net tier's -- the service never sees a shed
    // command, so the fold happens here.
    HarnessResult result(HarnessConfig{}.histMaxNs,
                         HarnessConfig{}.histBuckets);
    result.totals = service.totals();
    const net::NetStats net_stats = server.stats();
    result.totals.shedOps = net_stats.shedOps;
    result.ops = result.totals.gets + result.totals.stores;
    result.workers = net_config.workers;
    report(args, result, service.policyName(), "wire",
           "serve(net): " + service.policyName() + " / " +
               backend->describe(),
           &server);
    std::cerr << "net: " << net_stats.connectionsAccepted
              << " conns, " << net_stats.cmdGet << " GET, "
              << net_stats.cmdSet << " SET, " << net_stats.cmdDel
              << " DEL, " << net_stats.protocolErrors
              << " protocol errors, " << net_stats.bytesIn
              << " B in, " << net_stats.bytesOut << " B out\n";
    // Report first, fail second: the drain summary above is still
    // printed, but an expired deadline is a typed failure (exit 9).
    if (server.lastDrain().deadlineExpired)
        throw TimeoutError(
            "graceful drain missed its --drain-ms deadline (" +
            std::to_string(server.lastDrain().forcedCloses) +
            " connections aborted, " +
            std::to_string(server.lastDrain().failedFetches) +
            " in-flight fetches failed fast)");
    return exitcode::kOk;
}

/** --connect: drive a remote server with the deterministic stream. */
int
runClient(const CliArgs &args)
{
    const net::ClientConfig config = net::ClientConfig::fromArgs(args);
    net::ClientResult result(config.harness.histMaxNs,
                             config.harness.histBuckets);
    {
        const TraceSession session(args.tracePath());
        result = net::runClientLoad(config);
    }

    const std::string workload =
        config.harness.replayPath.empty()
            ? config.harness.mix.describe()
            : "replay:" + config.harness.replayPath;
    report(args, result.harness, "remote", workload,
           "serve(wire): " + config.host + ":" +
               std::to_string(config.port) + " / " + workload);
    std::cerr << "wire: sent " << result.sentGets << " GET + "
              << result.sentSets << " SET + " << result.sentDels
              << " DEL over "
              << config.connections << " connections; "
              << result.errorReplies << " error replies, "
              << result.busyReplies << " busy (shed), "
              << result.typeMismatches << " type mismatches\n";

    // --allow-errors: a chaos/overload run *expects* -ERR and -BUSY
    // replies; count them (above) instead of failing on them.  Type
    // mismatches are protocol bugs and fail regardless.
    if (result.typeMismatches)
        throw NetError(std::to_string(result.typeMismatches) +
                       " type mismatches from the server");
    if (!args.has("allow-errors") &&
        (result.errorReplies || result.busyReplies))
        throw NetError(std::to_string(result.errorReplies) +
                       " error replies and " +
                       std::to_string(result.busyReplies) +
                       " busy replies from the server "
                       "(--allow-errors to tolerate)");
    if (args.has("expect-fresh") && !result.consistentWithServer())
        throw InvariantError(
            "server totals disagree with ops sent (gets " +
            std::to_string(result.harness.totals.gets) + " vs " +
            std::to_string(result.sentGets) + ", stores " +
            std::to_string(result.harness.totals.stores) + " vs " +
            std::to_string(result.sentSets) +
            "): the server was not fresh or lost ops");
    return exitcode::kOk;
}

/** Default: the in-process load harness. */
int
runInProcess(const CliArgs &args)
{
    const ServeConfig serve_config = ServeConfig::fromArgs(args);
    SyntheticBackend backend(SyntheticBackendConfig::fromArgs(args));
    CacheService service(serve_config, backend);
    RecordSession recorder(service, args.get("record", ""));
    const HarnessConfig harness_config = HarnessConfig::fromArgs(args);

    HarnessResult result(harness_config.histMaxNs,
                         harness_config.histBuckets);
    {
        const TraceSession session(args.tracePath());
        result = runLoad(service, harness_config);
    }
    recorder.finish();
    if (args.has("validate"))
        service.checkInvariants();

    const std::string workload =
        harness_config.replayPath.empty()
            ? harness_config.mix.describe()
            : "replay:" + harness_config.replayPath;
    // In-process metrics keep the service's export too (the server
    // path exports through the NetServer instead).
    if (!args.metricsPath().empty()) {
        MetricRegistry registry;
        service.exportMetrics(registry);
        result.exportMetrics(registry);
        registry.writeJson(args.metricsPath());
        inform("wrote metrics to %s", args.metricsPath().c_str());
    }
    result
        .summaryTable("serve: " + service.policyName() + " / " +
                      workload + " / " + backend.describe())
        .print(std::cout);
    result.timingTable().print(std::cerr);

    if (!args.jsonPath().empty()) {
        std::ofstream os(args.jsonPath());
        result.writeJsonObject(os, service.policyName(), workload);
        os << "\n";
        inform("wrote JSON to %s", args.jsonPath().c_str());
    }
    return exitcode::kOk;
}

int
run(const CliArgs &args)
{
    ensureWritable(args.jsonPath(), "json");
    ensureWritable(args.tracePath(), "trace");
    ensureWritable(args.metricsPath(), "metrics");
    ensureWritable(args.get("record", ""), "record");

    const bool listen = args.has("listen");
    const bool connect = args.has("connect");
    if (listen && connect)
        throw ConfigError("--listen and --connect are mutually "
                          "exclusive (one process is either the "
                          "server or a client)");
    if (listen && args.has("replay"))
        throw ConfigError("--replay drives load (in-process or "
                          "--connect); a --listen server only "
                          "receives it");
    if (connect && args.has("record"))
        throw ConfigError("--record captures server-side ops; pass "
                          "it to the --listen or in-process run, "
                          "not the client");
    if (listen)
        return runServer(args);
    if (connect)
        return runClient(args);
    return runInProcess(args);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliArgs args(argc, argv, /*first=*/1,
                           /*valueless=*/{"spin", "validate",
                                          "expect-fresh",
                                          "stale-while-broken",
                                          "chaos-resets",
                                          "allow-errors"});
        if (args.helpRequested()) {
            usage();
            return exitcode::kOk;
        }
        args.requireKnown({
            "policy", "shards", "shard-bytes", "assoc", "block-bytes",
            "ewma-alpha", "fast-ns", "slow-ns", "slow-frac", "jitter",
            "spin", "ops", "workers", "qps", "workload", "keys",
            "zipf-theta", "hot-frac", "hot-prob", "write-frac",
            "affinity", "validate", "hitpath", "stripes",
            "replay", "record",
            "inflight-wait-ms", "listen", "net-workers", "connect",
            "connections", "pipeline", "net-timeout", "expect-fresh",
            "max-conns", "drain-ms", "idle-timeout-ms",
            "read-deadline-ms", "shed-pending-ops",
            "shed-write-bytes", "breaker", "breaker-window",
            "breaker-rate", "breaker-timeouts", "breaker-backoff-ms",
            "breaker-backoff-max-ms", "stale-while-broken",
            "chaos-rate", "chaos-seed", "chaos-resets",
            "allow-errors",
        });
        return run(args);
    } catch (const Error &e) {
        std::cerr << "csrserve: " << e.kind() << ": " << e.what()
                  << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "csrserve: " << e.what() << "\n";
        return exitcode::kGeneric;
    }
}
