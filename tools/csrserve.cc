/**
 * @file
 * csrserve -- load driver for the csr::serve online cache service.
 *
 * Stands up a sharded CacheService over a synthetic
 * latency-distribution backend and replays a deterministic workload
 * against it from N closed-loop workers:
 *
 *   csrserve --policy acl --shards 8 --workers 8 --ops 1000000 \
 *            [--workload zipf|hotspot|scan|uniform] [--keys N]
 *            [--zipf-theta F] [--hot-frac F] [--hot-prob F]
 *            [--write-frac F] [--qps N] [--seed N]
 *            [--shard-bytes N] [--assoc N] [--block-bytes N]
 *            [--ewma-alpha F]
 *            [--slow-frac F] [--slow-ns N] [--fast-ns N] [--jitter F]
 *            [--spin] [--affinity shard|free] [--validate]
 *            [--hitpath locked|seqlock] [--stripes auto|N]
 *            [--json FILE] [--trace FILE] [--metrics FILE]
 *
 * Output contract, same as csrsim sweep's: the deterministic summary
 * (hits, misses, aggregate miss cost) goes to stdout and the
 * wall-clock timing (QPS, latency percentiles) to stderr, so under
 * the default --affinity shard the stdout of two runs with the same
 * seed is byte-identical for ANY --workers value -- that is what CI
 * diffs.  --affinity free drops that guarantee in exchange for real
 * lock contention (the TSan soak's mode).
 *
 * --spin makes the backend burn its simulated latency in wall-clock
 * time instead of only modelling it; determinism of the summary is
 * unaffected.
 *
 * Errors map to the usual exit codes (robust/Errors.h): 0 ok,
 * 2 ConfigError, 6 geometry, 7 invariant violation.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "cache/PolicyFactory.h"
#include "robust/Errors.h"
#include "serve/CacheService.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Tracer.h"
#include "util/CliArgs.h"
#include "util/Logging.h"

using namespace csr;
using namespace csr::serve;

namespace
{

/** Fail fast on an unwritable output path (csrsim's probe). */
void
ensureWritable(const std::string &path, const std::string &flag)
{
    if (path.empty())
        return;
    std::FILE *pre = std::fopen(path.c_str(), "rb");
    const bool existed = pre != nullptr;
    if (pre)
        std::fclose(pre);
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f)
        throw ConfigError("--" + flag + ": cannot open '" + path +
                          "' for writing");
    std::fclose(f);
    if (!existed)
        std::remove(path.c_str());
}

ServeConfig
serveConfigFromArgs(const CliArgs &args)
{
    ServeConfig config;
    const std::string policy = args.get("policy", "acl");
    if (auto kind = parsePolicyKind(policy))
        config.policy = *kind;
    else
        throw ConfigError("unknown policy '" + policy + "' (valid: " +
                          policyNamesJoined(" ") + ")");
    config.shards =
        static_cast<unsigned>(args.getUInt("shards", config.shards));
    config.shardBytes = args.getUInt("shard-bytes", config.shardBytes);
    config.assoc =
        static_cast<std::uint32_t>(args.getUInt("assoc", config.assoc));
    config.blockBytes = static_cast<std::uint32_t>(
        args.getUInt("block-bytes", config.blockBytes));
    config.ewmaAlpha = args.getDouble("ewma-alpha", config.ewmaAlpha);
    config.policyParams.seed = args.seed(1);
    config.hitPath = requireHitPath(args.get("hitpath", "locked"));
    config.stripes = requireStripes(args.get("stripes", "auto"));
    return config;
}

SyntheticBackendConfig
backendConfigFromArgs(const CliArgs &args)
{
    SyntheticBackendConfig config;
    config.seed = args.seed(1);
    config.fastNs = args.getDouble("fast-ns", config.fastNs);
    config.slowNs = args.getDouble("slow-ns", config.slowNs);
    config.slowFraction =
        args.getDouble("slow-frac", config.slowFraction);
    config.jitterFraction =
        args.getDouble("jitter", config.jitterFraction);
    config.spin = args.has("spin");
    return config;
}

HarnessConfig
harnessConfigFromArgs(const CliArgs &args)
{
    HarnessConfig config;
    config.ops = args.getUInt("ops", config.ops);
    config.workers =
        static_cast<unsigned>(args.getUInt("workers", 1));
    config.targetQps = args.getDouble("qps", 0.0);
    config.seed = args.seed(1);
    config.backendIsReal = args.has("spin");

    const std::string affinity = args.get("affinity", "shard");
    if (affinity == "shard")
        config.shardAffinity = true;
    else if (affinity == "free")
        config.shardAffinity = false;
    else
        throw ConfigError("unknown affinity '" + affinity +
                          "' (valid: shard free)");

    config.mix.dist = parseKeyDist(args.get("workload", "zipf"));
    config.mix.numKeys = args.getUInt("keys", config.mix.numKeys);
    config.mix.zipfTheta =
        args.getDouble("zipf-theta", config.mix.zipfTheta);
    config.mix.hotFraction =
        args.getDouble("hot-frac", config.mix.hotFraction);
    config.mix.hotProbability =
        args.getDouble("hot-prob", config.mix.hotProbability);
    config.mix.writeFraction =
        args.getDouble("write-frac", config.mix.writeFraction);
    return config;
}

/** RAII --trace recording session (csrsim's). */
class TraceSession
{
  public:
    explicit TraceSession(const std::string &path) : path_(path)
    {
        if (path_.empty())
            return;
#if defined(CSR_TELEMETRY_DISABLED)
        warn("built with CSR_TELEMETRY=OFF: '%s' will contain no "
             "events", path_.c_str());
#endif
        telemetry::Tracer::instance().clear();
        telemetry::setTracingEnabled(true);
    }

    ~TraceSession()
    {
        if (path_.empty())
            return;
        telemetry::setTracingEnabled(false);
        telemetry::Tracer::instance().writeChromeTrace(path_);
        inform("wrote %zu trace events to %s",
               telemetry::Tracer::instance().eventCount(), path_.c_str());
    }

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    std::string path_;
};

void
usage()
{
    std::cerr
        << "usage: csrserve [--key value ...]\n"
           "  service:  --policy " << policyNamesJoined() << "\n"
        << "            --shards N (pow2) --shard-bytes N --assoc N\n"
           "            --block-bytes N --ewma-alpha F\n"
           "            --hitpath locked|seqlock (lock-free read hits)\n"
           "            --stripes auto|N (pow2 locked sub-shards; 1 =\n"
           "              the single-mutex shard, byte for byte)\n"
           "  backend:  --fast-ns F --slow-ns F --slow-frac F\n"
           "            --jitter F --spin (burn latency for real)\n"
           "  load:     --ops N --workers N (0=hw) --qps N (0=unpaced)\n"
           "            --workload zipf|hotspot|scan|uniform --keys N\n"
           "            --zipf-theta F --hot-frac F --hot-prob F\n"
           "            --write-frac F --seed N\n"
           "            --affinity shard|free (shard = deterministic)\n"
           "  output:   --json FILE --trace FILE --metrics FILE\n"
           "            --validate (check invariants after the run)\n"
           "  exit codes: 0 ok, 2 config, 6 geometry, 7 invariant\n";
}

int
run(const CliArgs &args)
{
    ensureWritable(args.jsonPath(), "json");
    ensureWritable(args.tracePath(), "trace");
    ensureWritable(args.metricsPath(), "metrics");

    const ServeConfig serve_config = serveConfigFromArgs(args);
    SyntheticBackend backend(backendConfigFromArgs(args));
    CacheService service(serve_config, backend);
    const HarnessConfig harness_config = harnessConfigFromArgs(args);

    HarnessResult result(harness_config.histMaxNs,
                         harness_config.histBuckets);
    {
        const TraceSession session(args.tracePath());
        result = runLoad(service, harness_config);
    }
    if (args.has("validate"))
        service.checkInvariants();

    const std::string workload = harness_config.mix.describe();
    result
        .summaryTable("serve: " + service.policyName() + " / " +
                      workload + " / " + backend.describe())
        .print(std::cout);
    // Timing to stderr: stdout stays byte-diffable across --workers
    // under shard affinity.
    result.timingTable().print(std::cerr);

    if (!args.jsonPath().empty()) {
        std::ofstream os(args.jsonPath());
        result.writeJsonObject(os, service.policyName(), workload);
        os << "\n";
        inform("wrote JSON to %s", args.jsonPath().c_str());
    }

    if (!args.metricsPath().empty()) {
        MetricRegistry registry;
        service.exportMetrics(registry);
        result.exportMetrics(registry);
        registry.writeJson(args.metricsPath());
        inform("wrote metrics to %s", args.metricsPath().c_str());
    }
    return exitcode::kOk;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliArgs args(argc, argv, /*first=*/1,
                           /*valueless=*/{"spin", "validate"});
        if (args.helpRequested()) {
            usage();
            return exitcode::kOk;
        }
        args.requireKnown({
            "policy", "shards", "shard-bytes", "assoc", "block-bytes",
            "ewma-alpha", "fast-ns", "slow-ns", "slow-frac", "jitter",
            "spin", "ops", "workers", "qps", "workload", "keys",
            "zipf-theta", "hot-frac", "hot-prob", "write-frac",
            "affinity", "validate", "hitpath", "stripes",
        });
        return run(args);
    } catch (const Error &e) {
        std::cerr << "csrserve: " << e.kind() << ": " << e.what()
                  << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "csrserve: " << e.what() << "\n";
        return exitcode::kGeneric;
    }
}
