#!/usr/bin/env python3
"""Perf-regression gate: compare benchmark JSON against committed
baselines (bench/baselines/) and fail CI on drift beyond a tolerance.

    check_bench.py --baseline-dir bench/baselines [--tolerance 0.20] \
        BENCH_micro.json BENCH_serve.json

Each FILE is compared against <baseline-dir>/<basename(FILE)>.

Shared CI runners are far too noisy for absolute wall-clock
thresholds, so the gate is built from machine-independent signals:

  * Deterministic leaves (hit/miss/eviction counts, aggregate miss
    cost, ...) are pure functions of the seeded workload; any drift
    beyond the tolerance is a genuine behavioral regression and an
    ::error.

  * Throughput leaves (nsPerAccess, accessesPerSec, hitsPerSec) are
    normalized to the first entry of the same metric within the file
    before comparing -- machine speed cancels out, the *relative*
    cost of one policy against another remains.  A policy whose
    normalized throughput drifts past the tolerance is an ::error;
    absolute drift is reported as a ::warning only.

  * Wall-clock-only leaves (wallSec, qps, iterations, latency
    percentiles, the whole "timing" block) are skipped.

Structural drift -- a leaf present on one side only -- is an error:
it means the bench output changed shape and the baselines need
regenerating (see bench/baselines/README.md).

Exit status: 0 clean, 1 violations, 2 usage/missing files.
"""

import argparse
import json
import math
import os
import sys

# Leaves that are pure wall-clock noise on a shared runner.  The
# net-mode counters are deterministic for a fixed client stream
# (per-verb counts, bytes), except backpressure stalls, which depend
# on scheduling.  The robustness counters (sheds, breaker trips,
# deadline evictions, chaos injections, drain accounting) are zero on
# a healthy bench run and only move under fault injection or load
# races -- never a perf signal, so they are skipped rather than
# compared.
SKIP_KEYS = {
    "wallSec", "qps", "iterations", "p50", "p90", "p99",
    "taskSecTotal", "jobs", "workers",
    "net.backpressure_stalls",
    "shedOps", "breakerOpens", "breakerFastFails", "staleServes",
    "net.sheds", "net.idle_closed", "net.deadline_closed",
    "net.capacity_rejections",
}
# Path components whose whole subtree is wall-clock (or, for the
# drain/chaos trees, fault-injection bookkeeping).
SKIP_SUBTREES = {"timing", "net.wire_latency_ns", "net.drain",
                 "net.chaos"}
# Machine-dependent throughput: compared after within-file
# normalization, warned about in absolute terms.
THROUGHPUT_KEYS = {"nsPerAccess", "accessesPerSec", "hitsPerSec"}


def flatten(node, path=()):
    """Yield (path_tuple, value) for every numeric leaf."""
    if isinstance(node, dict):
        for key, child in node.items():
            yield from flatten(child, path + (key,))
    elif isinstance(node, list):
        for index, child in enumerate(node):
            yield from flatten(child, path + (label_of(node, index),))
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield path, float(node)


def label_of(array, index):
    """A stable label for an array element: its name/policy field when
    present (so reordering does not cascade), else the index."""
    element = array[index]
    if isinstance(element, dict):
        for key in ("name", "policy", "benchmark"):
            if key in element and isinstance(element[key], str):
                return "%s=%s" % (key, element[key])
    return "[%d]" % index


def classify(path):
    # Subtree entries match both a literal path component and, because
    # exported metric names are flat dotted keys ("net.drain.duration"),
    # a dotted-prefix of one.
    if any(part == tree or part.startswith(tree + ".")
           for part in path for tree in SKIP_SUBTREES):
        return "skip"
    leaf = path[-1]
    if leaf in SKIP_KEYS:
        return "skip"
    if leaf in THROUGHPUT_KEYS:
        return "throughput"
    return "deterministic"


def rel_delta(baseline, current):
    if baseline == current:
        return 0.0
    denominator = max(abs(baseline), abs(current))
    if denominator == 0.0 or not math.isfinite(denominator):
        return math.inf
    return abs(current - baseline) / denominator


def normalize(values):
    """Divide every (path, value) of one metric by the first value, in
    flatten order -- the shared reference row cancels machine speed."""
    if not values:
        return {}
    reference = values[0][1]
    if reference == 0.0:
        return {}
    return {path: value / reference for path, value in values}


def annotate(level, message):
    # GitHub Actions annotation; degrades to a plain line elsewhere.
    print("::%s::%s" % (level, message))


def compare_file(current_path, baseline_path, tolerance):
    errors = 0
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        annotate("error",
                 "%s: no committed baseline at %s (regenerate: see "
                 "bench/baselines/README.md)"
                 % (current_path, baseline_path))
        return 1
    with open(current_path) as handle:
        current = json.load(handle)

    baseline_leaves = dict(flatten(baseline))
    current_leaves = dict(flatten(current))
    name = os.path.basename(current_path)

    for path in sorted(set(baseline_leaves) ^ set(current_leaves),
                       key=str):
        if classify(path) == "skip":
            continue
        side = "baseline" if path in baseline_leaves else "current"
        annotate("error",
                 "%s: %s exists only in %s output -- bench shape "
                 "changed, regenerate bench/baselines/"
                 % (name, ".".join(path), side))
        errors += 1

    shared = set(baseline_leaves) & set(current_leaves)
    deterministic = [p for p in sorted(shared, key=str)
                     if classify(p) == "deterministic"]
    throughput = [p for p in sorted(shared, key=str)
                  if classify(p) == "throughput"]

    for path in deterministic:
        delta = rel_delta(baseline_leaves[path], current_leaves[path])
        if delta > tolerance:
            annotate("error",
                     "%s: %s drifted %.1f%% (baseline %g, current %g, "
                     "tolerance %.0f%%)"
                     % (name, ".".join(path), 100 * delta,
                        baseline_leaves[path], current_leaves[path],
                        100 * tolerance))
            errors += 1

    # Group throughput leaves by metric name, normalize each side by
    # its own first entry, then compare the normalized ratios.
    by_metric = {}
    for path in throughput:
        by_metric.setdefault(path[-1], []).append(path)
    for metric, paths in by_metric.items():
        norm_base = normalize([(p, baseline_leaves[p]) for p in paths])
        norm_cur = normalize([(p, current_leaves[p]) for p in paths])
        for path in paths:
            if path not in norm_base or path not in norm_cur:
                continue
            delta = rel_delta(norm_base[path], norm_cur[path])
            if delta > tolerance:
                annotate("error",
                         "%s: %s relative %s drifted %.1f%% vs the "
                         "file's reference entry (tolerance %.0f%%)"
                         % (name, ".".join(path), metric, 100 * delta,
                            100 * tolerance))
                errors += 1
            absolute = rel_delta(baseline_leaves[path],
                                 current_leaves[path])
            if absolute > tolerance:
                annotate("warning",
                         "%s: %s absolute %s differs %.1f%% from the "
                         "baseline machine (informational)"
                         % (name, ".".join(path), metric,
                            100 * absolute))

    checked = len(deterministic) + len(throughput)
    print("%s: %d leaves checked against %s, %d violation(s)"
          % (name, checked, baseline_path, errors))
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="Gate benchmark JSON against committed baselines.")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative drift allowed (default 0.20)")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()
    if not os.path.isdir(args.baseline_dir):
        print("check_bench.py: baseline dir %r not found"
              % args.baseline_dir, file=sys.stderr)
        return 2

    errors = 0
    for current in args.files:
        if not os.path.exists(current):
            annotate("error", "%s: bench output missing" % current)
            errors += 1
            continue
        baseline = os.path.join(args.baseline_dir,
                                os.path.basename(current))
        errors += compare_file(current, baseline, args.tolerance)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
