/**
 * @file
 * csrsim -- command-line driver for the csr simulators.
 *
 * Three modes:
 *
 *   csrsim trace --benchmark barnes --policy dcl \
 *                [--mapping random|first-touch] [--ratio 8] [--haf 0.3]
 *                [--scale test|small|full] [--assoc 4] [--l2 16384]
 *                [--alias-bits 0] [--depreciation 2.0]
 *                [--save-trace FILE | --load-trace FILE]
 *       Replays a sampled-processor trace (Section 3 study) and
 *       prints hits/misses, aggregate cost and savings over LRU.
 *
 *   csrsim numa  --benchmark raytrace --policy dcl \
 *                [--clock 500|1000] [--hints 0|1] [--scale ...]
 *                [--alias-bits 0] [--store-weight 1.0]
 *       Runs the 16-node CC-NUMA machine (Section 4 study) under LRU
 *       and the chosen policy and prints the execution-time delta.
 *
 *   csrsim sweep --grid table1|fig3|ablation-*|"key=v1,v2;..." \
 *                [--jobs N] [--scale test|small|full] [--csv 0|1]
 *                [--json FILE]
 *       Expands a declarative policy x workload x cost grid and runs
 *       every cell in parallel on a bounded thread pool (SweepRunner).
 *       Per-cell results go to stdout in stable grid order -- they are
 *       bit-identical for any --jobs value -- and the timing summary
 *       goes to stderr so outputs stay diffable.  --json additionally
 *       writes the full result as a machine-readable file (the CI
 *       perf-smoke job archives it).
 *
 * Misconfigured cache shapes (non-power-of-two sizes etc.) raise
 * CacheGeometryError; main() turns that into a one-line diagnostic and
 * exit code 1 instead of a stack trace.
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "cache/CacheGeometry.h"
#include "cost/StaticCostModels.h"
#include "numa/NumaSystem.h"
#include "sim/SweepRunner.h"
#include "sim/TraceStudy.h"
#include "trace/TraceIO.h"
#include "trace/WorkloadFactory.h"
#include "util/Logging.h"
#include "util/Table.h"

using namespace csr;

namespace
{

/** Minimal --key value argument parser. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                csr_fatal("unexpected argument '%s'", key.c_str());
            key = key.substr(2);
            if (i + 1 >= argc)
                csr_fatal("missing value for --%s", key.c_str());
            values_[key] = argv[++i];
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::atof(
                                                    it->second.c_str());
    }

    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 0);
    }

    bool has(const std::string &key) const { return values_.count(key); }

  private:
    std::map<std::string, std::string> values_;
};

WorkloadScale
parseScale(const std::string &name)
{
    if (name == "test")
        return WorkloadScale::Test;
    if (name == "full")
        return WorkloadScale::Full;
    if (name == "small")
        return WorkloadScale::Small;
    csr_fatal("unknown scale '%s'", name.c_str());
}

int
runTrace(const Args &args)
{
    const BenchmarkId id = parseBenchmark(args.get("benchmark", "barnes"));
    const PolicyKind kind = parsePolicyKind(args.get("policy", "dcl"));
    const WorkloadScale scale = parseScale(args.get("scale", "small"));

    auto workload = makeWorkload(id, scale);
    SampledTrace trace = buildSampledTrace(*workload, 1);

    if (args.has("load-trace")) {
        trace.records = loadTrace(args.get("load-trace", ""));
        inform("loaded %zu records (first-touch homes recomputed from "
               "the generated trace)", trace.records.size());
    }
    if (args.has("save-trace")) {
        saveTrace(args.get("save-trace", ""), trace.records);
        inform("saved %zu records", trace.records.size());
    }

    TraceSimConfig config;
    config.l2Bytes = args.getInt("l2", config.l2Bytes);
    config.l2Assoc =
        static_cast<std::uint32_t>(args.getInt("assoc", config.l2Assoc));
    const TraceStudy study(trace, config);

    PolicyParams params;
    params.etdAliasBits =
        static_cast<unsigned>(args.getInt("alias-bits", 0));
    params.depreciationFactor = args.getDouble("depreciation", 2.0);

    const double ratio = args.getDouble("ratio", 4.0);
    const std::string mapping = args.get("mapping", "first-touch");
    const RandomTwoCost random(CostRatio::finite(ratio),
                               args.getDouble("haf", 0.3));
    const FirstTouchTwoCost first_touch(CostRatio::finite(ratio),
                                        trace.homeOf, trace.sampledProc);
    const CostModel &model =
        mapping == "random"
            ? static_cast<const CostModel &>(random)
            : static_cast<const CostModel &>(first_touch);

    const TraceSimResult res = study.run(kind, model, params);
    const double lru_cost = study.lruCost(model);

    TextTable table("trace study: " + benchmarkName(id) + " / " +
                    res.policyName + " / " + model.describe());
    table.setHeader({"Metric", "Value"});
    table.addRow({"sampled refs", TextTable::count(res.sampledRefs)});
    table.addRow({"L1 hits", TextTable::count(res.l1Hits)});
    table.addRow({"L2 hits", TextTable::count(res.l2Hits)});
    table.addRow({"L2 misses", TextTable::count(res.l2Misses)});
    table.addRow({"invalidations",
                  TextTable::count(res.invalidationsReceived)});
    table.addRow({"aggregate cost",
                  TextTable::num(res.aggregateCost, 0)});
    table.addRow({"LRU cost", TextTable::num(lru_cost, 0)});
    table.addRow({"savings over LRU (%)",
                  TextTable::num(relativeCostSavings(
                      lru_cost, res.aggregateCost), 2)});
    table.print(std::cout);

    if (!res.policyStats.all().empty()) {
        TextTable stats("policy counters");
        stats.setHeader({"Counter", "Value"});
        for (const auto &[name, value] : res.policyStats.all())
            stats.addRow({name, TextTable::count(value)});
        stats.print(std::cout);
    }
    return 0;
}

int
runNuma(const Args &args)
{
    const BenchmarkId id =
        parseBenchmark(args.get("benchmark", "raytrace"));
    const PolicyKind kind = parsePolicyKind(args.get("policy", "dcl"));
    const WorkloadScale scale = parseScale(args.get("scale", "small"));

    NumaConfig config;
    config.cycleNs = args.getInt("clock", 500) >= 1000 ? 1 : 2;
    config.replacementHints = args.getInt("hints", 1) != 0;
    config.policyParams.etdAliasBits =
        static_cast<unsigned>(args.getInt("alias-bits", 0));
    config.storeCostWeight = args.getDouble("store-weight", 1.0);

    auto workload = makeWorkload(id, scale, /*numa_sized=*/true);

    config.policy = PolicyKind::Lru;
    NumaSystem lru(config, *workload);
    const NumaResult base = lru.run();

    config.policy = kind;
    NumaSystem sys(config, *workload);
    const NumaResult res = sys.run();

    TextTable table("numa study: " + benchmarkName(id) + " @ " +
                    (config.cycleNs == 1 ? "1GHz" : "500MHz"));
    table.setHeader({"Metric", "LRU", res.policyName});
    table.addRow({"exec time (ms)",
                  TextTable::num(static_cast<double>(base.execTimeNs) /
                                     1e6, 3),
                  TextTable::num(static_cast<double>(res.execTimeNs) /
                                     1e6, 3)});
    table.addRow({"misses", TextTable::count(base.totalMisses),
                  TextTable::count(res.totalMisses)});
    table.addRow({"avg miss latency (ns)",
                  TextTable::num(base.avgMissLatencyNs, 1),
                  TextTable::num(res.avgMissLatencyNs, 1)});
    table.print(std::cout);
    std::cout << "execution time reduction: "
              << TextTable::num(
                     100.0 *
                         (static_cast<double>(base.execTimeNs) -
                          static_cast<double>(res.execTimeNs)) /
                         static_cast<double>(base.execTimeNs),
                     2)
              << "%\n";
    return 0;
}

int
runSweep(const Args &args)
{
    SweepGrid grid = parseGridSpec(args.get("grid", "table1"));
    if (args.has("scale"))
        grid.scale = parseScale(args.get("scale", "small"));

    const std::string jobsArg = args.get("jobs", "0");
    char *jobsEnd = nullptr;
    const long jobs = std::strtol(jobsArg.c_str(), &jobsEnd, 0);
    if (jobsEnd == jobsArg.c_str() || *jobsEnd != '\0' || jobs < 0 ||
        jobs > 1024)
        csr_fatal("--jobs '%s' must be an integer in [0,1024] "
                  "(0 = one per hardware thread)", jobsArg.c_str());
    const SweepRunner runner(static_cast<unsigned>(jobs));
    const SweepResult result = runner.run(grid);

    TextTable table = result.toTable(
        "sweep: " + std::to_string(result.cells.size()) + " cells");
    if (args.getInt("csv", 0))
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // Timing to stderr: per-cell results on stdout stay bit-diffable
    // across --jobs values.
    result.timingTable().print(std::cerr);

    if (args.has("json"))
        result.writeJson(args.get("json", ""));
    return 0;
}

void
usage()
{
    std::cerr
        << "usage: csrsim trace|numa|sweep [--key value ...]\n"
           "  common: --benchmark barnes|lu|ocean|raytrace\n"
           "          --policy lru|gd|bcl|dcl|acl|opt|costopt\n"
           "          --scale test|small|full  --alias-bits N\n"
           "  trace:  --mapping random|first-touch --ratio R --haf F\n"
           "          --assoc N --l2 BYTES --depreciation F\n"
           "          --save-trace FILE --load-trace FILE\n"
           "  numa:   --clock 500|1000 --hints 0|1 --store-weight W\n"
           "  sweep:  --grid PRESET|\"key=v1,v2;...\" --jobs N --csv 0|1\n"
           "          --json FILE\n"
           "          presets: table1 fig3 ablation-assoc\n"
           "            ablation-cachesize ablation-depreciation\n"
           "            ablation-etd smoke\n"
           "          keys: benchmarks policies mappings ratios hafs\n"
           "            l2 assocs alias-bits depreciations scale\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string mode = argv[1];
    const Args args(argc, argv);
    try {
        if (mode == "trace")
            return runTrace(args);
        if (mode == "numa")
            return runNuma(args);
        if (mode == "sweep")
            return runSweep(args);
    } catch (const CacheGeometryError &e) {
        std::cerr << "csrsim: " << e.what() << "\n";
        return 1;
    }
    usage();
    return 1;
}
