/**
 * @file
 * csrsim -- command-line driver for the csr simulators.
 *
 * Three modes:
 *
 *   csrsim trace --benchmark barnes --policy dcl \
 *                [--mapping random|first-touch] [--ratio 8] [--haf 0.3]
 *                [--scale test|small|full] [--assoc 4] [--l2 16384]
 *                [--alias-bits 0] [--depreciation 2.0]
 *                [--procs N] [--refs N] [--seed N] [--validate]
 *                [--save-trace FILE | --load-trace FILE]
 *       Replays a sampled-processor trace (Section 3 study) and
 *       prints hits/misses, aggregate cost and savings over LRU.
 *
 *   csrsim numa  --benchmark raytrace --policy dcl \
 *                [--clock 500|1000] [--hints 0|1] [--scale ...]
 *                [--alias-bits 0] [--store-weight 1.0]
 *                [--max-cycles NS] [--stall-window NS] [--validate]
 *       Runs the 16-node CC-NUMA machine (Section 4 study) under LRU
 *       and the chosen policy and prints the execution-time delta.
 *       A hung protocol is converted into SimulationStallError (exit
 *       code 5) carrying a per-node diagnostic snapshot instead of
 *       spinning forever; --max-cycles adds a hard simulated-time
 *       budget on top of the stall watchdog.
 *
 *   csrsim replay --file trace.csrt --policy acl \
 *                [--cache-bytes N] [--assoc N] [--block-bytes N]
 *                [--jobs N] [--max-ops N] [--default-cost NS]
 *                [--read-mode mmap|buffered] [--alias-bits N]
 *                [--depreciation F] [--seed N] [--json FILE]
 *       Replays a recorded KV trace (.csrt, see csrtrace) straight
 *       through CacheModel under any online policy.  The summary on
 *       stdout is byte-identical for every --jobs value (the replay
 *       partitions by cache set, see replay/Replayer.h); timing goes
 *       to stderr.
 *
 *   csrsim sweep --grid table1|fig3|ablation-*|"key=v1,v2;..." \
 *                [--jobs N] [--scale test|small|full] [--csv 0|1]
 *                [--json FILE] [--json-timing 0|1]
 *                [--checkpoint FILE [--resume]] [--retries N]
 *                [--validate]
 *       Expands a declarative policy x workload x cost grid and runs
 *       every cell in parallel on a bounded thread pool (SweepRunner).
 *       Per-cell results go to stdout in stable grid order -- they are
 *       bit-identical for any --jobs value -- and the timing summary
 *       goes to stderr so outputs stay diffable.  A failing cell is
 *       retried (--retries) and then recorded as a failure while the
 *       rest of the grid completes; a sweep with failures prints a
 *       failure appendix and exits with code 10.  --checkpoint
 *       journals finished cells to an append-only JSONL file;
 *       --resume restores them on restart, and a killed-and-resumed
 *       sweep's grid output is byte-identical to an uninterrupted run
 *       (pass --json-timing 0 to make the JSON byte-stable too).
 *
 * Every mode also accepts the telemetry flags:
 *
 *   --trace FILE    record the run and export Chrome trace-event JSON
 *                   (open in https://ui.perfetto.dev);
 *   --metrics FILE  dump the run's unified metrics (counters, stats,
 *                   histograms) as JSON.
 *
 * Fault-injection builds (-DCSR_FAULT_INJECT=ON) additionally honour
 * --fault-rate F --fault-seed N, seeding deterministic failures at
 * the compiled probe points.
 *
 * Output paths (--trace/--metrics/--json/--checkpoint/--save-trace)
 * are probed for writability *before* the run starts, so a typo'd
 * directory fails in milliseconds rather than after an hour of
 * simulation.
 *
 * Errors map to distinct exit codes (see robust/Errors.h): 0 ok,
 * 2 ConfigError, 3 TraceFormatError, 4 CheckpointError, 5 stall,
 * 6 geometry, 7 invariant violation, 8 injected fault, 10 sweep
 * completed with failed cells.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cache/CacheGeometry.h"
#include "cost/StaticCostModels.h"
#include "replay/Replayer.h"
#include "numa/NumaSystem.h"
#include "robust/Errors.h"
#include "robust/FaultInjector.h"
#include "sim/SweepRunner.h"
#include "sim/TraceStudy.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Tracer.h"
#include "trace/TraceIO.h"
#include "trace/WorkloadFactory.h"
#include "util/CliArgs.h"
#include "util/Logging.h"
#include "util/Table.h"

using namespace csr;

namespace
{

/** Invariant-check cadence installed by --validate (sampled refs for
 *  the trace study, events for the NUMA run). */
constexpr std::uint64_t kValidateCadence = 4096;

WorkloadScale
parseScale(const std::string &name)
{
    if (name == "test")
        return WorkloadScale::Test;
    if (name == "full")
        return WorkloadScale::Full;
    if (name == "small")
        return WorkloadScale::Small;
    throw ConfigError("unknown scale '" + name +
                      "' (valid: test small full)");
}

PolicyKind
policyFromArgs(const CliArgs &args, const std::string &fallback)
{
    const std::string name = args.get("policy", fallback);
    if (auto kind = parsePolicyKind(name))
        return *kind;
    throw ConfigError("unknown policy '" + name + "' (valid: " +
                      policyNamesJoined(" ") + ")");
}

/**
 * Fail fast on an unwritable output path: append-open it (touching
 * but not truncating an existing file) and remove it again if the
 * probe itself created it.  A typo'd --metrics directory should
 * abort the run before the simulation, not after.
 */
void
ensureWritable(const std::string &path, const std::string &flag)
{
    if (path.empty())
        return;
    std::FILE *pre = std::fopen(path.c_str(), "rb");
    const bool existed = pre != nullptr;
    if (pre)
        std::fclose(pre);
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f)
        throw ConfigError("--" + flag + ": cannot open '" + path +
                          "' for writing");
    std::fclose(f);
    if (!existed)
        std::remove(path.c_str());
}

/** Probe every output path a mode may write, before it runs. */
void
checkOutputPaths(const CliArgs &args)
{
    ensureWritable(args.tracePath(), "trace");
    ensureWritable(args.metricsPath(), "metrics");
    ensureWritable(args.jsonPath(), "json");
    ensureWritable(args.get("checkpoint", ""), "checkpoint");
    ensureWritable(args.get("save-trace", ""), "save-trace");
}

/** Wire --fault-rate/--fault-seed into the process-global injector. */
void
configureFaultInjection(const CliArgs &args)
{
    const double rate = args.getDouble("fault-rate", 0.0);
    if (rate < 0.0 || rate > 1.0)
        throw ConfigError("--fault-rate must be in [0,1]");
    if (rate > 0.0 && !faultInjectionCompiledIn())
        warn("this build has no fault-injection probes "
             "(-DCSR_FAULT_INJECT=OFF); --fault-rate %.3f will inject "
             "nothing", rate);
    FaultInjector::instance().configure(rate,
                                        args.getUInt("fault-seed", 1));
}

/**
 * RAII recording session for --trace: enables the tracer for the
 * scope and exports the Chrome trace JSON on exit.  A default
 * (pathless) session records nothing.
 */
class TraceSession
{
  public:
    explicit TraceSession(const std::string &path) : path_(path)
    {
        if (path_.empty())
            return;
#if defined(CSR_TELEMETRY_DISABLED)
        warn("built with CSR_TELEMETRY=OFF: '%s' will contain no "
             "events", path_.c_str());
#endif
        telemetry::Tracer::instance().clear();
        telemetry::setTracingEnabled(true);
    }

    ~TraceSession()
    {
        if (path_.empty())
            return;
        telemetry::setTracingEnabled(false);
        telemetry::Tracer::instance().writeChromeTrace(path_);
        inform("wrote %zu trace events to %s",
               telemetry::Tracer::instance().eventCount(), path_.c_str());
    }

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    std::string path_;
};

void
writeMetricsIfRequested(const CliArgs &args, const MetricRegistry &registry)
{
    const std::string path = args.metricsPath();
    if (path.empty())
        return;
    registry.writeJson(path);
    inform("wrote metrics to %s", path.c_str());
}

WorkloadConfig
workloadConfigFromArgs(const CliArgs &args, const std::string &benchmark,
                       bool numa_sized)
{
    WorkloadConfig config;
    config.name = args.get("benchmark", benchmark);
    config.scale = parseScale(args.get("scale", "small"));
    config.numaSized = numa_sized;
    config.numProcs =
        static_cast<ProcId>(args.getUInt("procs", 0));
    config.seed = args.seed(0);
    config.targetRefsPerProc = args.getUInt("refs", 0);
    return config;
}

int
runTrace(const CliArgs &args)
{
    const WorkloadConfig wl =
        workloadConfigFromArgs(args, "barnes", /*numa_sized=*/false);
    const BenchmarkId id = parseBenchmark(wl.name);
    const PolicyKind kind = policyFromArgs(args, "dcl");

    auto workload = makeWorkload(wl);
    SampledTrace trace = buildSampledTrace(*workload, 1);

    if (args.has("load-trace")) {
        trace.records = loadTrace(args.get("load-trace", ""));
        inform("loaded %zu records (first-touch homes recomputed from "
               "the generated trace)", trace.records.size());
    }
    if (args.has("save-trace")) {
        saveTrace(args.get("save-trace", ""), trace.records);
        inform("saved %zu records", trace.records.size());
    }

    TraceSimConfig config;
    config.l2Bytes = args.getUInt("l2", config.l2Bytes);
    config.l2Assoc =
        static_cast<std::uint32_t>(args.getUInt("assoc", config.l2Assoc));
    if (args.has("validate"))
        config.validateEveryRefs = kValidateCadence;
    const TraceStudy study(trace, config);

    PolicyParams params;
    params.etdAliasBits =
        static_cast<unsigned>(args.getUInt("alias-bits", 0));
    params.depreciationFactor = args.getDouble("depreciation", 2.0);

    const double ratio = args.getDouble("ratio", 4.0);
    const std::string mapping = args.get("mapping", "first-touch");
    const RandomTwoCost random(CostRatio::finite(ratio),
                               args.getDouble("haf", 0.3));
    const FirstTouchTwoCost first_touch(CostRatio::finite(ratio),
                                        trace.homeOf, trace.sampledProc);
    const CostModel &model =
        mapping == "random"
            ? static_cast<const CostModel &>(random)
            : static_cast<const CostModel &>(first_touch);

    TraceSimResult res;
    double lru_cost = 0.0;
    {
        const TraceSession session(args.tracePath());
        res = study.run(kind, model, params);
        lru_cost = study.lruCost(model);
    }

    TextTable table("trace study: " + benchmarkName(id) + " / " +
                    res.policyName + " / " + model.describe());
    table.setHeader({"Metric", "Value"});
    table.addRow({"sampled refs", TextTable::count(res.sampledRefs)});
    table.addRow({"L1 hits", TextTable::count(res.l1Hits)});
    table.addRow({"L2 hits", TextTable::count(res.l2Hits)});
    table.addRow({"L2 misses", TextTable::count(res.l2Misses)});
    table.addRow({"invalidations",
                  TextTable::count(res.invalidationsReceived)});
    table.addRow({"aggregate cost",
                  TextTable::num(res.aggregateCost, 0)});
    table.addRow({"LRU cost", TextTable::num(lru_cost, 0)});
    table.addRow({"savings over LRU (%)",
                  TextTable::num(relativeCostSavings(
                      lru_cost, res.aggregateCost), 2)});
    table.print(std::cout);

    if (!res.policyStats.all().empty()) {
        TextTable stats("policy counters");
        stats.setHeader({"Counter", "Value"});
        for (const auto &[name, value] : res.policyStats.all())
            stats.addRow({name, TextTable::count(value)});
        stats.print(std::cout);
    }

    if (!args.metricsPath().empty()) {
        MetricRegistry registry;
        res.exportMetrics(registry);
        registry.stat("trace.lru_cost").add(lru_cost);
        writeMetricsIfRequested(args, registry);
    }
    return exitcode::kOk;
}

int
runNuma(const CliArgs &args)
{
    const WorkloadConfig wl =
        workloadConfigFromArgs(args, "raytrace", /*numa_sized=*/true);
    const BenchmarkId id = parseBenchmark(wl.name);
    const PolicyKind kind = policyFromArgs(args, "dcl");

    NumaConfig config;
    config.cycleNs = args.getUInt("clock", 500) >= 1000 ? 1 : 2;
    config.replacementHints = args.getUInt("hints", 1) != 0;
    config.policyParams.etdAliasBits =
        static_cast<unsigned>(args.getUInt("alias-bits", 0));
    config.storeCostWeight = args.getDouble("store-weight", 1.0);
    config.maxSimNs = args.getUInt("max-cycles", config.maxSimNs);
    config.stallWindowNs =
        args.getUInt("stall-window", config.stallWindowNs);
    if (args.has("validate"))
        config.validateEveryEvents = kValidateCadence;

    auto workload = makeWorkload(wl);

    config.policy = PolicyKind::Lru;
    NumaSystem lru(config, *workload);
    const NumaResult base = lru.run();

    config.policy = kind;
    NumaSystem sys(config, *workload);
    NumaResult res;
    {
        const TraceSession session(args.tracePath());
        res = sys.run();
    }

    TextTable table("numa study: " + benchmarkName(id) + " @ " +
                    (config.cycleNs == 1 ? "1GHz" : "500MHz"));
    table.setHeader({"Metric", "LRU", res.policyName});
    table.addRow({"exec time (ms)",
                  TextTable::num(static_cast<double>(base.execTimeNs) /
                                     1e6, 3),
                  TextTable::num(static_cast<double>(res.execTimeNs) /
                                     1e6, 3)});
    table.addRow({"misses", TextTable::count(base.totalMisses),
                  TextTable::count(res.totalMisses)});
    table.addRow({"avg miss latency (ns)",
                  TextTable::num(base.avgMissLatencyNs, 1),
                  TextTable::num(res.avgMissLatencyNs, 1)});
    table.print(std::cout);
    std::cout << "execution time reduction: "
              << TextTable::num(
                     100.0 *
                         (static_cast<double>(base.execTimeNs) -
                          static_cast<double>(res.execTimeNs)) /
                         static_cast<double>(base.execTimeNs),
                     2)
              << "%\n";

    if (!args.metricsPath().empty()) {
        MetricRegistry registry;
        res.exportMetrics(registry);
        registry.setCounter("numa.lru_exec_time_ns", base.execTimeNs);
        writeMetricsIfRequested(args, registry);
    }
    return exitcode::kOk;
}

int
runReplay(const CliArgs &args)
{
    const replay::ReplayConfig config =
        replay::ReplayConfig::fromArgs(args);
    replay::ReplayResult result;
    {
        const TraceSession session(args.tracePath());
        result = replay::replayTrace(config);
    }

    // Deterministic summary to stdout (CI diffs it across --jobs
    // and against the committed golden, so the title must not leak
    // the invocation directory -- basename only), wall clock to
    // stderr.
    const std::size_t slash = config.path.find_last_of('/');
    const std::string base = slash == std::string::npos
                                 ? config.path
                                 : config.path.substr(slash + 1);
    result
        .summaryTable("replay: " + base + " / " +
                      policyKindName(config.policy))
        .print(std::cout);
    result.timingTable().print(std::cerr);

    if (args.has("json")) {
        std::ofstream os(args.jsonPath());
        result.writeJsonObject(os, policyKindName(config.policy));
        os << "\n";
        if (!os)
            throw ConfigError("--json: cannot write '" +
                              args.jsonPath() + "'");
    }

    if (!args.metricsPath().empty()) {
        MetricRegistry registry;
        registry.setCounter("replay.ops", result.totals.ops);
        registry.setCounter("replay.hits", result.totals.hits);
        registry.setCounter("replay.misses", result.totals.misses);
        registry.setCounter("replay.evictions",
                            result.totals.evictions);
        registry.setCounter("replay.miss_cost_ns",
                            result.totals.missCostNs);
        registry.setCounter("replay.jobs", result.jobs);
        registry.recordTimerSec("replay.wall", result.wallSec);
        writeMetricsIfRequested(args, registry);
    }
    return exitcode::kOk;
}

int
runSweep(const CliArgs &args)
{
    SweepGrid grid = parseGridSpec(args.get("grid", "table1"));
    if (args.has("scale"))
        grid.scale = parseScale(args.get("scale", "small"));

    SweepOptions options;
    options.maxAttempts =
        static_cast<unsigned>(args.getUInt("retries", 0)) + 1;
    options.checkpointPath = args.get("checkpoint", "");
    options.resume = args.has("resume");
    if (options.resume && options.checkpointPath.empty())
        throw ConfigError("--resume requires --checkpoint FILE");
    if (args.has("validate"))
        options.validateEveryRefs = kValidateCadence;

    const SweepRunner runner(args.jobs());
    SweepResult result;
    {
        const TraceSession session(args.tracePath());
        result = runner.run(grid, options);
    }

    TextTable table = result.toTable(
        "sweep: " + std::to_string(result.cells.size()) + "/" +
        std::to_string(result.gridCells) + " cells");
    if (args.getUInt("csv", 0))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    if (!result.complete())
        result.failureTable().print(std::cout);

    // Timing to stderr: per-cell results on stdout stay bit-diffable
    // across --jobs values.
    result.timingTable().print(std::cerr);

    if (args.has("json"))
        result.writeJson(args.jsonPath(),
                         args.getUInt("json-timing", 1) != 0);

    if (!args.metricsPath().empty()) {
        MetricRegistry registry;
        registry.setCounter("sweep.cells", result.cells.size());
        registry.setCounter("sweep.grid_cells", result.gridCells);
        registry.setCounter("sweep.failed_cells",
                            result.failures.size());
        registry.setCounter("sweep.resumed_cells", result.resumedCells);
        registry.setCounter("sweep.jobs", result.jobs);
        registry.recordTimerSec("sweep.wall", result.wallSec);
        registry.recordTimerSec("sweep.setup", result.setupSec);
        for (const SweepCellResult &cell : result.cells) {
            registry.incCounter("sweep.sampled_refs", cell.sampledRefs);
            registry.incCounter("sweep.l2_misses", cell.l2Misses);
            registry.stat("sweep.savings_pct").add(cell.savingsPct);
        }
        writeMetricsIfRequested(args, registry);
    }
    return result.complete() ? exitcode::kOk : exitcode::kSweepPartial;
}

void
usage()
{
    std::cerr
        << "usage: csrsim trace|numa|sweep|replay [--key value ...]\n"
           "  common: --benchmark barnes|lu|ocean|raytrace\n"
           "          --policy " << policyNamesJoined() << "\n"
        << "          --scale test|small|full  --alias-bits N\n"
           "          --procs N --refs N --seed N --validate\n"
           "          --trace FILE (Chrome trace JSON, see Perfetto)\n"
           "          --metrics FILE (unified metrics JSON)\n"
           "          --fault-rate F --fault-seed N (inject builds)\n"
           "  trace:  --mapping random|first-touch --ratio R --haf F\n"
           "          --assoc N --l2 BYTES --depreciation F\n"
           "          --save-trace FILE --load-trace FILE\n"
           "  numa:   --clock 500|1000 --hints 0|1 --store-weight W\n"
           "          --max-cycles NS --stall-window NS\n"
           "  replay: --file T.csrt --cache-bytes N --assoc N\n"
           "          --block-bytes N --jobs N --max-ops N\n"
           "          --default-cost NS --read-mode mmap|buffered\n"
           "          --depreciation F --json FILE\n"
           "  sweep:  --grid PRESET|\"key=v1,v2;...\" --jobs N --csv 0|1\n"
           "          --json FILE --json-timing 0|1\n"
           "          --checkpoint FILE [--resume] --retries N\n"
           "          presets: table1 fig3 ablation-assoc\n"
           "            ablation-cachesize ablation-depreciation\n"
           "            ablation-etd smoke\n"
           "          keys: benchmarks policies mappings ratios hafs\n"
           "            l2 assocs alias-bits depreciations scale\n"
           "            traces (.csrt files; replaces benchmarks)\n"
           "  exit codes: 0 ok, 2 config, 3 trace format, 4 checkpoint,\n"
           "    5 stall, 6 geometry, 7 invariant, 8 injected fault,\n"
           "    10 sweep finished with failed cells\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return exitcode::kGeneric;
    }
    const std::string mode = argv[1];
    if (mode == "--help" || mode == "-h") {
        usage();
        return exitcode::kOk;
    }
    try {
        const CliArgs args(argc, argv, /*first=*/2,
                           /*valueless=*/{"resume", "validate"});
        if (args.helpRequested()) {
            usage();
            return exitcode::kOk;
        }
        checkOutputPaths(args);
        configureFaultInjection(args);
        if (mode == "trace")
            return runTrace(args);
        if (mode == "numa")
            return runNuma(args);
        if (mode == "sweep")
            return runSweep(args);
        if (mode == "replay")
            return runReplay(args);
    } catch (const Error &e) {
        std::cerr << "csrsim: " << e.kind() << ": " << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "csrsim: " << e.what() << "\n";
        return exitcode::kGeneric;
    }
    usage();
    return exitcode::kGeneric;
}
