# Empty compiler generated dependencies file for csr_sim.
# This may be replaced when dependencies are built.
