file(REMOVE_RECURSE
  "libcsr_sim.a"
)
