file(REMOVE_RECURSE
  "CMakeFiles/csr_sim.dir/TraceSimulator.cc.o"
  "CMakeFiles/csr_sim.dir/TraceSimulator.cc.o.d"
  "CMakeFiles/csr_sim.dir/TraceStudy.cc.o"
  "CMakeFiles/csr_sim.dir/TraceStudy.cc.o.d"
  "libcsr_sim.a"
  "libcsr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
