file(REMOVE_RECURSE
  "CMakeFiles/csr_numa.dir/CacheController.cc.o"
  "CMakeFiles/csr_numa.dir/CacheController.cc.o.d"
  "CMakeFiles/csr_numa.dir/Directory.cc.o"
  "CMakeFiles/csr_numa.dir/Directory.cc.o.d"
  "CMakeFiles/csr_numa.dir/LatencyCorrelator.cc.o"
  "CMakeFiles/csr_numa.dir/LatencyCorrelator.cc.o.d"
  "CMakeFiles/csr_numa.dir/Network.cc.o"
  "CMakeFiles/csr_numa.dir/Network.cc.o.d"
  "CMakeFiles/csr_numa.dir/NumaSystem.cc.o"
  "CMakeFiles/csr_numa.dir/NumaSystem.cc.o.d"
  "CMakeFiles/csr_numa.dir/Processor.cc.o"
  "CMakeFiles/csr_numa.dir/Processor.cc.o.d"
  "CMakeFiles/csr_numa.dir/Protocol.cc.o"
  "CMakeFiles/csr_numa.dir/Protocol.cc.o.d"
  "libcsr_numa.a"
  "libcsr_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
