file(REMOVE_RECURSE
  "libcsr_numa.a"
)
