
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numa/CacheController.cc" "src/numa/CMakeFiles/csr_numa.dir/CacheController.cc.o" "gcc" "src/numa/CMakeFiles/csr_numa.dir/CacheController.cc.o.d"
  "/root/repo/src/numa/Directory.cc" "src/numa/CMakeFiles/csr_numa.dir/Directory.cc.o" "gcc" "src/numa/CMakeFiles/csr_numa.dir/Directory.cc.o.d"
  "/root/repo/src/numa/LatencyCorrelator.cc" "src/numa/CMakeFiles/csr_numa.dir/LatencyCorrelator.cc.o" "gcc" "src/numa/CMakeFiles/csr_numa.dir/LatencyCorrelator.cc.o.d"
  "/root/repo/src/numa/Network.cc" "src/numa/CMakeFiles/csr_numa.dir/Network.cc.o" "gcc" "src/numa/CMakeFiles/csr_numa.dir/Network.cc.o.d"
  "/root/repo/src/numa/NumaSystem.cc" "src/numa/CMakeFiles/csr_numa.dir/NumaSystem.cc.o" "gcc" "src/numa/CMakeFiles/csr_numa.dir/NumaSystem.cc.o.d"
  "/root/repo/src/numa/Processor.cc" "src/numa/CMakeFiles/csr_numa.dir/Processor.cc.o" "gcc" "src/numa/CMakeFiles/csr_numa.dir/Processor.cc.o.d"
  "/root/repo/src/numa/Protocol.cc" "src/numa/CMakeFiles/csr_numa.dir/Protocol.cc.o" "gcc" "src/numa/CMakeFiles/csr_numa.dir/Protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/csr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/csr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/csr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/csr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
