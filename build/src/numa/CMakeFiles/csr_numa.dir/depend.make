# Empty dependencies file for csr_numa.
# This may be replaced when dependencies are built.
