# Empty dependencies file for csr_cost.
# This may be replaced when dependencies are built.
