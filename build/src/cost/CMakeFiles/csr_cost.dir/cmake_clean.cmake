file(REMOVE_RECURSE
  "CMakeFiles/csr_cost.dir/CostLib.cc.o"
  "CMakeFiles/csr_cost.dir/CostLib.cc.o.d"
  "CMakeFiles/csr_cost.dir/MigrationCost.cc.o"
  "CMakeFiles/csr_cost.dir/MigrationCost.cc.o.d"
  "libcsr_cost.a"
  "libcsr_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
