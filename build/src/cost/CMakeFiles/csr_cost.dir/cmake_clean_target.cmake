file(REMOVE_RECURSE
  "libcsr_cost.a"
)
