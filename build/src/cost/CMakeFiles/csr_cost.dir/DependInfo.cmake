
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/CostLib.cc" "src/cost/CMakeFiles/csr_cost.dir/CostLib.cc.o" "gcc" "src/cost/CMakeFiles/csr_cost.dir/CostLib.cc.o.d"
  "/root/repo/src/cost/MigrationCost.cc" "src/cost/CMakeFiles/csr_cost.dir/MigrationCost.cc.o" "gcc" "src/cost/CMakeFiles/csr_cost.dir/MigrationCost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/csr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/csr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
