# Empty dependencies file for csr_cache.
# This may be replaced when dependencies are built.
