file(REMOVE_RECURSE
  "libcsr_cache.a"
)
