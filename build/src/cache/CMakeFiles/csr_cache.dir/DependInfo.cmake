
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/HwOverhead.cc" "src/cache/CMakeFiles/csr_cache.dir/HwOverhead.cc.o" "gcc" "src/cache/CMakeFiles/csr_cache.dir/HwOverhead.cc.o.d"
  "/root/repo/src/cache/PolicyFactory.cc" "src/cache/CMakeFiles/csr_cache.dir/PolicyFactory.cc.o" "gcc" "src/cache/CMakeFiles/csr_cache.dir/PolicyFactory.cc.o.d"
  "/root/repo/src/cache/StackPolicyBase.cc" "src/cache/CMakeFiles/csr_cache.dir/StackPolicyBase.cc.o" "gcc" "src/cache/CMakeFiles/csr_cache.dir/StackPolicyBase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/csr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
