file(REMOVE_RECURSE
  "CMakeFiles/csr_cache.dir/HwOverhead.cc.o"
  "CMakeFiles/csr_cache.dir/HwOverhead.cc.o.d"
  "CMakeFiles/csr_cache.dir/PolicyFactory.cc.o"
  "CMakeFiles/csr_cache.dir/PolicyFactory.cc.o.d"
  "CMakeFiles/csr_cache.dir/StackPolicyBase.cc.o"
  "CMakeFiles/csr_cache.dir/StackPolicyBase.cc.o.d"
  "libcsr_cache.a"
  "libcsr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
