# Empty compiler generated dependencies file for csr_util.
# This may be replaced when dependencies are built.
