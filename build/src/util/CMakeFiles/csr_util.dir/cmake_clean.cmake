file(REMOVE_RECURSE
  "CMakeFiles/csr_util.dir/Logging.cc.o"
  "CMakeFiles/csr_util.dir/Logging.cc.o.d"
  "CMakeFiles/csr_util.dir/Random.cc.o"
  "CMakeFiles/csr_util.dir/Random.cc.o.d"
  "CMakeFiles/csr_util.dir/Stats.cc.o"
  "CMakeFiles/csr_util.dir/Stats.cc.o.d"
  "CMakeFiles/csr_util.dir/Table.cc.o"
  "CMakeFiles/csr_util.dir/Table.cc.o.d"
  "libcsr_util.a"
  "libcsr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
