
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/Logging.cc" "src/util/CMakeFiles/csr_util.dir/Logging.cc.o" "gcc" "src/util/CMakeFiles/csr_util.dir/Logging.cc.o.d"
  "/root/repo/src/util/Random.cc" "src/util/CMakeFiles/csr_util.dir/Random.cc.o" "gcc" "src/util/CMakeFiles/csr_util.dir/Random.cc.o.d"
  "/root/repo/src/util/Stats.cc" "src/util/CMakeFiles/csr_util.dir/Stats.cc.o" "gcc" "src/util/CMakeFiles/csr_util.dir/Stats.cc.o.d"
  "/root/repo/src/util/Table.cc" "src/util/CMakeFiles/csr_util.dir/Table.cc.o" "gcc" "src/util/CMakeFiles/csr_util.dir/Table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
