file(REMOVE_RECURSE
  "libcsr_trace.a"
)
