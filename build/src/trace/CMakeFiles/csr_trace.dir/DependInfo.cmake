
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/BarnesWorkload.cc" "src/trace/CMakeFiles/csr_trace.dir/BarnesWorkload.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/BarnesWorkload.cc.o.d"
  "/root/repo/src/trace/LuWorkload.cc" "src/trace/CMakeFiles/csr_trace.dir/LuWorkload.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/LuWorkload.cc.o.d"
  "/root/repo/src/trace/OceanWorkload.cc" "src/trace/CMakeFiles/csr_trace.dir/OceanWorkload.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/OceanWorkload.cc.o.d"
  "/root/repo/src/trace/RaytraceWorkload.cc" "src/trace/CMakeFiles/csr_trace.dir/RaytraceWorkload.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/RaytraceWorkload.cc.o.d"
  "/root/repo/src/trace/SampledTrace.cc" "src/trace/CMakeFiles/csr_trace.dir/SampledTrace.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/SampledTrace.cc.o.d"
  "/root/repo/src/trace/StackDistance.cc" "src/trace/CMakeFiles/csr_trace.dir/StackDistance.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/StackDistance.cc.o.d"
  "/root/repo/src/trace/TraceIO.cc" "src/trace/CMakeFiles/csr_trace.dir/TraceIO.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/TraceIO.cc.o.d"
  "/root/repo/src/trace/WorkloadFactory.cc" "src/trace/CMakeFiles/csr_trace.dir/WorkloadFactory.cc.o" "gcc" "src/trace/CMakeFiles/csr_trace.dir/WorkloadFactory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/csr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
