# Empty dependencies file for csr_trace.
# This may be replaced when dependencies are built.
