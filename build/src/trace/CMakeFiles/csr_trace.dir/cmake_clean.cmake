file(REMOVE_RECURSE
  "CMakeFiles/csr_trace.dir/BarnesWorkload.cc.o"
  "CMakeFiles/csr_trace.dir/BarnesWorkload.cc.o.d"
  "CMakeFiles/csr_trace.dir/LuWorkload.cc.o"
  "CMakeFiles/csr_trace.dir/LuWorkload.cc.o.d"
  "CMakeFiles/csr_trace.dir/OceanWorkload.cc.o"
  "CMakeFiles/csr_trace.dir/OceanWorkload.cc.o.d"
  "CMakeFiles/csr_trace.dir/RaytraceWorkload.cc.o"
  "CMakeFiles/csr_trace.dir/RaytraceWorkload.cc.o.d"
  "CMakeFiles/csr_trace.dir/SampledTrace.cc.o"
  "CMakeFiles/csr_trace.dir/SampledTrace.cc.o.d"
  "CMakeFiles/csr_trace.dir/StackDistance.cc.o"
  "CMakeFiles/csr_trace.dir/StackDistance.cc.o.d"
  "CMakeFiles/csr_trace.dir/TraceIO.cc.o"
  "CMakeFiles/csr_trace.dir/TraceIO.cc.o.d"
  "CMakeFiles/csr_trace.dir/WorkloadFactory.cc.o"
  "CMakeFiles/csr_trace.dir/WorkloadFactory.cc.o.d"
  "libcsr_trace.a"
  "libcsr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
