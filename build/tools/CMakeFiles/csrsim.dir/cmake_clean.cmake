file(REMOVE_RECURSE
  "CMakeFiles/csrsim.dir/csrsim.cc.o"
  "CMakeFiles/csrsim.dir/csrsim.cc.o.d"
  "csrsim"
  "csrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
