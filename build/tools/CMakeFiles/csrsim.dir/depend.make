# Empty dependencies file for csrsim.
# This may be replaced when dependencies are built.
