file(REMOVE_RECURSE
  "CMakeFiles/numa_latency.dir/numa_latency.cpp.o"
  "CMakeFiles/numa_latency.dir/numa_latency.cpp.o.d"
  "numa_latency"
  "numa_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
