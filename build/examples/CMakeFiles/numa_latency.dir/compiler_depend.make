# Empty compiler generated dependencies file for numa_latency.
# This may be replaced when dependencies are built.
