file(REMOVE_RECURSE
  "CMakeFiles/haf_sweep.dir/haf_sweep.cpp.o"
  "CMakeFiles/haf_sweep.dir/haf_sweep.cpp.o.d"
  "haf_sweep"
  "haf_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/haf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
