# Empty dependencies file for haf_sweep.
# This may be replaced when dependencies are built.
