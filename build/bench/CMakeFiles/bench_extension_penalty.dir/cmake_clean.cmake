file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_penalty.dir/bench_extension_penalty.cc.o"
  "CMakeFiles/bench_extension_penalty.dir/bench_extension_penalty.cc.o.d"
  "bench_extension_penalty"
  "bench_extension_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
