# Empty compiler generated dependencies file for bench_extension_penalty.
# This may be replaced when dependencies are built.
