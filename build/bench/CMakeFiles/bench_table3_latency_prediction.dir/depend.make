# Empty dependencies file for bench_table3_latency_prediction.
# This may be replaced when dependencies are built.
