# Empty compiler generated dependencies file for bench_extension_migration.
# This may be replaced when dependencies are built.
