file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_migration.dir/bench_extension_migration.cc.o"
  "CMakeFiles/bench_extension_migration.dir/bench_extension_migration.cc.o.d"
  "bench_extension_migration"
  "bench_extension_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
