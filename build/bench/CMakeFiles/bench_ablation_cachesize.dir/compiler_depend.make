# Empty compiler generated dependencies file for bench_ablation_cachesize.
# This may be replaced when dependencies are built.
