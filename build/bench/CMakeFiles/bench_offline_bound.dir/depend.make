# Empty dependencies file for bench_offline_bound.
# This may be replaced when dependencies are built.
