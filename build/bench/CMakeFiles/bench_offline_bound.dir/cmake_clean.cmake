file(REMOVE_RECURSE
  "CMakeFiles/bench_offline_bound.dir/bench_offline_bound.cc.o"
  "CMakeFiles/bench_offline_bound.dir/bench_offline_bound.cc.o.d"
  "bench_offline_bound"
  "bench_offline_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
