# Empty compiler generated dependencies file for bench_fig3_random_cost.
# This may be replaced when dependencies are built.
