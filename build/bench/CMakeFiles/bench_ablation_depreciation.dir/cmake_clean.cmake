file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_depreciation.dir/bench_ablation_depreciation.cc.o"
  "CMakeFiles/bench_ablation_depreciation.dir/bench_ablation_depreciation.cc.o.d"
  "bench_ablation_depreciation"
  "bench_ablation_depreciation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_depreciation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
