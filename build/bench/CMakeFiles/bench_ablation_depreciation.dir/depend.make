# Empty dependencies file for bench_ablation_depreciation.
# This may be replaced when dependencies are built.
