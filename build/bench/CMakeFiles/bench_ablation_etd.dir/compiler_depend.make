# Empty compiler generated dependencies file for bench_ablation_etd.
# This may be replaced when dependencies are built.
