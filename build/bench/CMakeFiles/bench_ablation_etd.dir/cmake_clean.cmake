file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_etd.dir/bench_ablation_etd.cc.o"
  "CMakeFiles/bench_ablation_etd.dir/bench_ablation_etd.cc.o.d"
  "bench_ablation_etd"
  "bench_ablation_etd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_etd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
