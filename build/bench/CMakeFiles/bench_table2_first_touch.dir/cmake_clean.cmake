file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_first_touch.dir/bench_table2_first_touch.cc.o"
  "CMakeFiles/bench_table2_first_touch.dir/bench_table2_first_touch.cc.o.d"
  "bench_table2_first_touch"
  "bench_table2_first_touch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_first_touch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
