# Empty compiler generated dependencies file for bench_table2_first_touch.
# This may be replaced when dependencies are built.
