# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_cache_policies[1]_include.cmake")
include("/root/repo/build/tests/test_trace_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_numa[1]_include.cmake")
include("/root/repo/build/tests/test_trace_sim[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_directory[1]_include.cmake")
include("/root/repo/build/tests/test_stack_distance[1]_include.cmake")
