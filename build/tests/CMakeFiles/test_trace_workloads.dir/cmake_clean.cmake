file(REMOVE_RECURSE
  "CMakeFiles/test_trace_workloads.dir/test_trace_workloads.cc.o"
  "CMakeFiles/test_trace_workloads.dir/test_trace_workloads.cc.o.d"
  "test_trace_workloads"
  "test_trace_workloads.pdb"
  "test_trace_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
