# Empty compiler generated dependencies file for test_trace_workloads.
# This may be replaced when dependencies are built.
