# Empty dependencies file for test_cache_policies.
# This may be replaced when dependencies are built.
