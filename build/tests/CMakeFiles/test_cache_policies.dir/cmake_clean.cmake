file(REMOVE_RECURSE
  "CMakeFiles/test_cache_policies.dir/test_cache_policies.cc.o"
  "CMakeFiles/test_cache_policies.dir/test_cache_policies.cc.o.d"
  "test_cache_policies"
  "test_cache_policies.pdb"
  "test_cache_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
