/**
 * @file
 * Quickstart: the csr library in ~60 lines.
 *
 * Builds the paper's 16 KB 4-way L2, attaches the DCL cost-sensitive
 * replacement policy, replays a synthetic access pattern in which
 * some blocks are 8x more expensive to re-fetch than others, and
 * compares the aggregate miss cost against plain LRU.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "cache/CacheModel.h"
#include "cache/PolicyFactory.h"
#include "cost/StaticCostModels.h"
#include "util/Random.h"

using namespace csr;

namespace
{

/** Replay `accesses` through a cache with the given policy and return
 *  the aggregate miss cost.  The CacheModel runs the same access
 *  protocol every csr simulator uses; see CacheModel.h. */
double
replay(PolicyKind kind, const std::vector<Addr> &accesses,
       const CostModel &cost)
{
    const CacheGeometry geom(16 * 1024, 4, 64); // paper's L2
    CacheModel cache(geom, makePolicy(kind, geom));
    double aggregate = 0.0;

    for (Addr addr : accesses) {
        const std::uint32_t set = geom.setIndex(addr);
        const Addr tag = geom.tag(addr);
        if (cache.access(set, tag) != kInvalidWay) // recency + ETD lookup
            continue; // hits are free
        const Cost c = cost.missCost(geom.blockAddr(addr));
        aggregate += c;
        cache.fillVictimOrFree(set, tag, c); // may reserve a block
    }
    return aggregate;
}

} // namespace

int
main()
{
    // A cost function: blocks whose address hashes into the top 20%
    // cost 8, the rest cost 1 (think: remote vs local memory).
    RandomTwoCost cost(CostRatio::finite(8), /*haf=*/0.2);

    // A workload with reuse just past the cache's reach: loop over a
    // 24 KB working set (the 16 KB cache thrashes under LRU), plus
    // random noise.
    Rng rng(1);
    std::vector<Addr> accesses;
    for (int round = 0; round < 400; ++round) {
        for (Addr block = 0; block < 384; ++block) // 24 KB sweep
            accesses.push_back(block * 64);
        for (int i = 0; i < 64; ++i)               // pollution
            accesses.push_back((0x100000 + rng.nextBelow(4096)) * 64);
    }

    const double lru = replay(PolicyKind::Lru, accesses, cost);
    std::cout << "aggregate miss cost, LRU : " << lru << "\n";
    for (PolicyKind kind : paperPolicies()) {
        const double c = replay(kind, accesses, cost);
        std::cout << "aggregate miss cost, " << policyKindName(kind)
                  << (policyKindName(kind).size() < 3 ? "  : " : " : ")
                  << c << "  (savings "
                  << 100.0 * (lru - c) / lru << "%)\n";
    }
    std::cout << "\nCost-sensitive replacement keeps the expensive "
                 "blocks cached\nthrough the sweep; LRU treats every "
                 "miss as equal.\n";
    return 0;
}
