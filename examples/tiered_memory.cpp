/**
 * @file
 * Example: a non-latency cost function (the paper's Section 7 points
 * at power, bandwidth and tiered storage as further applications).
 *
 * Models a DRAM cache in front of a tiered backing store: misses to
 * blocks resident in the fast tier cost 1, misses to the capacity
 * tier cost 12, and misses to cold archival blocks cost 60.  Costs
 * come from an explicit TableCost, showing how any ad-hoc per-block
 * cost plugs into the cost-sensitive policies.
 *
 *   $ ./examples/tiered_memory
 */

#include <iostream>

#include "cost/StaticCostModels.h"
#include "sim/TraceSimulator.h"
#include "trace/SampledTrace.h"
#include "trace/WorkloadFactory.h"
#include "util/Random.h"
#include "util/Table.h"

using namespace csr;

int
main()
{
    // Reuse the Raytrace generator as a stand-in for an object store
    // workload: a large read-mostly footprint with lobed locality.
    auto workload = makeWorkload(BenchmarkId::Raytrace,
                                 WorkloadScale::Small);
    const SampledTrace trace = buildSampledTrace(*workload, 1);

    // Assign tiers per block: 70% fast, 25% capacity, 5% archival.
    TableCost cost(1.0);
    Rng rng(99);
    for (const auto &[block, home] : trace.homeOf) {
        (void)home;
        const double u = rng.nextDouble();
        if (u < 0.05)
            cost.set(block, 60.0);      // archival tier
        else if (u < 0.30)
            cost.set(block, 12.0);      // capacity tier
                                        // else fast tier (default 1)
    }

    TextTable table("Tiered-store miss cost (fast=1, capacity=12, "
                    "archive=60)");
    table.setHeader({"Policy", "Aggregate cost", "Misses",
                     "Savings vs LRU (%)"});

    double lru_cost = 0.0;
    const CacheGeometry geom(16 * 1024, 4, 64);
    for (PolicyKind kind :
         {PolicyKind::Lru, PolicyKind::GreedyDual, PolicyKind::Bcl,
          PolicyKind::Dcl, PolicyKind::Acl}) {
        TraceSimulator sim(TraceSimConfig{}, makePolicy(kind, geom),
                           cost);
        const TraceSimResult res =
            sim.run(trace.records, trace.sampledProc);
        if (kind == PolicyKind::Lru)
            lru_cost = res.aggregateCost;
        table.addRow({res.policyName,
                      TextTable::num(res.aggregateCost, 0),
                      TextTable::count(res.l2Misses),
                      TextTable::num(relativeCostSavings(
                          lru_cost, res.aggregateCost), 2)});
    }
    table.print(std::cout);
    std::cout << "\nWide cost differentials are where GreedyDual-style "
                 "cost-centric\nreplacement shines; the LRU-based "
                 "algorithms stay competitive while\npreserving "
                 "locality.\n";
    return 0;
}
