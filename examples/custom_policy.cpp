/**
 * @file
 * Example: plugging a user-defined replacement policy into the
 * framework.
 *
 * Implements "CheapestOfTwo": plain LRU, except that the victim is
 * the cheaper of the two least-recently-used blocks -- a minimal,
 * reservation-free way to be cost-aware.  The example evaluates it
 * against LRU and the paper's algorithms on a benchmark trace, which
 * is all it takes to extend the paper's study with a new design
 * point.
 *
 *   $ ./examples/custom_policy [benchmark=barnes]
 */

#include <iostream>

#include "cache/StackPolicyBase.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceSimulator.h"
#include "trace/SampledTrace.h"
#include "trace/WorkloadFactory.h"
#include "util/Table.h"

using namespace csr;

namespace
{

/**
 * LRU that victimizes the cheaper of the two lowest-locality blocks.
 * Deriving from StackPolicyBase provides the recency stack, read
 * access to the CacheModel's per-line cost/tag state and the
 * invalidation plumbing; only victim selection needs writing.
 */
class CheapestOfTwoPolicy : public StackPolicyBase
{
  public:
    explicit CheapestOfTwoPolicy(const CacheGeometry &geom)
        : StackPolicyBase(geom)
    {
    }

    std::string name() const override { return "Cheapest2"; }

    int
    selectVictim(std::uint32_t set) override
    {
        const int n = stackSize(set);
        const int lru = wayAt(set, n);
        if (n < 2)
            return lru;
        const int second = wayAt(set, n - 1);
        return costOf(set, second) < costOf(set, lru) ? second : lru;
    }
};

double
aggregateCost(PolicyPtr policy, const SampledTrace &trace,
              const CostModel &model)
{
    TraceSimulator sim(TraceSimConfig{}, std::move(policy), model);
    return sim.run(trace.records, trace.sampledProc).aggregateCost;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchmarkId id = parseBenchmark(argc > 1 ? argv[1] : "barnes");
    auto workload = makeWorkload(id, WorkloadScale::Small);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const FirstTouchTwoCost model(CostRatio::finite(8), trace.homeOf,
                                  trace.sampledProc);
    const CacheGeometry geom(16 * 1024, 4, 64);

    const double lru =
        aggregateCost(makePolicy(PolicyKind::Lru, geom), trace, model);

    TextTable table(benchmarkName(id) +
                    " -- first-touch cost mapping, r=8");
    table.setHeader({"Policy", "Aggregate cost", "Savings vs LRU (%)"});
    table.addRow({"LRU", TextTable::num(lru, 0), "0.00"});

    auto report = [&](PolicyPtr policy) {
        const std::string name = policy->name();
        const double c = aggregateCost(std::move(policy), trace, model);
        table.addRow({name, TextTable::num(c, 0),
                      TextTable::num(relativeCostSavings(lru, c), 2)});
    };
    report(std::make_unique<CheapestOfTwoPolicy>(geom));
    for (PolicyKind kind : paperPolicies())
        report(makePolicy(kind, geom));

    table.print(std::cout);
    std::cout << "\nA ~20-line policy slots into the same harness as "
                 "the paper's algorithms.\n";
    return 0;
}
