/**
 * @file
 * Example: exploring the cost-savings "sweet spot".
 *
 * The paper's Figure 3 shows that relative savings peak when 10-30%
 * of accesses are high-cost.  This example sweeps the high-cost
 * access fraction for one benchmark and prints an ASCII curve of the
 * DCL savings at a chosen cost ratio -- a quick way to explore where
 * a cost function you care about would land.
 *
 *   $ ./examples/haf_sweep [benchmark=ocean] [r=8]
 */

#include <cstdlib>
#include <iostream>

#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"
#include "trace/WorkloadFactory.h"
#include "util/Table.h"

using namespace csr;

int
main(int argc, char **argv)
{
    const BenchmarkId id = parseBenchmark(argc > 1 ? argv[1] : "ocean");
    const double r = argc > 2 ? std::atof(argv[2]) : 8.0;

    auto workload = makeWorkload(id, WorkloadScale::Small);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const TraceStudy study(trace);

    std::cout << "DCL savings over LRU on " << benchmarkName(id)
              << ", random cost mapping, r=" << r << "\n\n";

    double peak = 0.0;
    double peak_haf = 0.0;
    for (double haf = 0.0; haf <= 1.0001; haf += 0.05) {
        const RandomTwoCost model(CostRatio::finite(r), haf);
        const double savings =
            study.savingsPct(PolicyKind::Dcl, model);
        if (savings > peak) {
            peak = savings;
            peak_haf = haf;
        }
        std::cout << "HAF " << TextTable::num(haf, 2) << " | ";
        const int bars = std::max(0, static_cast<int>(savings * 2));
        for (int i = 0; i < bars; ++i)
            std::cout << '#';
        std::cout << ' ' << TextTable::num(savings, 2) << "%\n";
    }
    std::cout << "\npeak savings " << TextTable::num(peak, 2)
              << "% at HAF " << TextTable::num(peak_haf, 2)
              << " (paper: peak between 0.1 and 0.3)\n";
    return 0;
}
