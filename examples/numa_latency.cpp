/**
 * @file
 * Example: latency-sensitive replacement on the CC-NUMA simulator.
 *
 * Runs one SPLASH-2-like benchmark on the 16-node machine of Table 4
 * twice -- under LRU and under a chosen cost-sensitive policy -- and
 * reports execution time, miss statistics and the behaviour of the
 * last-latency predictor.
 *
 *   $ ./examples/numa_latency [benchmark=raytrace] [policy=dcl]
 */

#include <iostream>

#include "numa/NumaSystem.h"
#include "trace/WorkloadFactory.h"
#include "util/Table.h"

using namespace csr;

namespace
{

NumaResult
runOnce(const SyntheticWorkload &workload, PolicyKind kind)
{
    NumaConfig config;
    config.cycleNs = 2; // 500 MHz
    config.policy = kind;
    NumaSystem sys(config, workload);
    return sys.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchmarkId id = parseBenchmark(argc > 1 ? argv[1] : "raytrace");
    const PolicyKind kind = requirePolicyKind(argc > 2 ? argv[2] : "dcl");

    auto workload = makeWorkload(id, WorkloadScale::Small,
                                 /*numa_sized=*/true);
    std::cout << "benchmark: " << benchmarkName(id) << ", "
              << workload->numProcs() << " processors, "
              << workload->memoryBytes() / 1024 << " KB shared data\n\n";

    const NumaResult lru = runOnce(*workload, PolicyKind::Lru);
    const NumaResult alg = runOnce(*workload, kind);

    TextTable table("LRU vs " + policyKindName(kind) +
                    " on the Table 4 machine (500 MHz)");
    table.setHeader({"Metric", "LRU", alg.policyName});
    table.addRow({"execution time (ms)",
                  TextTable::num(static_cast<double>(lru.execTimeNs) / 1e6,
                                 3),
                  TextTable::num(static_cast<double>(alg.execTimeNs) / 1e6,
                                 3)});
    table.addRow({"ops executed", TextTable::count(lru.totalOps),
                  TextTable::count(alg.totalOps)});
    table.addRow({"L2 misses", TextTable::count(lru.totalMisses),
                  TextTable::count(alg.totalMisses)});
    table.addRow({"avg miss latency (ns)",
                  TextTable::num(lru.avgMissLatencyNs, 1),
                  TextTable::num(alg.avgMissLatencyNs, 1)});
    table.addRow({"aggregate miss latency (ms)",
                  TextTable::num(lru.aggregateMissLatencyNs / 1e6, 2),
                  TextTable::num(alg.aggregateMissLatencyNs / 1e6, 2)});
    table.addRow({"reservations started", "-",
                  TextTable::count(alg.stats.get(
                      "policy.csl.reservation.start"))});
    table.addRow({"reservation successes", "-",
                  TextTable::count(alg.stats.get(
                      "policy.csl.reservation.success"))});
    table.print(std::cout);

    const double reduction =
        100.0 *
        (static_cast<double>(lru.execTimeNs) -
         static_cast<double>(alg.execTimeNs)) /
        static_cast<double>(lru.execTimeNs);
    std::cout << "\nexecution time reduction over LRU: "
              << TextTable::num(reduction, 2) << "%\n";
    return 0;
}
