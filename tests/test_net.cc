/**
 * @file
 * csr::serve::net tests: the RESP parser against hostile and split
 * input (table-driven, no sockets), the event-loop post/wake
 * machinery, the async Backend/CacheService surfaces, the
 * waiter-side inflight timeout, and a real loopback server driven
 * by RespClient and by the client-mode load harness.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "robust/Errors.h"
#include "serve/CacheService.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"
#include "serve/net/ClientLoad.h"
#include "serve/net/EventLoop.h"
#include "serve/net/NetCommon.h"
#include "serve/net/RespClient.h"
#include "serve/net/RespParser.h"
#include "serve/net/Server.h"
#include "util/Random.h"

using namespace csr;
using namespace csr::serve;
using namespace csr::serve::net;

namespace
{

/** Feed the whole input at once and drain every command. */
std::vector<RespCommand>
parseAll(RespParser &parser, const std::string &input,
         RespParseStatus &final_status)
{
    parser.feed(input.data(), input.size());
    std::vector<RespCommand> commands;
    RespCommand cmd;
    while (true) {
        final_status = parser.next(cmd);
        if (final_status != RespParseStatus::Command)
            return commands;
        commands.push_back(cmd);
    }
}

ServeConfig
tinyServeConfig()
{
    ServeConfig config;
    config.shards = 4;
    config.shardBytes = 16 * 1024;
    config.policy = PolicyKind::Acl;
    return config;
}

} // namespace

// ---------------------------------------------------------------------------
// RespParser -- table-driven protocol cases
// ---------------------------------------------------------------------------

TEST(NetRespParser, DecodesWellFormedAndRejectsMalformed)
{
    struct Case
    {
        const char *name;
        std::string input;
        // Expected commands as flat argv lists; empty = none.
        std::vector<std::vector<std::string>> commands;
        bool protocolError;
    };

    const std::vector<Case> cases = {
        {"simple multibulk",
         "*2\r\n$3\r\nGET\r\n$2\r\n17\r\n",
         {{"GET", "17"}},
         false},
        {"pipelined multibulk",
         "*1\r\n$4\r\nPING\r\n*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv"
         "\r\n",
         {{"PING"}, {"SET", "k", "v"}},
         false},
        {"empty bulk argument",
         "*2\r\n$3\r\nGET\r\n$0\r\n\r\n",
         {{"GET", ""}},
         false},
        {"binary-safe bulk",
         std::string("*2\r\n$3\r\nGET\r\n$4\r\na\r\nb\r\n", 26),
         {{"GET", std::string("a\r\nb", 4)}},
         false},
        {"inline command",
         "PING\r\n",
         {{"PING"}},
         false},
        {"inline with arguments and padding",
         "  SET   key\t value \r\n",
         {{"SET", "key", "value"}},
         false},
        {"blank inline lines are skipped",
         "\r\n\r\nPING\r\n",
         {{"PING"}},
         false},
        {"mixed inline and multibulk",
         "PING\r\n*2\r\n$3\r\nDEL\r\n$1\r\nk\r\n",
         {{"PING"}, {"DEL", "k"}},
         false},
        {"zero-element array",
         "*0\r\n",
         {},
         true},
        {"negative array count",
         "*-1\r\n",
         {},
         true},
        {"non-numeric array count",
         "*x\r\n",
         {},
         true},
        {"array count overflow",
         "*99999999999999999999999\r\n",
         {},
         true},
        {"wrong element prefix",
         "*1\r\n+PING\r\n",
         {},
         true},
        {"non-numeric bulk length",
         "*1\r\n$abc\r\n",
         {},
         true},
        {"negative bulk length",
         "*1\r\n$-1\r\n",
         {},
         true},
        {"bulk payload missing CRLF",
         "*1\r\n$4\r\nPINGxx",
         {},
         true},
        {"good then garbage still yields the good one",
         "*1\r\n$4\r\nPING\r\n*1\r\n$oops\r\n",
         {{"PING"}},
         true},
    };

    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        RespParser parser;
        RespParseStatus status = RespParseStatus::NeedMore;
        const auto commands = parseAll(parser, c.input, status);
        ASSERT_EQ(commands.size(), c.commands.size());
        for (std::size_t i = 0; i < commands.size(); ++i)
            EXPECT_EQ(commands[i].argv, c.commands[i]);
        if (c.protocolError) {
            EXPECT_EQ(status, RespParseStatus::ProtocolError);
            EXPECT_FALSE(parser.error().empty());
            // Latched: more input cannot resurrect the stream.
            parser.feed("PING\r\n", 6);
            RespCommand cmd;
            EXPECT_EQ(parser.next(cmd),
                      RespParseStatus::ProtocolError);
        } else {
            EXPECT_EQ(status, RespParseStatus::NeedMore);
        }
    }
}

TEST(NetRespParser, ReassemblesFramesSplitAtEveryByte)
{
    const std::string frame =
        "*3\r\n$3\r\nSET\r\n$6\r\nkey:42\r\n$5\r\n12345\r\n";
    for (std::size_t cut = 1; cut < frame.size(); ++cut) {
        RespParser parser;
        RespCommand cmd;
        parser.feed(frame.data(), cut);
        // Nothing complete yet unless the cut is at the very end.
        EXPECT_EQ(parser.next(cmd), RespParseStatus::NeedMore)
            << "cut at " << cut;
        parser.feed(frame.data() + cut, frame.size() - cut);
        ASSERT_EQ(parser.next(cmd), RespParseStatus::Command)
            << "cut at " << cut;
        const std::vector<std::string> expect{"SET", "key:42",
                                              "12345"};
        EXPECT_EQ(cmd.argv, expect);
        EXPECT_EQ(parser.buffered(), 0u);
    }
}

TEST(NetRespParser, EnforcesEveryConfiguredLimit)
{
    RespLimits limits;
    limits.maxBulkBytes = 8;
    limits.maxArrayElements = 3;
    limits.maxInlineBytes = 16;

    {
        RespParser parser(limits);
        RespCommand cmd;
        const std::string big = "*1\r\n$9\r\n";
        parser.feed(big.data(), big.size());
        EXPECT_EQ(parser.next(cmd), RespParseStatus::ProtocolError);
        EXPECT_NE(parser.error().find("exceeds limit"),
                  std::string::npos);
    }
    {
        RespParser parser(limits);
        RespCommand cmd;
        const std::string wide = "*4\r\n";
        parser.feed(wide.data(), wide.size());
        EXPECT_EQ(parser.next(cmd), RespParseStatus::ProtocolError);
    }
    {
        RespParser parser(limits);
        RespCommand cmd;
        const std::string runaway(17, 'a'); // no CRLF in sight
        parser.feed(runaway.data(), runaway.size());
        EXPECT_EQ(parser.next(cmd), RespParseStatus::ProtocolError);
    }
    {
        // At the limits, everything still parses.
        RespParser parser(limits);
        RespCommand cmd;
        const std::string ok =
            "*3\r\n$8\r\nabcdefgh\r\n$1\r\nx\r\n$0\r\n\r\n";
        parser.feed(ok.data(), ok.size());
        ASSERT_EQ(parser.next(cmd), RespParseStatus::Command);
        EXPECT_EQ(cmd.argv[0], "abcdefgh");
    }
}

// ---------------------------------------------------------------------------
// NetCommon -- address grammar
// ---------------------------------------------------------------------------

TEST(NetCommonTest, ParsesAndRejectsHostPortSpecs)
{
    const auto [h1, p1] = parseHostPort("127.0.0.1:7411");
    EXPECT_EQ(h1, "127.0.0.1");
    EXPECT_EQ(p1, 7411);
    const auto [h2, p2] = parseHostPort(":0");
    EXPECT_EQ(h2, "127.0.0.1");
    EXPECT_EQ(p2, 0);

    EXPECT_THROW(parseHostPort("no-port-here"), ConfigError);
    EXPECT_THROW(parseHostPort("127.0.0.1:"), ConfigError);
    EXPECT_THROW(parseHostPort("127.0.0.1:99999"), ConfigError);
    EXPECT_THROW(parseHostPort("127.0.0.1:abc"), ConfigError);
    EXPECT_THROW(parseHostPort("not.a.host:80"), ConfigError);
}

// ---------------------------------------------------------------------------
// EventLoop -- post/wake machinery
// ---------------------------------------------------------------------------

TEST(NetEventLoop, PostedClosuresRunOnTheLoopThread)
{
    EventLoop loop;
    std::thread runner([&loop] { loop.run(); });

    std::atomic<int> ran{0};
    std::atomic<bool> on_loop_thread{false};
    std::mutex mutex;
    std::condition_variable cv;
    for (int i = 0; i < 100; ++i)
        loop.post([&] {
            on_loop_thread.store(loop.inLoopThread());
            if (ran.fetch_add(1) + 1 == 100) {
                std::lock_guard<std::mutex> lock(mutex);
                cv.notify_all();
            }
        });
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return ran.load() == 100; });
    }
    EXPECT_TRUE(on_loop_thread.load());
    EXPECT_FALSE(loop.inLoopThread());
    loop.stop();
    runner.join();
}

// ---------------------------------------------------------------------------
// Async Backend + CacheService surfaces
// ---------------------------------------------------------------------------

namespace
{

/** Overrides only the sync fetch: exercises the Backend base-class
 *  fetchAsync adapter, including its exception path. */
class SyncOnlyBackend : public Backend
{
  public:
    BackendResult
    fetch(Addr key, std::uint64_t) override
    {
        if (failNext.exchange(false))
            throw InjectedFaultError("sync backend failure");
        BackendResult result;
        result.value = hashMix64(key);
        result.latencyNs = 100.0;
        return result;
    }

    BackendResult
    store(Addr, std::uint64_t value, std::uint64_t) override
    {
        BackendResult result;
        result.value = value;
        result.latencyNs = 100.0;
        return result;
    }

    std::string describe() const override { return "sync-only"; }

    std::atomic<bool> failNext{false};
};

} // namespace

TEST(NetAsyncBackend, DefaultAdapterCompletesInline)
{
    SyncOnlyBackend backend;
    bool completed = false;
    backend.fetchAsync(17, 0,
                       [&](const BackendResult &result,
                           std::exception_ptr error) {
                           EXPECT_EQ(error, nullptr);
                           EXPECT_EQ(result.value, hashMix64(17));
                           completed = true;
                       });
    EXPECT_TRUE(completed);

    backend.failNext.store(true);
    bool failed = false;
    backend.fetchAsync(
        17, 0,
        [&](const BackendResult &, std::exception_ptr error) {
            ASSERT_NE(error, nullptr);
            EXPECT_THROW(std::rethrow_exception(error),
                         InjectedFaultError);
            failed = true;
        });
    EXPECT_TRUE(failed);
}

TEST(NetAsyncService, GetAsyncMatchesGetOpByOp)
{
    SyntheticBackendConfig backend_config;
    backend_config.seed = 11;
    SyntheticBackend sync_backend(backend_config);
    SyntheticBackend async_backend(backend_config);

    CacheService sync_service(tinyServeConfig(), sync_backend);
    CacheService async_service(tinyServeConfig(), async_backend);

    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        const Addr key = rng.next() % 512;
        const ServeOpResult expect = sync_service.get(key);
        ServeOpResult got;
        bool done = false;
        async_service.getAsync(key,
                               [&](const ServeOpResult &result,
                                   std::exception_ptr error) {
                                   ASSERT_EQ(error, nullptr);
                                   got = result;
                                   done = true;
                               });
        // The synthetic backend completes inline, so the callback
        // has already run.
        ASSERT_TRUE(done);
        EXPECT_EQ(got.hit, expect.hit) << "op " << i;
        EXPECT_EQ(got.value, expect.value) << "op " << i;
        EXPECT_EQ(got.backendNs, expect.backendNs) << "op " << i;
    }

    const ServeTotals a = sync_service.totals();
    const ServeTotals b = async_service.totals();
    EXPECT_EQ(a.gets, b.gets);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.missCostNs, b.missCostNs);
    EXPECT_EQ(a.evictions, b.evictions);
}

namespace
{

/** Blocks fetches until release() (test_serve_concurrency's gate). */
class GateBackend : public Backend
{
  public:
    BackendResult
    fetch(Addr key, std::uint64_t) override
    {
        fetches.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return released_; });
        BackendResult result;
        result.value = hashMix64(key);
        result.latencyNs = 5000.0;
        return result;
    }

    BackendResult
    store(Addr, std::uint64_t value, std::uint64_t) override
    {
        BackendResult result;
        result.value = value;
        result.latencyNs = 1000.0;
        return result;
    }

    std::string describe() const override { return "gate"; }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            released_ = true;
        }
        cv_.notify_all();
    }

    std::atomic<std::uint64_t> fetches{0};

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool released_ = false;
};

} // namespace

TEST(ServeInflightTimeout, WaiterTimesOutWithTypedErrorNotForever)
{
    GateBackend backend;
    ServeConfig config = tinyServeConfig();
    config.shards = 1;
    config.inflightWaitMs = 50.0; // waiters give up fast
    CacheService service(config, backend);

    constexpr Addr kKey = 99;
    std::thread leader([&] {
        // Blocks inside the gated fetch until release().
        const ServeOpResult result = service.get(kKey);
        EXPECT_EQ(result.value, hashMix64(kKey));
    });
    while (backend.fetches.load() == 0)
        std::this_thread::yield();

    // A coalesced waiter must come back with TimeoutError, not park
    // forever on the wedged leader.
    EXPECT_THROW(service.get(kKey), TimeoutError);

    backend.release();
    leader.join();

    // The flight completed after the timeout; the key now hits.
    const ServeOpResult after = service.get(kKey);
    EXPECT_TRUE(after.hit);
    EXPECT_EQ(backend.fetches.load(), 1u);
}

TEST(ServeInflightTimeout, ConfigRejectsNegativeWait)
{
    ServeConfig config = tinyServeConfig();
    config.inflightWaitMs = -1.0;
    EXPECT_THROW(config.validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// Loopback end-to-end
// ---------------------------------------------------------------------------

TEST(NetServeLoopback, CommandsRoundTripAgainstARealServer)
{
    SyntheticBackendConfig backend_config;
    backend_config.seed = 5;
    SyntheticBackend backend(backend_config);
    CacheService service(tinyServeConfig(), backend);

    NetServerConfig net_config; // port 0: ephemeral
    net_config.workers = 2;
    NetServer server(service, net_config);
    server.start();
    ASSERT_NE(server.port(), 0);

    RespClient client("127.0.0.1", server.port(), 10.0);

    // PING both ways.
    EXPECT_EQ(client.roundTrip({"PING"}).text, "PONG");
    EXPECT_EQ(client.roundTrip({"PING", "hello"}).text, "hello");

    // A GET is read-through: the decimal key's value is the
    // deterministic synthetic payload.
    const auto got = client.roundTrip({"GET", "12345"});
    EXPECT_EQ(got.type, '$');
    EXPECT_EQ(got.text, std::to_string(backend.valueOf(12345)));

    // SET then GET returns the stored value; DEL evicts it and the
    // next GET refetches the backend payload.
    EXPECT_EQ(client.roundTrip({"SET", "777", "424242"}).type, '+');
    EXPECT_EQ(client.roundTrip({"GET", "777"}).text, "424242");
    EXPECT_EQ(client.roundTrip({"DEL", "777"}).integer, 1);
    EXPECT_EQ(client.roundTrip({"DEL", "777"}).integer, 0);
    EXPECT_EQ(client.roundTrip({"GET", "777"}).text,
              std::to_string(backend.valueOf(777)));

    // Non-numeric keys hash to a stable Addr: SET/GET agree.
    EXPECT_EQ(client.roundTrip({"SET", "user:alice", "7"}).type, '+');
    EXPECT_EQ(client.roundTrip({"GET", "user:alice"}).text, "7");

    // Errors: arity, unknown verbs, non-numeric values.
    EXPECT_TRUE(client.roundTrip({"GET"}).isError());
    EXPECT_TRUE(client.roundTrip({"FLUSHALL"}).isError());
    EXPECT_TRUE(client.roundTrip({"SET", "1", "not-a-number"})
                    .isError());

    // Pipelining: many GETs in one write, replies in order.
    constexpr int kPipelined = 200;
    for (int i = 0; i < kPipelined; ++i)
        client.send({"GET", std::to_string(1000 + i)});
    client.flush();
    for (int i = 0; i < kPipelined; ++i) {
        const auto reply = client.readReply();
        ASSERT_EQ(reply.type, '$') << "reply " << i;
        // Every one of these keys was cold or warmed by this loop;
        // either way the value is the canonical payload.
        EXPECT_EQ(reply.text,
                  std::to_string(backend.valueOf(
                      static_cast<Addr>(1000 + i))))
            << "reply " << i;
    }

    // INFO parses back into the service's own totals.
    const auto info = client.roundTrip({"INFO"});
    ASSERT_EQ(info.type, '$');
    const ServeTotals parsed = parseInfoTotals(info.text);
    const ServeTotals live = service.totals();
    EXPECT_EQ(parsed.gets, live.gets);
    EXPECT_EQ(parsed.hits, live.hits);
    EXPECT_EQ(parsed.misses, live.misses);
    EXPECT_EQ(parsed.stores, live.stores);
    EXPECT_EQ(parsed.missCostNs, live.missCostNs);
    EXPECT_GT(parsed.gets, 0u);

    server.stop();
    const NetStats stats = server.stats();
    EXPECT_GE(stats.connectionsAccepted, 1u);
    EXPECT_GT(stats.cmdGet, 0u);
    EXPECT_GT(stats.cmdSet, 0u);
    EXPECT_EQ(stats.protocolErrors, 0u);
    EXPECT_GT(stats.bytesIn, 0u);
    EXPECT_GT(stats.bytesOut, 0u);
    EXPECT_GT(stats.wireLatencyNs.totalCount(), 0u);
}

namespace
{

/** Write raw bytes to a fresh loopback socket and slurp everything
 *  the server says until it hangs up. */
std::string
rawExchange(std::uint16_t port, const std::string &bytes)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    std::string reply;
    char chunk[4096];
    while (true) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break; // EOF: the server hung up, as promised
        reply.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

} // namespace

TEST(NetServeLoopback, ProtocolErrorGetsAReplyThenTheBoot)
{
    SyntheticBackendConfig backend_config;
    SyntheticBackend backend(backend_config);
    CacheService service(tinyServeConfig(), backend);

    NetServerConfig net_config;
    NetServer server(service, net_config);
    server.start();

    // A multibulk with a garbage bulk length: the server must answer
    // -ERR Protocol error and then close the connection (recv above
    // drains to EOF, so getting the reply back proves both halves).
    const std::string reply =
        rawExchange(server.port(), "*1\r\n$oops\r\n");
    EXPECT_EQ(reply.rfind("-ERR Protocol error", 0), 0u) << reply;

    // A healthy connection still works afterwards.
    RespClient client("127.0.0.1", server.port(), 10.0);
    EXPECT_EQ(client.roundTrip({"PING"}).text, "PONG");

    server.stop();
    const NetStats stats = server.stats();
    EXPECT_EQ(stats.protocolErrors, 1u);
}

TEST(NetClientLoadTest, WireRunMatchesInProcessTotalsExactly)
{
    // One server, locked hit path (the deterministic reference).
    ServeConfig serve_config = tinyServeConfig();
    SyntheticBackendConfig backend_config;
    backend_config.seed = 7;
    SyntheticBackend backend(backend_config);
    CacheService service(serve_config, backend);

    NetServerConfig net_config;
    net_config.workers = 2;
    NetServer server(service, net_config);
    server.start();

    ClientConfig client_config;
    client_config.host = "127.0.0.1";
    client_config.port = server.port();
    client_config.connections = 3;
    client_config.pipeline = 16;
    client_config.serverShards = serve_config.shards;
    client_config.harness.ops = 20000;
    client_config.harness.seed = 7;
    client_config.harness.mix.numKeys = 4096;

    const ClientResult wire = runClientLoad(client_config);
    server.stop();

    EXPECT_EQ(wire.errorReplies, 0u);
    EXPECT_EQ(wire.typeMismatches, 0u);
    EXPECT_EQ(wire.sentGets + wire.sentSets, 20000u);
    EXPECT_TRUE(wire.consistentWithServer());

    // The same stream against a fresh in-process service: the
    // deterministic totals must agree number for number.
    SyntheticBackend backend2(backend_config);
    CacheService service2(serve_config, backend2);
    HarnessConfig harness = client_config.harness;
    harness.workers = 1;
    const HarnessResult local = runLoad(service2, harness);

    EXPECT_EQ(wire.harness.totals.gets, local.totals.gets);
    EXPECT_EQ(wire.harness.totals.hits, local.totals.hits);
    EXPECT_EQ(wire.harness.totals.misses, local.totals.misses);
    EXPECT_EQ(wire.harness.totals.stores, local.totals.stores);
    EXPECT_EQ(wire.harness.totals.storeHits, local.totals.storeHits);
    EXPECT_EQ(wire.harness.totals.evictions, local.totals.evictions);
    EXPECT_EQ(wire.harness.totals.trackedKeys,
              local.totals.trackedKeys);
    EXPECT_EQ(wire.harness.totals.missCostNs,
              local.totals.missCostNs);
    EXPECT_EQ(wire.harness.totals.storeCostNs,
              local.totals.storeCostNs);
}

TEST(NetClientLoadTest, ShardPartitionMatchesTheService)
{
    ServeConfig config = tinyServeConfig();
    SyntheticBackendConfig backend_config;
    SyntheticBackend backend(backend_config);
    CacheService service(config, backend);
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const Addr key = rng.next();
        EXPECT_EQ(wireShardOf(key, config.shards),
                  service.shardOf(key));
    }
}

TEST(NetServerConfigTest, ValidatesFlagsAndSpecs)
{
    NetServerConfig config;
    config.workers = 4096;
    EXPECT_THROW(config.validate(), ConfigError);

    ClientConfig client;
    client.port = 0;
    EXPECT_THROW(client.validate(), ConfigError);
    client.port = 1;
    client.connections = 0;
    EXPECT_THROW(client.validate(), ConfigError);
    client.connections = 1;
    client.serverShards = 3; // not a power of two
    EXPECT_THROW(client.validate(), ConfigError);
}
