/**
 * @file
 * Unit tests for the util library: RNG, math helpers, statistics and
 * table formatting.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/MathUtil.h"
#include "util/Random.h"
#include "util/Stats.h"
#include "util/Table.h"

namespace csr
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues)
{
    Rng rng(11);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBelow(8)];
    for (int v : seen)
        EXPECT_GT(v, 0);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.nextDouble();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng rng(13);
    const double p = 0.25;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricWithPOneIsZero)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextGeometric(1.0), 0u);
}

TEST(Rng, ForkedStreamsAreDecorrelated)
{
    Rng parent(21);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(HashMix64, StableAndSpreading)
{
    EXPECT_EQ(hashMix64(12345), hashMix64(12345));
    EXPECT_NE(hashMix64(1), hashMix64(2));
    // Consecutive inputs should differ in many bits.
    const std::uint64_t diff = hashMix64(100) ^ hashMix64(101);
    int bits = 0;
    for (int i = 0; i < 64; ++i)
        bits += (diff >> i) & 1;
    EXPECT_GT(bits, 16);
}

TEST(MathUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(MathUtil, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(64), 6);
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(64), 6);
    EXPECT_EQ(ceilLog2(65), 7);
}

TEST(MathUtil, Align)
{
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12); // classic example set
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all, a, b;
    Rng rng(33);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 10;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmptyIsIdentity)
{
    RunningStat stat, empty;
    stat.add(1.0);
    stat.add(3.0);

    stat.merge(empty); // merging an empty accumulator changes nothing
    EXPECT_EQ(stat.count(), 2u);
    EXPECT_EQ(stat.mean(), 2.0);
    EXPECT_EQ(stat.min(), 1.0);
    EXPECT_EQ(stat.max(), 3.0);

    empty.merge(stat); // merging *into* an empty one copies
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.mean(), 2.0);
    EXPECT_EQ(empty.min(), 1.0);
    EXPECT_EQ(empty.max(), 3.0);

    RunningStat both_empty, other_empty;
    both_empty.merge(other_empty);
    EXPECT_EQ(both_empty.count(), 0u);
    EXPECT_EQ(both_empty.mean(), 0.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1);        // underflow
    h.add(0.5);       // bucket 0
    h.add(9.99);      // bucket 9
    h.add(10.0);      // overflow
    h.add(3.2, 5);    // bucket 3, weight 5
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 5u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.totalCount(), 9u);
}

TEST(Histogram, Percentile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 2.0);
}

TEST(Histogram, PercentileOfEmptyHistogramIsLowerEdge)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_EQ(h.percentile(0.0), 10.0);
    EXPECT_EQ(h.percentile(0.5), 10.0);
    EXPECT_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileEndpoints)
{
    Histogram h(0.0, 100.0, 100);
    h.add(30.5);
    h.add(60.5);
    // p0 is the first populated bucket's upper edge, p100 the last's.
    EXPECT_EQ(h.percentile(0.0), 31.0);
    EXPECT_EQ(h.percentile(1.0), 61.0);
    // Out-of-range fractions clamp instead of misbehaving.
    EXPECT_EQ(h.percentile(-0.5), 31.0);
    EXPECT_EQ(h.percentile(1.5), 61.0);
}

TEST(Histogram, PercentileWithUnderflowAndOverflowMass)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0, 4); // 40% of the mass below the range
    h.add(5.5, 2);
    h.add(100.0, 4); // 40% above it
    // Mass in the underflow bucket reports the histogram's lower
    // edge; mass beyond the top reports the top edge.
    EXPECT_EQ(h.percentile(0.0), 0.0);
    EXPECT_EQ(h.percentile(0.3), 0.0);
    EXPECT_EQ(h.percentile(0.5), 6.0);
    EXPECT_EQ(h.percentile(1.0), 10.0);
}

TEST(Histogram, PercentileSingleSample)
{
    Histogram h(0.0, 10.0, 10);
    h.add(3.5);
    for (double frac : {0.0, 0.25, 0.5, 1.0})
        EXPECT_EQ(h.percentile(frac), 4.0);
}

TEST(StatGroup, IncrementAndRead)
{
    StatGroup g;
    EXPECT_EQ(g.get("x"), 0u);
    g.inc("x");
    g.inc("x", 4);
    g.inc("y.z");
    EXPECT_EQ(g.get("x"), 5u);
    EXPECT_EQ(g.get("y.z"), 1u);
    EXPECT_EQ(g.all().size(), 2u);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
}

TEST(TextTable, AlignedOutputContainsCells)
{
    TextTable t("Demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", TextTable::num(1.2345, 2)});
    t.addSeparator();
    t.addRow({"beta", TextTable::count(1234567)});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("Demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("1,234,567"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatsNegativesAndPrecision)
{
    EXPECT_EQ(TextTable::num(-1.5, 2), "-1.50");
    EXPECT_EQ(TextTable::num(3.14159, 3), "3.142");
    EXPECT_EQ(TextTable::count(0), "0");
    EXPECT_EQ(TextTable::count(999), "999");
    EXPECT_EQ(TextTable::count(1000), "1,000");
}

} // namespace
} // namespace csr
