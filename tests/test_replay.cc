/**
 * @file
 * Tests of the trace-replay subsystem (src/replay): csrt format
 * round-trips at every block boundary, corrupt/truncated-file
 * rejection with typed errors, mmap-vs-buffered reader equality,
 * replay determinism across --jobs, text ingestion, the serve-layer
 * replay path, and the KeyGenerator determinism/zeta-cache
 * satellites.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "replay/Format.h"
#include "replay/Ingest.h"
#include "replay/ReplayStream.h"
#include "replay/Replayer.h"
#include "replay/SweepTrace.h"
#include "replay/TraceReader.h"
#include "replay/TraceWriter.h"
#include "robust/Errors.h"
#include "serve/CacheService.h"
#include "serve/KeyGenerator.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"
#include "util/CliArgs.h"
#include "util/Random.h"

using namespace csr;
using namespace csr::replay;

namespace
{

/** Fresh path under the gtest temp dir (unique per call). */
std::string
tempPath(const std::string &stem)
{
    static int counter = 0;
    return testing::TempDir() + "csr_replay_" + stem + "_" +
           std::to_string(counter++) + ".csrt";
}

/** n records exercising all ops, irregular timestamps, and value
 *  sizes/cost hints that need both small and large varints. */
std::vector<ReplayRecord>
syntheticRecords(std::size_t n)
{
    std::vector<ReplayRecord> records(n);
    std::uint64_t ts = 5;
    for (std::size_t i = 0; i < n; ++i) {
        ReplayRecord &rec = records[i];
        // Deltas of both signs: zig-zag must round-trip them.
        ts += (i % 7 == 3) ? 0 : (i % 5) * 1000 + 1;
        if (i % 11 == 10 && ts > 4000)
            ts -= 3999; // out-of-order timestamp (allowed)
        rec.tsNs = ts;
        rec.key = hashMix64(i / 3); // repeated keys, spread bits
        rec.op = static_cast<TraceOp>(i % 10 == 9 ? 2 : i % 3 == 1);
        rec.valueSize = static_cast<std::uint32_t>((i * 67) % 70000);
        rec.costHint = static_cast<std::uint32_t>(i % 4 ? 0 : i * 13);
    }
    return records;
}

std::string
writeTrace(const std::vector<ReplayRecord> &records,
           std::uint32_t block_size, const std::string &stem = "t")
{
    const std::string path = tempPath(stem);
    TraceWriter writer(path, block_size);
    for (const ReplayRecord &rec : records)
        writer.append(rec);
    writer.finish();
    return path;
}

/** In-place byte surgery for corruption tests. */
void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
}

void
truncateTo(const std::string &path, std::uint64_t bytes)
{
    std::ifstream in(path, std::ios::binary);
    std::vector<char> data(bytes);
    in.read(data.data(), static_cast<std::streamsize>(bytes));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(bytes));
}

/** Build a strict CliArgs from a flag list (argv[0] = program). */
CliArgs
argsOf(std::vector<std::string> tokens)
{
    tokens.insert(tokens.begin(), "test");
    std::vector<char *> argv;
    argv.reserve(tokens.size());
    for (std::string &t : tokens)
        argv.push_back(t.data());
    return CliArgs(static_cast<int>(argv.size()), argv.data());
}

} // namespace

// ---------------------------------------------------------------------------
// Format primitives
// ---------------------------------------------------------------------------

TEST(Format, ZigzagRoundTripsExtremes)
{
    for (std::int64_t v :
         {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
          std::int64_t{-2}, std::int64_t{63}, std::int64_t{-64},
          std::int64_t{1} << 40, -(std::int64_t{1} << 40),
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()}) {
        EXPECT_EQ(format::unzigzag(format::zigzag(v)), v);
    }
    // Small magnitudes of either sign stay small (the property the
    // varint leans on).
    EXPECT_LT(format::zigzag(-3), 8u);
    EXPECT_LT(format::zigzag(3), 8u);
}

TEST(Format, VarintRoundTripsAndRejectsTruncation)
{
    std::uint8_t buf[format::kMaxVarintBytes];
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
          std::uint64_t{128}, std::uint64_t{16383},
          std::uint64_t{16384}, std::uint64_t{1} << 40,
          std::numeric_limits<std::uint64_t>::max()}) {
        const unsigned n = format::putVarint(buf, v);
        ASSERT_LE(n, format::kMaxVarintBytes);
        const std::uint8_t *p = buf;
        std::uint64_t out = 0;
        ASSERT_TRUE(format::getVarint(p, buf + n, out));
        EXPECT_EQ(out, v);
        EXPECT_EQ(p, buf + n);

        // Every proper prefix is a truncation, and p stays put.
        for (unsigned cut = 0; cut < n; ++cut) {
            const std::uint8_t *q = buf;
            EXPECT_FALSE(format::getVarint(q, buf + cut, out));
            EXPECT_EQ(q, buf);
        }
    }
}

// ---------------------------------------------------------------------------
// Writer/reader round trips
// ---------------------------------------------------------------------------

TEST(TraceRoundTrip, EveryBlockBoundary)
{
    // blockSize 8: 7/8/9 straddle one boundary, 16/17 the next, 100
    // spans many blocks with a partial tail.
    for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 17u, 100u}) {
        const std::vector<ReplayRecord> records = syntheticRecords(n);
        const std::string path = writeTrace(records, 8, "boundary");

        TraceReader reader(path);
        EXPECT_EQ(reader.recordCount(), n);
        EXPECT_EQ(reader.blockCount(), (n + 7) / 8);
        EXPECT_EQ(reader.blockSize(), 8u);
        EXPECT_EQ(reader.readAll(), records) << "n=" << n;
        reader.verifyChecksum();
        std::remove(path.c_str());
    }
}

TEST(TraceRoundTrip, MmapAndBufferedDecodeIdentically)
{
    const std::vector<ReplayRecord> records = syntheticRecords(1000);
    const std::string path = writeTrace(records, 64, "modes");

    TraceReader mmapped(path, ReadMode::Mmap);
    TraceReader buffered(path, ReadMode::Buffered);
    EXPECT_EQ(mmapped.mode(), ReadMode::Mmap);
    EXPECT_EQ(buffered.mode(), ReadMode::Buffered);
    EXPECT_EQ(mmapped.readAll(), records);
    EXPECT_EQ(buffered.readAll(), records);
    for (std::uint64_t b = 0; b < mmapped.blockCount(); ++b)
        for (unsigned c = 0; c < format::kColumns; ++c)
            EXPECT_EQ(mmapped.columnEncoding(b, c),
                      buffered.columnEncoding(b, c));
    buffered.verifyChecksum();
    std::remove(path.c_str());
}

TEST(TraceRoundTrip, EncodingFallsBackToRawPerColumn)
{
    // Sequential keys delta to 1 -> varint wins; hashMix64 keys are
    // 8-byte noise -> raw fixed width is smaller than 10-byte
    // varints.  The op column is raw by construction.
    std::vector<ReplayRecord> sequential(256), noisy(256);
    for (std::size_t i = 0; i < 256; ++i) {
        sequential[i].key = i;
        sequential[i].tsNs = i * 100;
        noisy[i].key = hashMix64(i * 2654435761u);
        noisy[i].tsNs = i * 100;
    }
    const std::string seq_path = writeTrace(sequential, 256, "seq");
    const std::string noise_path = writeTrace(noisy, 256, "noise");

    TraceReader seq(seq_path), noise(noise_path);
    EXPECT_EQ(seq.columnEncoding(0, format::kColKey),
              format::kEncodingVarint);
    EXPECT_EQ(noise.columnEncoding(0, format::kColKey),
              format::kEncodingRaw);
    EXPECT_EQ(seq.columnEncoding(0, format::kColOp),
              format::kEncodingRaw);
    EXPECT_EQ(noise.readAll(), noisy); // raw path round-trips too
    std::remove(seq_path.c_str());
    std::remove(noise_path.c_str());
}

TEST(TraceRoundTrip, SeeksAreO1AndBlockAligned)
{
    const std::vector<ReplayRecord> records = syntheticRecords(100);
    const std::string path = writeTrace(records, 8, "seek");
    TraceReader reader(path);

    // Record 42 lives in block 5 at in-block offset 2 -- decode just
    // that block and pluck it out.
    const std::uint64_t block = reader.blockOfRecord(42);
    EXPECT_EQ(block, 5u);
    EXPECT_EQ(reader.firstRecordOf(block), 40u);
    EXPECT_EQ(reader.blockRecords(block), 8u);
    EXPECT_EQ(reader.blockRecords(reader.blockCount() - 1), 4u);
    ReplayBlock decoded;
    reader.readBlock(block, decoded);
    EXPECT_EQ(decoded.record(2), records[42]);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption and negative paths
// ---------------------------------------------------------------------------

TEST(TraceReaderRejects, MissingFileIsConfigError)
{
    EXPECT_THROW(TraceReader("/nonexistent/nope.csrt"), ConfigError);
}

TEST(TraceReaderRejects, BadMagic)
{
    const std::string path = writeTrace(syntheticRecords(32), 8, "magic");
    flipByte(path, 0);
    try {
        TraceReader reader(path);
        FAIL() << "bad magic accepted";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.exitCode(), exitcode::kTraceFormat);
        EXPECT_EQ(e.byteOffset(), 0u);
    }
    std::remove(path.c_str());
}

TEST(TraceReaderRejects, TruncatedHeaderAndBody)
{
    const std::string path = writeTrace(syntheticRecords(64), 8, "trunc");
    const std::uint64_t full = TraceReader(path).fileBytes();

    // Shorter than the fixed header: rejected outright.
    const std::string stub = tempPath("stub");
    {
        std::ofstream out(stub, std::ios::binary);
        out.write("csrtcol1", 8);
    }
    EXPECT_THROW(TraceReader{stub}, TraceFormatError);
    std::remove(stub.c_str());

    // Cut inside the block payloads: the index now points past EOF.
    const std::string cut = tempPath("cut");
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> data(full / 2);
        in.read(data.data(), static_cast<std::streamsize>(data.size()));
        std::ofstream out(cut, std::ios::binary);
        out.write(data.data(), static_cast<std::streamsize>(data.size()));
    }
    EXPECT_THROW(TraceReader{cut}, TraceFormatError);
    std::remove(cut.c_str());
    std::remove(path.c_str());
}

TEST(TraceReaderRejects, ChecksumCatchesPayloadCorruption)
{
    const std::string path =
        writeTrace(syntheticRecords(64), 8, "checksum");
    // Flip one byte inside the first block's payload (header is 64
    // bytes; +20 lands past the block+column preludes).
    flipByte(path, format::kHeaderBytes + 20);
    TraceReader reader(path);
    EXPECT_THROW(reader.verifyChecksum(), TraceFormatError);
    std::remove(path.c_str());
}

TEST(TraceReaderRejects, BadReadModeNameListsValues)
{
    try {
        requireReadMode("directio");
        FAIL() << "bad read mode accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("mmap"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("buffered"),
                  std::string::npos);
    }
}

TEST(TraceWriterRejects, ZeroBlockSizeAndUnwritablePath)
{
    EXPECT_THROW(TraceWriter("x.csrt", 0), ConfigError);
    EXPECT_THROW(TraceWriter("/nonexistent/dir/x.csrt"), ConfigError);
}

// ---------------------------------------------------------------------------
// Replayer
// ---------------------------------------------------------------------------

namespace
{

/** A recorded synthetic stream, the bench/CI fixture in miniature. */
std::string
recordedZipfTrace(std::uint64_t ops, std::uint64_t seed)
{
    serve::WorkloadMix mix;
    mix.numKeys = 4096;
    mix.writeFraction = 0.2;
    serve::KeyGenerator gen(mix, seed);
    const std::string path = tempPath("zipf");
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < ops; ++i) {
        const serve::Op op = gen.next();
        ReplayRecord rec;
        rec.tsNs = i * 1000;
        rec.key = op.key;
        rec.op = op.write ? TraceOp::Set : TraceOp::Get;
        rec.valueSize = 8;
        writer.append(rec);
    }
    writer.finish();
    return path;
}

} // namespace

TEST(Replayer, TotalsAreJobCountInvariant)
{
    const std::string path = recordedZipfTrace(50'000, 11);
    ReplayConfig config;
    config.path = path;
    config.cacheBytes = 64 * 1024;
    config.policy = PolicyKind::Acl;

    std::vector<ReplayTotals> totals;
    for (unsigned jobs : {1u, 8u}) {
        config.jobs = jobs;
        const ReplayResult result = replayTrace(config);
        EXPECT_EQ(result.totals.ops, 50'000u);
        EXPECT_EQ(result.jobs, jobs);
        totals.push_back(result.totals);
    }
    EXPECT_EQ(totals[0], totals[1]) << "jobs=1 vs jobs=8 diverged";
    EXPECT_GT(totals[0].hits, 0u);
    EXPECT_GT(totals[0].evictions, 0u);
    std::remove(path.c_str());
}

TEST(Replayer, MaxOpsBoundsTheReplay)
{
    const std::string path = recordedZipfTrace(10'000, 3);
    ReplayConfig config;
    config.path = path;
    config.maxOps = 1234;
    const ReplayResult result = replayTrace(config);
    EXPECT_EQ(result.totals.ops, 1234u);
    EXPECT_EQ(result.traceRecords, 10'000u);
    std::remove(path.c_str());
}

TEST(Replayer, DelInvalidatesResidency)
{
    // get a (miss+fill), set b, get a (hit), del a, get a (miss).
    std::vector<ReplayRecord> records(5);
    records[0] = {0, 100, TraceOp::Get, 8, 0};
    records[1] = {1, 200, TraceOp::Set, 8, 0};
    records[2] = {2, 100, TraceOp::Get, 8, 0};
    records[3] = {3, 100, TraceOp::Del, 0, 0};
    records[4] = {4, 100, TraceOp::Get, 8, 0};
    const std::string path = writeTrace(records, 8, "del");

    ReplayConfig config;
    config.path = path;
    const ReplayResult result = replayTrace(config);
    EXPECT_EQ(result.totals.gets, 3u);
    EXPECT_EQ(result.totals.sets, 1u);
    EXPECT_EQ(result.totals.dels, 1u);
    EXPECT_EQ(result.totals.hits, 1u);
    EXPECT_EQ(result.totals.misses, 2u);
    // Both misses carry the 1000ns default cost hint.
    EXPECT_EQ(result.totals.missCostNs, 2000u);
    std::remove(path.c_str());
}

TEST(Replayer, CostHintsBeatTheDefaultCost)
{
    std::vector<ReplayRecord> records(2);
    records[0] = {0, 1, TraceOp::Get, 8, 77};  // per-record hint
    records[1] = {1, 2, TraceOp::Get, 8, 0};   // falls back
    const std::string path = writeTrace(records, 8, "cost");
    ReplayConfig config;
    config.path = path;
    config.defaultCostNs = 1000;
    const ReplayResult result = replayTrace(config);
    EXPECT_EQ(result.totals.missCostNs, 1077u);
    std::remove(path.c_str());
}

TEST(Replayer, ConfigRejectsOfflinePoliciesAndBadFlags)
{
    ReplayConfig config;
    config.path = "t.csrt";
    config.policy = PolicyKind::Opt;
    EXPECT_THROW(config.validate(), ConfigError);
    config.policy = PolicyKind::CostOpt;
    EXPECT_THROW(config.validate(), ConfigError);

    config = ReplayConfig{};
    EXPECT_THROW(config.validate(), ConfigError); // no path

    config = ReplayConfig{};
    config.path = "t.csrt";
    config.defaultCostNs = 0;
    EXPECT_THROW(config.validate(), ConfigError);
}

TEST(Replayer, CliNegativePathsListAcceptedValues)
{
    // The satellite contract: every bad flag dies with ConfigError
    // naming the accepted values, not a crash or a silent default.
    EXPECT_THROW(ReplayConfig::fromArgs(argsOf(
                     {"--file", "t.csrt", "--policy", "nosuch"})),
                 ConfigError);
    EXPECT_THROW(ReplayConfig::fromArgs(argsOf(
                     {"--file", "t.csrt", "--read-mode", "directio"})),
                 ConfigError);
    EXPECT_THROW(ReplayConfig::fromArgs(argsOf(
                     {"--file", "t.csrt", "--policy", "opt"})),
                 ConfigError);
    try {
        ReplayConfig::fromArgs(
            argsOf({"--file", "t.csrt", "--policy", "nosuch"}));
        FAIL() << "unknown policy accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("lru"),
                  std::string::npos)
            << "diagnostic should list valid policies: " << e.what();
    }
}

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

TEST(Ingest, GenericColumnsOpAliasesAndKeyHashing)
{
    std::istringstream in("# comment\n"
                          "\n"
                          "0,12345,GET,64\n"
                          "1000,alpha,put,128\n"
                          "2000,12345,Delete,0\n"
                          "3000,beta,cas,16\n");
    IngestConfig config;
    config.colTs = 0;
    config.colKey = 1;
    config.colOp = 2;
    config.colSize = 3;

    const std::string path = tempPath("ingest");
    TraceWriter writer(path, 8);
    const IngestStats stats = ingestText(in, config, writer);
    writer.finish();
    EXPECT_EQ(stats.records, 4u);
    EXPECT_EQ(stats.skipped, 2u);

    TraceReader reader(path);
    const std::vector<ReplayRecord> records = reader.readAll();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records[0].key, 12345u); // decimal keys verbatim
    EXPECT_EQ(records[0].op, TraceOp::Get);
    EXPECT_EQ(records[1].key, format::fnv1aString("alpha"));
    EXPECT_EQ(records[1].op, TraceOp::Set); // put alias
    EXPECT_EQ(records[1].valueSize, 128u);
    EXPECT_EQ(records[2].op, TraceOp::Del); // Delete alias, any case
    EXPECT_EQ(records[2].key, records[0].key);
    EXPECT_EQ(records[3].op, TraceOp::Set); // cas alias
    std::remove(path.c_str());
}

TEST(Ingest, BadRowsThrowNamingTheLine)
{
    IngestConfig config;
    config.colTs = 0;
    config.colKey = 1;
    config.colOp = 2;

    // Too few columns.
    {
        std::istringstream in("0,a,get\n0,b\n");
        TraceWriter writer(tempPath("bad1"), 8);
        try {
            ingestText(in, config, writer);
            FAIL() << "short row accepted";
        } catch (const TraceFormatError &e) {
            EXPECT_NE(std::string(e.what()).find("line 2"),
                      std::string::npos)
                << e.what();
        }
    }
    // Unknown op token.
    {
        std::istringstream in("0,a,frobnicate\n");
        TraceWriter writer(tempPath("bad2"), 8);
        EXPECT_THROW(ingestText(in, config, writer),
                     TraceFormatError);
    }
}

TEST(Ingest, TsUnitsScaleAndMissingTsSynthesizes)
{
    // Seconds scale to ns.
    {
        IngestConfig config;
        config.colTs = 0;
        config.colKey = 1;
        config.tsUnit = TsUnit::S;
        std::istringstream in("1.5,7\n2.0,8\n");
        const std::string path = tempPath("tsunit");
        TraceWriter writer(path, 8);
        ingestText(in, config, writer);
        writer.finish();
        const std::vector<ReplayRecord> records =
            TraceReader(path).readAll();
        EXPECT_EQ(records[0].tsNs, 1'500'000'000u);
        EXPECT_EQ(records[1].tsNs, 2'000'000'000u);
        std::remove(path.c_str());
    }
    // No ts column: synthetic 1us spacing keeps a monotone clock.
    {
        IngestConfig config; // colTs = -1, colKey = 0
        std::istringstream in("7\n8\n9\n");
        const std::string path = tempPath("nots");
        TraceWriter writer(path, 8);
        ingestText(in, config, writer);
        writer.finish();
        const std::vector<ReplayRecord> records =
            TraceReader(path).readAll();
        EXPECT_EQ(records[1].tsNs - records[0].tsNs, 1000u);
        EXPECT_EQ(records[2].tsNs - records[1].tsNs, 1000u);
        std::remove(path.c_str());
    }
    EXPECT_THROW(requireTsUnit("fortnights"), ConfigError);
}

TEST(Ingest, PresetFlagsValidateAndRejectUnknownNames)
{
    // Presets parse; an unknown preset dies listing the names.
    EXPECT_NO_THROW(IngestConfig::fromArgs(
        argsOf({"--preset", "twitter"})));
    EXPECT_NO_THROW(IngestConfig::fromArgs(
        argsOf({"--preset", "meta"})));
    try {
        IngestConfig::fromArgs(argsOf({"--preset", "memcachier"}));
        FAIL() << "unknown preset accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("twitter"),
                  std::string::npos)
            << e.what();
    }
    // A preset's column map actually ingests its layout (twitter:
    // ts(s),key,keySize,valueSize,client,op,ttl).
    const IngestConfig config =
        IngestConfig::fromArgs(argsOf({"--preset", "twitter"}));
    std::istringstream in("100,k1,2,512,19,get,0\n"
                          "101,k2,2,64,19,set,3600\n");
    const std::string path = tempPath("twitter");
    TraceWriter writer(path, 8);
    ingestText(in, config, writer);
    writer.finish();
    const std::vector<ReplayRecord> records =
        TraceReader(path).readAll();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].tsNs, 100'000'000'000u);
    EXPECT_EQ(records[0].op, TraceOp::Get);
    EXPECT_EQ(records[0].valueSize, 512u);
    EXPECT_EQ(records[1].op, TraceOp::Set);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ReplayStream + sweep bridge
// ---------------------------------------------------------------------------

TEST(ReplayStream, EmitsBlockAddressesAndSkipsDels)
{
    std::vector<ReplayRecord> records(4);
    records[0] = {0, 10, TraceOp::Get, 8, 0};
    records[1] = {1, 11, TraceOp::Set, 8, 0};
    records[2] = {2, 10, TraceOp::Del, 0, 0};
    records[3] = {3, 12, TraceOp::Get, 8, 0};
    const std::string path = writeTrace(records, 2, "stream");

    TraceReader reader(path);
    ReplayStream stream(reader, 64);
    MemAccess access;
    ASSERT_TRUE(stream.next(access));
    EXPECT_EQ(access.addr, 10u * 64);
    EXPECT_FALSE(access.write);
    ASSERT_TRUE(stream.next(access));
    EXPECT_EQ(access.addr, 11u * 64);
    EXPECT_TRUE(access.write);
    ASSERT_TRUE(stream.next(access)); // the Del was skipped
    EXPECT_EQ(access.addr, 12u * 64);
    EXPECT_FALSE(stream.next(access));
    std::remove(path.c_str());
}

TEST(SweepTrace, LoadsDeterministicallyAndNamesCells)
{
    EXPECT_EQ(traceCellName("/a/b/twitter_c12.csrt"), "twitter_c12");
    EXPECT_EQ(traceCellName("plain.csrt"), "plain");

    const std::string path = recordedZipfTrace(2'000, 5);
    const SampledTrace a = loadReplaySampledTrace(path, 64);
    const SampledTrace b = loadReplaySampledTrace(path, 64);
    EXPECT_GT(a.records.size(), 0u);
    EXPECT_EQ(a.records.size(), b.records.size());
    EXPECT_EQ(a.sampledRefs, b.sampledRefs);
    EXPECT_EQ(a.touchedBytes, b.touchedBytes);
    EXPECT_EQ(a.remoteAccessFraction, b.remoteAccessFraction);
    EXPECT_EQ(a.homeOf, b.homeOf);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serve-layer replay
// ---------------------------------------------------------------------------

namespace
{

serve::ServeConfig
smallServeConfig()
{
    serve::ServeConfig config;
    config.shards = 4;
    config.shardBytes = 16 * 1024;
    config.assoc = 4;
    config.policy = PolicyKind::Acl;
    return config;
}

bool
serveTotalsEqual(const serve::ServeTotals &a,
                 const serve::ServeTotals &b)
{
    return a.gets == b.gets && a.hits == b.hits &&
           a.misses == b.misses && a.stores == b.stores &&
           a.storeHits == b.storeHits &&
           a.evictions == b.evictions &&
           a.trackedKeys == b.trackedKeys &&
           a.missCostNs == b.missCostNs &&
           a.storeCostNs == b.storeCostNs;
}

} // namespace

TEST(ServeReplay, TotalsAreWorkerCountInvariant)
{
    const std::string path = recordedZipfTrace(20'000, 17);
    std::vector<serve::ServeTotals> totals;
    for (unsigned workers : {1u, 4u}) {
        serve::SyntheticBackend backend(
            serve::SyntheticBackendConfig{});
        serve::CacheService service(smallServeConfig(), backend);
        serve::HarnessConfig config;
        config.replayPath = path;
        config.ops = 0; // the whole trace
        config.workers = workers;
        const serve::HarnessResult result =
            runLoad(service, config);
        EXPECT_EQ(result.ops, 20'000u);
        service.checkInvariants();
        totals.push_back(result.totals);
    }
    EXPECT_TRUE(serveTotalsEqual(totals[0], totals[1]))
        << "replay workers=1 vs workers=4 diverged";
    std::remove(path.c_str());
}

TEST(ServeReplay, DelDropsResidency)
{
    // set k, get k (hit), del k, get k (miss) -- through the real
    // sharded service.
    std::vector<ReplayRecord> records(4);
    records[0] = {0, 42, TraceOp::Set, 8, 0};
    records[1] = {1, 42, TraceOp::Get, 8, 0};
    records[2] = {2, 42, TraceOp::Del, 0, 0};
    records[3] = {3, 42, TraceOp::Get, 8, 0};
    const std::string path = writeTrace(records, 8, "servedel");

    serve::SyntheticBackend backend(serve::SyntheticBackendConfig{});
    serve::CacheService service(smallServeConfig(), backend);
    serve::HarnessConfig config;
    config.replayPath = path;
    config.ops = 0;
    const serve::HarnessResult result = runLoad(service, config);
    EXPECT_EQ(result.totals.stores, 1u);
    EXPECT_EQ(result.totals.gets, 2u);
    EXPECT_EQ(result.totals.hits, 1u);
    EXPECT_EQ(result.totals.misses, 1u);
    std::remove(path.c_str());
}

TEST(ServeReplay, OpsFlagTruncatesTheTrace)
{
    const std::string path = recordedZipfTrace(5'000, 23);
    serve::SyntheticBackend backend(serve::SyntheticBackendConfig{});
    serve::CacheService service(smallServeConfig(), backend);
    serve::HarnessConfig config;
    config.replayPath = path;
    config.ops = 777;
    const serve::HarnessResult result = runLoad(service, config);
    EXPECT_EQ(result.ops, 777u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// KeyGenerator satellites: zeta cache + pinned stream
// ---------------------------------------------------------------------------

TEST(KeyGeneratorCache, ZetaTableIsSharedAcrossInstances)
{
    serve::WorkloadMix mix;
    mix.numKeys = 100'000; // distinct from every other test's sizes
    mix.zipfTheta = 0.77;
    const std::size_t before = serve::zetaCacheEntries();
    serve::KeyGenerator a(mix, 1);
    const std::size_t after_first = serve::zetaCacheEntries();
    EXPECT_EQ(after_first, before + 1);
    // Re-constructions (new workers, new runs) reuse the entry.
    serve::KeyGenerator b(mix, 2);
    serve::KeyGenerator c(mix, 3);
    EXPECT_EQ(serve::zetaCacheEntries(), after_first);
    // The streams still differ by seed (the cache is only the
    // normalizer, not the draws).
    bool diverged = false;
    for (int i = 0; i < 64 && !diverged; ++i)
        diverged = a.next().key != b.next().key;
    EXPECT_TRUE(diverged);
}

TEST(KeyGeneratorCache, StreamIsPinned)
{
    // Golden fingerprint of the op stream: catches any accidental
    // reordering of RNG draws or zeta-cache behavior changes.  The
    // zipf path rounds through std::pow, so this pin also documents
    // that the stream is stable across the toolchains CI runs
    // (gcc/clang, x86-64 linux).
    serve::WorkloadMix mix;
    mix.numKeys = 4096;
    mix.writeFraction = 0.25;
    serve::KeyGenerator gen(mix, 42);
    std::uint64_t h = format::kFnvOffset;
    for (int i = 0; i < 10'000; ++i) {
        const serve::Op op = gen.next();
        std::uint8_t bytes[9];
        format::put64(bytes, op.key);
        bytes[8] = op.write ? 1 : 0;
        h = format::fnv1a(h, bytes, sizeof bytes);
    }
    EXPECT_EQ(h, 13518718188439222831u)
        << "pinned zipf stream fingerprint moved";
}
