/**
 * @file
 * Shared test utilities.
 *
 * MiniCache drives a ReplacementPolicy through the exact owner
 * protocol documented in ReplacementPolicy.h, against a TagArray and
 * a per-block cost table -- a minimal stand-in for the simulators
 * that makes single-set policy scenarios easy to script and assert.
 */

#ifndef CSR_TESTS_TESTHELPERS_H
#define CSR_TESTS_TESTHELPERS_H

#include <functional>
#include <set>
#include <vector>

#include "cache/ReplacementPolicy.h"
#include "cache/TagArray.h"
#include "cost/StaticCostModels.h"

namespace csr::test
{

/** Minimal policy-driving cache for unit tests. */
class MiniCache
{
  public:
    MiniCache(const CacheGeometry &geom, PolicyPtr policy,
              const CostModel &cost)
        : geom_(geom), tags_(geom), policy_(std::move(policy)),
          cost_(&cost)
    {
    }

    /** Access a byte address through the full protocol.
     *  @return true on a hit. */
    bool
    access(Addr addr)
    {
        const std::uint32_t set = geom_.setIndex(addr);
        const Addr tag = geom_.tag(addr);
        const int hit_way = tags_.findWay(set, tag);
        policy_->access(set, tag, hit_way);
        if (hit_way != kInvalidWay)
            return true;

        int way = tags_.findInvalidWay(set);
        if (way == kInvalidWay) {
            way = policy_->selectVictim(set);
            lastVictimTag_ = tags_.at(set, way).tag;
            lastVictimValid_ = true;
        } else {
            lastVictimValid_ = false;
        }
        tags_.install(set, static_cast<std::uint32_t>(way), tag);
        policy_->fill(set, way, tag,
                      cost_->missCost(geom_.blockAddr(addr)));
        return false;
    }

    /** Coherence invalidation of a byte address. */
    void
    invalidate(Addr addr)
    {
        const std::uint32_t set = geom_.setIndex(addr);
        const Addr tag = geom_.tag(addr);
        const int way = tags_.findWay(set, tag);
        policy_->invalidate(set, tag, way);
        if (way != kInvalidWay)
            tags_.invalidateWay(set, static_cast<std::uint32_t>(way));
    }

    /** Resident block addresses of a set (unordered). */
    std::set<Addr>
    residentBlocks(std::uint32_t set) const
    {
        std::set<Addr> blocks;
        for (std::uint32_t w = 0; w < geom_.assoc(); ++w) {
            const TagLine &line = tags_.at(set, w);
            if (line.valid)
                blocks.insert(geom_.blockAddrOf(set, line.tag));
        }
        return blocks;
    }

    bool
    isResident(Addr addr) const
    {
        return tags_.findWay(geom_.setIndex(addr), geom_.tag(addr)) !=
               kInvalidWay;
    }

    /** Tag of the block evicted by the most recent miss (valid only
     *  if the miss replaced a valid line). */
    Addr lastVictimTag() const { return lastVictimTag_; }
    bool lastVictimValid() const { return lastVictimValid_; }

    ReplacementPolicy &policy() { return *policy_; }
    const CacheGeometry &geometry() const { return geom_; }
    const TagArray &tags() const { return tags_; }

  private:
    CacheGeometry geom_;
    TagArray tags_;
    PolicyPtr policy_;
    const CostModel *cost_;
    Addr lastVictimTag_ = 0;
    bool lastVictimValid_ = false;
};

/** Single-set geometry: assoc ways of 64-byte blocks. */
inline CacheGeometry
singleSet(std::uint32_t assoc)
{
    return CacheGeometry(static_cast<std::uint64_t>(assoc) * 64, assoc, 64);
}

/** Byte address of the n-th distinct block mapping to set 0 of a
 *  single-set cache. */
inline Addr
blk(std::uint64_t n)
{
    return n * 64;
}

} // namespace csr::test

#endif // CSR_TESTS_TESTHELPERS_H
