/**
 * @file
 * Shared test utilities.
 *
 * MiniCache wraps a CacheModel and a per-block cost table -- a minimal
 * stand-in for the simulators that makes single-set policy scenarios
 * easy to script and assert.  All accesses go through the CacheModel's
 * shared protocol (the same one TraceSimulator and the NUMA
 * CacheController use).
 */

#ifndef CSR_TESTS_TESTHELPERS_H
#define CSR_TESTS_TESTHELPERS_H

#include <set>
#include <utility>

#include "cache/CacheModel.h"
#include "cost/StaticCostModels.h"

namespace csr::test
{

/** Minimal policy-driving cache for unit tests. */
class MiniCache
{
  public:
    MiniCache(const CacheGeometry &geom, PolicyPtr policy,
              const CostModel &cost)
        : model_(geom, std::move(policy)), cost_(&cost)
    {
    }

    /** Access a byte address through the full protocol.
     *  @return true on a hit. */
    bool
    access(Addr addr)
    {
        const CacheGeometry &geom = model_.geometry();
        const std::uint32_t set = geom.setIndex(addr);
        const Addr tag = geom.tag(addr);
        if (model_.access(set, tag) != kInvalidWay)
            return true;

        lastVictimValid_ = false;
        model_.fillVictimOrFree(
            set, tag, cost_->missCost(geom.blockAddr(addr)), 0,
            [this](int, Addr victim_tag, std::uint32_t) {
                lastVictimTag_ = victim_tag;
                lastVictimValid_ = true;
            });
        return false;
    }

    /** Coherence invalidation of a byte address. */
    void
    invalidate(Addr addr)
    {
        const CacheGeometry &geom = model_.geometry();
        model_.invalidateTag(geom.setIndex(addr), geom.tag(addr));
    }

    /** Resident block addresses of a set (unordered). */
    std::set<Addr>
    residentBlocks(std::uint32_t set) const
    {
        const CacheGeometry &geom = model_.geometry();
        std::set<Addr> blocks;
        for (std::uint32_t w = 0; w < geom.assoc(); ++w) {
            if (model_.isValid(set, static_cast<int>(w)))
                blocks.insert(geom.blockAddrOf(
                    set, model_.tagAt(set, static_cast<int>(w))));
        }
        return blocks;
    }

    bool
    isResident(Addr addr) const
    {
        const CacheGeometry &geom = model_.geometry();
        return model_.lookup(geom.setIndex(addr), geom.tag(addr)) !=
               kInvalidWay;
    }

    /** Tag of the block evicted by the most recent miss (valid only
     *  if the miss replaced a valid line). */
    Addr lastVictimTag() const { return lastVictimTag_; }
    bool lastVictimValid() const { return lastVictimValid_; }

    ReplacementPolicy &policy() { return *model_.policy(); }
    const CacheGeometry &geometry() const { return model_.geometry(); }
    const CacheModel &model() const { return model_; }

  private:
    CacheModel model_;
    const CostModel *cost_;
    Addr lastVictimTag_ = 0;
    bool lastVictimValid_ = false;
};

/** Single-set geometry: assoc ways of 64-byte blocks. */
inline CacheGeometry
singleSet(std::uint32_t assoc)
{
    return CacheGeometry(static_cast<std::uint64_t>(assoc) * 64, assoc, 64);
}

/** Byte address of the n-th distinct block mapping to set 0 of a
 *  single-set cache. */
inline Addr
blk(std::uint64_t n)
{
    return n * 64;
}

} // namespace csr::test

#endif // CSR_TESTS_TESTHELPERS_H
