/**
 * @file
 * Tests for the CC-NUMA execution-driven simulator: event kernel,
 * mesh network timing/contention, MESI directory protocol legality,
 * unloaded latency calibration against Table 4, the latency
 * correlator, and end-to-end runs on the synthetic benchmarks.
 */

#include <gtest/gtest.h>

#include "numa/Event.h"
#include "numa/NumaSystem.h"
#include "trace/WorkloadFactory.h"
#include "util/Random.h"

namespace csr
{
namespace
{

// ---------------------------------------------------------------------------
// Scriptable workload
// ---------------------------------------------------------------------------

/** A workload whose per-processor access lists are given explicitly. */
class VectorWorkload : public SyntheticWorkload
{
  public:
    explicit VectorWorkload(std::vector<std::vector<MemAccess>> programs)
        : programs_(std::move(programs))
    {
    }

    std::string name() const override { return "vector"; }
    ProcId numProcs() const override
    {
        return static_cast<ProcId>(programs_.size());
    }
    std::uint64_t memoryBytes() const override { return 0; }

    std::unique_ptr<ProcAccessStream>
    procStream(ProcId p) const override
    {
        class Stream : public ProcAccessStream
        {
          public:
            explicit Stream(const std::vector<MemAccess> &ops)
                : ops_(&ops)
            {
            }
            bool
            next(MemAccess &out) override
            {
                if (pos_ >= ops_->size())
                    return false;
                out = (*ops_)[pos_++];
                return true;
            }

          private:
            const std::vector<MemAccess> *ops_;
            std::size_t pos_ = 0;
        };
        return std::make_unique<Stream>(programs_[p]);
    }

  private:
    std::vector<std::vector<MemAccess>> programs_;
};

MemAccess
rd(Addr addr, std::uint32_t gap = 0)
{
    return {addr, false, gap};
}

MemAccess
wr(Addr addr, std::uint32_t gap = 0)
{
    return {addr, true, gap};
}

NumaConfig
baseConfig()
{
    NumaConfig config;
    config.cycleNs = 1; // 1 GHz
    return config;
}

// ---------------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SimultaneousEventsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(5, [&] { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 6u);
}

// ---------------------------------------------------------------------------
// Mesh network
// ---------------------------------------------------------------------------

TEST(Mesh, HopCounts)
{
    NumaConfig config = baseConfig();
    EventQueue events;
    MeshNetwork net(config, events);
    EXPECT_EQ(net.hops(0, 0), 0u);
    EXPECT_EQ(net.hops(0, 1), 1u);
    EXPECT_EQ(net.hops(0, 4), 1u);   // one row down
    EXPECT_EQ(net.hops(0, 5), 2u);
    EXPECT_EQ(net.hops(0, 15), 6u);  // opposite corner of 4x4
}

TEST(Mesh, UnloadedLatencyGrowsWithHopsAndSize)
{
    NumaConfig config = baseConfig();
    EventQueue events;
    MeshNetwork net(config, events);
    EXPECT_LT(net.unloadedLatency(0, 1, false),
              net.unloadedLatency(0, 15, false));
    EXPECT_LT(net.unloadedLatency(0, 1, false),
              net.unloadedLatency(0, 1, true));
}

TEST(Mesh, DeliversToAttachedSink)
{
    NumaConfig config = baseConfig();
    EventQueue events;
    MeshNetwork net(config, events);
    int got = 0;
    for (ProcId n = 0; n < 16; ++n)
        net.attach(n, [&got](const Message &) { ++got; });
    Message msg;
    msg.type = MsgType::GetS;
    msg.src = 0;
    msg.dst = 9;
    net.send(msg);
    events.run();
    EXPECT_EQ(got, 1);
}

TEST(Mesh, ContentionDelaysSecondMessage)
{
    NumaConfig config = baseConfig();
    EventQueue events;
    MeshNetwork net(config, events);
    std::vector<Tick> arrivals;
    for (ProcId n = 0; n < 16; ++n) {
        net.attach(n, [&arrivals, &events](const Message &) {
            arrivals.push_back(events.now());
        });
    }
    Message a;
    a.type = MsgType::DataS; // 9 flits
    a.src = 0;
    a.dst = 3;
    Message b = a;
    net.send(a);
    net.send(b);
    events.run();
    ASSERT_EQ(arrivals.size(), 2u);
    // The second data message serializes behind the first.
    EXPECT_GT(arrivals[1], arrivals[0]);
    EXPECT_GE(arrivals[1] - arrivals[0],
              Tick{config.dataFlits} * config.flitNs);
}

TEST(Mesh, SameRouteMessagesStayOrdered)
{
    // A control message sent after a data message on the same route
    // must not overtake it (protocol correctness depends on this).
    NumaConfig config = baseConfig();
    EventQueue events;
    MeshNetwork net(config, events);
    std::vector<MsgType> order;
    for (ProcId n = 0; n < 16; ++n) {
        net.attach(n, [&order](const Message &msg) {
            order.push_back(msg.type);
        });
    }
    Message data;
    data.type = MsgType::DataM;
    data.src = 5;
    data.dst = 10;
    Message ctrl = data;
    ctrl.type = MsgType::FetchInv;
    net.send(data);
    net.send(ctrl);
    events.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], MsgType::DataM);
    EXPECT_EQ(order[1], MsgType::FetchInv);
}

// ---------------------------------------------------------------------------
// Unloaded latency calibration (Table 4)
// ---------------------------------------------------------------------------

TEST(Calibration, LocalCleanIsAbout120ns)
{
    // Processor 0 reads a block it first-touches (homed locally).
    NumaConfig config = baseConfig();
    VectorWorkload wl({{rd(0x1000)}});
    NumaSystem sys(config, wl);
    NumaResult res = sys.run();
    EXPECT_EQ(res.totalMisses, 1u);
    EXPECT_NEAR(res.avgMissLatencyNs, 120.0, 24.0);
}

TEST(Calibration, RemoteCleanIsAbout380ns)
{
    // Node 5 touches the block first (becomes home, then evicts it
    // from its own cache via a PutS-free read -- simplest: node 5
    // only reads it once, so node 0's later read finds state
    // Exclusive at a remote home).  To measure the *clean shared*
    // remote latency, node 5 reads it, node 0 reads it much later.
    NumaConfig config = baseConfig();
    std::vector<std::vector<MemAccess>> programs(6);
    programs[5] = {rd(0x2000)};
    programs[0] = {rd(0x9999000, 0), rd(0x2000, 3000)};
    VectorWorkload wl(programs);
    NumaSystem sys(config, wl);
    NumaResult res = sys.run();
    // Node 0's second read: remote home (node 5), state Exclusive
    // with a clean owner => fetch round trip.  The paper quotes
    // remote clean (shared/memory) at 380 ns minimum unloaded; our
    // three measured misses include two local-ish ones, so check the
    // correlator instead: total misses and rough average.
    EXPECT_EQ(res.totalMisses, 3u);
    EXPECT_GT(res.avgMissLatencyNs, 120.0);
}

TEST(Calibration, RemoteLatencyRatioIsAboutThree)
{
    // Measure a pure remote-clean read: node 5 touches its block and
    // invalidates nothing; node 0 reads many distinct blocks homed
    // at node 5.  The minimum unloaded remote-to-local-clean ratio
    // should be around 3 (Section 4.2).
    NumaConfig config = baseConfig();
    std::vector<std::vector<MemAccess>> programs(6);
    for (Addr i = 0; i < 8; ++i)
        programs[5].push_back(rd(0x40000 + i * 64));
    for (Addr i = 0; i < 8; ++i)
        programs[0].push_back(rd(0x40000 + i * 64, 2000));
    VectorWorkload wl(programs);
    NumaSystem sys(config, wl);
    sys.run();
    const RunningStat &remote = sys.cache(0).missLatencyStat();
    const double ratio = remote.mean() / 120.0;
    EXPECT_GT(ratio, 2.2);
    EXPECT_LT(ratio, 4.5);
}

// ---------------------------------------------------------------------------
// Protocol state transitions
// ---------------------------------------------------------------------------

TEST(Protocol, FirstReaderGetsExclusive)
{
    NumaConfig config = baseConfig();
    VectorWorkload wl({{rd(0x3000)}});
    NumaSystem sys(config, wl);
    sys.run();
    const Addr block = 0x3000 / 64;
    ASSERT_TRUE(sys.cache(0).hasLine(block));
    EXPECT_EQ(sys.cache(0).lineState(block), LineState::Exclusive);
    const DirEntry *entry = sys.directory(0).entryOf(block);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, DirEntry::State::Exclusive);
    EXPECT_EQ(entry->owner, 0u);
}

TEST(Protocol, WriterGetsModifiedAndInvalidatesSharers)
{
    NumaConfig config = baseConfig();
    std::vector<std::vector<MemAccess>> programs(3);
    programs[0] = {rd(0x4000)};
    programs[1] = {rd(0x4000, 2000)};
    programs[2] = {wr(0x4000, 6000)};
    VectorWorkload wl(programs);
    NumaSystem sys(config, wl);
    sys.run();
    const Addr block = 0x4000 / 64;
    EXPECT_FALSE(sys.cache(0).hasLine(block));
    EXPECT_FALSE(sys.cache(1).hasLine(block));
    ASSERT_TRUE(sys.cache(2).hasLine(block));
    EXPECT_EQ(sys.cache(2).lineState(block), LineState::Modified);
    const DirEntry *entry = sys.directory(0).entryOf(block);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, DirEntry::State::Exclusive);
    EXPECT_EQ(entry->owner, 2u);
}

TEST(Protocol, ReadAfterRemoteDirtyDowngradesOwner)
{
    NumaConfig config = baseConfig();
    std::vector<std::vector<MemAccess>> programs(2);
    programs[0] = {wr(0x5000)};
    programs[1] = {rd(0x5000, 4000)};
    VectorWorkload wl(programs);
    NumaSystem sys(config, wl);
    sys.run();
    const Addr block = 0x5000 / 64;
    ASSERT_TRUE(sys.cache(0).hasLine(block));
    ASSERT_TRUE(sys.cache(1).hasLine(block));
    EXPECT_EQ(sys.cache(0).lineState(block), LineState::Shared);
    EXPECT_EQ(sys.cache(1).lineState(block), LineState::Shared);
    const DirEntry *entry = sys.directory(0).entryOf(block);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, DirEntry::State::Shared);
}

TEST(Protocol, UpgradeFromSharedToModified)
{
    NumaConfig config = baseConfig();
    std::vector<std::vector<MemAccess>> programs(2);
    programs[0] = {rd(0x6000), wr(0x6000, 6000)};
    programs[1] = {rd(0x6000, 2000)};
    VectorWorkload wl(programs);
    NumaSystem sys(config, wl);
    sys.run();
    const Addr block = 0x6000 / 64;
    ASSERT_TRUE(sys.cache(0).hasLine(block));
    EXPECT_EQ(sys.cache(0).lineState(block), LineState::Modified);
    EXPECT_FALSE(sys.cache(1).hasLine(block));
}

// ---------------------------------------------------------------------------
// Protocol stress (property test)
// ---------------------------------------------------------------------------

struct StressParam
{
    PolicyKind policy;
    bool hints;
};

class ProtocolStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(ProtocolStress, RandomSharingRunsToCompletion)
{
    NumaConfig config = baseConfig();
    config.policy = GetParam().policy;
    config.replacementHints = GetParam().hints;

    // 8 processors hammering 96 blocks (few enough to conflict hard,
    // more than a set so evictions and writebacks happen).
    Rng rng(2024);
    std::vector<std::vector<MemAccess>> programs(8);
    for (auto &program : programs) {
        for (int i = 0; i < 1500; ++i) {
            const Addr addr = 0x8000 + rng.nextBelow(96) * 64;
            program.push_back({addr, rng.nextBool(0.3),
                               static_cast<std::uint32_t>(
                                   rng.nextBelow(4))});
        }
    }
    VectorWorkload wl(programs);
    NumaSystem sys(config, wl);
    NumaResult res = sys.run(); // panics on invariant violation
    EXPECT_EQ(res.totalOps, 8u * 1500u);
    EXPECT_GT(res.totalMisses, 0u);
    EXPECT_GT(res.execTimeNs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndHints, ProtocolStress,
    ::testing::Values(StressParam{PolicyKind::Lru, true},
                      StressParam{PolicyKind::Lru, false},
                      StressParam{PolicyKind::GreedyDual, true},
                      StressParam{PolicyKind::Bcl, true},
                      StressParam{PolicyKind::Dcl, true},
                      StressParam{PolicyKind::Dcl, false},
                      StressParam{PolicyKind::Acl, true}),
    [](const auto &info) {
        return policyKindName(info.param.policy) +
               (info.param.hints ? "_hints" : "_nohints");
    });

// ---------------------------------------------------------------------------
// Determinism & end-to-end
// ---------------------------------------------------------------------------

TEST(NumaEndToEnd, DeterministicExecutionTime)
{
    NumaConfig config = baseConfig();
    auto wl = makeWorkload(BenchmarkId::Ocean, WorkloadScale::Test, true);
    NumaSystem a(config, *wl);
    NumaSystem b(config, *wl);
    const Tick ta = a.run().execTimeNs;
    const Tick tb = b.run().execTimeNs;
    EXPECT_EQ(ta, tb);
}

class BenchmarkRuns : public ::testing::TestWithParam<BenchmarkId>
{
};

TEST_P(BenchmarkRuns, CompletesUnderEveryPolicy)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test, true);
    Tick lru_time = 0;
    for (PolicyKind kind :
         {PolicyKind::Lru, PolicyKind::Dcl, PolicyKind::Acl}) {
        NumaConfig config = baseConfig();
        config.policy = kind;
        NumaSystem sys(config, *wl);
        NumaResult res = sys.run();
        EXPECT_GT(res.totalOps, 0u);
        EXPECT_GT(res.execTimeNs, 0u);
        if (kind == PolicyKind::Lru)
            lru_time = res.execTimeNs;
        else
            EXPECT_LT(res.execTimeNs, lru_time * 2) // sane ballpark
                << policyKindName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkRuns,
                         ::testing::ValuesIn(paperBenchmarks()),
                         [](const auto &info) {
                             return benchmarkName(info.param);
                         });

// ---------------------------------------------------------------------------
// Latency correlator (Table 3 machinery)
// ---------------------------------------------------------------------------

TEST(Correlator, PairsConsecutiveMissesPerProcBlock)
{
    LatencyCorrelator corr(1);
    MissService s;
    s.requester = 1;
    s.block = 7;
    s.write = false;
    s.stateAtArrival = DirEntry::State::Uncached;
    s.unloadedLatency = 100;
    corr.observe(s);           // first miss: no pair yet
    EXPECT_EQ(corr.totalPairs(), 0u);
    corr.observe(s);           // same class, same latency
    EXPECT_EQ(corr.totalPairs(), 1u);
    EXPECT_DOUBLE_EQ(corr.matchedPct(), 100.0);

    s.stateAtArrival = DirEntry::State::Shared;
    s.unloadedLatency = 150;
    corr.observe(s);           // class change + latency change
    EXPECT_EQ(corr.totalPairs(), 2u);
    const int rd_u = LatencyCorrelator::classOf(false,
                                                DirEntry::State::Uncached);
    const int rd_s = LatencyCorrelator::classOf(false,
                                                DirEntry::State::Shared);
    EXPECT_EQ(corr.cell(rd_u, rd_s).count, 1u);
    EXPECT_EQ(corr.cell(rd_u, rd_s).mismatches, 1u);
    EXPECT_DOUBLE_EQ(corr.avgErrorCycles(rd_u, rd_s), 50.0);
}

TEST(Correlator, DistinctProcessorsTrackedSeparately)
{
    LatencyCorrelator corr(1);
    MissService a;
    a.requester = 0;
    a.block = 7;
    a.unloadedLatency = 100;
    MissService b = a;
    b.requester = 1;
    corr.observe(a);
    corr.observe(b);
    EXPECT_EQ(corr.totalPairs(), 0u); // different (proc, block) keys
}

TEST(Correlator, Table3RunShowsDominantLatencyStability)
{
    // The paper's headline: ~93% of consecutive misses to the same
    // block by the same processor have unchanged unloaded latency.
    // At our scaled-down problem sizes the exact figure differs, but
    // stability must dominate.
    NumaConfig config = baseConfig();
    config.replacementHints = false; // Table 3 protocol
    auto wl = makeWorkload(BenchmarkId::Ocean, WorkloadScale::Test, true);
    NumaSystem sys(config, *wl);
    sys.run();
    const LatencyCorrelator &corr = sys.correlator();
    EXPECT_GT(corr.totalPairs(), 100u);
    EXPECT_GT(corr.matchedPct(), 60.0);
}

} // namespace
} // namespace csr
