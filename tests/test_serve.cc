/**
 * @file
 * Tests of the serving layer (src/serve): backend and key-generator
 * determinism, CacheService semantics, the load harness's
 * worker-count-invariance contract, and concurrent telemetry use from
 * serve worker threads.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "robust/Errors.h"
#include "serve/CacheService.h"
#include "serve/KeyGenerator.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Telemetry.h"

using namespace csr;
using namespace csr::serve;

namespace
{

/** Minimal recursive-descent JSON validator (same contract as
 *  test_telemetry's: "consumers can parse this" checked for real). */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string text_;
    std::size_t pos_ = 0;
};

ServeConfig
smallServeConfig(PolicyKind policy)
{
    ServeConfig config;
    config.shards = 4;
    config.shardBytes = 16 * 1024;
    config.assoc = 4;
    config.policy = policy;
    return config;
}

HarnessConfig
smallHarnessConfig(std::uint64_t ops, unsigned workers)
{
    HarnessConfig config;
    config.ops = ops;
    config.workers = workers;
    config.seed = 99;
    config.mix.numKeys = 8192;
    return config;
}

bool
totalsEqual(const ServeTotals &a, const ServeTotals &b)
{
    return a.gets == b.gets && a.hits == b.hits &&
           a.misses == b.misses && a.stores == b.stores &&
           a.storeHits == b.storeHits && a.evictions == b.evictions &&
           a.trackedKeys == b.trackedKeys &&
           a.missCostNs == b.missCostNs && // bit-equal, by contract
           a.storeCostNs == b.storeCostNs;
}

} // namespace

// ---------------------------------------------------------------------------
// SyntheticBackend
// ---------------------------------------------------------------------------

TEST(SyntheticBackend, IsAPureFunctionOfSeedKeySalt)
{
    SyntheticBackendConfig config;
    config.seed = 5;
    SyntheticBackend a(config), b(config);
    for (Addr key = 0; key < 64; ++key) {
        for (std::uint64_t salt = 0; salt < 3; ++salt) {
            const BackendResult ra = a.fetch(key, salt);
            const BackendResult rb = b.fetch(key, salt);
            EXPECT_EQ(ra.value, rb.value);
            EXPECT_EQ(ra.latencyNs, rb.latencyNs);
            EXPECT_EQ(ra.value, a.valueOf(key));
        }
    }
}

TEST(SyntheticBackend, TiersSplitTheKeyspace)
{
    SyntheticBackendConfig config;
    config.slowFraction = 0.25;
    config.jitterFraction = 0.0;
    SyntheticBackend backend(config);
    std::uint64_t slow = 0;
    const int n = 4096;
    for (Addr key = 0; key < n; ++key) {
        const double ns = backend.fetch(key, 0).latencyNs;
        EXPECT_EQ(ns, backend.isSlowKey(key) ? config.slowNs
                                             : config.fastNs);
        slow += backend.isSlowKey(key);
    }
    EXPECT_NEAR(static_cast<double>(slow) / n, 0.25, 0.05);
}

TEST(SyntheticBackend, JitterIsBoundedAndSaltDependent)
{
    SyntheticBackendConfig config;
    config.jitterFraction = 0.1;
    SyntheticBackend backend(config);
    const Addr key = 17;
    const double base = backend.baseLatencyNs(key);
    std::set<double> seen;
    for (std::uint64_t salt = 0; salt < 16; ++salt) {
        const double ns = backend.fetch(key, salt).latencyNs;
        EXPECT_GE(ns, base * 0.9 - 1e-9);
        EXPECT_LE(ns, base * 1.1 + 1e-9);
        seen.insert(ns);
    }
    EXPECT_GT(seen.size(), 1u); // salt actually varies the draw
}

TEST(SyntheticBackend, RejectsBadConfig)
{
    SyntheticBackendConfig bad;
    bad.slowFraction = 1.5;
    EXPECT_THROW(SyntheticBackend{bad}, ConfigError);
    bad = SyntheticBackendConfig{};
    bad.fastNs = -1.0;
    EXPECT_THROW(SyntheticBackend{bad}, ConfigError);
    bad = SyntheticBackendConfig{};
    bad.jitterFraction = 2.0;
    EXPECT_THROW(SyntheticBackend{bad}, ConfigError);
}

// ---------------------------------------------------------------------------
// KeyGenerator
// ---------------------------------------------------------------------------

TEST(KeyGenerator, StreamIsDeterministic)
{
    WorkloadMix mix;
    mix.numKeys = 1024;
    KeyGenerator a(mix, 7), b(mix, 7);
    for (int i = 0; i < 1000; ++i) {
        const Op oa = a.next();
        const Op ob = b.next();
        EXPECT_EQ(oa.key, ob.key);
        EXPECT_EQ(oa.write, ob.write);
        EXPECT_LT(oa.key, mix.numKeys);
    }
}

TEST(KeyGenerator, KeySequenceInvariantAcrossWriteFractions)
{
    WorkloadMix reads;
    reads.numKeys = 1024;
    reads.writeFraction = 0.0;
    WorkloadMix writes = reads;
    writes.writeFraction = 0.5;
    KeyGenerator a(reads, 7), b(writes, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next().key, b.next().key);
}

TEST(KeyGenerator, ZipfianIsSkewed)
{
    WorkloadMix mix;
    mix.dist = KeyDist::Zipfian;
    mix.numKeys = 10000;
    KeyGenerator gen(mix, 3);
    std::map<Addr, int> counts;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().key];
    int top = 0;
    for (const auto &[key, count] : counts)
        top = std::max(top, count);
    // The hottest key draws far more than the uniform share (2 of
    // 20000); theta=0.99 gives it roughly 1/zeta(n) ~ 10%.
    EXPECT_GT(top, n / 100);
}

TEST(KeyGenerator, HotspotConcentratesAccesses)
{
    WorkloadMix mix;
    mix.dist = KeyDist::Hotspot;
    mix.numKeys = 10000;
    mix.hotFraction = 0.1;
    mix.hotProbability = 0.9;
    KeyGenerator gen(mix, 3);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hot += gen.next().key < 1000;
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.9, 0.02);
}

TEST(KeyGenerator, ScanSweepsAndWraps)
{
    WorkloadMix mix;
    mix.dist = KeyDist::Scan;
    mix.numKeys = 100;
    KeyGenerator gen(mix, 3);
    for (int round = 0; round < 3; ++round)
        for (Addr expect = 0; expect < 100; ++expect)
            EXPECT_EQ(gen.next().key, expect);
}

TEST(KeyGenerator, RejectsBadMix)
{
    WorkloadMix mix;
    mix.numKeys = 0;
    EXPECT_THROW(KeyGenerator(mix, 1), ConfigError);
    mix = WorkloadMix{};
    mix.zipfTheta = 1.0;
    EXPECT_THROW(KeyGenerator(mix, 1), ConfigError);
    mix = WorkloadMix{};
    mix.writeFraction = -0.5;
    EXPECT_THROW(KeyGenerator(mix, 1), ConfigError);
    mix = WorkloadMix{};
    mix.dist = KeyDist::Hotspot;
    mix.hotFraction = 0.0;
    EXPECT_THROW(KeyGenerator(mix, 1), ConfigError);
    EXPECT_THROW(parseKeyDist("pareto"), ConfigError);
    EXPECT_EQ(parseKeyDist("ZIPFIAN"), KeyDist::Zipfian);
}

// ---------------------------------------------------------------------------
// CacheService
// ---------------------------------------------------------------------------

TEST(CacheService, RejectsBadConfig)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    ServeConfig config = smallServeConfig(PolicyKind::Lru);
    config.shards = 3; // not a power of two
    EXPECT_THROW(CacheService(config, backend), ConfigError);
    config = smallServeConfig(PolicyKind::Opt);
    EXPECT_THROW(CacheService(config, backend), ConfigError);
    config = smallServeConfig(PolicyKind::Lru);
    config.ewmaAlpha = 0.0;
    EXPECT_THROW(CacheService(config, backend), ConfigError);
    config = smallServeConfig(PolicyKind::Lru);
    config.assoc = 3; // CacheGeometry rejects non-pow2 assoc
    EXPECT_THROW(CacheService(config, backend), CacheGeometryError);
}

TEST(CacheService, RejectsBadStripeCounts)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    ServeConfig config = smallServeConfig(PolicyKind::Lru);
    config.stripes = 3; // not a power of two
    EXPECT_THROW(CacheService(config, backend), ConfigError);
    // smallServeConfig has 64 sets per shard; more stripes than sets
    // would leave stripes without a single set.
    config = smallServeConfig(PolicyKind::Lru);
    config.stripes = 128;
    EXPECT_THROW(CacheService(config, backend), ConfigError);
    // The boundary case -- one set per stripe -- is legal.
    config = smallServeConfig(PolicyKind::Lru);
    config.stripes = 64;
    CacheService service(config, backend);
    EXPECT_EQ(service.numStripes(), 64u);
    service.checkInvariants();
}

TEST(CacheService, AutoStripesResolveToAPowerOfTwo)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    ServeConfig config = smallServeConfig(PolicyKind::Lru);
    config.stripes = kStripesAuto;
    CacheService service(config, backend);
    const unsigned stripes = service.numStripes();
    EXPECT_GE(stripes, 1u);
    EXPECT_EQ(stripes & (stripes - 1), 0u);
}

TEST(CacheService, RequireHitPathValidatesWithAcceptedValues)
{
    EXPECT_EQ(requireHitPath("locked"), HitPath::Locked);
    EXPECT_EQ(requireHitPath("seqlock"), HitPath::Seqlock);
    try {
        requireHitPath("optimistic");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &err) {
        // The message must list the accepted values.
        EXPECT_NE(std::string(err.what()).find("locked seqlock"),
                  std::string::npos)
            << err.what();
    }
}

TEST(CacheService, RequireStripesValidatesWithAcceptedValues)
{
    EXPECT_EQ(requireStripes("auto"), kStripesAuto);
    EXPECT_EQ(requireStripes("0"), kStripesAuto);
    EXPECT_EQ(requireStripes("1"), 1u);
    EXPECT_EQ(requireStripes("8"), 8u);
    for (const char *bad : {"3", "4x", "", "-4", "99999999999999"}) {
        try {
            requireStripes(bad);
            FAIL() << "expected ConfigError for '" << bad << "'";
        } catch (const ConfigError &err) {
            EXPECT_NE(std::string(err.what()).find("power of two"),
                      std::string::npos)
                << err.what();
        }
    }
}

TEST(CacheService, ReadAfterWriteHitsAndReturnsTheValue)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(smallServeConfig(PolicyKind::Acl), backend);

    const ServeOpResult put = service.put(42, 1234);
    EXPECT_FALSE(put.hit); // write-allocate of a cold key
    EXPECT_GT(put.backendNs, 0.0);

    const ServeOpResult get = service.get(42);
    EXPECT_TRUE(get.hit);
    EXPECT_EQ(get.value, 1234u);

    const ServeOpResult put2 = service.put(42, 5678);
    EXPECT_TRUE(put2.hit); // resident now
    EXPECT_EQ(service.get(42).value, 5678u);

    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.gets, 2u);
    EXPECT_EQ(totals.hits, 2u);
    EXPECT_EQ(totals.stores, 2u);
    EXPECT_EQ(totals.storeHits, 1u);
    service.checkInvariants();
}

TEST(CacheService, MissFetchesTheBackendValue)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(smallServeConfig(PolicyKind::Lru), backend);
    const ServeOpResult get = service.get(7);
    EXPECT_FALSE(get.hit);
    EXPECT_EQ(get.value, backend.valueOf(7));
    EXPECT_GT(get.backendNs, 0.0);
    EXPECT_TRUE(service.get(7).hit);
    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.misses, 1u);
    EXPECT_EQ(totals.missCostNs, get.backendNs);
}

TEST(CacheService, ShardOfIsStableAndInRange)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(smallServeConfig(PolicyKind::Lru), backend);
    for (Addr key = 0; key < 1000; ++key) {
        const unsigned shard = service.shardOf(key);
        EXPECT_LT(shard, service.numShards());
        EXPECT_EQ(shard, service.shardOf(key));
    }
}

// ---------------------------------------------------------------------------
// Load harness: the determinism contract
// ---------------------------------------------------------------------------

TEST(LoadHarness, TotalsAreWorkerCountInvariantUnderShardAffinity)
{
    for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Acl}) {
        std::vector<ServeTotals> totals;
        for (unsigned workers : {1u, 8u}) {
            SyntheticBackend backend(SyntheticBackendConfig{});
            CacheService service(smallServeConfig(kind), backend);
            const HarnessResult result = runLoad(
                service, smallHarnessConfig(50'000, workers));
            EXPECT_EQ(result.totals.gets + result.totals.stores,
                      50'000u);
            service.checkInvariants();
            totals.push_back(result.totals);
        }
        EXPECT_TRUE(totalsEqual(totals[0], totals[1]))
            << "policy #" << static_cast<int>(kind)
            << ": workers=1 vs workers=8 diverged";
    }
}

TEST(LoadHarness, TotalsAreWorkerCountInvariantUnderStriping)
{
    // The striping determinism contract: under shard affinity a
    // shard's stripes are only ever touched by its owning worker, so
    // the totals cannot depend on how many workers exist -- at any
    // stripe count.
    for (PolicyKind kind : {PolicyKind::Lru, PolicyKind::Acl}) {
        std::vector<ServeTotals> totals;
        for (unsigned workers : {1u, 8u}) {
            SyntheticBackend backend(SyntheticBackendConfig{});
            ServeConfig config = smallServeConfig(kind);
            config.stripes = 4;
            CacheService service(config, backend);
            const HarnessResult result = runLoad(
                service, smallHarnessConfig(50'000, workers));
            service.checkInvariants();
            totals.push_back(result.totals);
        }
        EXPECT_TRUE(totalsEqual(totals[0], totals[1]))
            << "policy #" << static_cast<int>(kind)
            << ": workers=1 vs workers=8 diverged at stripes=4";
    }
}

TEST(LoadHarness, SeedChangesTheRun)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService a(smallServeConfig(PolicyKind::Lru), backend);
    HarnessConfig config = smallHarnessConfig(20'000, 2);
    const HarnessResult ra = runLoad(a, config);

    SyntheticBackend backend2(SyntheticBackendConfig{});
    CacheService b(smallServeConfig(PolicyKind::Lru), backend2);
    config.seed = 100;
    const HarnessResult rb = runLoad(b, config);
    EXPECT_FALSE(totalsEqual(ra.totals, rb.totals));
}

TEST(LoadHarness, FreeAffinityStillServesEveryOp)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(smallServeConfig(PolicyKind::Dcl), backend);
    HarnessConfig config = smallHarnessConfig(20'000, 4);
    config.shardAffinity = false;
    const HarnessResult result = runLoad(service, config);
    EXPECT_EQ(result.totals.gets + result.totals.stores, 20'000u);
    EXPECT_EQ(result.opLatencyNs.totalCount(), 20'000u);
    service.checkInvariants();
}

TEST(LoadHarness, JsonOutputIsValid)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(smallServeConfig(PolicyKind::Bcl), backend);
    const HarnessResult result =
        runLoad(service, smallHarnessConfig(5'000, 2));
    std::ostringstream os;
    result.writeJsonObject(os, service.policyName(), "zipf-test");
    JsonValidator validator(os.str());
    EXPECT_TRUE(validator.valid()) << os.str();
    EXPECT_NE(os.str().find("\"missCostNs\""), std::string::npos);
}

TEST(LoadHarness, RejectsBadConfig)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(smallServeConfig(PolicyKind::Lru), backend);
    HarnessConfig config = smallHarnessConfig(100, 1);
    config.histBuckets = 0;
    EXPECT_THROW(runLoad(service, config), ConfigError);
    config = smallHarnessConfig(100, 1);
    config.targetQps = -1.0;
    EXPECT_THROW(runLoad(service, config), ConfigError);
}

// ---------------------------------------------------------------------------
// Telemetry from serve worker threads
// ---------------------------------------------------------------------------

#if !defined(CSR_TELEMETRY_DISABLED)

TEST(ServeTelemetry, ConcurrentWorkersProduceBalancedValidTrace)
{
    telemetry::Tracer::instance().clear();
    telemetry::setTracingEnabled(true);
    {
        SyntheticBackend backend(SyntheticBackendConfig{});
        CacheService service(smallServeConfig(PolicyKind::Acl),
                             backend);
        runLoad(service, smallHarnessConfig(20'000, 8));
    }
    telemetry::setTracingEnabled(false);

    std::size_t begins = 0, ends = 0;
    for (const telemetry::TraceEvent &ev :
         telemetry::Tracer::instance().snapshot()) {
        begins += ev.phase == 'B';
        ends += ev.phase == 'E';
    }
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends); // every span closed, on every thread

    std::ostringstream os;
    telemetry::Tracer::instance().writeChromeTrace(os);
    JsonValidator validator(os.str());
    EXPECT_TRUE(validator.valid());
    telemetry::Tracer::instance().clear();
}

#endif // !CSR_TELEMETRY_DISABLED

TEST(ServeTelemetry, ConcurrentMetricExportIsValidJson)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(smallServeConfig(PolicyKind::Dcl), backend);
    const HarnessResult result =
        runLoad(service, smallHarnessConfig(20'000, 8));

    MetricRegistry registry;
    service.exportMetrics(registry);
    result.exportMetrics(registry);
    EXPECT_EQ(registry.counter("serve.gets") +
                  registry.counter("serve.stores"),
              20'000u);

    std::ostringstream os;
    registry.writeJson(os);
    JsonValidator validator(os.str());
    EXPECT_TRUE(validator.valid()) << os.str();
    EXPECT_NE(os.str().find("serve.op_latency_ns"), std::string::npos);
    // The two fallback flavors are reported apart: a saturated access
    // log is a sizing signal, a beaten retry budget a contention one.
    EXPECT_NE(os.str().find("serve.locked_fallbacks"),
              std::string::npos);
    EXPECT_NE(os.str().find("serve.log_full_fallbacks"),
              std::string::npos);
    EXPECT_NE(os.str().find("serve.stripes"), std::string::npos);
}
