/**
 * @file
 * Tests for the stack-distance profiler, including the calibration
 * property the reproduction rests on: every benchmark's remote class
 * must carry mass in the "reservation band" (per-set distances just
 * past the 4-way associativity).
 */

#include <gtest/gtest.h>

#include "trace/StackDistance.h"
#include "trace/WorkloadFactory.h"

namespace csr
{
namespace
{

/** Build a trace from explicit sampled-processor accesses. */
SampledTrace
traceOf(const std::vector<Addr> &byte_addrs,
        const std::vector<std::pair<Addr, ProcId>> &homes = {})
{
    SampledTrace trace;
    trace.sampledProc = 0;
    for (Addr addr : byte_addrs)
        trace.records.push_back({addr, 0, false});
    for (auto [block, home] : homes)
        trace.homeOf[block] = home;
    for (Addr addr : byte_addrs)
        trace.homeOf.try_emplace(addr / 64, 0);
    return trace;
}

TEST(StackDistance, ColdThenImmediateReuse)
{
    // Two accesses to one block: one cold miss, one distance-1 hit.
    const CacheGeometry geom(1024, 4, 64);
    const SampledTrace trace = traceOf({0x40, 0x40});
    const StackDistanceReport report =
        profileStackDistances(trace, geom);
    EXPECT_EQ(report.local.total, 2u);
    EXPECT_EQ(report.local.coldMisses, 1u);
    EXPECT_EQ(report.local.byDistance[0], 1u);
}

TEST(StackDistance, DistanceCountsInterveningDistinctBlocks)
{
    // A, B, C, A in one set: A's reuse distance is 3.
    const CacheGeometry geom(64 * 4, 4, 64); // 1 set... 4 ways
    const Addr stride = geom.numSets() * 64;
    const SampledTrace trace =
        traceOf({0, stride, 2 * stride, 0});
    const StackDistanceReport report =
        profileStackDistances(trace, geom);
    EXPECT_EQ(report.local.byDistance[2], 1u); // distance 3
}

TEST(StackDistance, InvalidationForcesColdMiss)
{
    const CacheGeometry geom(1024, 4, 64);
    SampledTrace trace = traceOf({0x40});
    trace.records.push_back({0x40, 3, true}); // remote write
    trace.records.push_back({0x40, 0, false});
    const StackDistanceReport report =
        profileStackDistances(trace, geom);
    EXPECT_EQ(report.local.total, 2u);
    EXPECT_EQ(report.local.coldMisses, 2u);
}

TEST(StackDistance, RemoteClassSplitsByHome)
{
    const CacheGeometry geom(1024, 4, 64);
    const SampledTrace trace =
        traceOf({0x40, 0x80, 0x40, 0x80},
                {{1, 0}, {2, 7}}); // block 2 remote
    const StackDistanceReport report =
        profileStackDistances(trace, geom);
    EXPECT_EQ(report.local.total, 2u);
    EXPECT_EQ(report.remote.total, 2u);
}

TEST(StackDistance, HitFractionMatchesLruSimulation)
{
    // For an s-way LRU set, accesses at distance <= s hit; the
    // profiler's hitFraction must agree with that identity.
    const CacheGeometry geom(2048, 4, 64);
    auto workload = makeWorkload(BenchmarkId::Lu, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const StackDistanceReport report =
        profileStackDistances(trace, geom);
    const double hits = report.local.hitFraction(4);
    EXPECT_GT(hits, 0.0);
    EXPECT_LT(hits, 1.0);
}

TEST(StackDistance, EveryBenchmarkHasRemoteBandMass)
{
    // The calibration property: reservations need remote reuse at
    // per-set distances 5..12 under the paper's 16KB 4-way geometry.
    const CacheGeometry geom(16 * 1024, 4, 64);
    for (BenchmarkId id : paperBenchmarks()) {
        auto workload = makeWorkload(id, WorkloadScale::Test);
        const SampledTrace trace = buildSampledTrace(*workload, 1);
        const StackDistanceReport report =
            profileStackDistances(trace, geom);
        EXPECT_GT(report.remote.fractionInBand(5, 12), 0.01)
            << benchmarkName(id)
            << ": no remote reuse in the reservation band";
    }
}

} // namespace
} // namespace csr
