/**
 * @file
 * Tests of the serving layer's concurrency machinery (ISSUE PR 6):
 * the seqlock hit path never serves a torn read, the deferred access
 * log makes the locked and seqlock end states coincide at one worker,
 * and a miss stampede on one key coalesces onto a single backend
 * fetch while every requester's EWMA still sees a sample.
 *
 * Suite names contain "Serve" so the CI TSan job's ctest regex picks
 * every one of these up; the torn-read and stampede tests are the
 * ones TSan is pointed at.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/SimdScan.h"
#include "robust/Errors.h"
#include "serve/CacheService.h"
#include "serve/LoadHarness.h"
#include "serve/SyntheticBackend.h"
#include "util/Random.h"

using namespace csr;
using namespace csr::serve;

namespace
{

/** One-shard service with far fewer lines than the keyspace, so gets
 *  churn the tag/value lanes while readers probe them. */
ServeConfig
churnConfig(PolicyKind policy, HitPath path)
{
    ServeConfig config;
    config.shards = 1;
    config.shardBytes = 4 * 1024; // 64 lines
    config.assoc = 8;
    config.policy = policy;
    config.hitPath = path;
    return config;
}

/** The deterministic payload a put() writes in these tests. */
std::uint64_t
putPayload(Addr key)
{
    return hashMix64(key ^ 0xC0FFEEull);
}

/**
 * A backend whose fetches block until release(): lets a test park N
 * threads on one cold key and then prove only one fetch ever ran.
 */
class GateBackend : public Backend
{
  public:
    BackendResult
    fetch(Addr key, std::uint64_t) override
    {
        fetches.fetch_add(1, std::memory_order_relaxed);
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return released_; });
        BackendResult result;
        result.value = valueOf(key);
        result.latencyNs = 5000.0;
        return result;
    }

    BackendResult
    store(Addr, std::uint64_t value, std::uint64_t) override
    {
        BackendResult result;
        result.value = value;
        result.latencyNs = 1000.0;
        return result;
    }

    std::string describe() const override { return "gate"; }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            released_ = true;
        }
        cv_.notify_all();
    }

    static std::uint64_t valueOf(Addr key) { return hashMix64(key); }

    std::atomic<std::uint64_t> fetches{0};

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool released_ = false;
};

/**
 * GateBackend variant whose next gated fetch throws after release():
 * the leader-crash test needs a backend that fails exactly once and
 * then recovers.
 */
class CrashOnceBackend : public GateBackend
{
  public:
    BackendResult
    fetch(Addr key, std::uint64_t salt) override
    {
        const BackendResult result = GateBackend::fetch(key, salt);
        if (failNext_.exchange(false))
            throw InjectedFaultError("injected backend failure");
        return result;
    }

  private:
    std::atomic<bool> failNext_{true};
};

} // namespace

// ---------------------------------------------------------------------------
// SIMD tag scan
// ---------------------------------------------------------------------------

TEST(ServeSimdScan, MatchesScalarOnEveryMaskShape)
{
    // The dispatched kernel (AVX2 where the CPU has it) must agree
    // with the scalar reference bit for bit, including the unaligned
    // tail beyond a multiple of four ways.
    std::vector<std::uint64_t> tags;
    for (std::uint32_t count = 0; count <= 19; ++count) {
        tags.assign(count, 0);
        for (std::uint32_t i = 0; i < count; ++i)
            tags[i] = hashMix64(i) & 3; // force collisions
        for (std::uint64_t needle = 0; needle < 4; ++needle) {
            const std::uint64_t want =
                simd::tagEqMaskScalar(tags.data(), count, needle);
            const std::uint64_t got =
                simd::kTagEqMask(tags.data(), count, needle);
            EXPECT_EQ(want, got)
                << "count=" << count << " needle=" << needle
                << " isa=" << simd::tagScanIsa();
        }
    }
}

// ---------------------------------------------------------------------------
// Seqlock hit path
// ---------------------------------------------------------------------------

TEST(ServeSeqlock, ParseAndNameRoundTrip)
{
    EXPECT_EQ(parseHitPath("locked"), HitPath::Locked);
    EXPECT_EQ(parseHitPath("seqlock"), HitPath::Seqlock);
    EXPECT_FALSE(parseHitPath("optimistic").has_value());
    EXPECT_STREQ(hitPathName(HitPath::Locked), "locked");
    EXPECT_STREQ(hitPathName(HitPath::Seqlock), "seqlock");
}

TEST(ServeSeqlock, RejectsBadAccessLogCapacity)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    ServeConfig config = churnConfig(PolicyKind::Lru, HitPath::Seqlock);
    config.accessLogCapacity = 48; // not a power of two
    EXPECT_THROW(CacheService(config, backend), ConfigError);
    config.accessLogCapacity = 1;
    EXPECT_THROW(CacheService(config, backend), ConfigError);
}

/**
 * The torn-read detector.  The synthetic backend's value is a pure
 * function of the key, so if an optimistic reader ever pairs key A's
 * tag with key B's value -- a fill racing the probe -- the returned
 * value is provably wrong.  Keyspace >> capacity keeps the tag and
 * value lanes churning under the readers the whole time.
 */
TEST(ServeSeqlock, NeverServesATornReadUnderFillChurn)
{
    SyntheticBackendConfig backend_config;
    backend_config.seed = 17;
    SyntheticBackend backend(backend_config);
    CacheService service(churnConfig(PolicyKind::Lru, HitPath::Seqlock),
                         backend);

    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kOpsPerThread = 20000;
    constexpr Addr kKeys = 512; // 8x the line count
    std::atomic<std::uint64_t> wrong{0};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::uint64_t rng = hashMix64(t + 1);
            for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
                rng = hashMix64(rng);
                const Addr key = rng % kKeys;
                const ServeOpResult result = service.get(key);
                if (result.value != backend.valueOf(key))
                    wrong.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(wrong.load(), 0u);
    service.checkInvariants();

    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.gets, kThreads * kOpsPerThread);
    EXPECT_EQ(totals.gets, totals.hits + totals.misses);
    EXPECT_LE(totals.seqlockHits, totals.hits);
    EXPECT_EQ(totals.backendFetches + totals.coalescedMisses,
              totals.misses);
}

/**
 * Same detector with a writer in the mix: every observed value must
 * be either the backend's or the put payload -- never a mix of two
 * cache lines.
 */
TEST(ServeSeqlock, ValuesStayLegalUnderConcurrentPuts)
{
    SyntheticBackendConfig backend_config;
    backend_config.seed = 23;
    SyntheticBackend backend(backend_config);
    CacheService service(churnConfig(PolicyKind::Acl, HitPath::Seqlock),
                         backend);

    constexpr Addr kKeys = 256;
    constexpr std::uint64_t kOpsPerThread = 15000;
    std::atomic<std::uint64_t> illegal{0};

    std::thread writer([&] {
        std::uint64_t rng = 0x5EEDull;
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
            rng = hashMix64(rng);
            const Addr key = rng % kKeys;
            service.put(key, putPayload(key));
        }
    });
    std::vector<std::thread> readers;
    for (unsigned t = 0; t < 3; ++t) {
        readers.emplace_back([&, t] {
            std::uint64_t rng = hashMix64(t + 100);
            for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
                rng = hashMix64(rng);
                const Addr key = rng % kKeys;
                const std::uint64_t value = service.get(key).value;
                if (value != backend.valueOf(key) &&
                    value != putPayload(key))
                    illegal.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    writer.join();
    for (auto &thread : readers)
        thread.join();

    EXPECT_EQ(illegal.load(), 0u);
    service.checkInvariants();
}

/**
 * At one worker the deferred access log is drained before every
 * locked op, so the policy sees the exact access order the fully
 * locked path produces: identical hits, misses, evictions, and
 * bit-identical cost sums, for every policy.
 */
TEST(ServeSeqlock, EndStateMatchesLockedPathAtOneWorker)
{
    for (const PolicyKind policy :
         {PolicyKind::Lru, PolicyKind::GreedyDual, PolicyKind::Bcl,
          PolicyKind::Dcl, PolicyKind::Acl}) {
        HarnessConfig harness;
        harness.ops = 60000;
        harness.workers = 1;
        harness.seed = 99;
        harness.mix.numKeys = 8192;

        SyntheticBackendConfig backend_config;
        backend_config.seed = 7;

        ServeTotals totals[2];
        for (const HitPath path :
             {HitPath::Locked, HitPath::Seqlock}) {
            SyntheticBackend backend(backend_config);
            ServeConfig config = churnConfig(policy, path);
            config.shards = 4;
            config.shardBytes = 16 * 1024;
            CacheService service(config, backend);
            totals[path == HitPath::Seqlock] =
                runLoad(service, harness).totals;
            service.checkInvariants();
        }
        EXPECT_EQ(totals[0].gets, totals[1].gets);
        EXPECT_EQ(totals[0].hits, totals[1].hits);
        EXPECT_EQ(totals[0].misses, totals[1].misses);
        EXPECT_EQ(totals[0].storeHits, totals[1].storeHits);
        EXPECT_EQ(totals[0].evictions, totals[1].evictions);
        EXPECT_EQ(totals[0].trackedKeys, totals[1].trackedKeys);
        EXPECT_EQ(totals[0].missCostNs, totals[1].missCostNs);
        EXPECT_EQ(totals[0].storeCostNs, totals[1].storeCostNs);
        // The seqlock run must actually have exercised the lock-free
        // path, not fallen back throughout.
        EXPECT_EQ(totals[0].seqlockHits, 0u);
        EXPECT_GT(totals[1].seqlockHits, 0u);
    }
}

/**
 * A saturated access log is counted apart from contention fallbacks:
 * with a capacity-2 log and no locked op to drain it, every third
 * optimistic hit finds the log full, is re-served on the locked path
 * (draining it), and bumps logFullFallbacks -- while lockedFallbacks
 * (retry-budget exhaustion) stays zero on a single thread.
 */
TEST(ServeSeqlock, FullAccessLogIsCountedApartFromContention)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    ServeConfig config = churnConfig(PolicyKind::Lru, HitPath::Seqlock);
    config.accessLogCapacity = 2;
    CacheService service(config, backend);

    service.get(7); // install
    constexpr std::uint64_t kHits = 12;
    for (std::uint64_t i = 0; i < kHits; ++i)
        EXPECT_TRUE(service.get(7).hit);

    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.gets, kHits + 1);
    EXPECT_EQ(totals.hits, kHits);
    EXPECT_GT(totals.logFullFallbacks, 0u);
    EXPECT_EQ(totals.lockedFallbacks, 0u);
    // Every hit was either served lock-free or re-served locked after
    // a full-log fallback; the two tallies partition the hits.
    EXPECT_EQ(totals.seqlockHits + totals.logFullFallbacks,
              totals.hits);
    service.checkInvariants();
}

/**
 * The one-worker end-state equality holds inside a striped shard too:
 * stripes only partition the sets, so with the same drain points the
 * locked and seqlock paths still see identical access orders.
 */
TEST(ServeSeqlock, EndStateMatchesLockedPathAtOneWorkerWhenStriped)
{
    for (const PolicyKind policy :
         {PolicyKind::Lru, PolicyKind::Dcl, PolicyKind::Acl}) {
        HarnessConfig harness;
        harness.ops = 60000;
        harness.workers = 1;
        harness.seed = 99;
        harness.mix.numKeys = 8192;

        SyntheticBackendConfig backend_config;
        backend_config.seed = 7;

        ServeTotals totals[2];
        for (const HitPath path :
             {HitPath::Locked, HitPath::Seqlock}) {
            SyntheticBackend backend(backend_config);
            ServeConfig config = churnConfig(policy, path);
            config.shards = 4;
            config.shardBytes = 16 * 1024;
            config.stripes = 4;
            CacheService service(config, backend);
            totals[path == HitPath::Seqlock] =
                runLoad(service, harness).totals;
            service.checkInvariants();
        }
        EXPECT_EQ(totals[0].gets, totals[1].gets);
        EXPECT_EQ(totals[0].hits, totals[1].hits);
        EXPECT_EQ(totals[0].misses, totals[1].misses);
        EXPECT_EQ(totals[0].storeHits, totals[1].storeHits);
        EXPECT_EQ(totals[0].evictions, totals[1].evictions);
        EXPECT_EQ(totals[0].trackedKeys, totals[1].trackedKeys);
        EXPECT_EQ(totals[0].missCostNs, totals[1].missCostNs);
        EXPECT_EQ(totals[0].storeCostNs, totals[1].storeCostNs);
        EXPECT_GT(totals[1].seqlockHits, 0u);
    }
}

TEST(ServeSeqlock, FreeAffinityHarnessRunValidatesClean)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    ServeConfig config = churnConfig(PolicyKind::Acl, HitPath::Seqlock);
    config.shards = 4;
    CacheService service(config, backend);

    HarnessConfig harness;
    harness.ops = 40000;
    harness.workers = 4;
    harness.seed = 5;
    harness.shardAffinity = false; // real contention
    harness.mix.numKeys = 4096;

    const HarnessResult result = runLoad(service, harness);
    service.checkInvariants();
    EXPECT_EQ(result.totals.gets,
              result.totals.hits + result.totals.misses);
    EXPECT_EQ(result.totals.backendFetches +
                  result.totals.coalescedMisses,
              result.totals.misses);
}

// ---------------------------------------------------------------------------
// Single-flight miss coalescing
// ---------------------------------------------------------------------------

/**
 * The stampede test: N threads miss on one cold key while the
 * backend's gate is shut.  Exactly one fetch may run; everyone gets
 * the value; every requester's EWMA records a sample.
 */
TEST(ServeSingleFlight, StampedeOnOneKeyCoalescesToOneFetch)
{
    GateBackend backend;
    CacheService service(churnConfig(PolicyKind::Lru, HitPath::Seqlock),
                         backend);

    constexpr unsigned kThreads = 8;
    constexpr Addr kKey = 42;
    std::atomic<unsigned> wrongValues{0};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            const ServeOpResult result = service.get(kKey);
            if (result.hit ||
                result.value != GateBackend::valueOf(kKey))
                wrongValues.fetch_add(1, std::memory_order_relaxed);
        });
    }

    // Wait until the other N-1 threads have parked on the leader's
    // in-flight entry, then open the gate.
    while (service.totals().coalescedMisses + 1 < kThreads)
        std::this_thread::yield();
    backend.release();
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(wrongValues.load(), 0u);
    EXPECT_EQ(backend.fetches.load(), 1u);

    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.misses, kThreads);
    EXPECT_EQ(totals.backendFetches, 1u);
    EXPECT_EQ(totals.coalescedMisses, kThreads - 1);
    // One observation per requester: the cost signal is not starved
    // by the coalescing.
    EXPECT_EQ(service.keySamples(kKey), kThreads);
    // Each requester was charged the leader's measured latency.
    EXPECT_EQ(totals.missCostNs, 5000.0 * kThreads);

    // The key is now resident: a subsequent get is a pure hit.
    const ServeOpResult again = service.get(kKey);
    EXPECT_TRUE(again.hit);
    EXPECT_EQ(again.value, GateBackend::valueOf(kKey));
    service.checkInvariants();
}

/**
 * Leader crash path: the backend throws out of the single-flight
 * leader's fetch.  Every parked waiter must be woken with that error
 * -- not left on the condition variable forever -- and the in-flight
 * entry must be retired first, so the next get() elects a fresh
 * leader and the service keeps working.
 */
TEST(ServeSingleFlight, LeaderCrashWakesWaitersWithTheError)
{
    CrashOnceBackend backend;
    CacheService service(churnConfig(PolicyKind::Lru, HitPath::Seqlock),
                         backend);

    constexpr unsigned kThreads = 6;
    constexpr Addr kKey = 42;
    std::atomic<unsigned> failed{0};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            try {
                service.get(kKey);
            } catch (const InjectedFaultError &) {
                failed.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // Park the other N-1 threads on the leader's in-flight entry,
    // then open the gate and let the leader's fetch throw.
    while (service.totals().coalescedMisses + 1 < kThreads)
        std::this_thread::yield();
    backend.release();
    for (auto &thread : threads)
        thread.join();

    // The leader rethrows its own error; every waiter gets the same
    // one from awaitFetch.  Nobody deadlocks, nobody fabricates a
    // value.
    EXPECT_EQ(failed.load(), kThreads);
    EXPECT_EQ(backend.fetches.load(), 1u);

    // The crashed flight was erased: the retry elects a fresh leader
    // and the (now recovered) backend serves it.
    const ServeOpResult retry = service.get(kKey);
    EXPECT_FALSE(retry.hit);
    EXPECT_EQ(retry.value, GateBackend::valueOf(kKey));
    EXPECT_EQ(backend.fetches.load(), 2u);

    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.misses, kThreads + 1u);
    EXPECT_EQ(totals.coalescedMisses, kThreads - 1u);
    // Only the successful fetch is counted (and only it feeds the
    // cost signal): the crashed one produced no sample.
    EXPECT_EQ(totals.backendFetches, 1u);
    EXPECT_EQ(service.keySamples(kKey), 1u);
    EXPECT_TRUE(service.get(kKey).hit);
    service.checkInvariants();
}

/**
 * Striping must not break single-flight: the stampede test again,
 * with the shard split into 4 stripes (the cold key lives in exactly
 * one of them, whose in-flight table does the coalescing).
 */
TEST(ServeSingleFlight, StripedStampedeStillCoalescesToOneFetch)
{
    GateBackend backend;
    ServeConfig config = churnConfig(PolicyKind::Acl, HitPath::Seqlock);
    config.stripes = 4;
    CacheService service(config, backend);

    constexpr unsigned kThreads = 8;
    constexpr Addr kKey = 42;
    std::atomic<unsigned> wrongValues{0};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            const ServeOpResult result = service.get(kKey);
            if (result.hit ||
                result.value != GateBackend::valueOf(kKey))
                wrongValues.fetch_add(1, std::memory_order_relaxed);
        });
    }
    while (service.totals().coalescedMisses + 1 < kThreads)
        std::this_thread::yield();
    backend.release();
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(wrongValues.load(), 0u);
    EXPECT_EQ(backend.fetches.load(), 1u);
    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.misses, kThreads);
    EXPECT_EQ(totals.backendFetches, 1u);
    EXPECT_EQ(totals.coalescedMisses, kThreads - 1);
    EXPECT_EQ(service.keySamples(kKey), kThreads);
    service.checkInvariants();
}

TEST(ServeSingleFlight, LockedPathCountsOneFetchPerMiss)
{
    SyntheticBackend backend(SyntheticBackendConfig{});
    CacheService service(churnConfig(PolicyKind::Lru, HitPath::Locked),
                         backend);
    for (Addr key = 0; key < 200; ++key)
        service.get(key);
    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.backendFetches, totals.misses);
    EXPECT_EQ(totals.coalescedMisses, 0u);
    EXPECT_EQ(totals.seqlockHits, 0u);
    EXPECT_EQ(totals.lockedFallbacks, 0u);
}
