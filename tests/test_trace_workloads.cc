/**
 * @file
 * Tests for the synthetic SPLASH-2-like workload generators, the
 * sampled-trace builder (Section 3.1 methodology) and trace I/O.
 *
 * The generators' calibration targets are Table 1's remote-access
 * fractions: Barnes 44.8%, LU 19.1%, Ocean 7.4%, Raytrace 29.6%.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "trace/BarnesWorkload.h"
#include "trace/LuWorkload.h"
#include "trace/OceanWorkload.h"
#include "trace/RaytraceWorkload.h"
#include "trace/SampledTrace.h"
#include "trace/TraceIO.h"
#include "trace/WorkloadFactory.h"

namespace csr
{
namespace
{

std::vector<MemAccess>
firstN(const SyntheticWorkload &wl, ProcId p, std::size_t n)
{
    auto stream = wl.procStream(p);
    std::vector<MemAccess> out;
    MemAccess acc;
    while (out.size() < n && stream->next(acc))
        out.push_back(acc);
    return out;
}

class WorkloadBasics : public ::testing::TestWithParam<BenchmarkId>
{
};

TEST_P(WorkloadBasics, StreamsAreDeterministic)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    const auto a = firstN(*wl, 0, 5000);
    const auto b = firstN(*wl, 0, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr, b[i].addr) << "at " << i;
        ASSERT_EQ(a[i].write, b[i].write) << "at " << i;
    }
}

TEST_P(WorkloadBasics, DifferentProcsDiffer)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    const auto a = firstN(*wl, 0, 2000);
    const auto b = firstN(*wl, 1, 2000);
    std::size_t same = 0;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        same += a[i].addr == b[i].addr ? 1 : 0;
    EXPECT_LT(same, n); // not identical streams
}

TEST_P(WorkloadBasics, AddressesAreBlockAligned)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    for (const auto &acc : firstN(*wl, 0, 5000))
        EXPECT_EQ(acc.addr % 64, 0u);
}

TEST_P(WorkloadBasics, ContainsReadsAndWrites)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    bool saw_read = false, saw_write = false;
    for (const auto &acc : firstN(*wl, 0, 20000)) {
        saw_read |= !acc.write;
        saw_write |= acc.write;
    }
    EXPECT_TRUE(saw_read);
    EXPECT_TRUE(saw_write);
}

TEST_P(WorkloadBasics, RespectsReferenceCap)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    auto stream = wl->procStream(0);
    MemAccess acc;
    std::uint64_t count = 0;
    while (stream->next(acc))
        ++count;
    EXPECT_LE(count, 20000u); // Test-scale cap
    EXPECT_GT(count, 1000u);  // but substantial
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadBasics,
                         ::testing::ValuesIn(paperBenchmarks()),
                         [](const auto &info) {
                             return benchmarkName(info.param);
                         });

// ---------------------------------------------------------------------------
// Sampled trace construction
// ---------------------------------------------------------------------------

class SampledTraceTest : public ::testing::TestWithParam<BenchmarkId>
{
};

TEST_P(SampledTraceTest, ContainsOnlySampledAccessesAndRemoteWrites)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    const ProcId sampled = 1;
    const SampledTrace trace = buildSampledTrace(*wl, sampled);
    ASSERT_FALSE(trace.records.empty());
    for (const auto &rec : trace.records) {
        if (rec.proc != sampled) {
            ASSERT_TRUE(rec.write) << "remote read leaked into trace";
        }
    }
}

TEST_P(SampledTraceTest, EveryBlockHasAHome)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*wl, 1);
    for (const auto &rec : trace.records) {
        ASSERT_TRUE(trace.homeOf.count(trace.blockOf(rec)))
            << "block without first-touch home";
    }
}

TEST_P(SampledTraceTest, SampledRefCountMatchesBudget)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*wl, 1);
    // Test scale budgets 20000 refs per proc (LU may finish early).
    EXPECT_LE(trace.sampledRefs, 20000u);
    EXPECT_GE(trace.sampledRefs, 5000u);
}

TEST_P(SampledTraceTest, DeterministicAcrossBuilds)
{
    auto wl = makeWorkload(GetParam(), WorkloadScale::Test);
    const SampledTrace a = buildSampledTrace(*wl, 1);
    const SampledTrace b = buildSampledTrace(*wl, 1);
    ASSERT_EQ(a.records.size(), b.records.size());
    EXPECT_TRUE(std::equal(a.records.begin(), a.records.end(),
                           b.records.begin()));
    EXPECT_EQ(a.remoteAccessFraction, b.remoteAccessFraction);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SampledTraceTest,
                         ::testing::ValuesIn(paperBenchmarks()),
                         [](const auto &info) {
                             return benchmarkName(info.param);
                         });

// ---------------------------------------------------------------------------
// Table 1 calibration: remote-access fractions under first touch
// ---------------------------------------------------------------------------

struct RemoteTarget
{
    BenchmarkId id;
    double paperFraction;
};

class RemoteFraction : public ::testing::TestWithParam<RemoteTarget>
{
};

TEST_P(RemoteFraction, MatchesTable1Target)
{
    // Calibration is asserted at the bench (Small) scale; the tiny
    // Test-scale problems distort band/chunk boundary ratios.
    auto wl = makeWorkload(GetParam().id, WorkloadScale::Small);
    const SampledTrace trace = buildSampledTrace(*wl, 1);
    EXPECT_NEAR(trace.remoteAccessFraction, GetParam().paperFraction, 0.04)
        << benchmarkName(GetParam().id);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, RemoteFraction,
    ::testing::Values(RemoteTarget{BenchmarkId::Barnes, 0.448},
                      RemoteTarget{BenchmarkId::Lu, 0.191},
                      RemoteTarget{BenchmarkId::Ocean, 0.074},
                      RemoteTarget{BenchmarkId::Raytrace, 0.296}),
    [](const auto &info) { return benchmarkName(info.param.id); });

// ---------------------------------------------------------------------------
// Structural expectations per benchmark
// ---------------------------------------------------------------------------

TEST(Barnes, OwnershipIsChunkedCyclic)
{
    BarnesWorkload wl;
    const auto &p = wl.params();
    EXPECT_EQ(wl.ownerOfBody(0), 0u);
    EXPECT_EQ(wl.ownerOfBody(p.chunkBodies - 1), 0u);
    EXPECT_EQ(wl.ownerOfBody(p.chunkBodies), 1u);
    EXPECT_EQ(wl.ownerOfBody(p.chunkBodies * p.numProcs), 0u);
}

TEST(Lu, OwnerGridIsTwoDScatter)
{
    LuWorkload wl;
    EXPECT_EQ(wl.ownerOf(0, 0), 0u);
    EXPECT_EQ(wl.ownerOf(0, 1), 1u);
    EXPECT_EQ(wl.ownerOf(1, 0), 2u);
    EXPECT_EQ(wl.ownerOf(4, 2), 0u); // wraps at (4,2)
    EXPECT_EQ(wl.memoryBytes(), 2u * 1024 * 1024); // paper: 2.0 MB
}

TEST(Lu, NaturalTerminationWithoutCap)
{
    LuParams p;
    p.matrixDim = 64; // tiny: 4x4 submatrices
    p.targetRefsPerProc = 0;
    LuWorkload wl(p);
    for (ProcId proc = 0; proc < wl.numProcs(); ++proc) {
        auto stream = wl.procStream(proc);
        MemAccess acc;
        std::uint64_t n = 0;
        while (stream->next(acc)) {
            ++n;
            ASSERT_LT(n, 10000000u) << "stream did not terminate";
        }
        EXPECT_GT(n, 0u);
    }
}

TEST(Ocean, BandPartitionCoversInteriorRows)
{
    OceanWorkload wl;
    const auto &p = wl.params();
    std::uint32_t covered = 0;
    for (ProcId q = 0; q < p.numProcs; ++q) {
        EXPECT_EQ(wl.firstRowOf(q), 1 + covered);
        covered += wl.rowsOf(q);
    }
    EXPECT_EQ(covered, p.gridDim - 2);
}

TEST(Ocean, FootprintFarExceedsL2)
{
    OceanWorkload wl;
    EXPECT_GT(wl.memoryBytes(), 64u * 16 * 1024); // >> 16 KB L2
}

TEST(Raytrace, SceneDominatesFootprint)
{
    RaytraceWorkload wl;
    EXPECT_GT(wl.memoryBytes(), 4u * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// Trace I/O
// ---------------------------------------------------------------------------

TEST(TraceIO, BinaryRoundTrip)
{
    std::vector<TraceRecord> records = {
        {0x1000, 0, false},
        {0x2040, 3, true},
        {0xFFFFFFFFFFC0ull, 15, false},
    };
    std::stringstream ss;
    writeTraceBinary(ss, records);
    const auto back = readTraceBinary(ss);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(back[i], records[i]) << "record " << i;
}

TEST(TraceIO, TextRoundTrip)
{
    std::vector<TraceRecord> records = {
        {0x1000, 0, false},
        {0x2040, 3, true},
    };
    std::stringstream ss;
    writeTraceText(ss, records);
    const auto back = readTraceText(ss);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(back[i], records[i]);
}

TEST(TraceIO, TextSkipsCommentsAndBlankLines)
{
    std::stringstream ss("# comment\n\nR 2 1000\n");
    const auto back = readTraceText(ss);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].addr, 0x1000u);
    EXPECT_EQ(back[0].proc, 2);
    EXPECT_FALSE(back[0].write);
}

TEST(TraceIO, BinaryRoundTripOfGeneratedTrace)
{
    auto wl = makeWorkload(BenchmarkId::Barnes, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*wl, 1);
    std::stringstream ss;
    writeTraceBinary(ss, trace.records);
    const auto back = readTraceBinary(ss);
    ASSERT_EQ(back.size(), trace.records.size());
    EXPECT_TRUE(std::equal(back.begin(), back.end(),
                           trace.records.begin()));
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(WorkloadFactory, ParseNames)
{
    EXPECT_EQ(parseBenchmark("barnes"), BenchmarkId::Barnes);
    EXPECT_EQ(parseBenchmark("LU"), BenchmarkId::Lu);
    EXPECT_EQ(parseBenchmark("Ocean"), BenchmarkId::Ocean);
    EXPECT_EQ(parseBenchmark("RAYTRACE"), BenchmarkId::Raytrace);
}

TEST(WorkloadFactory, ProcessorCountsMatchTable1)
{
    EXPECT_EQ(makeWorkload(BenchmarkId::Barnes, WorkloadScale::Test)
                  ->numProcs(), 8u);
    EXPECT_EQ(makeWorkload(BenchmarkId::Lu, WorkloadScale::Test)
                  ->numProcs(), 8u);
    EXPECT_EQ(makeWorkload(BenchmarkId::Ocean, WorkloadScale::Test)
                  ->numProcs(), 16u);
    EXPECT_EQ(makeWorkload(BenchmarkId::Raytrace, WorkloadScale::Test)
                  ->numProcs(), 8u);
}

} // namespace
} // namespace csr
