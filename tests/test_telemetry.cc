/**
 * @file
 * Telemetry subsystem tests: Chrome trace export validity, balanced
 * spans, the zero-call disabled path, MetricRegistry schema and
 * merging, CliArgs, and the PolicyFactory / WorkloadConfig API
 * satellites that ride on the same PR.
 */

#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/PolicyFactory.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceSimulator.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Telemetry.h"
#include "trace/SampledTrace.h"
#include "trace/WorkloadFactory.h"
#include "robust/Errors.h"
#include "util/CliArgs.h"

using namespace csr;

namespace
{

/**
 * Minimal recursive-descent JSON validator -- no third-party JSON
 * dependency in the repo, but "the exported file is valid JSON" is
 * exactly what the Perfetto loader needs, so parse it for real.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const std::string &word)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** RAII guard: enable tracing on a clean buffer, disable + clear on
 *  exit so tests cannot leak enabled state into each other. */
class TracingScope
{
  public:
    TracingScope()
    {
        telemetry::Tracer::instance().clear();
        telemetry::setTracingEnabled(true);
    }

    ~TracingScope()
    {
        telemetry::setTracingEnabled(false);
        telemetry::Tracer::instance().clear();
    }
};

} // namespace

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

#if !defined(CSR_TELEMETRY_DISABLED)

TEST(Tracer, ExportsValidChromeTraceJson)
{
    TracingScope scope;
    {
        CSR_TRACE_SPAN("test", "outer");
        CSR_TRACE_SPAN_DYN("test", std::string("cell/") + "a");
        CSR_TRACE_INSTANT("test", "tick");
        CSR_TRACE_INSTANT_V("test", "tick_v", 42.5);
        CSR_TRACE_COUNTER("test", "gauge", 7);
    }
    std::ostringstream os;
    telemetry::Tracer::instance().writeChromeTrace(os);
    const std::string json = os.str();

    JsonValidator validator(json);
    EXPECT_TRUE(validator.valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("cell/a"), std::string::npos);
}

TEST(Tracer, SpansBalanceAcrossThreads)
{
    TracingScope scope;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < 50; ++i) {
                CSR_TRACE_SPAN("test", "worker");
                CSR_TRACE_INSTANT("test", "step");
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    std::size_t begins = 0, ends = 0, instants = 0;
    for (const telemetry::TraceEvent &ev :
         telemetry::Tracer::instance().snapshot()) {
        if (ev.phase == 'B')
            ++begins;
        else if (ev.phase == 'E')
            ++ends;
        else if (ev.phase == 'i')
            ++instants;
    }
    EXPECT_EQ(begins, 4u * 50u);
    EXPECT_EQ(begins, ends);
    EXPECT_EQ(instants, 4u * 50u);
}

TEST(Tracer, SpanLatchesEnabledStateForBalance)
{
    TracingScope scope;
    {
        CSR_TRACE_SPAN("test", "latched");
        // Disabling mid-span must not orphan the 'B' event.
        telemetry::setTracingEnabled(false);
    }
    std::size_t begins = 0, ends = 0;
    for (const telemetry::TraceEvent &ev :
         telemetry::Tracer::instance().snapshot()) {
        if (ev.phase == 'B')
            ++begins;
        if (ev.phase == 'E')
            ++ends;
    }
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
}

TEST(Tracer, DisabledHotPathsMakeZeroRecordCalls)
{
    telemetry::setTracingEnabled(false);
    const std::uint64_t before =
        telemetry::Tracer::instance().recordCalls();

    // Exercise the instrumented hot paths: a full DCL trace-study run
    // (reservations, ETD, StatGroup counters) with tracing disabled.
    auto workload =
        makeWorkload(BenchmarkId::Barnes, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    TraceSimConfig config;
    const CacheGeometry l2(config.l2Bytes, config.l2Assoc,
                           config.blockBytes);
    const UniformCost cost;
    TraceSimulator sim(config, makePolicy(PolicyKind::Dcl, l2), cost);
    const TraceSimResult res = sim.run(trace.records, trace.sampledProc);
    EXPECT_GT(res.sampledRefs, 0u);
    EXPECT_GT(res.l2Misses, 0u);

    EXPECT_EQ(telemetry::Tracer::instance().recordCalls(), before);
}

TEST(Tracer, ClearRestartsTheEpoch)
{
    TracingScope scope;
    CSR_TRACE_INSTANT("test", "before_clear");
    EXPECT_GT(telemetry::Tracer::instance().eventCount(), 0u);
    telemetry::Tracer::instance().clear();
    EXPECT_EQ(telemetry::Tracer::instance().eventCount(), 0u);
}

#endif // !CSR_TELEMETRY_DISABLED

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

TEST(MetricRegistry, CountersStatsTimersHistograms)
{
    MetricRegistry registry;
    registry.incCounter("a.count", 2);
    registry.incCounter("a.count", 3);
    registry.setCounter("a.fixed", 7);
    registry.stat("a.stat").add(1.0);
    registry.stat("a.stat").add(3.0);
    registry.recordTimerSec("a.timer", 0.25);
    registry.histogram("a.hist", 0.0, 10.0, 5).add(4.0);

    EXPECT_EQ(registry.counter("a.count"), 5u);
    EXPECT_EQ(registry.counter("a.fixed"), 7u);
    EXPECT_EQ(registry.counter("absent"), 0u);
    EXPECT_DOUBLE_EQ(registry.statOf("a.stat").mean(), 2.0);
    EXPECT_EQ(registry.histogramOf("a.hist")->totalCount(), 1u);
    EXPECT_EQ(registry.histogramOf("absent"), nullptr);
    EXPECT_FALSE(registry.empty());
}

TEST(MetricRegistry, WritesValidJsonSchema)
{
    MetricRegistry registry;
    registry.incCounter("counter.one", 11);
    registry.stat("stat.one").add(2.5);
    registry.recordTimerSec("timer.one", 1.5);
    registry.histogram("hist.one", 0.0, 8.0, 4).add(3.0);

    std::ostringstream os;
    registry.writeJson(os);
    const std::string json = os.str();

    JsonValidator validator(json);
    EXPECT_TRUE(validator.valid()) << json;
    for (const char *section :
         {"\"counters\"", "\"stats\"", "\"timersSec\"", "\"histograms\""})
        EXPECT_NE(json.find(section), std::string::npos) << section;
    EXPECT_NE(json.find("\"counter.one\": 11"), std::string::npos);
}

TEST(MetricRegistry, MergeCombinesEveryKind)
{
    MetricRegistry a, b;
    a.incCounter("c", 1);
    b.incCounter("c", 2);
    a.stat("s").add(1.0);
    b.stat("s").add(3.0);
    a.histogram("h", 0.0, 10.0, 5).add(1.0);
    b.histogram("h", 0.0, 10.0, 5).add(9.0);

    a.merge(b);
    EXPECT_EQ(a.counter("c"), 3u);
    EXPECT_EQ(a.statOf("s").count(), 2u);
    EXPECT_DOUBLE_EQ(a.statOf("s").mean(), 2.0);
    EXPECT_EQ(a.histogramOf("h")->totalCount(), 2u);
}

TEST(MetricRegistry, ImportCountersPrefixesStatGroup)
{
    StatGroup group;
    group.inc("l2.miss", 4);
    MetricRegistry registry;
    registry.importCounters(group, "trace.");
    EXPECT_EQ(registry.counter("trace.l2.miss"), 4u);
}

TEST(MetricRegistry, ResetEmptiesTheRegistry)
{
    MetricRegistry registry;
    registry.incCounter("c");
    registry.reset();
    EXPECT_TRUE(registry.empty());
}

// ---------------------------------------------------------------------------
// CliArgs
// ---------------------------------------------------------------------------

TEST(CliArgs, ParsesKeyValuePairsAndCommonFlags)
{
    const char *argv[] = {"prog",   "--json", "out.json", "--jobs",
                          "4",      "--seed", "99",       "--trace",
                          "t.json", "--metrics", "m.json"};
    CliArgs args(static_cast<int>(std::size(argv)),
                 const_cast<char **>(argv));
    EXPECT_EQ(args.jsonPath(), "out.json");
    EXPECT_EQ(args.jobs(), 4u);
    EXPECT_EQ(args.seed(0), 99u);
    EXPECT_EQ(args.tracePath(), "t.json");
    EXPECT_EQ(args.metricsPath(), "m.json");
    EXPECT_FALSE(args.helpRequested());
    EXPECT_EQ(args.get("absent", "dflt"), "dflt");
}

TEST(CliArgs, HelpFlagSetsHelpRequested)
{
    const char *argv[] = {"prog", "--help"};
    CliArgs args(2, const_cast<char **>(argv));
    EXPECT_TRUE(args.helpRequested());
}

TEST(CliArgs, RejectsMalformedFlags)
{
    const char *bare[] = {"prog", "value-without-flag"};
    EXPECT_THROW(CliArgs(2, const_cast<char **>(bare)), ConfigError);

    const char *dangling[] = {"prog", "--jobs"};
    EXPECT_THROW(CliArgs(2, const_cast<char **>(dangling)),
                 ConfigError);
}

TEST(CliArgs, ValidatesNumbersAndKnownFlags)
{
    const char *bad_jobs[] = {"prog", "--jobs", "many"};
    EXPECT_THROW(CliArgs(3, const_cast<char **>(bad_jobs)).jobs(),
                 ConfigError);

    const char *unknown[] = {"prog", "--bogus", "1"};
    CliArgs args(3, const_cast<char **>(unknown));
    EXPECT_THROW(args.requireKnown({"real"}), ConfigError);
}

TEST(CliArgs, ValuelessFlagsConsumeNoValue)
{
    const char *argv[] = {"prog", "--resume", "--jobs", "3",
                          "--validate"};
    CliArgs args(5, const_cast<char **>(argv), 1,
                 {"resume", "validate"});
    EXPECT_TRUE(args.has("resume"));
    EXPECT_TRUE(args.has("validate"));
    EXPECT_EQ(args.get("resume", ""), "1");
    EXPECT_EQ(args.jobs(), 3u);
}

TEST(CliArgs, StrictModeSplitsInlineValues)
{
    const char *argv[] = {"prog", "--jobs=6", "--grid=a=1,2;b=3"};
    CliArgs args(3, const_cast<char **>(argv));
    EXPECT_EQ(args.jobs(), 6u);
    // Only the first '=' splits: grid specs keep theirs.
    EXPECT_EQ(args.get("grid", ""), "a=1,2;b=3");
}

TEST(CliArgs, LenientModePreservesForeignTokensInOrder)
{
    const char *argv[] = {"prog",
                          "--benchmark_filter=BM_Lru",
                          "--json",
                          "out.json",
                          "bare",
                          "--benchmark_min_time=0.1",
                          "--declared",
                          "7"};
    const CliArgs args =
        CliArgs::lenient(static_cast<int>(std::size(argv)),
                         const_cast<char **>(argv),
                         /*valued=*/{"declared"});
    EXPECT_EQ(args.jsonPath(), "out.json"); // common flag consumed
    EXPECT_EQ(args.getUInt("declared", 0), 7u);
    const std::vector<std::string> expect = {
        "--benchmark_filter=BM_Lru", "bare",
        "--benchmark_min_time=0.1"};
    EXPECT_EQ(args.positionals(), expect);
}

TEST(CliArgs, LenientModeStillRejectsDanglingDeclaredFlag)
{
    const char *argv[] = {"prog", "--declared"};
    EXPECT_THROW(CliArgs::lenient(2, const_cast<char **>(argv),
                                  {"declared"}),
                 ConfigError);
}

TEST(CliArgs, LenientModeValuelessAndInlineSpellings)
{
    const char *argv[] = {"prog", "--spin", "--seed=5",
                          "--foreign"};
    const CliArgs args = CliArgs::lenient(
        4, const_cast<char **>(argv), /*valued=*/{},
        /*valueless=*/{"spin"});
    EXPECT_TRUE(args.has("spin"));
    EXPECT_EQ(args.seed(0), 5u);
    EXPECT_EQ(args.positionals(),
              std::vector<std::string>{"--foreign"});
}

// ---------------------------------------------------------------------------
// PolicyFactory satellite
// ---------------------------------------------------------------------------

TEST(PolicyFactoryApi, ParseReturnsNulloptOnUnknown)
{
    EXPECT_FALSE(parsePolicyKind("bogus").has_value());
    EXPECT_FALSE(parsePolicyKind("").has_value());
    EXPECT_EQ(parsePolicyKind("dcl"), PolicyKind::Dcl);
}

TEST(PolicyFactoryApi, ListedNamesAllParse)
{
    EXPECT_FALSE(listPolicyNames().empty());
    for (const std::string &name : listPolicyNames())
        EXPECT_TRUE(parsePolicyKind(name).has_value()) << name;
    EXPECT_NE(policyNamesJoined().find("dcl"), std::string::npos);
}

TEST(PolicyFactoryApi, RequireThrowsConfigErrorWithValidList)
{
    try {
        requirePolicyKind("bogus");
        FAIL() << "unknown policy accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("bogus"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("valid"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// WorkloadConfig satellite
// ---------------------------------------------------------------------------

TEST(WorkloadConfig, FactoryHonoursOverrides)
{
    WorkloadConfig config;
    config.name = "lu";
    config.scale = WorkloadScale::Test;
    config.numProcs = 4;
    config.seed = 1234;
    config.targetRefsPerProc = 5000;

    auto workload = makeWorkload(config);
    EXPECT_EQ(workload->name(), "lu");
    EXPECT_EQ(workload->numProcs(), 4u);
}

TEST(WorkloadConfig, ZeroMeansBenchmarkDefault)
{
    WorkloadConfig config;
    config.name = "Barnes"; // parse is case-insensitive
    config.scale = WorkloadScale::Test;

    auto byConfig = makeWorkload(config);
    auto byEnum = makeWorkload(BenchmarkId::Barnes, WorkloadScale::Test);
    EXPECT_EQ(byConfig->numProcs(), byEnum->numProcs());
    EXPECT_EQ(byConfig->memoryBytes(), byEnum->memoryBytes());
}

TEST(WorkloadConfig, SeedChangesTheStream)
{
    WorkloadConfig config;
    config.name = "raytrace";
    config.scale = WorkloadScale::Test;
    auto a = makeWorkload(config);
    config.seed = 77;
    auto b = makeWorkload(config);

    MemAccess accessA{}, accessB{};
    auto streamA = a->procStream(0);
    auto streamB = b->procStream(0);
    bool differs = false;
    for (int i = 0; i < 200 && !differs; ++i) {
        if (!streamA->next(accessA) || !streamB->next(accessB))
            break;
        differs = accessA.addr != accessB.addr;
    }
    EXPECT_TRUE(differs);
}
