/**
 * @file
 * Cross-cutting tests: error handling (death tests), BatchStream
 * mechanics, factory parameter plumbing, HomeMap, NumaConfig helpers
 * and miscellaneous guards that do not fit the per-module suites.
 */

#include <gtest/gtest.h>

#include <string>

#include "cache/BclPolicy.h"
#include "cache/PolicyFactory.h"
#include "numa/Directory.h"
#include "numa/Event.h"
#include "numa/NumaConfig.h"
#include "trace/BatchStream.h"
#include "util/Logging.h"

#include "TestHelpers.h"

namespace csr
{
namespace
{

// ---------------------------------------------------------------------------
// Logging / assertions
// ---------------------------------------------------------------------------

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(csr_panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeath, AssertCarriesConditionText)
{
    const int x = 1;
    EXPECT_DEATH(csr_assert(x == 2, "x was %d", x),
                 "assertion 'x == 2' failed: x was 1");
}

TEST(LoggingDeath, AssertWithPercentInCondition)
{
    // Regression: a '%' inside the condition text must not be parsed
    // as a conversion specifier.
    const int v = 3;
    EXPECT_DEATH(csr_assert(v % 2 == 0, "odd"), "failed: odd");
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.run();
    EXPECT_DEATH(q.schedule(5, [] {}), "scheduling into the past");
}

TEST(Geometry, NonPowerOfTwoRejectedWithNamedError)
{
    try {
        CacheGeometry(3000, 4, 64);
        FAIL() << "expected CacheGeometryError";
    } catch (const CacheGeometryError &e) {
        EXPECT_NE(std::string(e.what()).find("cache size"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("power of two"),
                  std::string::npos);
    }
    EXPECT_THROW(CacheGeometry(16 * 1024, 3, 64), CacheGeometryError);
    EXPECT_THROW(CacheGeometry(16 * 1024, 4, 48), CacheGeometryError);
    // Cache smaller than one set.
    EXPECT_THROW(CacheGeometry(128, 4, 64), CacheGeometryError);
}

// ---------------------------------------------------------------------------
// BatchStream
// ---------------------------------------------------------------------------

namespace
{

/** Emits `batches` batches of `per_batch` accesses then finishes. */
class CountingStream : public BatchStream
{
  public:
    CountingStream(int batches, int per_batch, std::uint64_t cap = 0)
        : BatchStream(cap), batches_(batches), perBatch_(per_batch)
    {
    }

  protected:
    void
    refill() override
    {
        if (emitted_ >= batches_) {
            finish();
            return;
        }
        ++emitted_;
        for (int i = 0; i < perBatch_; ++i)
            emit(static_cast<Addr>(emitted_ * 1000 + i) * 64, false);
    }

  private:
    int batches_;
    int perBatch_;
    int emitted_ = 0;
};

} // namespace

TEST(BatchStream, DrainsAllBatches)
{
    CountingStream s(3, 5);
    MemAccess acc;
    int n = 0;
    while (s.next(acc))
        ++n;
    EXPECT_EQ(n, 15);
    EXPECT_EQ(s.produced(), 15u);
    EXPECT_FALSE(s.next(acc)); // stays finished
}

TEST(BatchStream, CapTruncatesMidBatch)
{
    CountingStream s(100, 10, /*cap=*/25);
    MemAccess acc;
    int n = 0;
    while (s.next(acc))
        ++n;
    EXPECT_EQ(n, 25);
}

TEST(BatchStream, EmptyStream)
{
    CountingStream s(0, 10);
    MemAccess acc;
    EXPECT_FALSE(s.next(acc));
}

// ---------------------------------------------------------------------------
// Factory parameter plumbing
// ---------------------------------------------------------------------------

TEST(PolicyParamsPlumbing, AliasBitsReachTheEtd)
{
    const CacheGeometry geom = test::singleSet(4);
    PolicyParams params;
    params.etdAliasBits = 4;
    EXPECT_EQ(makePolicy(PolicyKind::Dcl, geom, params)->name(),
              "DCL(alias)");
    EXPECT_EQ(makePolicy(PolicyKind::Acl, geom, params)->name(),
              "ACL(alias)");
    EXPECT_EQ(makePolicy(PolicyKind::Dcl, geom)->name(), "DCL");
}

TEST(PolicyParamsPlumbing, DepreciationFactorHonored)
{
    const CacheGeometry geom = test::singleSet(4);
    PolicyParams params;
    params.depreciationFactor = 1.0;
    PolicyPtr policy = makePolicy(PolicyKind::Bcl, geom, params);
    auto *bcl = dynamic_cast<BclPolicy *>(policy.get());
    ASSERT_NE(bcl, nullptr);
    EXPECT_DOUBLE_EQ(bcl->depreciationFactor(), 1.0);
}

// ---------------------------------------------------------------------------
// HomeMap / NumaConfig
// ---------------------------------------------------------------------------

TEST(HomeMapTest, FirstToucherWins)
{
    HomeMap homes;
    EXPECT_FALSE(homes.known(7));
    EXPECT_EQ(homes.homeOf(7, 3), 3u);
    EXPECT_EQ(homes.homeOf(7, 9), 3u); // sticky
    EXPECT_TRUE(homes.known(7));
    EXPECT_EQ(homes.size(), 1u);
}

TEST(NumaConfigTest, CycleScaling)
{
    NumaConfig config;
    config.cycleNs = 2; // 500 MHz
    EXPECT_EQ(config.cycles(6), 12u);
    config.cycleNs = 1; // 1 GHz
    EXPECT_EQ(config.cycles(6), 6u);
    EXPECT_EQ(config.numNodes(), 16u);
}

// ---------------------------------------------------------------------------
// Protocol vocabulary
// ---------------------------------------------------------------------------

TEST(ProtocolVocab, DataMessagesCarryData)
{
    EXPECT_TRUE(carriesData(MsgType::DataS));
    EXPECT_TRUE(carriesData(MsgType::DataE));
    EXPECT_TRUE(carriesData(MsgType::DataM));
    EXPECT_TRUE(carriesData(MsgType::PutM));
    EXPECT_FALSE(carriesData(MsgType::GetS));
    EXPECT_FALSE(carriesData(MsgType::Inv));
    EXPECT_FALSE(carriesData(MsgType::InvAck));
    EXPECT_FALSE(carriesData(MsgType::PutS));
}

TEST(ProtocolVocab, NamesAreUnique)
{
    std::set<std::string> names;
    for (int t = 0; t <= static_cast<int>(MsgType::FetchStale); ++t)
        names.insert(msgTypeName(static_cast<MsgType>(t)));
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(MsgType::FetchStale) + 1);
}

} // namespace
} // namespace csr
