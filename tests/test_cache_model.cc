/**
 * @file
 * CacheModel protocol tests.
 *
 * The centerpiece is a golden-equivalence check: every policy is
 * driven through a fixed synthetic trace via the shared CacheModel
 * protocol (access / fillVictimOrFree / invalidateTag / updateCost),
 * and the resulting victim sequence (FNV-hashed), aggregate miss cost
 * and hit/miss counts must match constants captured from the
 * pre-CacheModel implementation, where drivers hand-rolled the same
 * protocol against a separate TagArray.  Any behavioral drift in the
 * refactored access path -- victim choice, hook order, eviction
 * notification -- changes the hash.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cache/BeladyPolicy.h"
#include "cache/CacheModel.h"
#include "cache/DclPolicy.h"
#include "cache/GreedyDualPolicy.h"
#include "cache/PolicyFactory.h"

using namespace csr;

namespace
{

struct Lcg
{
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
    }
};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
mix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
}

double
blockCost(std::uint64_t block)
{
    return 1.0 + static_cast<double>((block * 2654435761ULL >> 7) & 7);
}

struct GoldenResult
{
    std::uint64_t hash;
    double aggCost;
    std::uint64_t hits;
    std::uint64_t misses;
};

GoldenResult
runPolicy(PolicyKind kind, bool with_invalidations)
{
    const CacheGeometry geom(4096, 4, 64);
    CacheModel model(geom, makePolicy(kind, geom, PolicyParams{}));

    constexpr std::uint64_t kBlocks = 512;
    constexpr int kAccesses = 30000;
    Lcg rng{12345};

    // Pre-generate the access stream so oracles can be primed.
    std::vector<Addr> stream;
    std::vector<std::uint64_t> inval_blocks;
    Lcg aux{98765};
    for (int i = 0; i < kAccesses; ++i) {
        const std::uint64_t r = rng.next() % 100;
        const std::uint64_t block = r < 60
                                        ? rng.next() % 64
                                        : 64 + rng.next() % (kBlocks - 64);
        stream.push_back(block);
        inval_blocks.push_back(aux.next() % kBlocks);
    }
    if (kind == PolicyKind::Opt || kind == PolicyKind::CostOpt) {
        auto *opt = dynamic_cast<BeladyPolicy *>(model.policy());
        opt->prepare(stream);
    }

    GoldenResult res{kFnvOffset, 0.0, 0, 0};
    for (int i = 0; i < kAccesses; ++i) {
        const Addr addr = stream[static_cast<std::size_t>(i)] * 64;
        const std::uint32_t set = geom.setIndex(addr);
        const Addr tag = geom.tag(addr);
        const int hit_way = model.access(set, tag);
        if (hit_way != kInvalidWay) {
            mix(res.hash, 1);
            ++res.hits;
        } else {
            const double cost = blockCost(addr / geom.blockBytes());
            bool evicted = false;
            const int way = model.fillVictimOrFree(
                set, tag, cost, 0,
                [&](int, Addr victim_tag, std::uint32_t) {
                    mix(res.hash, 2);
                    mix(res.hash, victim_tag);
                    evicted = true;
                });
            if (!evicted)
                mix(res.hash, 3);
            mix(res.hash, static_cast<std::uint64_t>(way));
            res.aggCost += cost;
            ++res.misses;
        }
        if (with_invalidations && i % 97 == 0) {
            const Addr iaddr =
                inval_blocks[static_cast<std::size_t>(i)] * 64;
            const int way =
                model.invalidateTag(geom.setIndex(iaddr), geom.tag(iaddr));
            mix(res.hash, way == kInvalidWay ? 4 : 5);
        }
        if (with_invalidations && i % 131 == 0) {
            // Refresh the cost of a pseudo-random resident line.
            const std::uint32_t set2 =
                static_cast<std::uint32_t>(i / 131) % geom.numSets();
            const int way =
                static_cast<int>(static_cast<std::uint32_t>(i / 131) %
                                 geom.assoc());
            if (model.isValid(set2, way)) {
                const double cost = 1.0 + static_cast<double>(i % 131 % 9);
                model.updateCost(set2, way, cost);
                mix(res.hash, 6);
            }
        }
    }
    return res;
}

struct GoldenCase
{
    const char *name;
    PolicyKind kind;
    bool invals;
    GoldenResult expected;
};

// Captured from the pre-CacheModel (TagArray-era) implementation.
const GoldenCase kGolden[] = {
    {"Lru", PolicyKind::Lru, true,
     {0xe7da2336858f1d3eULL, 88855.0, 10318, 19682}},
    {"Random", PolicyKind::Random, true,
     {0xc2556d5c346095c0ULL, 92420.0, 9543, 20457}},
    {"Lfu", PolicyKind::Lfu, true,
     {0x1f6cea5acd4c5ba6ULL, 68802.0, 14782, 15218}},
    {"Gd", PolicyKind::GreedyDual, true,
     {0xcfd924888d2641d5ULL, 84060.0, 10080, 19920}},
    {"Bcl", PolicyKind::Bcl, true,
     {0x27f2aa695ef6ca69ULL, 85222.0, 10117, 19883}},
    {"Dcl", PolicyKind::Dcl, true,
     {0x54c26213b7d0cdf1ULL, 83848.0, 9858, 20142}},
    {"Acl", PolicyKind::Acl, true,
     {0x7ca6a5430ae98641ULL, 84924.0, 10052, 19948}},
    {"Opt", PolicyKind::Opt, false,
     {0x87eacd5c8a382593ULL, 58769.0, 16914, 13086}},
    {"CostOpt", PolicyKind::CostOpt, false,
     {0x4b59362955850182ULL, 55411.0, 16353, 13647}},
};

TEST(CacheModelGolden, VictimSequencesMatchPreRefactorImplementation)
{
    for (const GoldenCase &c : kGolden) {
        SCOPED_TRACE(c.name);
        const GoldenResult r = runPolicy(c.kind, c.invals);
        EXPECT_EQ(r.hash, c.expected.hash);
        EXPECT_DOUBLE_EQ(r.aggCost, c.expected.aggCost);
        EXPECT_EQ(r.hits, c.expected.hits);
        EXPECT_EQ(r.misses, c.expected.misses);
    }
}

TEST(CacheModel, InvalidateNonResidentTagScrubsEtd)
{
    // 4 sets x 4 ways.  Make the first-filled block (the LRU one)
    // expensive so DCL reserves it and sacrifices the cheap second-LRU
    // block, whose tag then lands in the ETD.
    const CacheGeometry g(1024, 4, 64);
    auto policy = std::make_unique<DclPolicy>(g);
    const DclPolicy *dcl = policy.get();
    CacheModel model(g, std::move(policy));
    const std::uint32_t set = 0;

    model.access(set, 0);
    model.fillVictimOrFree(set, 0, 8.0);
    for (Addr t = 1; t < 4; ++t) {
        model.access(set, t);
        model.fillVictimOrFree(set, t, 1.0);
    }
    model.access(set, 4);
    model.fillVictimOrFree(set, 4, 1.0);

    // Tag 1 (second-LRU, cost 1 < Acost 8) was sacrificed: it is gone
    // from the cache but retained by the ETD.
    EXPECT_EQ(model.lookup(set, 1), kInvalidWay);
    ASSERT_TRUE(dcl->etd().contains(set, 1));

    // A coherence invalidation of the now non-resident tag must still
    // reach the policy and scrub the ETD entry (Section 2.4).
    EXPECT_EQ(model.invalidateTag(set, 1), kInvalidWay);
    EXPECT_FALSE(dcl->etd().contains(set, 1));
}

TEST(CacheModel, UpdateCostRefreshesModelAndGreedyDualCredit)
{
    const CacheGeometry g(1024, 4, 64);
    auto policy = std::make_unique<GreedyDualPolicy>(g);
    const GreedyDualPolicy *gd = policy.get();
    CacheModel model(g, std::move(policy));
    const std::uint32_t set = 1;

    for (Addr t = 0; t < 4; ++t) {
        model.access(set, 10 + t);
        model.fillVictimOrFree(set, 10 + t, 4.0);
    }
    const int way = model.lookup(set, 12);
    ASSERT_NE(way, kInvalidWay);

    model.updateCost(set, way, 0.5);
    EXPECT_DOUBLE_EQ(model.costAt(set, way), 0.5);
    EXPECT_DOUBLE_EQ(gd->creditOf(set, way), 0.5);

    // The refreshed (now lowest) credit redirects GD's next victim
    // choice to that way.
    model.access(set, 99);
    bool evicted = false;
    Addr victim_tag = 0;
    model.fillVictimOrFree(set, 99, 4.0, 0,
                           [&](int, Addr vt, std::uint32_t) {
                               evicted = true;
                               victim_tag = vt;
                           });
    EXPECT_TRUE(evicted);
    EXPECT_EQ(victim_tag, Addr{12});
}

} // namespace
