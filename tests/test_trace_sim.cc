/**
 * @file
 * Tests for the cost models and the trace-driven two-level simulator
 * (Section 3 methodology): hierarchy behaviour, invalidation
 * handling, cost accounting identities and the TraceStudy harness.
 */

#include <gtest/gtest.h>

#include <limits>

#include "cost/LatencyPredictor.h"
#include "cost/MigrationCost.h"
#include "cost/StaticCostModels.h"
#include "sim/TraceStudy.h"
#include "trace/WorkloadFactory.h"
#include "util/Random.h"

namespace csr
{
namespace
{

TraceRecord
rec(Addr addr, std::uint16_t proc = 0, bool write = false)
{
    return {addr, proc, write};
}

// ---------------------------------------------------------------------------
// Cost models
// ---------------------------------------------------------------------------

TEST(CostModels, UniformIsConstant)
{
    UniformCost cost(3.0);
    EXPECT_DOUBLE_EQ(cost.missCost(0), 3.0);
    EXPECT_DOUBLE_EQ(cost.missCost(12345), 3.0);
}

TEST(CostModels, RandomTwoCostIsDeterministicPerBlock)
{
    RandomTwoCost cost(CostRatio::finite(8), 0.3);
    for (Addr block = 0; block < 100; ++block)
        EXPECT_DOUBLE_EQ(cost.missCost(block), cost.missCost(block));
}

TEST(CostModels, RandomTwoCostMatchesHaf)
{
    const double haf = 0.3;
    RandomTwoCost cost(CostRatio::finite(8), haf);
    std::uint64_t high = 0;
    const std::uint64_t n = 100000;
    for (Addr block = 0; block < n; ++block)
        high += cost.isHighCost(block) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(high) / static_cast<double>(n), haf,
                0.01);
}

TEST(CostModels, RandomTwoCostExtremes)
{
    RandomTwoCost zero(CostRatio::finite(8), 0.0);
    RandomTwoCost one(CostRatio::finite(8), 1.0);
    for (Addr block = 0; block < 1000; ++block) {
        EXPECT_DOUBLE_EQ(zero.missCost(block), 1.0);
        EXPECT_DOUBLE_EQ(one.missCost(block), 8.0);
    }
}

TEST(CostModels, InfiniteRatioEncoding)
{
    const CostRatio inf = CostRatio::makeInfinite();
    EXPECT_DOUBLE_EQ(inf.low, 0.0);
    EXPECT_DOUBLE_EQ(inf.high, 1.0);
    EXPECT_TRUE(inf.infinite);
    EXPECT_EQ(inf.label(), "r=inf");
    EXPECT_EQ(CostRatio::finite(4).label(), "r=4");
}

TEST(CostModels, FirstTouchUsesHomeMap)
{
    std::unordered_map<Addr, ProcId> homes = {{1, 0}, {2, 5}};
    FirstTouchTwoCost cost(CostRatio::finite(4), homes, /*local=*/0);
    EXPECT_DOUBLE_EQ(cost.missCost(1), 1.0);  // local
    EXPECT_DOUBLE_EQ(cost.missCost(2), 4.0);  // remote
    EXPECT_DOUBLE_EQ(cost.missCost(99), 1.0); // unknown -> local
}

TEST(CostModels, TableCostDefaultsAndOverrides)
{
    TableCost cost(2.0);
    cost.set(7, 9.0);
    EXPECT_DOUBLE_EQ(cost.missCost(7), 9.0);
    EXPECT_DOUBLE_EQ(cost.missCost(8), 2.0);
}

TEST(LatencyPredictorTest, LastValueSemantics)
{
    LatencyPredictor pred(120.0);
    EXPECT_DOUBLE_EQ(pred.predict(5), 120.0); // default
    EXPECT_FALSE(pred.known(5));
    pred.update(5, 380.0);
    EXPECT_DOUBLE_EQ(pred.predict(5), 380.0);
    pred.update(5, 480.0);
    EXPECT_DOUBLE_EQ(pred.predict(5), 480.0); // last value wins
    EXPECT_TRUE(pred.known(5));
    EXPECT_EQ(pred.updates(), 2u);
    pred.reset();
    EXPECT_DOUBLE_EQ(pred.predict(5), 120.0);
}

// ---------------------------------------------------------------------------
// TraceSimulator basics
// ---------------------------------------------------------------------------

TEST(TraceSim, CountsHitsAndMisses)
{
    UniformCost cost;
    TraceSimConfig config;
    config.useL1 = false;
    CacheGeometry l2(config.l2Bytes, config.l2Assoc, config.blockBytes);
    TraceSimulator sim(config, makePolicy(PolicyKind::Lru, l2), cost);
    // Same block twice: one miss, one hit.
    const TraceSimResult res =
        sim.run({rec(0x1000), rec(0x1000)}, 0);
    EXPECT_EQ(res.sampledRefs, 2u);
    EXPECT_EQ(res.l2Misses, 1u);
    EXPECT_EQ(res.l2Hits, 1u);
    EXPECT_DOUBLE_EQ(res.aggregateCost, 1.0);
}

TEST(TraceSim, L1FiltersRepeatedAccesses)
{
    UniformCost cost;
    TraceSimConfig config; // L1 enabled
    CacheGeometry l2(config.l2Bytes, config.l2Assoc, config.blockBytes);
    TraceSimulator sim(config, makePolicy(PolicyKind::Lru, l2), cost);
    const TraceSimResult res =
        sim.run({rec(0x1000), rec(0x1000), rec(0x1000)}, 0);
    EXPECT_EQ(res.l2Misses, 1u);
    EXPECT_EQ(res.l1Hits, 2u);
    EXPECT_EQ(res.l2Hits, 0u);
}

TEST(TraceSim, RemoteWriteInvalidates)
{
    UniformCost cost;
    TraceSimConfig config;
    CacheGeometry l2(config.l2Bytes, config.l2Assoc, config.blockBytes);
    TraceSimulator sim(config, makePolicy(PolicyKind::Lru, l2), cost);
    // Load, remote write invalidates, load again -> 2 misses.
    const TraceSimResult res = sim.run(
        {rec(0x1000, 0), rec(0x1000, 3, true), rec(0x1000, 0)}, 0);
    EXPECT_EQ(res.sampledRefs, 2u);
    EXPECT_EQ(res.l2Misses, 2u);
    EXPECT_EQ(res.invalidationsReceived, 1u);
}

TEST(TraceSim, InclusionVictimLeavesL1)
{
    // Fill one L2 set (4 ways) plus one more mapping to the same set;
    // the L2 victim must also leave the L1, so re-accessing it misses
    // in both.
    UniformCost cost;
    TraceSimConfig config;
    CacheGeometry l2(config.l2Bytes, config.l2Assoc, config.blockBytes);
    TraceSimulator sim(config, makePolicy(PolicyKind::Lru, l2), cost);
    // Blocks mapping to L2 set 0: stride = numSets * blockBytes.
    const Addr stride = l2.numSets() * config.blockBytes;
    std::vector<TraceRecord> records;
    for (Addr i = 0; i < 5; ++i)
        records.push_back(rec(i * stride));
    records.push_back(rec(0)); // block 0 was the LRU victim
    const TraceSimResult res = sim.run(records, 0);
    EXPECT_EQ(res.l2Misses, 6u);
    EXPECT_EQ(res.l1Hits, 0u);
}

TEST(TraceSim, AggregateCostIdentity)
{
    // aggregate cost == sum over misses of the model's cost.
    RandomTwoCost cost(CostRatio::finite(8), 0.4);
    TraceSimConfig config;
    config.useL1 = false;
    config.collectMissProfile = true;
    CacheGeometry l2(config.l2Bytes, config.l2Assoc, config.blockBytes);
    TraceSimulator sim(config, makePolicy(PolicyKind::Dcl, l2), cost);
    Rng rng(5);
    std::vector<TraceRecord> records;
    for (int i = 0; i < 20000; ++i)
        records.push_back(rec(rng.nextBelow(600) * 64, 0,
                              rng.nextBool(0.2)));
    const TraceSimResult res = sim.run(records, 0);
    double expected = 0.0;
    std::uint64_t misses = 0;
    for (const auto &[block, count] : res.missProfile) {
        expected += static_cast<double>(count) * cost.missCost(block);
        misses += count;
    }
    EXPECT_EQ(misses, res.l2Misses);
    EXPECT_NEAR(res.aggregateCost, expected, 1e-6);
}

TEST(TraceSim, UniformCostNeutralizesCostSensitivity)
{
    // With uniform costs, BCL/DCL/ACL produce exactly the LRU miss
    // count on any trace.
    auto workload = makeWorkload(BenchmarkId::Lu, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    UniformCost cost;
    TraceSimConfig config;
    CacheGeometry l2(config.l2Bytes, config.l2Assoc, config.blockBytes);

    TraceSimulator lru(config, makePolicy(PolicyKind::Lru, l2), cost);
    const std::uint64_t lru_misses =
        lru.run(trace.records, trace.sampledProc).l2Misses;

    for (PolicyKind kind :
         {PolicyKind::Bcl, PolicyKind::Dcl, PolicyKind::Acl}) {
        TraceSimulator sim(config, makePolicy(kind, l2), cost);
        EXPECT_EQ(sim.run(trace.records, trace.sampledProc).l2Misses,
                  lru_misses)
            << policyKindName(kind);
    }
}

// ---------------------------------------------------------------------------
// TraceStudy
// ---------------------------------------------------------------------------

TEST(TraceStudyTest, LruCostMatchesDirectSimulation)
{
    auto workload = makeWorkload(BenchmarkId::Barnes, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const TraceStudy study(trace);
    const RandomTwoCost model(CostRatio::finite(4), 0.3);

    // Direct LRU simulation with the same model must agree with the
    // re-weighted profile.
    TraceSimConfig config;
    CacheGeometry l2(config.l2Bytes, config.l2Assoc, config.blockBytes);
    TraceSimulator sim(config, makePolicy(PolicyKind::Lru, l2), model);
    const TraceSimResult res = sim.run(trace.records, trace.sampledProc);
    EXPECT_NEAR(study.lruCost(model), res.aggregateCost, 1e-6);
    EXPECT_EQ(study.lruMissCount(), res.l2Misses);
}

TEST(TraceStudyTest, LruSavingsAgainstItselfIsZero)
{
    auto workload = makeWorkload(BenchmarkId::Ocean, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const TraceStudy study(trace);
    const RandomTwoCost model(CostRatio::finite(8), 0.2);
    EXPECT_NEAR(study.savingsPct(PolicyKind::Lru, model), 0.0, 1e-9);
}

TEST(TraceStudyTest, InfiniteRatioIsUpperEnvelope)
{
    // For DCL, the infinite cost ratio bounds the finite-r savings
    // from above (Section 3.2's theoretical upper bound).
    auto workload = makeWorkload(BenchmarkId::Raytrace,
                                 WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const TraceStudy study(trace);
    const FirstTouchTwoCost inf(CostRatio::makeInfinite(), trace.homeOf,
                                trace.sampledProc);
    const double bound = study.savingsPct(PolicyKind::Dcl, inf);
    for (double r : {8.0, 16.0, 32.0}) {
        const FirstTouchTwoCost model(CostRatio::finite(r), trace.homeOf,
                                      trace.sampledProc);
        EXPECT_LE(study.savingsPct(PolicyKind::Dcl, model),
                  bound + 1.0)
            << "r=" << r;
    }
}

TEST(TraceStudyTest, SavingsGrowWithCostRatio)
{
    auto workload = makeWorkload(BenchmarkId::Raytrace,
                                 WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const TraceStudy study(trace);
    double prev = -100.0;
    for (double r : {4.0, 8.0, 16.0, 32.0}) {
        const FirstTouchTwoCost model(CostRatio::finite(r), trace.homeOf,
                                      trace.sampledProc);
        const double savings = study.savingsPct(PolicyKind::Dcl, model);
        EXPECT_GE(savings, prev - 0.5) << "r=" << r; // monotone-ish
        prev = savings;
    }
}

TEST(TraceStudyTest, OfflineOptBeatsLruMissCount)
{
    auto workload = makeWorkload(BenchmarkId::Lu, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    TraceSimConfig config;
    config.useL1 = false;
    const TraceStudy study(trace, config);
    UniformCost uniform;
    // With uniform cost, savings == miss-count reduction; OPT >= 0.
    const double savings = study.savingsPct(PolicyKind::Opt, uniform);
    EXPECT_GE(savings, 0.0);
}

TEST(TraceStudyTest, AclNeverMuchWorseThanLru)
{
    // The paper's reliability claim for ACL, across mappings.
    for (BenchmarkId id : paperBenchmarks()) {
        auto workload = makeWorkload(id, WorkloadScale::Test);
        const SampledTrace trace = buildSampledTrace(*workload, 1);
        const TraceStudy study(trace);
        for (double r : {2.0, 8.0, 32.0}) {
            const FirstTouchTwoCost model(CostRatio::finite(r),
                                          trace.homeOf,
                                          trace.sampledProc);
            EXPECT_GT(study.savingsPct(PolicyKind::Acl, model), -3.0)
                << benchmarkName(id) << " r=" << r;
        }
    }
}


// ---------------------------------------------------------------------------
// Migration cost model (Section 7 extension)
// ---------------------------------------------------------------------------

TEST(MigrationCostTest, NoMigrationEqualsFirstTouch)
{
    auto workload = makeWorkload(BenchmarkId::Ocean, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    MigrationOutcome outcome;
    const TableCost migrated = buildMigratedCostModel(
        trace, CostRatio::finite(4),
        std::numeric_limits<std::uint64_t>::max(), &outcome);
    const FirstTouchTwoCost first_touch(CostRatio::finite(4),
                                        trace.homeOf, trace.sampledProc);
    EXPECT_EQ(outcome.migratedBlocks, 0u);
    for (const auto &[block, home] : trace.homeOf) {
        (void)home;
        EXPECT_DOUBLE_EQ(migrated.missCost(block),
                         first_touch.missCost(block));
    }
}

TEST(MigrationCostTest, ThresholdZeroMigratesEverything)
{
    auto workload = makeWorkload(BenchmarkId::Ocean, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    MigrationOutcome outcome;
    const TableCost migrated =
        buildMigratedCostModel(trace, CostRatio::finite(4), 0, &outcome);
    EXPECT_EQ(outcome.migratedBlocks, outcome.remoteBlocks);
    EXPECT_DOUBLE_EQ(outcome.residualRemoteFraction, 0.0);
    for (const auto &[block, home] : trace.homeOf) {
        (void)home;
        EXPECT_DOUBLE_EQ(migrated.missCost(block), 1.0);
    }
}

TEST(MigrationCostTest, ResidualFractionShrinksWithThreshold)
{
    auto workload = makeWorkload(BenchmarkId::Barnes, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    double prev = 1.0;
    for (std::uint64_t threshold : {1000000ull, 64ull, 8ull, 1ull}) {
        MigrationOutcome outcome;
        buildMigratedCostModel(trace, CostRatio::finite(4), threshold,
                               &outcome);
        EXPECT_LE(outcome.residualRemoteFraction, prev + 1e-12);
        prev = outcome.residualRemoteFraction;
    }
}

} // namespace
} // namespace csr
