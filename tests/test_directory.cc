/**
 * @file
 * Directory-controller unit tests.
 *
 * These drive the home-side MESI state machine directly -- the test
 * plays all the cache sides -- to pin down transaction behaviour that
 * the end-to-end runs only exercise statistically: ack collection,
 * fetch forwarding, stale replacement hints, writeback races and the
 * blocking-home queue.
 */

#include <gtest/gtest.h>

#include "numa/Directory.h"

namespace csr
{
namespace
{

/** Harness: one directory at node 0, message capture per node. */
class DirectoryHarness
{
  public:
    DirectoryHarness()
        : network_(config_, events_), dir_(0, config_, events_, network_)
    {
        for (ProcId n = 0; n < config_.numNodes(); ++n) {
            network_.attach(n, [this, n](const Message &msg) {
                if (n == 0 && isHomeBound(msg.type))
                    dir_.receive(msg);
                else
                    inbox_[n].push_back(msg);
            });
        }
    }

    static bool
    isHomeBound(MsgType type)
    {
        switch (type) {
          case MsgType::GetS:
          case MsgType::GetX:
          case MsgType::PutM:
          case MsgType::PutS:
          case MsgType::PutE:
          case MsgType::InvAck:
          case MsgType::FetchResp:
          case MsgType::FetchStale:
            return true;
          default:
            return false;
        }
    }

    /** Send a message from a fake cache and run to quiescence. */
    void
    inject(MsgType type, Addr block, ProcId src, bool dirty = false)
    {
        Message msg;
        msg.type = type;
        msg.block = block;
        msg.src = src;
        msg.dst = 0;
        msg.requester = src;
        msg.dirty = dirty;
        network_.send(msg);
        events_.run();
    }

    /** Reply to a directory-initiated message and run to quiescence. */
    void
    reply(MsgType type, Addr block, ProcId src, bool dirty = false)
    {
        inject(type, block, src, dirty);
    }

    /** Pop all captured messages delivered to a node. */
    std::vector<Message>
    drain(ProcId node)
    {
        auto out = inbox_[node];
        inbox_[node].clear();
        return out;
    }

    NumaConfig config_;
    EventQueue events_;
    MeshNetwork network_;
    DirectoryController dir_;
    std::map<ProcId, std::vector<Message>> inbox_;
};

TEST(Directory, GetSFromUncachedGrantsExclusive)
{
    DirectoryHarness h;
    h.inject(MsgType::GetS, 100, 3);
    const auto msgs = h.drain(3);
    ASSERT_EQ(msgs.size(), 1u);
    EXPECT_EQ(msgs[0].type, MsgType::DataE);
    const DirEntry *entry = h.dir_.entryOf(100);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->state, DirEntry::State::Exclusive);
    EXPECT_EQ(entry->owner, 3u);
}

TEST(Directory, SecondReaderTriggersFetchAndShares)
{
    DirectoryHarness h;
    h.inject(MsgType::GetS, 100, 3);
    h.drain(3);
    h.inject(MsgType::GetS, 100, 5);
    // Node 3 (owner) must see a Fetch.
    auto to3 = h.drain(3);
    ASSERT_EQ(to3.size(), 1u);
    EXPECT_EQ(to3[0].type, MsgType::Fetch);
    // Owner answers clean; requester gets DataS.
    h.reply(MsgType::FetchResp, 100, 3, /*dirty=*/false);
    auto to5 = h.drain(5);
    ASSERT_EQ(to5.size(), 1u);
    EXPECT_EQ(to5[0].type, MsgType::DataS);
    EXPECT_EQ(h.dir_.entryOf(100)->state, DirEntry::State::Shared);
}

TEST(Directory, GetXCollectsInvAcksBeforeReplying)
{
    DirectoryHarness h;
    // Two readers share the block (via fetch path).
    h.inject(MsgType::GetS, 100, 3);
    h.drain(3);
    h.inject(MsgType::GetS, 100, 5);
    h.reply(MsgType::FetchResp, 100, 3, false);
    h.drain(3);
    h.drain(5);

    // A third node writes.
    h.inject(MsgType::GetX, 100, 7);
    // Sharers 3 and 5 receive Inv; node 7 must NOT have data yet.
    auto to3 = h.drain(3);
    auto to5 = h.drain(5);
    ASSERT_EQ(to3.size(), 1u);
    ASSERT_EQ(to5.size(), 1u);
    EXPECT_EQ(to3[0].type, MsgType::Inv);
    EXPECT_EQ(to5[0].type, MsgType::Inv);
    EXPECT_TRUE(h.drain(7).empty());
    EXPECT_TRUE(h.dir_.busy(100));

    // First ack: still waiting.
    h.reply(MsgType::InvAck, 100, 3);
    EXPECT_TRUE(h.drain(7).empty());
    // Second ack completes the write.
    h.reply(MsgType::InvAck, 100, 5);
    auto to7 = h.drain(7);
    ASSERT_EQ(to7.size(), 1u);
    EXPECT_EQ(to7[0].type, MsgType::DataM);
    EXPECT_EQ(h.dir_.entryOf(100)->state, DirEntry::State::Exclusive);
    EXPECT_EQ(h.dir_.entryOf(100)->owner, 7u);
}

TEST(Directory, DirtyFetchWritesBackAndForwards)
{
    DirectoryHarness h;
    h.inject(MsgType::GetX, 100, 3); // node 3 owns (will dirty it)
    h.drain(3);
    h.inject(MsgType::GetS, 100, 5);
    h.drain(5);
    // Owner responds dirty.
    h.reply(MsgType::FetchResp, 100, 3, /*dirty=*/true);
    auto to5 = h.drain(5);
    ASSERT_EQ(to5.size(), 1u);
    EXPECT_EQ(to5[0].type, MsgType::DataS);
    const std::uint64_t writes = h.dir_.stats().get("dir.mem_access");
    EXPECT_GE(writes, 2u); // initial read + writeback at least
}

TEST(Directory, FetchStaleFallsBackToMemory)
{
    DirectoryHarness h;
    h.inject(MsgType::GetS, 100, 3); // 3 owns E
    h.drain(3);
    h.inject(MsgType::GetS, 100, 5);
    h.drain(3); // the Fetch
    // Owner silently evicted (no-hints mode): stale.
    h.reply(MsgType::FetchStale, 100, 3);
    auto to5 = h.drain(5);
    ASSERT_EQ(to5.size(), 1u);
    EXPECT_EQ(to5[0].type, MsgType::DataS);
}

TEST(Directory, PutMRaceWithFetchInvCompletesCleanly)
{
    DirectoryHarness h;
    h.inject(MsgType::GetX, 100, 3);
    h.drain(3);
    h.inject(MsgType::GetX, 100, 5); // triggers FetchInv to 3
    h.drain(3);
    // Node 3's PutM crossed the FetchInv in flight.
    h.inject(MsgType::PutM, 100, 3);
    EXPECT_TRUE(h.dir_.busy(100)); // still waiting for the stale resp
    EXPECT_EQ(h.dir_.stats().get("dir.putm_race"), 1u);
    h.reply(MsgType::FetchStale, 100, 3);
    auto to5 = h.drain(5);
    ASSERT_EQ(to5.size(), 1u);
    EXPECT_EQ(to5[0].type, MsgType::DataM);
    EXPECT_EQ(h.dir_.entryOf(100)->owner, 5u);
}

TEST(Directory, ReplacementHintsUpdateState)
{
    DirectoryHarness h;
    h.inject(MsgType::GetS, 100, 3); // E{3}
    h.drain(3);
    h.inject(MsgType::PutE, 100, 3);
    EXPECT_EQ(h.dir_.entryOf(100)->state, DirEntry::State::Uncached);
    EXPECT_EQ(h.dir_.stats().get("dir.pute"), 1u);

    // Stale hints are counted and ignored.
    h.inject(MsgType::PutE, 100, 5);
    EXPECT_EQ(h.dir_.stats().get("dir.pute_stale"), 1u);
    h.inject(MsgType::PutS, 100, 5);
    EXPECT_EQ(h.dir_.stats().get("dir.puts_stale"), 1u);
    h.inject(MsgType::PutM, 100, 5);
    EXPECT_EQ(h.dir_.stats().get("dir.putm_stale"), 1u);
}

TEST(Directory, PutSRemovesSharerAndEmptiesToUncached)
{
    DirectoryHarness h;
    h.inject(MsgType::GetS, 100, 3);
    h.drain(3);
    h.inject(MsgType::GetS, 100, 5);
    h.reply(MsgType::FetchResp, 100, 3, false);
    h.drain(3);
    h.drain(5);
    ASSERT_EQ(h.dir_.entryOf(100)->state, DirEntry::State::Shared);
    h.inject(MsgType::PutS, 100, 3);
    EXPECT_EQ(h.dir_.entryOf(100)->state, DirEntry::State::Shared);
    h.inject(MsgType::PutS, 100, 5);
    EXPECT_EQ(h.dir_.entryOf(100)->state, DirEntry::State::Uncached);
}

TEST(Directory, BusyBlockQueuesFifoAndDrains)
{
    DirectoryHarness h;
    h.inject(MsgType::GetX, 100, 3); // E{3}
    h.drain(3);
    // Two more writers while 3 owns it.  The first starts a fetch
    // transaction; the second queues behind it.
    h.inject(MsgType::GetX, 100, 5);
    h.inject(MsgType::GetX, 100, 7);
    EXPECT_EQ(h.dir_.stats().get("dir.queued"), 1u);
    // 3 responds; 5 is served; the queued 7 then FetchInvs 5.
    h.reply(MsgType::FetchResp, 100, 3, true);
    auto to5 = h.drain(5);
    ASSERT_GE(to5.size(), 1u);
    EXPECT_EQ(to5[0].type, MsgType::DataM);
    // 5 now gets the FetchInv for the queued transaction.
    ASSERT_EQ(to5.size(), 2u);
    EXPECT_EQ(to5[1].type, MsgType::FetchInv);
    h.reply(MsgType::FetchResp, 100, 5, true);
    auto to7 = h.drain(7);
    ASSERT_EQ(to7.size(), 1u);
    EXPECT_EQ(to7[0].type, MsgType::DataM);
    EXPECT_EQ(h.dir_.entryOf(100)->owner, 7u);
}

TEST(Directory, UpgradeFromSharerSkipsSelfInvalidation)
{
    DirectoryHarness h;
    // Make the block Shared{3,5}.
    h.inject(MsgType::GetS, 100, 3);
    h.drain(3);
    h.inject(MsgType::GetS, 100, 5);
    h.reply(MsgType::FetchResp, 100, 3, false);
    h.drain(3);
    h.drain(5);
    // Sharer 5 upgrades: only 3 must receive an Inv.
    h.inject(MsgType::GetX, 100, 5);
    auto to3 = h.drain(3);
    ASSERT_EQ(to3.size(), 1u);
    EXPECT_EQ(to3[0].type, MsgType::Inv);
    EXPECT_TRUE(h.drain(5).empty()); // no self-inv, no data yet
    h.reply(MsgType::InvAck, 100, 3);
    auto to5 = h.drain(5);
    ASSERT_EQ(to5.size(), 1u);
    EXPECT_EQ(to5[0].type, MsgType::DataM);
}

} // namespace
} // namespace csr
