/**
 * @file
 * Unit tests for the replacement-policy framework and the paper's
 * algorithms (GD, BCL, DCL, ACL), including hand-verified scenario
 * walk-throughs of Figure 1 / Section 2 semantics, ETD behaviour,
 * the ACL automaton, offline oracles, and the Section 5 hardware
 * overhead model.
 */

#include <gtest/gtest.h>

#include "cache/AclPolicy.h"
#include "cache/BclPolicy.h"
#include "cache/BeladyPolicy.h"
#include "cache/DclPolicy.h"
#include "cache/ExtendedTagDirectory.h"
#include "cache/GreedyDualPolicy.h"
#include "cache/HwOverhead.h"
#include "cache/LfuPolicy.h"
#include "cache/LruPolicy.h"
#include "cache/PolicyFactory.h"
#include "cache/RandomPolicy.h"
#include "util/Random.h"

#include "TestHelpers.h"

namespace csr
{
namespace
{

using test::MiniCache;
using test::blk;
using test::singleSet;

/** Cost table where block n costs what the test assigns (default 1). */
TableCost
costs(std::initializer_list<std::pair<Addr, Cost>> entries)
{
    TableCost t(1.0);
    for (const auto &[block, cost] : entries)
        t.set(block, cost);
    return t;
}

// ---------------------------------------------------------------------------
// CacheGeometry / CacheModel
// ---------------------------------------------------------------------------

TEST(CacheGeometry, PaperL2Decomposition)
{
    CacheGeometry g(16 * 1024, 4, 64); // the paper's L2
    EXPECT_EQ(g.numSets(), 64u);
    EXPECT_EQ(g.blockBits(), 6);
    EXPECT_EQ(g.setBits(), 6);
    const Addr addr = 0xABCDEF40;
    EXPECT_EQ(g.blockAddr(addr), addr >> 6);
    EXPECT_EQ(g.setIndex(addr), (addr >> 6) & 63);
    EXPECT_EQ(g.tag(addr), addr >> 12);
    EXPECT_EQ(g.blockAddrOf(g.setIndex(addr), g.tag(addr)),
              g.blockAddr(addr));
}

TEST(CacheGeometry, DirectMapped)
{
    CacheGeometry g(4 * 1024, 1, 64); // the paper's L1
    EXPECT_EQ(g.numSets(), 64u);
    EXPECT_EQ(g.assoc(), 1u);
}

TEST(CacheModel, InstallLookupInvalidate)
{
    CacheGeometry g = singleSet(4);
    CacheModel model(g); // policy-less raw store
    EXPECT_EQ(model.lookup(0, 7), kInvalidWay);
    EXPECT_EQ(model.findFreeWay(0), 0);
    model.install(0, 0, 7);
    model.install(0, 1, 8);
    EXPECT_EQ(model.lookup(0, 7), 0);
    EXPECT_EQ(model.lookup(0, 8), 1);
    EXPECT_EQ(model.findFreeWay(0), 2);
    EXPECT_EQ(model.countValid(), 2u);
    EXPECT_EQ(model.validCountOf(0), 2);
    model.invalidateWay(0, 0);
    EXPECT_EQ(model.lookup(0, 7), kInvalidWay);
    EXPECT_EQ(model.findFreeWay(0), 0);
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

TEST(Lru, EvictsLeastRecentlyUsed)
{
    TableCost flat(1.0);
    MiniCache cache(singleSet(4),
                    std::make_unique<LruPolicy>(singleSet(4)), flat);
    for (Addr n : {1, 2, 3, 4})
        EXPECT_FALSE(cache.access(blk(n)));
    EXPECT_TRUE(cache.access(blk(1))); // promote 1
    EXPECT_FALSE(cache.access(blk(5)));
    // Victim must be 2 (the LRU after 1's promotion).
    EXPECT_FALSE(cache.isResident(blk(2)));
    for (Addr n : {1, 3, 4, 5})
        EXPECT_TRUE(cache.isResident(blk(n))) << "block " << n;
}

TEST(Lru, InvalidationFreesWay)
{
    TableCost flat(1.0);
    MiniCache cache(singleSet(2),
                    std::make_unique<LruPolicy>(singleSet(2)), flat);
    cache.access(blk(1));
    cache.access(blk(2));
    cache.invalidate(blk(1));
    EXPECT_FALSE(cache.isResident(blk(1)));
    // Next miss fills the freed way without evicting 2.
    cache.access(blk(3));
    EXPECT_TRUE(cache.isResident(blk(2)));
    EXPECT_TRUE(cache.isResident(blk(3)));
}

TEST(Lru, StackIsPermutationUnderRandomOps)
{
    CacheGeometry g(1024, 4, 64); // 4 sets x 4 ways
    auto policy = std::make_unique<LruPolicy>(g);
    LruPolicy *lru = policy.get();
    TableCost flat(1.0);
    MiniCache cache(g, std::move(policy), flat);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr = blk(rng.nextBelow(64));
        if (rng.nextBool(0.1))
            cache.invalidate(addr);
        else
            cache.access(addr);
    }
    for (std::uint32_t set = 0; set < g.numSets(); ++set) {
        const auto &stack = lru->stackOf(set);
        std::set<int> seen(stack.begin(), stack.end());
        EXPECT_EQ(seen.size(), stack.size()) << "duplicate way in stack";
        std::uint32_t valid = 0;
        for (std::uint32_t w = 0; w < g.assoc(); ++w)
            valid += cache.model().isValid(set, static_cast<int>(w)) ? 1 : 0;
        EXPECT_EQ(valid, stack.size()) << "stack != valid lines";
    }
}

// ---------------------------------------------------------------------------
// GreedyDual
// ---------------------------------------------------------------------------

TEST(GreedyDual, EvictsMinCreditAndDeflates)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<GreedyDualPolicy>(singleSet(4));
    GreedyDualPolicy *gd = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5));
    // Min credit is 1 (blocks 2,3,4); ties break toward the LRU end,
    // so block 2 goes; survivors are deflated by 1.
    EXPECT_FALSE(cache.isResident(blk(2)));
    EXPECT_TRUE(cache.isResident(blk(1)));
    const std::uint32_t set = 0;
    const int way1 = cache.model().lookup(set, cache.geometry().tag(blk(1)));
    EXPECT_DOUBLE_EQ(gd->creditOf(set, way1), 3.0);
}

TEST(GreedyDual, HitRestoresFullCost)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<GreedyDualPolicy>(singleSet(4));
    GreedyDualPolicy *gd = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5)); // deflates block 1 to 3
    EXPECT_TRUE(cache.access(blk(1)));
    const int way1 = cache.model().lookup(0, cache.geometry().tag(blk(1)));
    EXPECT_DOUBLE_EQ(gd->creditOf(0, way1), 4.0);
}

TEST(GreedyDual, HighCostBlockSurvivesManyEvictions)
{
    auto table = costs({{1, 8.0}});
    MiniCache cache(singleSet(4),
                    std::make_unique<GreedyDualPolicy>(singleSet(4)),
                    table);
    cache.access(blk(1));
    for (Addr n = 2; n <= 8; ++n)
        cache.access(blk(n));
    // Seven cheap fills later the cost-8 block is still resident:
    // deflation only happens when the victim's own credit is
    // non-zero, which occurs once every few evictions here.
    EXPECT_TRUE(cache.isResident(blk(1)));
    // Keep streaming cheap blocks: the credit eventually drains and
    // the expensive block goes.
    for (Addr n = 9; n <= 40; ++n)
        cache.access(blk(n));
    EXPECT_FALSE(cache.isResident(blk(1)));
}

// ---------------------------------------------------------------------------
// BCL (Figure 1 semantics)
// ---------------------------------------------------------------------------

TEST(Bcl, ReservationAndTwoXDepreciation)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<BclPolicy>(singleSet(4));
    BclPolicy *bcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);

    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 4.0); // Acost = cost of LRU (blk 1)

    // Miss 5: the scan finds block 2 (second-LRU, cost 1 < 4);
    // Acost is depreciated by 2*1.
    cache.access(blk(5));
    EXPECT_FALSE(cache.isResident(blk(2)));
    EXPECT_TRUE(cache.isResident(blk(1)));
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 2.0);
    EXPECT_TRUE(bcl->isReserved(0));

    // Miss 6 sacrifices block 3; Acost hits 0.
    cache.access(blk(6));
    EXPECT_FALSE(cache.isResident(blk(3)));
    EXPECT_TRUE(cache.isResident(blk(1)));
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 0.0);

    // Miss 7: nothing is cheaper than Acost=0, so the reserved LRU
    // block finally goes -- a failed reservation.
    cache.access(blk(7));
    EXPECT_FALSE(cache.isResident(blk(1)));
    EXPECT_FALSE(bcl->isReserved(0));
    EXPECT_EQ(bcl->stats().get("csl.reservation.start"), 1u);
    EXPECT_EQ(bcl->stats().get("csl.reservation.sacrifice"), 2u);
    EXPECT_EQ(bcl->stats().get("csl.reservation.fail"), 1u);
}

TEST(Bcl, AcostReloadsWhenNewBlockEntersLruPosition)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<BclPolicy>(singleSet(4));
    BclPolicy *bcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 4.0);
    // Hit on the LRU block: block 2 becomes LRU, Acost = its cost.
    EXPECT_TRUE(cache.access(blk(1)));
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 1.0);
    // With Acost=1 nothing is strictly cheaper: pure LRU behaviour.
    cache.access(blk(5));
    EXPECT_FALSE(cache.isResident(blk(2)));
}

TEST(Bcl, ReservationSuccessOnLruHit)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<BclPolicy>(singleSet(4));
    BclPolicy *bcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5)); // reserves block 1
    EXPECT_TRUE(bcl->isReserved(0));
    EXPECT_TRUE(cache.access(blk(1))); // the bet pays off
    EXPECT_FALSE(bcl->isReserved(0));
    EXPECT_EQ(bcl->stats().get("csl.reservation.success"), 1u);
    // Block 3 is the new LRU.
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 1.0);
}

TEST(Bcl, ScanSkipsExpensiveNonLruBlocks)
{
    // LRU block costs 3; the second-LRU costs 4 (skipped: implicit
    // secondary reservation); the third-LRU costs 1 and is sacrificed.
    auto table = costs({{1, 4.0}, {2, 3.0}});
    auto policy = std::make_unique<BclPolicy>(singleSet(4));
    BclPolicy *bcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {2, 1, 3, 4})
        cache.access(blk(n)); // stack [4,3,1,2], LRU=2, Acost=3
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 3.0);
    cache.access(blk(5));
    EXPECT_FALSE(cache.isResident(blk(3)));
    EXPECT_TRUE(cache.isResident(blk(1)));
    EXPECT_TRUE(cache.isResident(blk(2)));
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 1.0); // 3 - 2*1
}

TEST(Bcl, InvalidationOfReservedBlockEndsReservationNeutrally)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<BclPolicy>(singleSet(4));
    BclPolicy *bcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5)); // reserve block 1
    EXPECT_TRUE(bcl->isReserved(0));
    cache.invalidate(blk(1));
    EXPECT_FALSE(bcl->isReserved(0));
    EXPECT_EQ(bcl->stats().get("csl.reservation.success"), 0u);
    EXPECT_EQ(bcl->stats().get("csl.reservation.fail"), 0u);
    EXPECT_EQ(bcl->stats().get("csl.reservation.invalidated"), 1u);
}

TEST(Bcl, DepreciationFactorIsConfigurable)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<BclPolicy>(singleSet(4), 1.0);
    BclPolicy *bcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5));
    EXPECT_DOUBLE_EQ(bcl->acostOf(0), 3.0); // 4 - 1*1
}

TEST(Bcl, InfiniteRatioNeverDepreciates)
{
    // Infinite cost ratio: low cost 0, high cost 1 (Section 3.1).
    auto table = costs({{1, 1.0}, {2, 0.0}, {3, 0.0}, {4, 0.0},
                        {5, 0.0}, {6, 0.0}, {7, 0.0}, {8, 0.0}});
    auto policy = std::make_unique<BclPolicy>(singleSet(4));
    BclPolicy *bcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    // Zero-cost sacrifices never deplete Acost: the high-cost block
    // is reserved for as long as zero-cost blocks exist.
    for (Addr n = 5; n <= 8; ++n) {
        cache.access(blk(n));
        EXPECT_TRUE(cache.isResident(blk(1)));
        EXPECT_DOUBLE_EQ(bcl->acostOf(0), 1.0);
    }
}

// ---------------------------------------------------------------------------
// ETD
// ---------------------------------------------------------------------------

TEST(Etd, InsertLookupInvalidate)
{
    ExtendedTagDirectory etd(2, 3);
    EXPECT_FALSE(etd.contains(0, 10));
    etd.insert(0, 10, 2.0);
    EXPECT_TRUE(etd.contains(0, 10));
    EXPECT_FALSE(etd.contains(1, 10)); // per-set isolation
    auto hit = etd.lookupAndInvalidate(0, 10);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(*hit, 2.0);
    EXPECT_FALSE(etd.contains(0, 10)); // consumed
    EXPECT_FALSE(etd.lookupAndInvalidate(0, 10).has_value());
}

TEST(Etd, LruAllocationEvictsOldest)
{
    ExtendedTagDirectory etd(1, 3);
    etd.insert(0, 1, 1.0);
    etd.insert(0, 2, 1.0);
    etd.insert(0, 3, 1.0);
    etd.insert(0, 4, 1.0); // evicts tag 1 (oldest)
    EXPECT_FALSE(etd.contains(0, 1));
    EXPECT_TRUE(etd.contains(0, 2));
    EXPECT_TRUE(etd.contains(0, 4));
    EXPECT_EQ(etd.validCount(0), 3u);
}

TEST(Etd, DuplicateInsertRefreshesInPlace)
{
    ExtendedTagDirectory etd(1, 3);
    etd.insert(0, 1, 1.0);
    etd.insert(0, 1, 5.0);
    EXPECT_EQ(etd.validCount(0), 1u);
    auto hit = etd.lookupAndInvalidate(0, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_DOUBLE_EQ(*hit, 5.0);
}

TEST(Etd, InvalidateAllAndTag)
{
    ExtendedTagDirectory etd(1, 3);
    etd.insert(0, 1, 1.0);
    etd.insert(0, 2, 1.0);
    etd.invalidateTag(0, 1);
    EXPECT_FALSE(etd.contains(0, 1));
    EXPECT_TRUE(etd.contains(0, 2));
    etd.invalidateAll(0);
    EXPECT_EQ(etd.validCount(0), 0u);
}

TEST(Etd, TagAliasingCausesFalseMatches)
{
    ExtendedTagDirectory etd(1, 3, /*alias_bits=*/2);
    etd.insert(0, 0b0010, 1.0);
    // 0b0110 aliases to the same low 2 bits (0b10).
    EXPECT_TRUE(etd.contains(0, 0b0110));
    auto hit = etd.lookupAndInvalidate(0, 0b0110);
    EXPECT_TRUE(hit.has_value());
}

// ---------------------------------------------------------------------------
// DCL
// ---------------------------------------------------------------------------

TEST(Dcl, DepreciationOnlyOnEtdHit)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<DclPolicy>(singleSet(4));
    DclPolicy *dcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    const CacheGeometry g = singleSet(4);

    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5)); // sacrifice block 2 -> ETD
    EXPECT_FALSE(cache.isResident(blk(2)));
    EXPECT_DOUBLE_EQ(dcl->acostOf(0), 4.0); // NOT depreciated (vs BCL)
    EXPECT_TRUE(dcl->etd().contains(0, g.tag(blk(2))));

    cache.access(blk(6)); // sacrifice block 3 -> ETD
    EXPECT_DOUBLE_EQ(dcl->acostOf(0), 4.0);

    // Block 2 returns: the reservation provably cost a miss; only now
    // is Acost depreciated (by 2x the entry's cost).
    cache.access(blk(2));
    EXPECT_DOUBLE_EQ(dcl->acostOf(0), 2.0);
    EXPECT_FALSE(dcl->etd().contains(0, g.tag(blk(2))));
    EXPECT_EQ(dcl->stats().get("dcl.etd.hit"), 1u);

    // Block 3 returns too: Acost is exhausted mid-access, so the
    // refill evicts the reserved LRU block (failure).  A new block
    // then occupies the LRU position and Acost reloads to its cost.
    cache.access(blk(3));
    EXPECT_FALSE(cache.isResident(blk(1)));
    EXPECT_EQ(dcl->stats().get("csl.reservation.fail"), 1u);
    EXPECT_DOUBLE_EQ(dcl->acostOf(0), 1.0); // cost of the new LRU block
}

TEST(Dcl, LruHitInvalidatesAllEtdEntries)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<DclPolicy>(singleSet(4));
    DclPolicy *dcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5));
    cache.access(blk(6));
    EXPECT_EQ(dcl->etd().validCount(0), 2u);
    EXPECT_TRUE(cache.access(blk(1))); // hit on the reserved LRU block
    EXPECT_EQ(dcl->etd().validCount(0), 0u);
    EXPECT_EQ(dcl->stats().get("csl.reservation.success"), 1u);
}

TEST(Dcl, CoherenceInvalidationScrubsEtd)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<DclPolicy>(singleSet(4));
    DclPolicy *dcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    const CacheGeometry g = singleSet(4);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5)); // block 2 -> ETD
    cache.invalidate(blk(2));
    EXPECT_FALSE(dcl->etd().contains(0, g.tag(blk(2))));
    // Invalidating a block that is nowhere must not crash.
    cache.invalidate(blk(42));
}

TEST(Dcl, EtdTagsExclusiveWithCacheTags)
{
    CacheGeometry g(1024, 4, 64);
    auto table = costs({{1, 8.0}, {5, 8.0}, {9, 4.0}});
    auto policy = std::make_unique<DclPolicy>(g);
    DclPolicy *dcl = policy.get();
    MiniCache cache(g, std::move(policy), table);
    Rng rng(1234);
    for (int i = 0; i < 4000; ++i) {
        const Addr addr = blk(rng.nextBelow(48));
        if (rng.nextBool(0.05))
            cache.invalidate(addr);
        else
            cache.access(addr);
        // Exclusivity invariant (full tags only): no resident tag may
        // also be valid in the ETD.
        for (std::uint32_t set = 0; set < g.numSets(); ++set) {
            for (std::uint32_t w = 0; w < g.assoc(); ++w) {
                const int way = static_cast<int>(w);
                if (cache.model().isValid(set, way)) {
                    ASSERT_FALSE(dcl->etd().contains(
                        set, cache.model().tagAt(set, way)))
                        << "resident tag also in ETD";
                }
            }
        }
    }
}

TEST(Dcl, AliasedEtdFalseMatchDepreciatesEarly)
{
    // With 2 low tag bits, blocks 2 and 6 alias (10 vs 110).
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<DclPolicy>(singleSet(4),
                                              /*etd_alias_bits=*/2);
    DclPolicy *dcl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5)); // block 2 (tag 2) -> ETD, masked to 0b10
    EXPECT_DOUBLE_EQ(dcl->acostOf(0), 4.0);
    // Block 6 (tag 0b110) falsely matches and depreciates Acost.
    cache.access(blk(6));
    EXPECT_DOUBLE_EQ(dcl->acostOf(0), 2.0);
    EXPECT_EQ(dcl->stats().get("dcl.etd.hit"), 1u);
}

TEST(Dcl, NamesReflectAliasing)
{
    EXPECT_EQ(DclPolicy(singleSet(4)).name(), "DCL");
    EXPECT_EQ(DclPolicy(singleSet(4), 4).name(), "DCL(alias)");
    EXPECT_EQ(AclPolicy(singleSet(4)).name(), "ACL");
    EXPECT_EQ(AclPolicy(singleSet(4), 4).name(), "ACL(alias)");
}

// ---------------------------------------------------------------------------
// ACL (Figure 2 automaton)
// ---------------------------------------------------------------------------

TEST(Acl, StartsDisabledAndEvictsLruDespiteCost)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<AclPolicy>(singleSet(4));
    AclPolicy *acl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    EXPECT_EQ(acl->counterOf(0), 0u);
    EXPECT_FALSE(acl->enabled(0));
    cache.access(blk(5));
    // Disabled: pure LRU -- the expensive block 1 goes, but it is
    // remembered in the ETD because cheaper blocks existed.
    EXPECT_FALSE(cache.isResident(blk(1)));
    EXPECT_TRUE(acl->etd().contains(0, singleSet(4).tag(blk(1))));
}

TEST(Acl, EtdHitWhileDisabledReenablesWithCounterTwo)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<AclPolicy>(singleSet(4));
    AclPolicy *acl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5)); // evicts 1, watches it in ETD
    cache.access(blk(1)); // the missed opportunity returns
    EXPECT_EQ(acl->counterOf(0), 2u);
    EXPECT_TRUE(acl->enabled(0));
    EXPECT_EQ(acl->etd().validCount(0), 0u);
    EXPECT_EQ(acl->stats().get("acl.reenable"), 1u);
}

TEST(Acl, SuccessIncrementsAndFailureDecrementsCounter)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<AclPolicy>(singleSet(4));
    AclPolicy *acl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);

    // Enable via the watch path.
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5));
    cache.access(blk(1));
    ASSERT_EQ(acl->counterOf(0), 2u);

    // Walk block 1 down to the LRU position with cheap fills.
    for (Addr n : {6, 7, 8})
        cache.access(blk(n));
    ASSERT_TRUE(cache.isResident(blk(1)));
    ASSERT_DOUBLE_EQ(acl->acostOf(0), 4.0);

    // Enabled reservation: miss 9 sacrifices a cheap block...
    cache.access(blk(9));
    EXPECT_TRUE(acl->isReserved(0));
    // ...and the reserved block is hit: success, counter -> 3.
    EXPECT_TRUE(cache.access(blk(1)));
    EXPECT_EQ(acl->counterOf(0), 3u);

    // Walk block 1 back down, then make the reservation fail.
    for (Addr n : {10, 11, 12})
        cache.access(blk(n));
    ASSERT_DOUBLE_EQ(acl->acostOf(0), 4.0);
    cache.access(blk(13)); // reserve, sacrifice one cheap block
    EXPECT_TRUE(acl->isReserved(0));
    // The sacrificed blocks come back (ETD hits): Acost drains, and
    // the next scans evict the reserved block -> failure.
    cache.access(blk(10));
    cache.access(blk(11));
    EXPECT_FALSE(cache.isResident(blk(1)));
    EXPECT_EQ(acl->counterOf(0), 2u);
    EXPECT_EQ(acl->stats().get("csl.reservation.fail"), 1u);
}

TEST(Acl, CounterSaturatesAtThree)
{
    auto table = costs({{1, 4.0}});
    auto policy = std::make_unique<AclPolicy>(singleSet(4));
    AclPolicy *acl = policy.get();
    MiniCache cache(singleSet(4), std::move(policy), table);
    for (Addr n : {1, 2, 3, 4})
        cache.access(blk(n));
    cache.access(blk(5));
    cache.access(blk(1)); // counter = 2
    // Two successful reservations in a row.
    for (int round = 0; round < 3; ++round) {
        for (Addr n : {20, 21, 22})
            cache.access(blk(n + static_cast<Addr>(round) * 10));
        cache.access(blk(30 + static_cast<Addr>(round)));
        cache.access(blk(1)); // success
    }
    EXPECT_EQ(acl->counterOf(0), 3u); // saturated, not 5
}

TEST(Acl, UniformCostsNeverEnable)
{
    CacheGeometry g(1024, 4, 64);
    auto policy = std::make_unique<AclPolicy>(g);
    AclPolicy *acl = policy.get();
    TableCost flat(1.0);
    MiniCache cache(g, std::move(policy), flat);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        cache.access(blk(rng.nextBelow(64)));
    for (std::uint32_t set = 0; set < g.numSets(); ++set)
        EXPECT_EQ(acl->counterOf(set), 0u);
}

// ---------------------------------------------------------------------------
// Uniform-cost equivalence with LRU (BCL / DCL / ACL)
// ---------------------------------------------------------------------------

class UniformCostEquivalence
    : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(UniformCostEquivalence, MatchesLruHitMissSequence)
{
    CacheGeometry g(2048, 4, 64); // 8 sets x 4 ways
    TableCost flat(1.0);
    MiniCache lru(g, makePolicy(PolicyKind::Lru, g), flat);
    MiniCache alg(g, makePolicy(GetParam(), g), flat);
    Rng rng(77);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = blk(rng.nextBelow(200));
        if (rng.nextBool(0.03)) {
            lru.invalidate(addr);
            alg.invalidate(addr);
            continue;
        }
        ASSERT_EQ(lru.access(addr), alg.access(addr))
            << "diverged at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(CostSensitive, UniformCostEquivalence,
                         ::testing::Values(PolicyKind::Bcl, PolicyKind::Dcl,
                                           PolicyKind::Acl),
                         [](const auto &info) {
                             return policyKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// Cross-policy stress invariants
// ---------------------------------------------------------------------------

class PolicyStress : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(PolicyStress, SurvivesRandomOpsWithInvariants)
{
    CacheGeometry g(2048, 4, 64);
    auto policy = makePolicy(GetParam(), g);
    auto *stack = dynamic_cast<StackPolicyBase *>(policy.get());
    auto *csl = dynamic_cast<CostSensitiveLruBase *>(policy.get());
    ASSERT_NE(stack, nullptr);
    TableCost table(1.0);
    Rng cost_rng(50);
    for (Addr b = 0; b < 256; ++b)
        table.set(b, static_cast<Cost>(1 + cost_rng.nextBelow(8)));
    MiniCache cache(g, std::move(policy), table);
    Rng rng(51);
    for (int i = 0; i < 30000; ++i) {
        const Addr addr = blk(rng.nextBelow(256));
        if (rng.nextBool(0.08))
            cache.invalidate(addr);
        else
            cache.access(addr);
        if (i % 997 == 0) {
            for (std::uint32_t set = 0; set < g.numSets(); ++set) {
                const auto &order = stack->stackOf(set);
                std::set<int> seen(order.begin(), order.end());
                ASSERT_EQ(seen.size(), order.size());
                std::uint32_t valid = 0;
                for (std::uint32_t w = 0; w < g.assoc(); ++w)
                    valid += cache.model().isValid(set,
                                                   static_cast<int>(w))
                                 ? 1
                                 : 0;
                ASSERT_EQ(valid, order.size());
                if (csl) {
                    ASSERT_GE(csl->acostOf(set), 0.0);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyStress,
                         ::testing::Values(PolicyKind::Lru,
                                           PolicyKind::Lfu,
                                           PolicyKind::GreedyDual,
                                           PolicyKind::Bcl, PolicyKind::Dcl,
                                           PolicyKind::Acl),
                         [](const auto &info) {
                             return policyKindName(info.param);
                         });

// ---------------------------------------------------------------------------
// Offline oracles
// ---------------------------------------------------------------------------

TEST(Belady, ClassicExampleBeatsLru)
{
    // Sequence A B A C B on a 2-way set: OPT misses 3, LRU misses 4.
    CacheGeometry g = singleSet(2);
    const std::vector<Addr> seq = {1, 2, 1, 3, 2};

    TableCost flat(1.0);
    auto run = [&](PolicyPtr policy) {
        if (auto *opt = dynamic_cast<BeladyPolicy *>(policy.get())) {
            std::vector<Addr> stream;
            for (Addr a : seq)
                stream.push_back(g.blockAddr(blk(a)));
            opt->prepare(stream);
        }
        MiniCache cache(g, std::move(policy), flat);
        int misses = 0;
        for (Addr a : seq)
            misses += cache.access(blk(a)) ? 0 : 1;
        return misses;
    };

    EXPECT_EQ(run(std::make_unique<BeladyPolicy>(g)), 3);
    EXPECT_EQ(run(std::make_unique<LruPolicy>(g)), 4);
}

TEST(Belady, NeverWorseThanLruOnRandomTraces)
{
    CacheGeometry g(1024, 4, 64);
    TableCost flat(1.0);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        std::vector<Addr> seq;
        for (int i = 0; i < 3000; ++i)
            seq.push_back(rng.nextBelow(80));

        auto count_misses = [&](PolicyPtr policy) {
            if (auto *opt = dynamic_cast<BeladyPolicy *>(policy.get())) {
                std::vector<Addr> stream;
                for (Addr a : seq)
                    stream.push_back(g.blockAddr(blk(a)));
                opt->prepare(stream);
            }
            MiniCache cache(g, std::move(policy), flat);
            int misses = 0;
            for (Addr a : seq)
                misses += cache.access(blk(a)) ? 0 : 1;
            return misses;
        };

        const int opt = count_misses(std::make_unique<BeladyPolicy>(g));
        const int lru = count_misses(std::make_unique<LruPolicy>(g));
        EXPECT_LE(opt, lru) << "seed " << seed;
    }
}

TEST(CostAwareBelady, EvictsNeverReusedFirst)
{
    CacheGeometry g = singleSet(4);
    // 1,2,3,4 fill; 5 must evict 2 (never reused) even though it is
    // the most expensive block.
    const std::vector<Addr> seq = {1, 2, 3, 4, 5, 1, 3, 4, 5};
    auto table = costs({{2, 100.0}});
    auto policy = std::make_unique<CostAwareBeladyPolicy>(g);
    std::vector<Addr> stream;
    for (Addr a : seq)
        stream.push_back(g.blockAddr(blk(a)));
    policy->prepare(stream);
    MiniCache cache(g, std::move(policy), table);
    for (std::size_t i = 0; i < 5; ++i)
        cache.access(blk(seq[i]));
    EXPECT_FALSE(cache.isResident(blk(2)));
    for (Addr n : {1, 3, 4, 5})
        EXPECT_TRUE(cache.isResident(blk(n)));
}

// ---------------------------------------------------------------------------
// Policy factory
// ---------------------------------------------------------------------------

TEST(PolicyFactory, ParseRoundTrip)
{
    EXPECT_EQ(parsePolicyKind("lru"), PolicyKind::Lru);
    EXPECT_EQ(parsePolicyKind("GD"), PolicyKind::GreedyDual);
    EXPECT_EQ(parsePolicyKind("Bcl"), PolicyKind::Bcl);
    EXPECT_EQ(parsePolicyKind("DCL"), PolicyKind::Dcl);
    EXPECT_EQ(parsePolicyKind("acl"), PolicyKind::Acl);
    EXPECT_EQ(parsePolicyKind("opt"), PolicyKind::Opt);
}

TEST(PolicyFactory, CreatesEveryKind)
{
    CacheGeometry g = singleSet(4);
    for (PolicyKind kind :
         {PolicyKind::Lru, PolicyKind::Random, PolicyKind::Lfu,
          PolicyKind::GreedyDual, PolicyKind::Bcl, PolicyKind::Dcl,
          PolicyKind::Acl, PolicyKind::Opt, PolicyKind::CostOpt}) {
        PolicyPtr policy = makePolicy(kind, g);
        ASSERT_NE(policy, nullptr);
        EXPECT_FALSE(policy->name().empty());
    }
}

TEST(PolicyFactory, PaperPoliciesOrder)
{
    const auto &kinds = paperPolicies();
    ASSERT_EQ(kinds.size(), 4u);
    EXPECT_EQ(kinds[0], PolicyKind::GreedyDual);
    EXPECT_EQ(kinds[1], PolicyKind::Bcl);
    EXPECT_EQ(kinds[2], PolicyKind::Dcl);
    EXPECT_EQ(kinds[3], PolicyKind::Acl);
}

// ---------------------------------------------------------------------------
// Hardware overhead model (Section 5)
// ---------------------------------------------------------------------------

TEST(HwOverhead, PaperDynamicCostExample)
{
    // 4-way, 25-bit tags, 8-bit cost fields, 64-byte blocks.
    HwOverheadParams p;
    EXPECT_EQ(hwBaselineBitsPerSet(p), 4u * (512 + 25));
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::Bcl, p), 5u * 8);
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::GreedyDual, p), 8u * 8);
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::Dcl, p),
              8u * 8 + 3u * 26);
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::Acl, p),
              8u * 8 + 3u * 26 + 3);
    // Paper: ~1.9%, ~2.7%, ~6.6%, ~6.7%.
    EXPECT_NEAR(hwOverheadPercent(PolicyKind::Bcl, p), 1.9, 0.1);
    EXPECT_NEAR(hwOverheadPercent(PolicyKind::Dcl, p), 6.6, 0.1);
    EXPECT_NEAR(hwOverheadPercent(PolicyKind::Acl, p), 6.7, 0.15);
}

TEST(HwOverhead, PaperStaticCostExample)
{
    HwOverheadParams p;
    p.staticCostTable = true;
    // Paper: 0.4%, 1.5%, 4.0%, 4.1%.
    EXPECT_NEAR(hwOverheadPercent(PolicyKind::Bcl, p), 0.4, 0.05);
    EXPECT_NEAR(hwOverheadPercent(PolicyKind::GreedyDual, p), 1.5, 0.05);
    EXPECT_NEAR(hwOverheadPercent(PolicyKind::Dcl, p), 4.0, 0.05);
    EXPECT_NEAR(hwOverheadPercent(PolicyKind::Acl, p), 4.1, 0.1);
}

TEST(HwOverhead, PaperQuantizedLatencyExample)
{
    // Section 5's second example: 2-bit fixed costs, 3-bit computed
    // costs, 5 bits per ETD entry (4-bit aliased tag + valid).
    HwOverheadParams p;
    p.fixedCostBits = 2;
    p.computedCostBits = 3;
    p.etdTagBits = 4;
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::Bcl, p), 11u);
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::GreedyDual, p), 20u);
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::Dcl, p), 32u);
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::Acl, p), 35u);
}

TEST(HwOverhead, LruIsZero)
{
    HwOverheadParams p;
    EXPECT_EQ(hwOverheadBitsPerSet(PolicyKind::Lru, p), 0u);
    EXPECT_EQ(hwOverheadPercent(PolicyKind::Lru, p), 0.0);
}

} // namespace
} // namespace csr
