/**
 * @file
 * Tests for the parallel sweep engine: ThreadPool semantics
 * (including exception propagation), grid expansion/parsing, and the
 * load-bearing property that sweep results are bit-identical
 * regardless of worker count.
 */

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/SweepRunner.h"
#include "sim/TraceStudy.h"
#include "cost/StaticCostModels.h"
#include "util/ThreadPool.h"

namespace csr
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&count] { ++count; }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(2);
    auto a = pool.submit([] { return 21; });
    auto b = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(a.get(), 21);
    EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptionsAndSurvives)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The worker that ran the throwing task must still be alive.
    auto good = pool.submit([] { return 7; });
    EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, ParallelForRethrowsFirstFailure)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        parallelFor(pool, 50,
                    [&ran](std::size_t i) {
                        ++ran;
                        if (i == 13)
                            throw std::runtime_error("task 13");
                    }),
        std::runtime_error);
    // Every task still ran; the failure did not cancel the batch.
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

SweepGrid
smallGrid()
{
    SweepGrid grid;
    grid.scale = WorkloadScale::Test;
    grid.benchmarks = {BenchmarkId::Lu, BenchmarkId::Barnes};
    grid.policies = {PolicyKind::GreedyDual, PolicyKind::Dcl};
    grid.mappings = {CostMapping::Random, CostMapping::FirstTouch};
    grid.ratios = {CostRatio::finite(4), CostRatio::makeInfinite()};
    grid.hafs = {0.1, 0.3};
    return grid;
}

TEST(SweepGrid, ExpandIsStableAndCollapsesHafForFirstTouch)
{
    const SweepGrid grid = smallGrid();
    const auto cells = grid.expand();
    // Random keeps the two HAFs, first-touch collapses them:
    // 2 benchmarks x 2 policies x 2 ratios x (2 + 1) HAF points.
    EXPECT_EQ(cells.size(), 2u * 2u * 2u * 3u);

    const auto again = grid.expand();
    ASSERT_EQ(again.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(cells[i].hash(), again[i].hash()) << "cell " << i;
}

TEST(SweepGrid, HashDistinguishesEveryField)
{
    SweepCell base;
    const std::uint64_t h = base.hash();

    SweepCell cell = base;
    cell.policy = PolicyKind::Bcl;
    EXPECT_NE(cell.hash(), h);

    cell = base;
    cell.benchmark = BenchmarkId::Ocean;
    EXPECT_NE(cell.hash(), h);

    cell = base;
    cell.haf = 0.31;
    EXPECT_NE(cell.hash(), h);

    cell = base;
    cell.l2Assoc = 8;
    EXPECT_NE(cell.hash(), h);

    cell = base;
    cell.depreciationFactor = 1.0;
    EXPECT_NE(cell.hash(), h);
}

TEST(SweepGrid, MappingHashIgnoresPolicyFields)
{
    SweepCell dcl;
    SweepCell gd = dcl;
    gd.policy = PolicyKind::GreedyDual;
    gd.etdAliasBits = 4;
    // Same experiment point => same cost mapping for both policies.
    EXPECT_EQ(dcl.mappingHash(), gd.mappingHash());
    EXPECT_NE(dcl.hash(), gd.hash());
}

TEST(SweepGrid, ParseSpecListsAndPresets)
{
    const SweepGrid grid = parseGridSpec(
        "benchmarks=lu;policies=gd,dcl;mappings=random;"
        "ratios=2,inf;hafs=0.1;scale=test;assocs=2,8");
    EXPECT_EQ(grid.benchmarks.size(), 1u);
    EXPECT_EQ(grid.policies.size(), 2u);
    EXPECT_EQ(grid.ratios.size(), 2u);
    EXPECT_TRUE(grid.ratios[1].infinite);
    EXPECT_EQ(grid.assocs.size(), 2u);
    EXPECT_EQ(grid.scale, WorkloadScale::Test);

    // Presets expand to non-empty grids.
    for (const char *name :
         {"table1", "fig3", "ablation-assoc", "ablation-cachesize",
          "ablation-depreciation", "ablation-etd", "smoke"})
        EXPECT_FALSE(presetGrid(name).expand().empty()) << name;
}

TEST(SweepRunner, ResultsAreBitIdenticalAcrossJobCounts)
{
    const SweepGrid grid = smallGrid();
    const SweepResult serial = SweepRunner(1).run(grid);
    const SweepResult parallel = SweepRunner(8).run(grid);

    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const SweepCellResult &a = serial.cells[i];
        const SweepCellResult &b = parallel.cells[i];
        EXPECT_EQ(a.seed, b.seed) << "cell " << i;
        EXPECT_EQ(a.l2Misses, b.l2Misses) << "cell " << i;
        EXPECT_EQ(a.l2Hits, b.l2Hits) << "cell " << i;
        EXPECT_EQ(a.sampledRefs, b.sampledRefs) << "cell " << i;
        // Bitwise equality, not approximate: determinism is the
        // contract.
        EXPECT_EQ(a.aggregateCost, b.aggregateCost) << "cell " << i;
        EXPECT_EQ(a.lruCost, b.lruCost) << "cell " << i;
        EXPECT_EQ(a.savingsPct, b.savingsPct) << "cell " << i;
    }
}

TEST(SweepRunner, MatchesDirectTraceStudy)
{
    SweepGrid grid;
    grid.scale = WorkloadScale::Test;
    grid.benchmarks = {BenchmarkId::Lu};
    grid.policies = {PolicyKind::Dcl};
    grid.mappings = {CostMapping::Random};
    grid.ratios = {CostRatio::finite(8)};
    grid.hafs = {0.2};

    const SweepResult sweep = SweepRunner(4).run(grid);
    ASSERT_EQ(sweep.cells.size(), 1u);
    const SweepCellResult &res = sweep.cells.front();

    // Replay the same cell by hand through TraceStudy.
    auto workload = makeWorkload(BenchmarkId::Lu, WorkloadScale::Test);
    const SampledTrace trace = buildSampledTrace(*workload, 1);
    const TraceStudy study(trace);
    const RandomTwoCost model(CostRatio::finite(8), 0.2,
                              res.cell.mappingHash());
    PolicyParams params;
    params.seed = res.cell.hash();
    const TraceSimResult direct =
        study.run(PolicyKind::Dcl, model, params);

    EXPECT_EQ(res.l2Misses, direct.l2Misses);
    EXPECT_EQ(res.aggregateCost, direct.aggregateCost);
    EXPECT_EQ(res.lruCost, study.lruCost(model));
}

TEST(SweepResult, TableHasOneRowPerCell)
{
    SweepGrid grid;
    grid.scale = WorkloadScale::Test;
    grid.benchmarks = {BenchmarkId::Lu};
    grid.policies = {PolicyKind::Lru, PolicyKind::Dcl};

    const SweepResult sweep = SweepRunner(2).run(grid);
    EXPECT_EQ(sweep.toTable().numRows(), sweep.cells.size());
    EXPECT_EQ(sweep.jobs, 2u);
    EXPECT_GT(sweep.wallSec, 0.0);
    EXPECT_EQ(sweep.timingTable().numRows(), 11u);
}

} // namespace
} // namespace csr
