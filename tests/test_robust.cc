/**
 * @file
 * Tests for the robustness layer: the typed error hierarchy, the
 * JSONL checkpoint substrate under corrupt and truncated input, the
 * sweep checkpoint codec, per-cell fault isolation and retry,
 * kill-and-resume equivalence, hardened trace parsing, the NUMA
 * stall watchdog, and (in CSR_FAULT_INJECT builds) the deterministic
 * fault injector end to end.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "numa/NumaSystem.h"
#include "robust/CheckpointLog.h"
#include "robust/Errors.h"
#include "robust/FaultInjector.h"
#include "sim/SweepCheckpoint.h"
#include "sim/SweepRunner.h"
#include "trace/TraceIO.h"
#include "trace/WorkloadFactory.h"

namespace csr
{
namespace
{

/** Temp-file path helper; removes the file on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------------
// Typed errors
// ---------------------------------------------------------------------------

TEST(Errors, KindsAndExitCodesAreDistinct)
{
    const ConfigError config("c");
    const TraceFormatError trace("t", 7);
    const CheckpointError checkpoint("k");
    const SimulationStallError stall("s", "snapshot");
    const InvariantError invariant("i");
    const InjectedFaultError injected("f");

    EXPECT_STREQ(config.kind(), "ConfigError");
    EXPECT_EQ(config.exitCode(), exitcode::kConfig);
    EXPECT_EQ(trace.exitCode(), exitcode::kTraceFormat);
    EXPECT_EQ(checkpoint.exitCode(), exitcode::kCheckpoint);
    EXPECT_EQ(stall.exitCode(), exitcode::kStall);
    EXPECT_EQ(invariant.exitCode(), exitcode::kInvariant);
    EXPECT_EQ(injected.exitCode(), exitcode::kInjectedFault);

    EXPECT_EQ(trace.byteOffset(), 7u);
    EXPECT_NE(std::string(trace.what()).find("byte offset 7"),
              std::string::npos);
    EXPECT_EQ(stall.snapshot(), "snapshot");
    // Every typed error is catchable as csr::Error.
    EXPECT_THROW(throw ConfigError("x"), Error);
}

// ---------------------------------------------------------------------------
// JSONL substrate
// ---------------------------------------------------------------------------

TEST(CheckpointLog, WriterReaderRoundTrip)
{
    TempPath path("jsonl_roundtrip.jsonl");
    {
        JsonlWriter writer;
        writer.open(path.str(), /*truncate=*/true);
        writer.appendLine("{\"a\":1}");
        writer.appendLine("{\"b\":\"two\"}");
    }
    const auto records = readJsonlFile(path.str());
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].text, "{\"a\":1}");
    EXPECT_EQ(records[0].lineNumber, 1u);
    EXPECT_EQ(records[0].byteOffset, 0u);
    EXPECT_TRUE(records[0].terminated);
    EXPECT_EQ(records[1].byteOffset, 8u);
    EXPECT_TRUE(records[1].terminated);
}

TEST(CheckpointLog, MissingFileReadsEmpty)
{
    EXPECT_TRUE(readJsonlFile("/nonexistent/definitely/not.jsonl")
                    .empty());
}

TEST(CheckpointLog, UnwritablePathIsConfigError)
{
    JsonlWriter writer;
    EXPECT_THROW(writer.open("/nonexistent-dir/x.jsonl", true),
                 ConfigError);
}

TEST(CheckpointLog, TornFinalLineIsMarkedUnterminated)
{
    TempPath path("jsonl_torn.jsonl");
    {
        std::ofstream os(path.str(), std::ios::binary);
        os << "{\"a\":1}\n{\"b\":2";  // killed mid-append
    }
    const auto records = readJsonlFile(path.str());
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].terminated);
    EXPECT_FALSE(records[1].terminated);
    EXPECT_EQ(records[1].text, "{\"b\":2");
}

TEST(CheckpointLog, DoubleBitsRoundTripExactly)
{
    const double values[] = {0.0, -0.0, 1.0 / 3.0, -13.957,
                             1e308, 5e-324};
    for (const double v : values) {
        JsonlRecord record;
        record.text = "{\"v\":\"" + jsonDoubleBits(v) + "\"}";
        record.terminated = true;
        const JsonLineView line(record);
        const double back = line.getDoubleBits("v");
        EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
            << jsonDoubleBits(v);
    }
}

TEST(CheckpointLog, EscapeRoundTripsThroughParser)
{
    const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
    JsonlRecord record;
    record.text = "{\"k\":\"" + jsonEscape(nasty) + "\"}";
    record.terminated = true;
    const JsonLineView line(record);
    EXPECT_EQ(line.getString("k"), nasty);
}

TEST(CheckpointLog, MalformedLinesThrowNeverCrash)
{
    const char *bad[] = {
        "",
        "x",
        "{",
        "}",
        "{}x",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1",
        "{\"a\":1,}",
        "{'a':1}",
        "{\"a\":01x}",
        "{\"a\":\"unterminated",
        "{\"a\":\"bad\\q\"}",
        "{\"a\":\"\\u12\"}",
        "{\"a\":[1,2]}",
        "{\"a\":{\"b\":1}}",
        "{\"a\":1}{\"b\":2}",
        "\xff\xfe\x00garbage",
    };
    for (const char *text : bad) {
        JsonlRecord record;
        record.text = text;
        record.lineNumber = 3;
        record.terminated = true;
        EXPECT_THROW(JsonLineView{record}, CheckpointError) << text;
    }
}

TEST(CheckpointLog, AccessorsTypeCheck)
{
    JsonlRecord record;
    record.text = "{\"s\":\"x\",\"n\":12,\"neg\":-3,\"bits\":\"zz\"}";
    record.terminated = true;
    const JsonLineView line(record);
    EXPECT_EQ(line.getString("s"), "x");
    EXPECT_EQ(line.getUInt("n"), 12u);
    EXPECT_THROW(line.getUInt("missing"), CheckpointError);
    EXPECT_THROW(line.getUInt("s"), CheckpointError);   // string
    EXPECT_THROW(line.getUInt("neg"), CheckpointError); // negative
    EXPECT_THROW(line.getString("n"), CheckpointError); // number
    EXPECT_THROW(line.getDoubleBits("bits"), CheckpointError);
}

// ---------------------------------------------------------------------------
// Sweep checkpoint codec
// ---------------------------------------------------------------------------

SweepGrid
tinyGrid()
{
    SweepGrid grid;
    grid.scale = WorkloadScale::Test;
    grid.benchmarks = {BenchmarkId::Lu};
    grid.policies = {PolicyKind::Lru, PolicyKind::Dcl};
    return grid;
}

TEST(SweepCheckpoint, FingerprintIsOrderAndContentSensitive)
{
    const auto cells = tinyGrid().expand();
    ASSERT_EQ(cells.size(), 2u);
    auto reversed = cells;
    std::swap(reversed[0], reversed[1]);
    EXPECT_NE(gridFingerprint(cells), gridFingerprint(reversed));
    EXPECT_NE(gridFingerprint(cells),
              gridFingerprint({cells.begin(), cells.begin() + 1}));
    EXPECT_EQ(gridFingerprint(cells),
              gridFingerprint(tinyGrid().expand()));
}

TEST(SweepCheckpoint, CellAndFailureLinesRoundTrip)
{
    const auto cells = tinyGrid().expand();
    TempPath path("ckpt_roundtrip.jsonl");

    SweepCellResult result;
    result.cell = cells[0];
    result.index = 0;
    result.sampledRefs = 123;
    result.l2Hits = 45;
    result.l2Misses = 78;
    result.aggregateCost = 1.0 / 3.0;
    result.lruCost = -7.125;
    result.savingsPct = 99.9;

    CellFailure failure;
    failure.cell = cells[1];
    failure.index = 1;
    failure.kind = "InjectedFaultError";
    failure.message = "weird \"quoted\"\nmessage";
    failure.attempts = 3;

    {
        JsonlWriter writer;
        writer.open(path.str(), true);
        writer.appendLine(
            checkpointHeaderLine(gridFingerprint(cells), cells.size()));
        writer.appendLine(checkpointCellLine(result));
        writer.appendLine(checkpointFailureLine(failure));
    }

    const auto state = loadSweepCheckpoint(path.str(), cells);
    EXPECT_TRUE(state.headerValid);
    ASSERT_EQ(state.results.size(), 1u);
    ASSERT_EQ(state.failures.size(), 1u);
    const SweepCellResult &r = state.results.at(0);
    EXPECT_EQ(r.sampledRefs, 123u);
    EXPECT_EQ(r.l2Misses, 78u);
    EXPECT_EQ(r.aggregateCost, 1.0 / 3.0);
    EXPECT_EQ(r.lruCost, -7.125);
    const CellFailure &f = state.failures.at(1);
    EXPECT_EQ(f.kind, "InjectedFaultError");
    EXPECT_EQ(f.message, failure.message);
    EXPECT_EQ(f.attempts, 3u);
}

TEST(SweepCheckpoint, LaterSuccessSupersedesEarlierFailure)
{
    const auto cells = tinyGrid().expand();
    TempPath path("ckpt_supersede.jsonl");

    CellFailure failure;
    failure.cell = cells[0];
    failure.index = 0;
    failure.kind = "InjectedFaultError";
    failure.message = "transient";

    SweepCellResult result;
    result.cell = cells[0];
    result.index = 0;
    result.sampledRefs = 11;

    {
        JsonlWriter writer;
        writer.open(path.str(), true);
        writer.appendLine(
            checkpointHeaderLine(gridFingerprint(cells), cells.size()));
        writer.appendLine(checkpointFailureLine(failure));
        writer.appendLine(checkpointCellLine(result));
    }
    const auto state = loadSweepCheckpoint(path.str(), cells);
    EXPECT_EQ(state.results.size(), 1u);
    EXPECT_TRUE(state.failures.empty());
}

TEST(SweepCheckpoint, WrongGridOrCorruptJournalIsCheckpointError)
{
    const auto cells = tinyGrid().expand();
    auto other = tinyGrid();
    other.policies = {PolicyKind::Lru};
    const auto other_cells = other.expand();

    TempPath path("ckpt_badgrid.jsonl");
    {
        JsonlWriter writer;
        writer.open(path.str(), true);
        writer.appendLine(checkpointHeaderLine(
            gridFingerprint(other_cells), other_cells.size()));
    }
    EXPECT_THROW(loadSweepCheckpoint(path.str(), cells),
                 CheckpointError);

    const char *bad_bodies[] = {
        "{\"type\":\"cell\",\"index\":0}",          // no header first
        "not json at all",
        "{\"type\":\"header\",\"version\":99,\"fingerprint\":1,"
        "\"cells\":2}",
    };
    for (const char *body : bad_bodies) {
        std::ofstream os(path.str(), std::ios::binary);
        os << body << "\n";
        os.close();
        EXPECT_THROW(loadSweepCheckpoint(path.str(), cells),
                     CheckpointError)
            << body;
    }

    // A torn *final* line is the kill signature, not corruption.
    {
        std::ofstream os(path.str(), std::ios::binary);
        os << checkpointHeaderLine(gridFingerprint(cells),
                                   cells.size())
           << "\n{\"type\":\"cell\",\"index\":0,\"ha";
    }
    const auto state = loadSweepCheckpoint(path.str(), cells);
    EXPECT_TRUE(state.headerValid);
    EXPECT_EQ(state.restoredCount(), 0u);
}

// ---------------------------------------------------------------------------
// Fault isolation, retry, resume
// ---------------------------------------------------------------------------

TEST(SweepRobust, OneFailingCellDoesNotTakeDownTheGrid)
{
    const SweepGrid grid = tinyGrid();
    SweepOptions options;
    options.cellProbe = [](const SweepCell &cell, unsigned) {
        if (cell.policy == PolicyKind::Dcl)
            throw TraceFormatError("synthetic corruption", 42);
    };
    const SweepResult result = SweepRunner(2).run(grid, options);
    EXPECT_FALSE(result.complete());
    EXPECT_EQ(result.gridCells, 2u);
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_EQ(result.cells[0].cell.policy, PolicyKind::Lru);
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].kind, "TraceFormatError");
    EXPECT_EQ(result.failures[0].attempts, 1u);
    EXPECT_EQ(result.failureTable().numRows(), 1u);
}

TEST(SweepRobust, RetriesRecoverTransientFailures)
{
    const SweepGrid grid = tinyGrid();
    SweepOptions options;
    options.maxAttempts = 3;
    options.retryBackoffMs = 0;
    options.cellProbe = [](const SweepCell &, unsigned attempt) {
        if (attempt < 3)
            throw CheckpointError("transient");
    };
    const SweepResult result = SweepRunner(2).run(grid, options);
    EXPECT_TRUE(result.complete());
    EXPECT_EQ(result.cells.size(), 2u);

    // One attempt fewer and the same failure is terminal.
    options.maxAttempts = 2;
    const SweepResult failed = SweepRunner(2).run(grid, options);
    EXPECT_EQ(failed.failures.size(), 2u);
    EXPECT_EQ(failed.failures[0].attempts, 2u);
}

TEST(SweepRobust, NonCsrExceptionsAreIsolatedToo)
{
    SweepOptions options;
    options.cellProbe = [](const SweepCell &cell, unsigned) {
        if (cell.policy == PolicyKind::Lru)
            throw std::runtime_error("not a csr::Error");
    };
    const SweepResult result = SweepRunner(2).run(tinyGrid(), options);
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].kind, "std::exception");
}

TEST(SweepRobust, KilledSweepResumesByteIdentically)
{
    const SweepGrid grid = tinyGrid();
    TempPath uninterrupted_json("resume_clean.json");
    TempPath interrupted_json("resume_resumed.json");
    TempPath checkpoint("resume_ck.jsonl");

    // The reference: one uninterrupted run.
    SweepRunner(2).run(grid).writeJson(uninterrupted_json.str(),
                                       /*include_timing=*/false);

    // "Kill" the sweep partway: the second cell dies every attempt.
    SweepOptions crash;
    crash.checkpointPath = checkpoint.str();
    crash.cellProbe = [](const SweepCell &cell, unsigned) {
        if (cell.policy == PolicyKind::Dcl)
            throw CheckpointError("process killed here");
    };
    // jobs=1 so the journal's line order is deterministic: the
    // success line lands before the failure line we tear below.
    const SweepResult partial = SweepRunner(1).run(grid, crash);
    EXPECT_FALSE(partial.complete());

    // Tear the journal's final line as a real SIGKILL would.
    std::string journal = slurp(checkpoint.str());
    ASSERT_FALSE(journal.empty());
    journal.resize(journal.size() - 3);
    {
        std::ofstream os(checkpoint.str(), std::ios::binary);
        os << journal;
    }

    // Resume: restored cells are not re-run, the rest complete.
    SweepOptions resume;
    resume.checkpointPath = checkpoint.str();
    resume.resume = true;
    const SweepResult resumed = SweepRunner(2).run(grid, resume);
    EXPECT_TRUE(resumed.complete());
    EXPECT_GE(resumed.resumedCells, 1u);

    resumed.writeJson(interrupted_json.str(),
                      /*include_timing=*/false);
    EXPECT_EQ(slurp(uninterrupted_json.str()),
              slurp(interrupted_json.str()));
}

TEST(SweepRobust, ResumeAgainstDifferentGridIsCheckpointError)
{
    TempPath checkpoint("resume_wronggrid.jsonl");
    SweepOptions options;
    options.checkpointPath = checkpoint.str();
    SweepRunner(1).run(tinyGrid(), options);

    SweepGrid other = tinyGrid();
    other.benchmarks = {BenchmarkId::Barnes};
    options.resume = true;
    EXPECT_THROW(SweepRunner(1).run(other, options), CheckpointError);
}

// ---------------------------------------------------------------------------
// Hardened trace parsing
// ---------------------------------------------------------------------------

std::string
validBinaryTrace()
{
    std::ostringstream os(std::ios::binary);
    writeTraceBinary(os, {{0x1000, 0, false},
                          {0x2040, 3, true},
                          {0x3f80, 15, false}});
    return os.str();
}

TEST(TraceRobust, EveryTruncationThrowsTraceFormatError)
{
    const std::string full = validBinaryTrace();
    {
        std::istringstream is(full, std::ios::binary);
        EXPECT_EQ(readTraceBinary(is).size(), 3u);
    }
    for (std::size_t len = 0; len < full.size(); ++len) {
        std::istringstream is(full.substr(0, len), std::ios::binary);
        EXPECT_THROW(readTraceBinary(is), TraceFormatError)
            << "prefix length " << len;
    }
}

TEST(TraceRobust, BadMagicAndBitsCarryOffsets)
{
    std::istringstream garbage("XXXXGARBAGE", std::ios::binary);
    try {
        readTraceBinary(garbage);
        FAIL() << "no throw";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.byteOffset(), 0u);
    }

    // Flip a reserved meta bit inside the first record.
    std::string bad = validBinaryTrace();
    bad[20 + 11] = '\x40';
    std::istringstream is(bad, std::ios::binary);
    try {
        readTraceBinary(is);
        FAIL() << "no throw";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.byteOffset(), 28u); // header + first record's meta
    }
}

TEST(TraceRobust, HugeDeclaredCountDoesNotPreallocate)
{
    // Header declaring 2^56 records followed by nothing: must throw
    // truncation promptly instead of reserving petabytes.
    std::ostringstream os(std::ios::binary);
    writeTraceBinary(os, {});
    std::string data = os.str();
    data[12] = '\x00';
    data[19] = '\x01'; // count = 1 << 56
    std::istringstream is(data, std::ios::binary);
    EXPECT_THROW(readTraceBinary(is), TraceFormatError);
}

TEST(TraceRobust, MalformedTextLinesThrowWithOffsets)
{
    const char *bad[] = {"bogus\n", "R\n", "R 1\n", "X 1 1000\n",
                         "R 99999 1000\n", "R 1 zz\n"};
    for (const char *text : bad) {
        std::istringstream is(std::string("# ok\n") + text);
        EXPECT_THROW(readTraceText(is), TraceFormatError) << text;
    }
    std::istringstream is("# c\nR 1 40\nW 70000 80\n");
    try {
        readTraceText(is);
        FAIL() << "no throw";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.byteOffset(), 11u); // start of the bad line
    }
}

TEST(TraceRobust, MissingFilesAreConfigErrors)
{
    EXPECT_THROW(loadTrace("/nonexistent/trace.bin"), ConfigError);
    EXPECT_THROW(saveTrace("/nonexistent-dir/trace.bin", {}),
                 ConfigError);
}

// ---------------------------------------------------------------------------
// NUMA stall watchdog & budget
// ---------------------------------------------------------------------------

TEST(NumaRobust, CycleBudgetRaisesStallWithSnapshot)
{
    NumaConfig config;
    config.cycleNs = 1;
    config.maxSimNs = 500; // far too little for any benchmark
    auto wl = makeWorkload(BenchmarkId::Lu, WorkloadScale::Test, true);
    NumaSystem sys(config, *wl);
    try {
        sys.run();
        FAIL() << "no throw";
    } catch (const SimulationStallError &e) {
        EXPECT_NE(e.snapshot().find("numa diagnostic snapshot"),
                  std::string::npos);
        EXPECT_NE(e.snapshot().find("node  0"), std::string::npos);
        EXPECT_NE(e.snapshot().find("network"), std::string::npos);
    }
}

TEST(NumaRobust, WatchdogCatchesFrozenProgress)
{
    NumaConfig config;
    config.cycleNs = 1;
    config.stallWindowNs = 5'000;
    auto wl = makeWorkload(BenchmarkId::Lu, WorkloadScale::Test, true);
    NumaSystem sys(config, *wl);

    // A self-perpetuating no-op event chain: simulated time advances
    // forever, but once the processors have finished nothing retires
    // and no miss completes -- the exact signature of a protocol
    // livelock, crafted without having to break the protocol.
    // (Capturing the raw pointer, not the shared_ptr, avoids a
    // self-reference cycle; `tick` outlives run(), which throws.)
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&sys, t = tick.get()] { sys.events().scheduleIn(50, *t); };
    sys.events().schedule(0, *tick);

    EXPECT_THROW(sys.run(), SimulationStallError);
}

TEST(NumaRobust, ValidateCadenceCompletesOnHealthyRun)
{
    NumaConfig config;
    config.cycleNs = 1;
    config.validateEveryEvents = 2048;
    auto wl = makeWorkload(BenchmarkId::Lu, WorkloadScale::Test, true);
    NumaSystem sys(config, *wl);
    const NumaResult result = sys.run();
    EXPECT_GT(result.totalOps, 0u);
}

// ---------------------------------------------------------------------------
// Cache/policy invariant checks (--validate)
// ---------------------------------------------------------------------------

TEST(ValidateMode, SweepWithInvariantChecksMatchesWithout)
{
    SweepGrid grid = tinyGrid();
    SweepOptions checked;
    checked.validateEveryRefs = 512;
    const SweepResult a = SweepRunner(2).run(grid);
    const SweepResult b = SweepRunner(2).run(grid, checked);
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].l2Misses, b.cells[i].l2Misses);
        EXPECT_EQ(a.cells[i].aggregateCost, b.cells[i].aggregateCost);
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injector
// ---------------------------------------------------------------------------

std::vector<bool>
drawSequence(std::uint64_t seed, std::uint64_t context, int n)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.configure(0.5, seed);
    FaultInjector::Scope scope(context);
    std::vector<bool> out;
    for (int i = 0; i < n; ++i)
        out.push_back(injector.shouldFail(FaultSite::TraceSim));
    injector.configure(0.0, 0);
    return out;
}

TEST(FaultInjector, DecisionsAreDeterministicPerSeedAndContext)
{
    const auto a = drawSequence(1234, 42, 64);
    const auto b = drawSequence(1234, 42, 64);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, drawSequence(1235, 42, 64));
    EXPECT_NE(a, drawSequence(1234, 43, 64));
    // Roughly half fire at rate 0.5 -- sanity, not statistics.
    const int fired = static_cast<int>(
        std::count(a.begin(), a.end(), true));
    EXPECT_GT(fired, 8);
    EXPECT_LT(fired, 56);
}

TEST(FaultInjector, NeverFiresOutsideScopeOrWhenDisabled)
{
    FaultInjector &injector = FaultInjector::instance();
    injector.configure(1.0, 7);
    EXPECT_FALSE(injector.shouldFail(FaultSite::TraceSim)); // no scope
    {
        FaultInjector::Scope scope(1);
        EXPECT_TRUE(injector.shouldFail(FaultSite::TraceSim));
    }
    injector.configure(0.0, 7);
    {
        FaultInjector::Scope scope(1);
        EXPECT_FALSE(injector.shouldFail(FaultSite::TraceSim));
    }
}

TEST(FaultInjector, CompiledProbesInjectIntoSweepCells)
{
    if (!faultInjectionCompiledIn())
        GTEST_SKIP() << "built without -DCSR_FAULT_INJECT=ON";

    FaultInjector &injector = FaultInjector::instance();
    injector.configure(1.0, 99);

    // Setup (trace generation, LRU profiles) runs outside any scope
    // and must be immune; every cell then dies on its first probe.
    const SweepResult result = SweepRunner(2).run(tinyGrid());
    const std::uint64_t injected = injector.injectedCount();
    injector.configure(0.0, 0); // resets the injected counter too

    EXPECT_TRUE(result.cells.empty());
    ASSERT_EQ(result.failures.size(), 2u);
    for (const CellFailure &failure : result.failures)
        EXPECT_EQ(failure.kind, "InjectedFaultError");
    EXPECT_GE(injected, 2u);
}

TEST(FaultInjector, InjectedSweepIsRepeatable)
{
    if (!faultInjectionCompiledIn())
        GTEST_SKIP() << "built without -DCSR_FAULT_INJECT=ON";

    FaultInjector &injector = FaultInjector::instance();
    SweepOptions options;
    options.maxAttempts = 4;
    options.retryBackoffMs = 0;

    injector.configure(0.4, 2026);
    const SweepResult a = SweepRunner(1).run(tinyGrid(), options);
    injector.configure(0.4, 2026);
    const SweepResult b = SweepRunner(8).run(tinyGrid(), options);
    injector.configure(0.0, 0);

    // Same seed => same cells fail with the same attempt counts,
    // regardless of worker count.
    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (std::size_t i = 0; i < a.failures.size(); ++i) {
        EXPECT_EQ(a.failures[i].index, b.failures[i].index);
        EXPECT_EQ(a.failures[i].attempts, b.failures[i].attempts);
    }
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i)
        EXPECT_EQ(a.cells[i].aggregateCost, b.cells[i].aggregateCost);
}

} // namespace
} // namespace csr
