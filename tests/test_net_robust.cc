/**
 * @file
 * Robust-serving tests: graceful drain under pipelined load, the
 * overload shed path, the per-shard circuit breaker state machine
 * (unit-level with a caller-supplied clock, and wired through
 * CacheService), slow-loris / idle connection eviction, --max-conns
 * admission, stale-while-broken serving, and the determinism of the
 * network chaos layer.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "robust/Errors.h"
#include "robust/NetChaos.h"
#include "serve/CacheService.h"
#include "serve/ChaosBackend.h"
#include "serve/CircuitBreaker.h"
#include "serve/SyntheticBackend.h"
#include "serve/net/EventLoop.h"
#include "serve/net/RespClient.h"
#include "serve/net/Server.h"
#include "util/Random.h"

using namespace csr;
using namespace csr::serve;
using namespace csr::serve::net;

namespace
{

ServeConfig
tinyServeConfig()
{
    ServeConfig config;
    config.shards = 4;
    config.shardBytes = 16 * 1024;
    config.policy = PolicyKind::Acl;
    return config;
}

/** A breaker config that trips after two failures and (by default)
 *  stays open far longer than any test runs. */
BreakerConfig
twitchyBreaker()
{
    BreakerConfig cfg;
    cfg.windowOps = 4;
    cfg.minSamples = 2;
    cfg.failureRateThreshold = 0.5;
    cfg.consecutiveTimeouts = 1000; // rate trips first
    cfg.backoffInitialMs = 60'000.0;
    cfg.backoffMaxMs = 60'000.0;
    cfg.jitterFraction = 0.0; // deterministic backoff
    return cfg;
}

/** Always-broken backend: every fetch throws, stores succeed. */
class FailingBackend : public Backend
{
  public:
    BackendResult
    fetch(Addr, std::uint64_t) override
    {
        fetches.fetch_add(1, std::memory_order_relaxed);
        throw NetError("backend down");
    }

    BackendResult
    store(Addr, std::uint64_t value, std::uint64_t) override
    {
        BackendResult result;
        result.value = value;
        result.latencyNs = 1000.0;
        return result;
    }

    std::string describe() const override { return "failing"; }

    std::atomic<std::uint64_t> fetches{0};
};

/** Fails the first @p failFirst fetches, then recovers. */
class FlakyBackend : public Backend
{
  public:
    explicit FlakyBackend(std::uint64_t fail_first)
        : failFirst_(fail_first)
    {
    }

    BackendResult
    fetch(Addr key, std::uint64_t) override
    {
        if (fetches.fetch_add(1, std::memory_order_relaxed) <
            failFirst_)
            throw NetError("backend still down");
        BackendResult result;
        result.value = hashMix64(key);
        result.latencyNs = 5000.0;
        return result;
    }

    BackendResult
    store(Addr, std::uint64_t value, std::uint64_t) override
    {
        BackendResult result;
        result.value = value;
        result.latencyNs = 1000.0;
        return result;
    }

    std::string describe() const override { return "flaky"; }

    std::atomic<std::uint64_t> fetches{0};

  private:
    const std::uint64_t failFirst_;
};

/**
 * Truly asynchronous gate: fetchAsync parks the completion instead
 * of the calling thread, so an event-loop worker that starts a fetch
 * keeps running -- pending ops pile up, which is exactly what the
 * drain and shed tests need.  release() completes everything parked
 * so far, on the caller's thread.
 */
class AsyncGateBackend : public Backend
{
  public:
    BackendResult
    fetch(Addr key, std::uint64_t) override
    {
        BackendResult result;
        result.value = hashMix64(key);
        result.latencyNs = 5000.0;
        return result;
    }

    void
    fetchAsync(Addr key, std::uint64_t,
               FetchCallback done) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_.emplace_back(key, std::move(done));
    }

    BackendResult
    store(Addr, std::uint64_t value, std::uint64_t) override
    {
        BackendResult result;
        result.value = value;
        result.latencyNs = 1000.0;
        return result;
    }

    std::string describe() const override { return "async-gate"; }

    std::size_t
    pendingCount() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return pending_.size();
    }

    void
    release()
    {
        std::vector<std::pair<Addr, FetchCallback>> take;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            take.swap(pending_);
        }
        for (auto &[key, done] : take) {
            BackendResult result;
            result.value = hashMix64(key);
            result.latencyNs = 5000.0;
            done(result, nullptr);
        }
    }

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<Addr, FetchCallback>> pending_;
};

/** Spin until @p pred holds or ~2 s elapse. */
template <typename Pred>
bool
eventually(Pred pred)
{
    for (int i = 0; i < 2000; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
}

/** Raw client socket (bypasses RespClient to send partial frames). */
int
rawConnect(std::uint16_t port, double timeout_sec)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_sec);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

} // namespace

// ---------------------------------------------------------------------------
// Circuit breaker -- unit-level, caller-supplied clock
// ---------------------------------------------------------------------------

TEST(CircuitBreaker, RateTripOpensFastFailsAndProbeRecovers)
{
    BreakerConfig cfg = twitchyBreaker();
    cfg.backoffInitialMs = 10.0;
    cfg.backoffMaxMs = 40.0;
    CircuitBreaker breaker(cfg, /*id=*/0);
    std::uint64_t now = 1;
    const std::uint64_t ms = 1'000'000;

    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(breaker.admit(now), CircuitBreaker::Admit::Proceed);

    // Two failures over a two-sample window: 100% >= 50% -> trip.
    breaker.onFailure(false, now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    breaker.onFailure(false, now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.opens(), 1u);

    // Open: everything fails fast until the backoff elapses.
    EXPECT_EQ(breaker.admit(now + 1),
              CircuitBreaker::Admit::FailFast);
    EXPECT_EQ(breaker.admit(now + 9 * ms),
              CircuitBreaker::Admit::FailFast);
    EXPECT_EQ(breaker.fastFails(), 2u);

    // Backoff elapsed: exactly one probe goes through, the rest
    // still fail fast while it is in flight.
    now += 11 * ms;
    EXPECT_EQ(breaker.admit(now), CircuitBreaker::Admit::Probe);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
    EXPECT_EQ(breaker.admit(now), CircuitBreaker::Admit::FailFast);

    // Probe failure: reopen, with the backoff doubled (20 ms).
    breaker.onFailure(false, now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.opens(), 2u);
    EXPECT_EQ(breaker.admit(now + 19 * ms),
              CircuitBreaker::Admit::FailFast);
    now += 21 * ms;
    EXPECT_EQ(breaker.admit(now), CircuitBreaker::Admit::Probe);

    // Probe success: closed, trip count reset -- the next trip
    // starts over at the initial backoff.
    breaker.onSuccess(now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    EXPECT_EQ(breaker.admit(now), CircuitBreaker::Admit::Proceed);
    breaker.onFailure(false, now);
    breaker.onFailure(false, now);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(breaker.admit(now + 11 * ms),
              CircuitBreaker::Admit::Probe);
}

TEST(CircuitBreaker, ConsecutiveTimeoutsTripWithoutFillingTheWindow)
{
    BreakerConfig cfg = twitchyBreaker();
    cfg.minSamples = 1000; // the rate path cannot trip
    cfg.windowOps = 1000;
    cfg.consecutiveTimeouts = 3;
    CircuitBreaker breaker(cfg, 1);

    breaker.onFailure(true, 1);
    breaker.onFailure(true, 1);
    // A non-timeout success in between resets the streak.
    breaker.onSuccess(1);
    breaker.onFailure(true, 1);
    breaker.onFailure(true, 1);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
    breaker.onFailure(true, 1);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
}

TEST(CircuitBreaker, BackoffDoublesCapsAndJittersDeterministically)
{
    BreakerConfig cfg = twitchyBreaker();
    cfg.backoffInitialMs = 10.0;
    cfg.backoffMaxMs = 35.0;
    CircuitBreaker plain(cfg, 0);
    EXPECT_EQ(plain.backoffNs(1), 10'000'000u);
    EXPECT_EQ(plain.backoffNs(2), 20'000'000u);
    EXPECT_EQ(plain.backoffNs(3), 35'000'000u); // capped

    cfg.jitterFraction = 0.2;
    cfg.seed = 7;
    CircuitBreaker jittered(cfg, 0);
    CircuitBreaker again(cfg, 0);
    for (unsigned trips = 1; trips <= 4; ++trips) {
        const std::uint64_t a = jittered.backoffNs(trips);
        // Pure function of (seed, id, trips): replays identically.
        EXPECT_EQ(a, again.backoffNs(trips));
        const double base = static_cast<double>(
            plain.backoffNs(trips));
        EXPECT_GE(static_cast<double>(a), base * 0.8 - 1.0);
        EXPECT_LE(static_cast<double>(a), base * 1.2 + 1.0);
    }
}

TEST(CircuitBreaker, ConfigValidates)
{
    BreakerConfig cfg = twitchyBreaker();
    EXPECT_NO_THROW(cfg.validate());
    cfg.failureRateThreshold = 1.5;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = twitchyBreaker();
    cfg.windowOps = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = twitchyBreaker();
    cfg.backoffInitialMs = -1.0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = twitchyBreaker();
    cfg.jitterFraction = 2.0;
    EXPECT_THROW(cfg.validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// Circuit breaker -- wired through CacheService
// ---------------------------------------------------------------------------

TEST(ServeBreaker, OpensOnFailuresThenFailsFastWithTypedError)
{
    FailingBackend backend;
    ServeConfig config = tinyServeConfig();
    config.shards = 1;
    config.breaker = twitchyBreaker();
    CacheService service(config, backend);

    // The first two misses reach the backend and fail honestly.
    EXPECT_THROW(service.get(7), NetError);
    EXPECT_THROW(service.get(7), NetError);
    EXPECT_EQ(backend.fetches.load(), 2u);
    EXPECT_EQ(service.breakerOf(0).state(),
              CircuitBreaker::State::Open);

    // Open: the service refuses without a fetch, with the breaker's
    // own error type (exit code 12), not the backend's.
    EXPECT_THROW(service.get(7), CircuitOpenError);
    EXPECT_THROW(service.get(8), CircuitOpenError);
    EXPECT_EQ(backend.fetches.load(), 2u); // fetch count unchanged

    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.breakerOpens, 1u);
    EXPECT_EQ(totals.breakerFastFails, 2u);
}

TEST(ServeBreaker, StaleWhileBrokenServesLastKnownValue)
{
    FailingBackend backend;
    ServeConfig config = tinyServeConfig();
    config.shards = 1;
    config.breaker = twitchyBreaker();
    config.breaker.staleWhileBroken = true;
    CacheService service(config, backend);

    // Install a value, then evict it: the KeyState keeps lastValue.
    service.put(5, 42);
    EXPECT_TRUE(service.del(5));

    // Trip the breaker on an unrelated key.
    EXPECT_THROW(service.get(7), NetError);
    EXPECT_THROW(service.get(7), NetError);
    ASSERT_EQ(service.breakerOf(0).state(),
              CircuitBreaker::State::Open);

    // The evicted-but-known key comes back stale instead of failing;
    // a key this cache never held still fails fast.
    const ServeOpResult stale = service.get(5);
    EXPECT_FALSE(stale.hit);
    EXPECT_EQ(stale.value, 42u);
    EXPECT_THROW(service.get(9), CircuitOpenError);

    const ServeTotals totals = service.totals();
    EXPECT_EQ(totals.staleServes, 1u);
    EXPECT_EQ(backend.fetches.load(), 2u);
}

TEST(ServeBreaker, HalfOpenProbeRecoversAutomatically)
{
    FlakyBackend backend(/*fail_first=*/2);
    ServeConfig config = tinyServeConfig();
    config.shards = 1;
    config.breaker = twitchyBreaker();
    config.breaker.backoffInitialMs = 1.0; // reopen almost at once
    config.breaker.backoffMaxMs = 1.0;
    CacheService service(config, backend);

    EXPECT_THROW(service.get(7), NetError);
    EXPECT_THROW(service.get(7), NetError);
    ASSERT_EQ(service.breakerOf(0).state(),
              CircuitBreaker::State::Open);

    // Past the backoff the next miss is the probe; the backend has
    // recovered, so it closes the breaker and installs the value.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const ServeOpResult probed = service.get(9);
    EXPECT_EQ(probed.value, hashMix64(9));
    EXPECT_EQ(service.breakerOf(0).state(),
              CircuitBreaker::State::Closed);
    EXPECT_TRUE(service.get(9).hit); // resident now
}

// ---------------------------------------------------------------------------
// Chaos layer -- pure-function determinism
// ---------------------------------------------------------------------------

TEST(NetChaos, DecisionsArePureSeedSensitiveAndGated)
{
    ChaosConfig cfg;
    cfg.rate = 0.5;
    cfg.seed = 1;

    // Pure: the same (site, a, b) always answers the same.
    int fires = 0;
    for (std::uint64_t a = 0; a < 200; ++a) {
        const bool first =
            chaosDecide(cfg, ChaosSite::BackendError, a, 3);
        EXPECT_EQ(first,
                  chaosDecide(cfg, ChaosSite::BackendError, a, 3));
        fires += first ? 1 : 0;
    }
    // Roughly half fire at rate 0.5 (wide tolerance: determinism is
    // the contract, the rate is only approximate).
    EXPECT_GT(fires, 50);
    EXPECT_LT(fires, 150);

    // Seed-sensitive: a different seed flips some decisions.
    ChaosConfig other = cfg;
    other.seed = 2;
    int differs = 0;
    for (std::uint64_t a = 0; a < 200; ++a)
        differs +=
            chaosDecide(cfg, ChaosSite::BackendError, a, 3) !=
                    chaosDecide(other, ChaosSite::BackendError, a, 3)
                ? 1
                : 0;
    EXPECT_GT(differs, 0);

    // Gates: rate 0 is off everywhere; ConnReset additionally needs
    // the opt-in even at rate 1.
    ChaosConfig off;
    EXPECT_FALSE(chaosDecide(off, ChaosSite::ShortWrite, 1, 1));
    ChaosConfig certain;
    certain.rate = 1.0;
    certain.seed = 3;
    EXPECT_TRUE(chaosDecide(certain, ChaosSite::ShortWrite, 1, 1));
    EXPECT_FALSE(chaosDecide(certain, ChaosSite::ConnReset, 1, 1));
    certain.resets = true;
    EXPECT_TRUE(chaosDecide(certain, ChaosSite::ConnReset, 1, 1));

    ChaosConfig bad;
    bad.rate = 1.5;
    EXPECT_THROW(bad.validate(), ConfigError);
    bad.rate = 0.0;
    bad.resets = true;
    EXPECT_THROW(bad.validate(), ConfigError);
}

TEST(NetChaos, ChaosBackendInjectsTheSameFaultsEveryRun)
{
    ChaosConfig chaos;
    chaos.rate = 0.3;
    chaos.seed = 9;

    const auto faultPattern = [&chaos] {
        SyntheticBackendConfig backend_config;
        SyntheticBackend inner(backend_config);
        ChaosBackend wrapped(inner, chaos);
        std::vector<bool> threw;
        for (Addr key = 0; key < 100; ++key) {
            // Two attempts per key: the ordinal is part of the draw,
            // so a retry may fault differently than the first try.
            for (int attempt = 0; attempt < 2; ++attempt) {
                bool failed = false;
                try {
                    (void)wrapped.fetch(key, 0);
                } catch (const InjectedFaultError &) {
                    failed = true;
                }
                threw.push_back(failed);
            }
            // Stores never fault: SET cost is part of the
            // deterministic summary.
            EXPECT_EQ(wrapped.store(key, 1, 0).value, 1u);
        }
        return threw;
    };

    const std::vector<bool> first = faultPattern();
    const std::vector<bool> second = faultPattern();
    EXPECT_EQ(first, second);
    const std::size_t faults = static_cast<std::size_t>(
        std::count(first.begin(), first.end(), true));
    EXPECT_GT(faults, 0u);
    EXPECT_LT(faults, first.size());
}

// ---------------------------------------------------------------------------
// Event-loop timers
// ---------------------------------------------------------------------------

TEST(EventLoopTimers, FireInDeadlineOrderAndCancelWorks)
{
    EventLoop loop;
    std::thread runner([&loop] { loop.run(); });

    std::mutex mutex;
    std::vector<int> order;
    std::atomic<bool> done{false};
    loop.post([&] {
        // Timers are loop-thread-only; arm them from a posted task.
        loop.addTimer(5'000'000, [&] {
            std::lock_guard<std::mutex> lock(mutex);
            order.push_back(1);
        });
        const EventLoop::TimerId doomed =
            loop.addTimer(30'000'000, [&] {
                std::lock_guard<std::mutex> lock(mutex);
                order.push_back(99);
            });
        loop.addTimer(15'000'000, [&] {
            {
                std::lock_guard<std::mutex> lock(mutex);
                order.push_back(2);
            }
            done.store(true);
        });
        loop.cancelTimer(doomed);
    });

    EXPECT_TRUE(eventually([&] { return done.load(); }));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.stop();
    runner.join();

    std::lock_guard<std::mutex> lock(mutex);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(loop.pendingTimers(), 0u);
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST(NetDrain, FlushesEveryAcceptedCommandUnderPipelinedLoad)
{
    AsyncGateBackend backend;
    CacheService service(tinyServeConfig(), backend);
    NetServerConfig net_config;
    net_config.workers = 1;
    NetServer server(service, net_config);
    server.start();

    // Pipeline 20 distinct-key GETs; every one parks on the gate.
    constexpr std::size_t kOps = 20;
    RespClient client("127.0.0.1", server.port(), 10.0);
    for (std::size_t i = 0; i < kOps; ++i)
        client.send({"GET", std::to_string(1000 + i)});
    client.flush();
    ASSERT_TRUE(eventually(
        [&backend] { return backend.pendingCount() == kOps; }));

    // Drain while all 20 are in flight, releasing the backend once
    // the drain has begun: the contract is one reply per accepted
    // command, then close -- nothing lost, nothing extra.
    DrainReport report;
    std::thread drainer(
        [&] { report = server.drain(/*deadline_ms=*/5000.0); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    backend.release();
    drainer.join();

    EXPECT_EQ(report.drainedConns, 1u);
    EXPECT_EQ(report.forcedCloses, 0u);
    EXPECT_FALSE(report.deadlineExpired);

    for (std::size_t i = 0; i < kOps; ++i) {
        const RespClient::Reply reply = client.readReply();
        EXPECT_EQ(reply.type, '$');
        EXPECT_EQ(reply.text,
                  std::to_string(hashMix64(1000 + i)));
    }
    // ...and not one byte more: the server closed after the flush.
    EXPECT_THROW(client.readReply(), NetError);

    server.stop();
    EXPECT_EQ(service.totals().gets, kOps);
    const NetStats stats = server.stats();
    EXPECT_EQ(stats.cmdGet, kOps);
    EXPECT_EQ(stats.errorReplies, 0u);
}

TEST(NetDrain, DeadlineExpiryFailsInflightFetchesAndForcesClose)
{
    AsyncGateBackend backend;
    CacheService service(tinyServeConfig(), backend);
    NetServerConfig net_config;
    net_config.workers = 1;
    NetServer server(service, net_config);
    server.start();

    RespClient client("127.0.0.1", server.port(), 10.0);
    for (std::size_t i = 0; i < 5; ++i)
        client.send({"GET", std::to_string(2000 + i)});
    client.flush();
    ASSERT_TRUE(eventually(
        [&backend] { return backend.pendingCount() == 5; }));

    // Never release: the drain must not hang on the wedged backend.
    const DrainReport report = server.drain(/*deadline_ms=*/100.0);
    EXPECT_TRUE(report.deadlineExpired);
    EXPECT_EQ(report.failedFetches, 5u);
    EXPECT_EQ(report.forcedCloses, 1u);
    server.stop();
}

// ---------------------------------------------------------------------------
// Overload shedding
// ---------------------------------------------------------------------------

TEST(NetShed, DataCommandsPastTheWatermarkGetBusyInOrder)
{
    AsyncGateBackend backend;
    CacheService service(tinyServeConfig(), backend);
    NetServerConfig net_config;
    net_config.workers = 1;
    net_config.tuning.shedPendingOps = 4;
    NetServer server(service, net_config);
    server.start();

    // 10 pipelined GETs against a wedged backend: the first 4 claim
    // pending slots, 5..10 cross the watermark and shed.  The -BUSY
    // replies still honour pipeline order (they queue behind the
    // pending slots), so the shed pattern is deterministic.
    RespClient client("127.0.0.1", server.port(), 10.0);
    for (std::size_t i = 0; i < 10; ++i)
        client.send({"GET", std::to_string(3000 + i)});
    client.flush();
    ASSERT_TRUE(eventually(
        [&backend] { return backend.pendingCount() == 4; }));

    // PING is exempt: a shedding server still answers health checks.
    client.send({"PING"});
    client.flush();

    backend.release();
    for (std::size_t i = 0; i < 10; ++i) {
        const RespClient::Reply reply = client.readReply();
        if (i < 4) {
            EXPECT_EQ(reply.type, '$') << "op " << i;
        } else {
            ASSERT_TRUE(reply.isError()) << "op " << i;
            EXPECT_EQ(reply.text.rfind("BUSY", 0), 0u)
                << reply.text;
        }
    }
    EXPECT_EQ(client.readReply().text, "PONG");

    server.stop();
    const NetStats stats = server.stats();
    EXPECT_EQ(stats.shedOps, 6u);
    EXPECT_EQ(service.totals().gets, 4u); // shed ops never got in
}

// ---------------------------------------------------------------------------
// Connection lifecycle: deadlines and admission
// ---------------------------------------------------------------------------

TEST(NetLifecycle, SlowLorisPartialFrameIsEvicted)
{
    SyntheticBackendConfig backend_config;
    SyntheticBackend backend(backend_config);
    CacheService service(tinyServeConfig(), backend);
    NetServerConfig net_config;
    net_config.workers = 1;
    net_config.tuning.readDeadlineMs = 50.0;
    net_config.tuning.idleTimeoutMs = 0.0; // isolate the deadline
    NetServer server(service, net_config);
    server.start();

    // Open a frame and never finish it: the read deadline must boot
    // us (recv sees a clean FIN well before the 2 s socket timeout).
    const int fd = rawConnect(server.port(), 2.0);
    const char partial[] = "*2\r\n$3\r\nGET";
    ASSERT_EQ(::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(partial) - 1));
    char buf[64];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
    ::close(fd);

    server.stop();
    EXPECT_EQ(server.stats().deadlineClosed, 1u);
}

TEST(NetLifecycle, IdleConnectionIsEvicted)
{
    SyntheticBackendConfig backend_config;
    SyntheticBackend backend(backend_config);
    CacheService service(tinyServeConfig(), backend);
    NetServerConfig net_config;
    net_config.workers = 1;
    net_config.tuning.idleTimeoutMs = 50.0;
    net_config.tuning.readDeadlineMs = 0.0;
    NetServer server(service, net_config);
    server.start();

    const int fd = rawConnect(server.port(), 2.0);
    char buf[64];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
    ::close(fd);

    server.stop();
    EXPECT_EQ(server.stats().idleClosed, 1u);
}

TEST(NetLifecycle, MaxConnsRejectsAtCapacityWithAnError)
{
    SyntheticBackendConfig backend_config;
    SyntheticBackend backend(backend_config);
    CacheService service(tinyServeConfig(), backend);
    NetServerConfig net_config;
    net_config.workers = 1;
    net_config.maxConns = 1;
    NetServer server(service, net_config);
    server.start();

    RespClient first("127.0.0.1", server.port(), 10.0);
    EXPECT_EQ(first.roundTrip({"PING"}).text, "PONG"); // occupied

    // The second connection is told why, then closed -- without ever
    // sending a command.
    const int fd = rawConnect(server.port(), 2.0);
    std::string refusal;
    char buf[64];
    while (true) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        refusal.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(refusal, "-ERR server at capacity\r\n");

    // The occupant still works, and closing it frees the seat.
    EXPECT_EQ(first.roundTrip({"PING"}).text, "PONG");

    server.stop();
    EXPECT_EQ(server.stats().capacityRejections, 1u);
    EXPECT_EQ(server.stats().connectionsAccepted, 1u);
}
