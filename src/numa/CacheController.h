/**
 * @file
 * Node-side cache hierarchy: direct-mapped L1 over a set-associative
 * L2 with MSHRs, a pluggable (cost-sensitive) replacement policy and
 * the Section 4.1 miss-latency measurement/prediction machinery.
 *
 * The L2 is the coherence point (MESI states live in its CacheModel's
 * aux words); the L1 is a strict-subset filter kept inclusive by
 * invalidating on L2 eviction/invalidation.  Misses are timestamped at
 * issue; when the data reply arrives, the measured latency becomes
 * both the predictor's new value for the block and the fill cost
 * handed to the replacement policy -- i.e. the predicted cost of the
 * block's *next* miss is the last measured latency, exactly the
 * paper's prediction scheme.
 */

#ifndef CSR_NUMA_CACHECONTROLLER_H
#define CSR_NUMA_CACHECONTROLLER_H

#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/CacheModel.h"
#include "cache/PolicyFactory.h"
#include "cost/LatencyPredictor.h"
#include "numa/Directory.h"
#include "numa/Event.h"
#include "numa/Network.h"
#include "numa/NumaConfig.h"
#include "util/Stats.h"

namespace csr
{

/** Synchronous outcome of a processor access. */
enum class AccessOutcome
{
    HitL1,
    HitL2,
    Miss, ///< an MSHR is (now) pending; completion arrives by callback
};

/** L2 MESI state kept in the cache model's aux word. */
enum class LineState : std::uint32_t
{
    Shared = 1,
    Exclusive = 2,
    Modified = 3,
};

/** One node's L1 + L2 + MSHRs. */
class CacheController
{
  public:
    /** Miss-completion callback: fires at the tick the data became
     *  available. */
    using MissDone = std::function<void(Tick)>;

    CacheController(ProcId node, const NumaConfig &config,
                    EventQueue &events, MeshNetwork &network,
                    HomeMap &homes);

    /**
     * Processor-issued access at the current event time.
     * @return the outcome; on Miss, @p done fires at completion
     *         (possibly after a chained upgrade).
     */
    AccessOutcome access(Addr byte_addr, bool write, MissDone done);

    /** Handle a cache-bound protocol message. */
    void receive(const Message &msg);

    /** Outstanding MSHR count (processor back-pressure). */
    std::size_t outstandingMisses() const { return mshrs_.size(); }

    const StatGroup &stats() const { return stats_; }
    const LatencyPredictor &predictor() const { return predictor_; }
    ReplacementPolicy &policy() { return *l2_.policy(); }

    /** Introspection for protocol tests. */
    bool hasLine(Addr block) const;
    LineState lineState(Addr block) const;

  private:
    Addr blockOf(Addr byte_addr) const
    {
        return byte_addr >> l2Geom_.blockBits();
    }
    Addr byteOf(Addr block) const { return block << l2Geom_.blockBits(); }

    /** Start a GetS/GetX transaction for a block. */
    void issueRequest(Addr block, bool write, bool upgrade);

    /** Handle an arriving data reply. */
    void handleData(const Message &msg);

    /** Install a block into the L2 (evicting if needed) and the L1. */
    void installLine(Addr block, LineState state, Cost cost);

    /** Victim disposal on L2 eviction (writeback / hints / L1 scrub). */
    void disposeVictim(std::uint32_t set, Addr victim_tag,
                       std::uint32_t victim_aux);

    void invalidateL1(Addr block);
    void installL1(Addr block);

    void sendToHome(MsgType type, Addr block, Tick timestamp);

    struct Mshr
    {
        bool write = false;
        bool upgrade = false; ///< line held in S, waiting for DataM
        Tick issued = 0;
        std::vector<std::pair<bool, MissDone>> waiters; // (write, cb)
    };

    ProcId node_;
    NumaConfig config_;
    EventQueue &events_;
    MeshNetwork &network_;
    HomeMap &homes_;
    CacheGeometry l1Geom_;
    CacheGeometry l2Geom_;
    CacheModel l1_; ///< direct-mapped filter, policy-less
    CacheModel l2_; ///< owns the replacement policy; aux = MESI state
    LatencyPredictor predictor_;
    std::unordered_map<Addr, Mshr> mshrs_;
    StatGroup stats_;
    RunningStat missLatency_;

  public:
    /** Shape of the per-node miss-latency histogram; every node uses
     *  the same buckets so NumaResult can merge them. */
    static constexpr double kMissLatencyHistLoNs = 0.0;
    static constexpr double kMissLatencyHistHiNs = 3200.0;
    static constexpr std::size_t kMissLatencyHistBuckets = 64;

    /** Measured miss latencies (ns). */
    const RunningStat &missLatencyStat() const { return missLatency_; }

    /** Measured miss-latency distribution (ns). */
    const Histogram &missLatencyHistogram() const
    {
        return missLatencyHist_;
    }

  private:
    Histogram missLatencyHist_{kMissLatencyHistLoNs, kMissLatencyHistHiNs,
                               kMissLatencyHistBuckets};
};

} // namespace csr

#endif // CSR_NUMA_CACHECONTROLLER_H
