/**
 * @file
 * Consecutive-miss latency correlation (the paper's Table 3).
 *
 * For every serviced miss the directory reports (requester, block,
 * request type, directory state at arrival, unloaded class latency).
 * The correlator pairs each miss with the *previous* miss to the same
 * block by the same processor and accumulates a matrix indexed by
 * (last miss attributes) x (current miss attributes), where the
 * attributes are request type {read, rd-excl} and memory state
 * {Uncached, Shared, Exclusive}.  Per cell it reports:
 *   - occurrence  (% of all paired misses),
 *   - mismatch    (% of the cell's pairs whose unloaded latencies
 *                  differ),
 *   - avg |error| (mean absolute unloaded-latency difference of the
 *                  mismatching pairs, in processor cycles).
 */

#ifndef CSR_NUMA_LATENCYCORRELATOR_H
#define CSR_NUMA_LATENCYCORRELATOR_H

#include <array>
#include <cstdint>
#include <unordered_map>

#include "numa/Directory.h"

namespace csr
{

/** Accumulates the Table 3 matrix. */
class LatencyCorrelator
{
  public:
    /** Attribute index: type (0=read, 1=rd-excl) x state (U/S/E). */
    static constexpr int kClasses = 6;

    explicit LatencyCorrelator(std::uint32_t cycle_ns = 1)
        : cycleNs_(cycle_ns)
    {
    }

    /** Feed one serviced miss. */
    void observe(const MissService &service);

    /** Matrix cell accumulator. */
    struct Cell
    {
        std::uint64_t count = 0;
        std::uint64_t mismatches = 0;
        double absErrorNs = 0.0; // accumulated over mismatching pairs

        double
        mismatchPct() const
        {
            return count ? 100.0 * static_cast<double>(mismatches) /
                               static_cast<double>(count)
                         : 0.0;
        }
    };

    const Cell &cell(int last, int cur) const { return cells_[last][cur]; }

    /** Total paired misses. */
    std::uint64_t totalPairs() const { return totalPairs_; }

    /** Occurrence of a cell as % of all paired misses. */
    double
    occurrencePct(int last, int cur) const
    {
        return totalPairs_
                   ? 100.0 *
                         static_cast<double>(cells_[last][cur].count) /
                         static_cast<double>(totalPairs_)
                   : 0.0;
    }

    /** Average absolute latency error of a cell, in cycles. */
    double
    avgErrorCycles(int last, int cur) const
    {
        const Cell &c = cells_[last][cur];
        if (c.mismatches == 0)
            return 0.0;
        return c.absErrorNs /
               (static_cast<double>(c.mismatches) * cycleNs_);
    }

    /** Fraction of paired misses whose latency class matched (the
     *  paper's "93% of misses" headline). */
    double matchedPct() const;

    /** Class index of a miss (type, state). */
    static int classOf(bool write, DirEntry::State state);

    /** Row/column label ("rd/U", "rdx/S", ...). */
    static const char *className(int cls);

  private:
    struct LastMiss
    {
        int cls = 0;
        Tick unloaded = 0;
    };

    std::uint32_t cycleNs_;
    std::array<std::array<Cell, kClasses>, kClasses> cells_{};
    std::unordered_map<std::uint64_t, LastMiss> last_;
    std::uint64_t totalPairs_ = 0;
};

} // namespace csr

#endif // CSR_NUMA_LATENCYCORRELATOR_H
