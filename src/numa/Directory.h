/**
 * @file
 * Home-node directory controller (blocking MESI directory).
 *
 * Each node is home for the blocks first-touched by ... whichever
 * processor touched them first (the HomeMap implements the per-block
 * first-touch placement of Table 4).  The home serializes coherence:
 * at most one transaction per block is in flight; requests arriving
 * for a busy block queue FIFO.  Invalidation acknowledgements are
 * collected at the home before the write reply is sent.
 *
 * Directory states: Uncached, Shared{sharers}, Exclusive{owner}
 * (the owner may hold the line E or M; dirtiness is discovered on
 * Fetch).  With replacement hints off, the directory tolerates stale
 * owner/sharer info: Fetch/Inv to nodes that silently evicted are
 * answered with FetchStale/InvAck.
 */

#ifndef CSR_NUMA_DIRECTORY_H
#define CSR_NUMA_DIRECTORY_H

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "numa/Event.h"
#include "numa/Network.h"
#include "numa/NumaConfig.h"
#include "numa/Protocol.h"
#include "util/Stats.h"

namespace csr
{

/**
 * Global first-touch home assignment (one instance per system).
 */
class HomeMap
{
  public:
    /** Home of a block; assigns @p toucher as home on first touch. */
    ProcId
    homeOf(Addr block, ProcId toucher)
    {
        auto [it, inserted] = map_.try_emplace(block, toucher);
        (void)inserted;
        return it->second;
    }

    /** Home if already assigned, else the toucher-independent
     *  fallback of kInvalidAddr-like sentinel (used by stats). */
    bool
    known(Addr block) const
    {
        return map_.find(block) != map_.end();
    }

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<Addr, ProcId> map_;
};

/** Directory state of one block at its home. */
struct DirEntry
{
    enum class State : std::uint8_t
    {
        Uncached,
        Shared,
        Exclusive,
    };

    State state = State::Uncached;
    ProcId owner = 0;
    std::vector<ProcId> sharers; // small; nodes <= 16
};

/**
 * Per-miss service record, consumed by the Table 3 latency
 * correlator and by tests.
 */
struct MissService
{
    ProcId requester = 0;
    Addr block = 0;
    bool write = false;                 ///< GetX vs GetS
    DirEntry::State stateAtArrival = DirEntry::State::Uncached;
    bool ownerWasDirty = false;         ///< E-state miss hit a dirty copy
    Tick unloadedLatency = 0;           ///< analytic zero-contention ns
};

/** The home-side controller of one node. */
class DirectoryController
{
  public:
    using MissObserver = std::function<void(const MissService &)>;

    DirectoryController(ProcId node, const NumaConfig &config,
                        EventQueue &events, MeshNetwork &network);

    /** Handle a home-bound message (requests, hints, acks). */
    void receive(const Message &msg);

    /** Observer invoked once per serviced GetS/GetX. */
    void setMissObserver(MissObserver observer)
    {
        observer_ = std::move(observer);
    }

    const StatGroup &stats() const { return stats_; }

    /** Directory state introspection (tests). */
    const DirEntry *entryOf(Addr block) const;
    bool busy(Addr block) const { return txns_.count(block) != 0; }
    /** In-flight transactions (stall diagnostics). */
    std::size_t pendingTransactions() const { return txns_.size(); }
    const std::unordered_map<Addr, DirEntry> &entries() const
    {
        return dir_;
    }

  private:
    /** In-flight transaction bookkeeping. */
    struct Txn
    {
        Message req;
        DirEntry::State stateAtArrival = DirEntry::State::Uncached;
        std::uint32_t pendingAcks = 0;
        bool waitingFetch = false;
        bool memDone = false;
        bool dataFromOwner = false; ///< PutM/FetchResp(dirty) arrived
        bool ownerWasDirty = false;
    };

    void startTransaction(const Message &req);
    void handleGetS(Txn &txn);
    void handleGetX(Txn &txn);
    void handleAck(const Message &msg);
    void handleFetchDone(const Message &msg);
    void handlePutM(const Message &msg);
    void handlePutS(const Message &msg);
    void handlePutE(const Message &msg);

    /** Try to finish the transaction (all acks + mem + fetch done). */
    void maybeComplete(Addr block);
    /** Send the data reply, update the directory, pop the queue. */
    void complete(Addr block);

    /** Schedule a DRAM access; cb fires at completion (read) --
     *  writes pass a null cb. */
    void accessMemory(Addr block, std::function<void()> cb);

    void
    sendToCache(MsgType type, Addr block, ProcId dst, ProcId requester,
                Tick timestamp, bool dirty = false);

    /** Analytic unloaded service latency for the Table 3 classes. */
    Tick unloadedServiceLatency(const Txn &txn) const;

    ProcId node_;
    NumaConfig config_;
    EventQueue &events_;
    MeshNetwork &network_;
    std::unordered_map<Addr, DirEntry> dir_;
    std::unordered_map<Addr, Txn> txns_;
    std::unordered_map<Addr, std::deque<Message>> waiting_;
    std::vector<Tick> bankFree_;
    MissObserver observer_;
    StatGroup stats_;
};

} // namespace csr

#endif // CSR_NUMA_DIRECTORY_H
