#include "numa/NumaSystem.h"

#include "telemetry/Telemetry.h"
#include "util/Logging.h"

namespace csr
{

namespace
{

/** Messages bound for the home-side controller. */
bool
isDirectoryBound(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutM:
      case MsgType::PutS:
      case MsgType::PutE:
      case MsgType::InvAck:
      case MsgType::FetchResp:
      case MsgType::FetchStale:
        return true;
      default:
        return false;
    }
}

} // namespace

NumaSystem::NumaSystem(const NumaConfig &config,
                       const SyntheticWorkload &workload)
    : config_(config), correlator_(config.cycleNs)
{
    const std::uint32_t nodes = config_.numNodes();
    csr_assert(workload.numProcs() <= nodes,
               "workload has more processors than mesh nodes");

    network_ = std::make_unique<MeshNetwork>(config_, events_);
    for (ProcId n = 0; n < nodes; ++n) {
        caches_.push_back(std::make_unique<CacheController>(
            n, config_, events_, *network_, homes_));
        dirs_.push_back(std::make_unique<DirectoryController>(
            n, config_, events_, *network_));
        dirs_.back()->setMissObserver(
            [this](const MissService &service) {
                correlator_.observe(service);
            });
        network_->attach(n, [this, n](const Message &msg) {
            if (isDirectoryBound(msg.type))
                dirs_[n]->receive(msg);
            else
                caches_[n]->receive(msg);
        });
    }
    for (ProcId p = 0; p < workload.numProcs(); ++p) {
        procs_.push_back(std::make_unique<Processor>(
            p, config_, events_, *caches_[p], workload.procStream(p)));
    }
}

NumaResult
NumaSystem::run()
{
    CSR_TRACE_SPAN("numa", "NumaSystem::run");
    for (auto &proc : procs_)
        proc->start();
    events_.run();

    NumaResult result;
    result.policyName = caches_.front()->policy().name();
    for (auto &proc : procs_) {
        csr_assert(proc->done(), "processor did not finish (deadlock?)");
        result.execTimeNs = std::max(result.execTimeNs,
                                     proc->finishTime());
        result.totalOps += proc->opsIssued();
        for (const auto &[k, v] : proc->stats().all())
            result.stats.inc("proc." + k, v);
    }
    for (auto &cache : caches_) {
        const RunningStat &lat = cache->missLatencyStat();
        result.totalMisses += lat.count();
        result.aggregateMissLatencyNs += lat.sum();
        result.missLatencyStat.merge(lat);
        result.missLatencyHist.merge(cache->missLatencyHistogram());
        for (const auto &[k, v] : cache->stats().all())
            result.stats.inc("cache." + k, v);
        for (const auto &[k, v] : cache->policy().stats().all())
            result.stats.inc("policy." + k, v);
    }
    for (auto &dir : dirs_) {
        for (const auto &[k, v] : dir->stats().all())
            result.stats.inc(k, v);
    }
    for (const auto &[k, v] : network_->stats().all())
        result.stats.inc(k, v);
    result.avgMissLatencyNs =
        result.totalMisses
            ? result.aggregateMissLatencyNs /
                  static_cast<double>(result.totalMisses)
            : 0.0;

    checkCoherenceInvariant();
    return result;
}

void
NumaResult::exportMetrics(MetricRegistry &registry) const
{
    registry.importCounters(stats, "numa.");
    registry.setCounter("numa.exec_time_ns", execTimeNs);
    registry.setCounter("numa.total_ops", totalOps);
    registry.setCounter("numa.total_misses", totalMisses);
    registry.mergeStat("numa.miss_latency_ns", missLatencyStat);
    registry.mergeHistogram("numa.miss_latency_ns", missLatencyHist);
}

void
NumaSystem::checkCoherenceInvariant() const
{
    for (const auto &dir : dirs_) {
        for (const auto &[block, entry] : dir->entries()) {
            if (dir->busy(block))
                continue;
            std::uint32_t exclusive = 0;
            std::uint32_t shared = 0;
            for (const auto &cache : caches_) {
                if (!cache->hasLine(block))
                    continue;
                if (cache->lineState(block) == LineState::Shared)
                    ++shared;
                else
                    ++exclusive;
            }
            csr_assert(exclusive <= 1,
                       "two exclusive holders of one block");
            csr_assert(exclusive == 0 || shared == 0,
                       "exclusive and shared holders coexist");
        }
    }
}

} // namespace csr
