#include "numa/NumaSystem.h"

#include <cinttypes>
#include <cstdio>

#include "robust/Errors.h"
#include "robust/FaultInjector.h"
#include "telemetry/Telemetry.h"
#include "util/Logging.h"

namespace csr
{

namespace
{

/** Watchdog cadence: budget/stall/validate checks every this many
 *  events.  Cheap relative to event dispatch, fine-grained enough
 *  that a stalled run is caught within the window. */
constexpr std::uint64_t kWatchdogEveryEvents = 4096;

/** Messages bound for the home-side controller. */
bool
isDirectoryBound(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
      case MsgType::GetX:
      case MsgType::PutM:
      case MsgType::PutS:
      case MsgType::PutE:
      case MsgType::InvAck:
      case MsgType::FetchResp:
      case MsgType::FetchStale:
        return true;
      default:
        return false;
    }
}

} // namespace

NumaSystem::NumaSystem(const NumaConfig &config,
                       const SyntheticWorkload &workload)
    : config_(config), correlator_(config.cycleNs)
{
    const std::uint32_t nodes = config_.numNodes();
    csr_assert(workload.numProcs() <= nodes,
               "workload has more processors than mesh nodes");

    network_ = std::make_unique<MeshNetwork>(config_, events_);
    for (ProcId n = 0; n < nodes; ++n) {
        caches_.push_back(std::make_unique<CacheController>(
            n, config_, events_, *network_, homes_));
        dirs_.push_back(std::make_unique<DirectoryController>(
            n, config_, events_, *network_));
        dirs_.back()->setMissObserver(
            [this](const MissService &service) {
                correlator_.observe(service);
            });
        network_->attach(n, [this, n](const Message &msg) {
            if (isDirectoryBound(msg.type))
                dirs_[n]->receive(msg);
            else
                caches_[n]->receive(msg);
        });
    }
    for (ProcId p = 0; p < workload.numProcs(); ++p) {
        procs_.push_back(std::make_unique<Processor>(
            p, config_, events_, *caches_[p], workload.procStream(p)));
    }
}

std::uint64_t
NumaSystem::progressCount() const
{
    std::uint64_t progress = 0;
    for (const auto &proc : procs_)
        progress += proc->opsIssued();
    for (const auto &cache : caches_)
        progress += cache->missLatencyStat().count();
    return progress;
}

NumaResult
NumaSystem::run()
{
    CSR_TRACE_SPAN("numa", "NumaSystem::run");
    for (auto &proc : procs_)
        proc->start();

    // The guarded event loop: a plain events_.run() would simply hang
    // on a protocol livelock.  Every kWatchdogEveryEvents events the
    // loop checks the simulated-time budget, the forward-progress
    // watchdog, and (when configured) the coherence invariant, and
    // converts a hang into SimulationStallError carrying a snapshot.
    std::uint64_t events = 0;
    std::uint64_t last_progress = progressCount();
    Tick last_progress_seen = events_.now();
    while (events_.step()) {
        if (++events % kWatchdogEveryEvents != 0)
            continue;
        CSR_FAULT_POINT(FaultSite::NumaSim, "numa event loop");
        if (config_.maxSimNs != 0 && events_.now() > config_.maxSimNs) {
            throw SimulationStallError(
                "simulated time " + std::to_string(events_.now()) +
                    " ns exceeded the cycle budget of " +
                    std::to_string(config_.maxSimNs) + " ns",
                diagnosticSnapshot());
        }
        if (config_.stallWindowNs != 0) {
            const std::uint64_t progress = progressCount();
            if (progress != last_progress) {
                last_progress = progress;
                last_progress_seen = events_.now();
            } else if (events_.now() - last_progress_seen >=
                       config_.stallWindowNs) {
                CSR_TRACE_INSTANT("numa", "stall-detected");
                throw SimulationStallError(
                    "no op retired and no miss completed for " +
                        std::to_string(events_.now() -
                                       last_progress_seen) +
                        " simulated ns (stall window " +
                        std::to_string(config_.stallWindowNs) +
                        " ns)",
                    diagnosticSnapshot());
            }
        }
        if (config_.validateEveryEvents != 0 &&
            events % config_.validateEveryEvents == 0)
            checkCoherenceInvariant();
    }

    NumaResult result;
    result.policyName = caches_.front()->policy().name();
    for (auto &proc : procs_) {
        if (!proc->done()) {
            // The queue drained with work unfinished: a lost message
            // or dropped wakeup, the other face of a deadlock.
            throw SimulationStallError(
                "event queue drained but a processor has not finished",
                diagnosticSnapshot());
        }
        result.execTimeNs = std::max(result.execTimeNs,
                                     proc->finishTime());
        result.totalOps += proc->opsIssued();
        for (const auto &[k, v] : proc->stats().all())
            result.stats.inc("proc." + k, v);
    }
    for (auto &cache : caches_) {
        const RunningStat &lat = cache->missLatencyStat();
        result.totalMisses += lat.count();
        result.aggregateMissLatencyNs += lat.sum();
        result.missLatencyStat.merge(lat);
        result.missLatencyHist.merge(cache->missLatencyHistogram());
        for (const auto &[k, v] : cache->stats().all())
            result.stats.inc("cache." + k, v);
        for (const auto &[k, v] : cache->policy().stats().all())
            result.stats.inc("policy." + k, v);
    }
    for (auto &dir : dirs_) {
        for (const auto &[k, v] : dir->stats().all())
            result.stats.inc(k, v);
    }
    for (const auto &[k, v] : network_->stats().all())
        result.stats.inc(k, v);
    result.avgMissLatencyNs =
        result.totalMisses
            ? result.aggregateMissLatencyNs /
                  static_cast<double>(result.totalMisses)
            : 0.0;

    checkCoherenceInvariant();
    return result;
}

void
NumaResult::exportMetrics(MetricRegistry &registry) const
{
    registry.importCounters(stats, "numa.");
    registry.setCounter("numa.exec_time_ns", execTimeNs);
    registry.setCounter("numa.total_ops", totalOps);
    registry.setCounter("numa.total_misses", totalMisses);
    registry.mergeStat("numa.miss_latency_ns", missLatencyStat);
    registry.mergeHistogram("numa.miss_latency_ns", missLatencyHist);
}

void
NumaSystem::checkCoherenceInvariant() const
{
    for (const auto &dir : dirs_) {
        for (const auto &[block, entry] : dir->entries()) {
            if (dir->busy(block))
                continue;
            std::uint32_t exclusive = 0;
            std::uint32_t shared = 0;
            for (const auto &cache : caches_) {
                if (!cache->hasLine(block))
                    continue;
                if (cache->lineState(block) == LineState::Shared)
                    ++shared;
                else
                    ++exclusive;
            }
            if (exclusive > 1)
                throw InvariantError(
                    "coherence violation: two exclusive holders of "
                    "block " + std::to_string(block));
            if (exclusive != 0 && shared != 0)
                throw InvariantError(
                    "coherence violation: exclusive and shared "
                    "holders of block " + std::to_string(block) +
                    " coexist");
        }
    }
}

std::string
NumaSystem::diagnosticSnapshot() const
{
    char line[160];
    std::string out = "--- numa diagnostic snapshot ---\n";
    std::snprintf(line, sizeof(line),
                  "time=%" PRIu64 " ns, pending events=%zu\n",
                  static_cast<std::uint64_t>(events_.now()),
                  events_.pending());
    out += line;
    for (std::size_t n = 0; n < caches_.size(); ++n) {
        std::uint64_t pending_txns = dirs_[n]->pendingTransactions();
        std::snprintf(
            line, sizeof(line),
            "node %2zu: mshrs=%zu/%u misses=%" PRIu64
            " dir-txns=%" PRIu64,
            n, caches_[n]->outstandingMisses(), config_.mshrs,
            static_cast<std::uint64_t>(
                caches_[n]->missLatencyStat().count()),
            pending_txns);
        out += line;
        if (n < procs_.size()) {
            std::snprintf(line, sizeof(line),
                          " proc: ops=%" PRIu64 "%s",
                          procs_[n]->opsIssued(),
                          procs_[n]->done() ? " done" : "");
            out += line;
        }
        out += '\n';
    }
    std::snprintf(line, sizeof(line), "network: busy links=%zu\n",
                  network_->busyLinks(events_.now()));
    out += line;
    out += "--------------------------------";
    return out;
}

} // namespace csr
