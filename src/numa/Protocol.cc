#include "numa/Protocol.h"

namespace csr
{

bool
carriesData(MsgType type)
{
    switch (type) {
      case MsgType::PutM:
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
        return true;
      case MsgType::FetchResp:
        // Data only when dirty, but size conservatively as data.
        return true;
      default:
        return false;
    }
}

std::string
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::GetS:
        return "GetS";
      case MsgType::GetX:
        return "GetX";
      case MsgType::PutM:
        return "PutM";
      case MsgType::PutS:
        return "PutS";
      case MsgType::PutE:
        return "PutE";
      case MsgType::DataS:
        return "DataS";
      case MsgType::DataE:
        return "DataE";
      case MsgType::DataM:
        return "DataM";
      case MsgType::Inv:
        return "Inv";
      case MsgType::Fetch:
        return "Fetch";
      case MsgType::FetchInv:
        return "FetchInv";
      case MsgType::InvAck:
        return "InvAck";
      case MsgType::FetchResp:
        return "FetchResp";
      case MsgType::FetchStale:
        return "FetchStale";
    }
    return "?";
}

} // namespace csr
