#include "numa/LatencyCorrelator.h"

#include <cmath>

#include "util/Random.h"

namespace csr
{

int
LatencyCorrelator::classOf(bool write, DirEntry::State state)
{
    const int type = write ? 1 : 0;
    const int s = state == DirEntry::State::Uncached ? 0
                  : state == DirEntry::State::Shared ? 1
                                                     : 2;
    return type * 3 + s;
}

const char *
LatencyCorrelator::className(int cls)
{
    static const char *names[kClasses] = {
        "rd/U", "rd/S", "rd/E", "rdx/U", "rdx/S", "rdx/E",
    };
    return names[cls];
}

void
LatencyCorrelator::observe(const MissService &service)
{
    const int cls = classOf(service.write, service.stateAtArrival);
    // Key the history by (processor, block).
    const std::uint64_t key =
        hashMix64((static_cast<std::uint64_t>(service.requester) << 48) ^
                  service.block);

    auto it = last_.find(key);
    if (it != last_.end()) {
        Cell &c = cells_[static_cast<std::size_t>(it->second.cls)]
                        [static_cast<std::size_t>(cls)];
        ++c.count;
        ++totalPairs_;
        const auto diff = static_cast<double>(
            it->second.unloaded > service.unloadedLatency
                ? it->second.unloaded - service.unloadedLatency
                : service.unloadedLatency - it->second.unloaded);
        if (diff > 0.5) {
            ++c.mismatches;
            c.absErrorNs += diff;
        }
        it->second = {cls, service.unloadedLatency};
    } else {
        last_.emplace(key, LastMiss{cls, service.unloadedLatency});
    }
}

double
LatencyCorrelator::matchedPct() const
{
    if (totalPairs_ == 0)
        return 0.0;
    std::uint64_t mismatches = 0;
    for (const auto &row : cells_)
        for (const auto &cell : row)
            mismatches += cell.mismatches;
    return 100.0 *
           static_cast<double>(totalPairs_ - mismatches) /
           static_cast<double>(totalPairs_);
}

} // namespace csr
