/**
 * @file
 * 4x4 mesh interconnection network (Table 4).
 *
 * Dimension-order (X then Y) routed mesh with 64-bit links and 6 ns
 * flit delay.  The timing model is virtual cut-through with per-link
 * serialization: a message occupies each link on its path for
 * flits * flitNs; contention is modelled by per-link busy-until
 * times, so congested links delay messages realistically without
 * simulating individual flits.  Every network crossing also pays the
 * NIC injection/ejection overhead.
 */

#ifndef CSR_NUMA_NETWORK_H
#define CSR_NUMA_NETWORK_H

#include <functional>
#include <vector>

#include "numa/Event.h"
#include "numa/NumaConfig.h"
#include "numa/Protocol.h"
#include "util/Stats.h"

namespace csr
{

/** Mesh network with dimension-order routing and link contention. */
class MeshNetwork
{
  public:
    using Deliver = std::function<void(const Message &)>;

    MeshNetwork(const NumaConfig &config, EventQueue &events);

    /** Register node @p id's message sink. */
    void attach(ProcId id, Deliver sink);

    /**
     * Send a message now.  Delivery is scheduled through the mesh
     * with contention; src == dst messages skip the network and pay
     * only the local bus delay.
     */
    void send(const Message &msg);

    /** Manhattan hop count between two nodes. */
    std::uint32_t hops(ProcId src, ProcId dst) const;

    /** Unloaded (zero-contention) one-way latency of a message. */
    Tick unloadedLatency(ProcId src, ProcId dst, bool data) const;

    /** Directed links still busy at @p now (stall diagnostics). */
    std::size_t
    busyLinks(Tick now) const
    {
        std::size_t n = 0;
        for (const Tick free : linkFree_)
            n += free > now ? 1 : 0;
        return n;
    }

    const StatGroup &stats() const { return stats_; }

  private:
    std::uint32_t colOf(ProcId id) const { return id % config_.meshCols; }
    std::uint32_t rowOf(ProcId id) const { return id / config_.meshCols; }

    /** Link index for the hop from node a toward adjacent node b. */
    std::size_t linkIndex(ProcId a, ProcId b) const;

    /** Nodes along the dimension-order route (inclusive endpoints). */
    std::vector<ProcId> route(ProcId src, ProcId dst) const;

    NumaConfig config_;
    EventQueue &events_;
    std::vector<Deliver> sinks_;
    /** busy-until per directed link (4 directions per node). */
    std::vector<Tick> linkFree_;
    StatGroup stats_;
};

} // namespace csr

#endif // CSR_NUMA_NETWORK_H
