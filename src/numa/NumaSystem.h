/**
 * @file
 * Whole-system assembly of the CC-NUMA simulator (Section 4 setup):
 * nodes (processor + caches + directory slice + memory) on a mesh,
 * driven by a SyntheticWorkload, with first-touch block placement.
 */

#ifndef CSR_NUMA_NUMASYSTEM_H
#define CSR_NUMA_NUMASYSTEM_H

#include <memory>
#include <string>
#include <vector>

#include "numa/CacheController.h"
#include "numa/Directory.h"
#include "numa/Event.h"
#include "numa/LatencyCorrelator.h"
#include "numa/Network.h"
#include "numa/NumaConfig.h"
#include "numa/Processor.h"
#include "telemetry/MetricRegistry.h"
#include "trace/Workload.h"

namespace csr
{

/** Aggregate results of one NUMA run. */
struct NumaResult
{
    std::string policyName;
    Tick execTimeNs = 0;          ///< slowest processor's finish time
    std::uint64_t totalOps = 0;
    std::uint64_t totalMisses = 0;
    double avgMissLatencyNs = 0.0;
    double aggregateMissLatencyNs = 0.0;
    StatGroup stats;              ///< merged component counters
    /** Miss-latency accumulator merged across nodes (ns). */
    RunningStat missLatencyStat;
    /** Miss-latency distribution merged across nodes (ns). */
    Histogram missLatencyHist{CacheController::kMissLatencyHistLoNs,
                              CacheController::kMissLatencyHistHiNs,
                              CacheController::kMissLatencyHistBuckets};

    /** Dump everything into the unified metric schema under
     *  "numa.": counters, the miss-latency stat and its histogram. */
    void exportMetrics(MetricRegistry &registry) const;
};

/**
 * A 16-node (by default) CC-NUMA machine.
 *
 * Workload processors are mapped 1:1 onto nodes; if the workload has
 * fewer processors than the mesh has nodes, the extra nodes still
 * serve as homes/memory but run no program.
 */
class NumaSystem
{
  public:
    NumaSystem(const NumaConfig &config, const SyntheticWorkload &workload);

    /** Run to completion.  @return aggregate results. */
    NumaResult run();

    /** The Table 3 matrix accumulated during the run. */
    const LatencyCorrelator &correlator() const { return correlator_; }

    /** Component access for tests. */
    CacheController &cache(ProcId node) { return *caches_[node]; }
    DirectoryController &directory(ProcId node) { return *dirs_[node]; }
    MeshNetwork &network() { return *network_; }
    EventQueue &events() { return events_; }

    /** Verify the single-writer / multi-reader invariant across all
     *  caches for every block any directory knows about; throws
     *  InvariantError on violation.  Called by tests, at end of
     *  run(), and on the validateEveryEvents cadence. */
    void checkCoherenceInvariant() const;

    /**
     * Human-readable dump of the component state a hang post-mortem
     * needs: per-node processor progress, MSHR occupancy, directory
     * pending transactions, network link business and the event
     * queue depth.  This is what the stall watchdog attaches to
     * SimulationStallError.
     */
    std::string diagnosticSnapshot() const;

  private:
    /** Monotone progress measure: ops issued + misses completed.
     *  Frozen progress across a stall window means a hang. */
    std::uint64_t progressCount() const;

    NumaConfig config_;
    EventQueue events_;
    HomeMap homes_;
    std::unique_ptr<MeshNetwork> network_;
    std::vector<std::unique_ptr<CacheController>> caches_;
    std::vector<std::unique_ptr<DirectoryController>> dirs_;
    std::vector<std::unique_ptr<Processor>> procs_;
    LatencyCorrelator correlator_;
};

} // namespace csr

#endif // CSR_NUMA_NUMASYSTEM_H
