#include "numa/Processor.h"

#include <algorithm>

#include "util/Logging.h"

namespace csr
{

Processor::Processor(ProcId id, const NumaConfig &config,
                     EventQueue &events, CacheController &cache,
                     std::unique_ptr<ProcAccessStream> stream)
    : id_(id), config_(config), events_(events), cache_(cache),
      stream_(std::move(stream))
{
}

void
Processor::start()
{
    wakePending_ = true;
    events_.schedule(0, [this] {
        wakePending_ = false;
        advance();
    });
}

bool
Processor::stalled() const
{
    if (outstanding_.size() >= config_.mshrs)
        return true;
    // Store ordering (sequential consistency approximation): a write
    // may not issue while storeBufferDepth write misses are pending.
    if (haveOp_ && op_.write &&
        outstandingWrites_.size() >= config_.storeBufferDepth) {
        return true;
    }
    return !outstanding_.empty() &&
           opIndex_ - outstanding_.front() >= config_.activeList;
}

void
Processor::advance()
{
    while (true) {
        if (!haveOp_) {
            if (!stream_->next(op_)) {
                finished_ = true;
                finishTime_ = std::max(finishTime_, localTime_);
                return;
            }
            haveOp_ = true;
            // Pay the compute gap when the op is fetched.
            localTime_ += config_.cycles(op_.gapCycles);
        }

        if (stalled()) {
            sleeping_ = true;
            stats_.inc("proc.stall");
            return; // resumed by onMissDone()
        }

        // The cache must be accessed at real event time; if the local
        // clock is ahead, sleep until it is reached.
        if (localTime_ > events_.now()) {
            if (!wakePending_) {
                wakePending_ = true;
                events_.schedule(localTime_, [this] {
                    wakePending_ = false;
                    advance();
                });
            }
            return;
        }
        localTime_ = events_.now();

        const std::uint64_t index = opIndex_++;
        haveOp_ = false;
        const AccessOutcome outcome = cache_.access(
            op_.addr, op_.write,
            [this, index](Tick when) { onMissDone(index, when); });

        switch (outcome) {
          case AccessOutcome::HitL1:
            localTime_ += config_.cycles(config_.l1HitCycles);
            stats_.inc("proc.l1hit");
            break;
          case AccessOutcome::HitL2:
            localTime_ += config_.cycles(config_.l2HitCycles);
            stats_.inc("proc.l2hit");
            break;
          case AccessOutcome::Miss:
            outstanding_.push_back(index);
            if (op_.write)
                outstandingWrites_.push_back(index);
            stats_.inc("proc.miss");
            break;
        }
    }
}

void
Processor::onMissDone(std::uint64_t op_index, Tick when)
{
    auto it = std::find(outstanding_.begin(), outstanding_.end(),
                        op_index);
    csr_assert(it != outstanding_.end(), "completion for unknown op");
    outstanding_.erase(it);
    auto wit = std::find(outstandingWrites_.begin(),
                         outstandingWrites_.end(), op_index);
    if (wit != outstandingWrites_.end())
        outstandingWrites_.erase(wit);

    if (finished_ && outstanding_.empty()) {
        finishTime_ = std::max({finishTime_, localTime_, when});
        return;
    }
    if (sleeping_) {
        // The core was blocked on this completion: its clock cannot
        // be earlier than the data arrival.
        sleeping_ = false;
        localTime_ = std::max(localTime_, when);
        advance();
    }
}

} // namespace csr
