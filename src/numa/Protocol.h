/**
 * @file
 * Directory MESI protocol message vocabulary.
 *
 * The protocol is a blocking-home MESI directory (one transaction per
 * block in flight at its home; later requests queue), in the style of
 * DASH/Origin, with invalidation-ack collection at the home.  With
 * replacement hints enabled (Table 4), caches notify the home on
 * clean evictions (PutS / PutE) so the sharer list stays exact; with
 * hints off (the Table 3 configuration), clean evictions are silent
 * and the home tolerates stale owner/sharer information via
 * FetchStale and unconditional InvAcks.
 */

#ifndef CSR_NUMA_PROTOCOL_H
#define CSR_NUMA_PROTOCOL_H

#include <cstdint>
#include <string>

#include "util/Types.h"

namespace csr
{

/** Message opcodes. */
enum class MsgType : std::uint8_t
{
    // cache -> home
    GetS,       ///< read miss
    GetX,       ///< write miss / upgrade
    PutM,       ///< dirty writeback (data)
    PutS,       ///< replacement hint: shared clean eviction
    PutE,       ///< replacement hint: exclusive clean eviction
    // home -> cache
    DataS,      ///< read data, shared
    DataE,      ///< read data, exclusive clean (first reader)
    DataM,      ///< write data (or upgrade ack), modifiable
    Inv,        ///< invalidate a shared copy
    Fetch,      ///< downgrade request to the exclusive owner
    FetchInv,   ///< invalidate request to the exclusive owner
    // cache -> home (responses)
    InvAck,     ///< invalidation acknowledged (sent even if absent)
    FetchResp,  ///< owner's response to Fetch/FetchInv (data if dirty)
    FetchStale, ///< owner no longer has the block (silent eviction)
};

/** True for messages that carry a cache block of data. */
bool carriesData(MsgType type);

/** Printable opcode name (debug/trace). */
std::string msgTypeName(MsgType type);

/** One protocol message. */
struct Message
{
    MsgType type = MsgType::GetS;
    Addr block = 0;            ///< block-granular address
    ProcId src = 0;
    ProcId dst = 0;
    /** Requester on whose behalf a forwarded message travels
     *  (Fetch/FetchInv carry the original requester). */
    ProcId requester = 0;
    /** FetchResp: the owner's copy was dirty (data valid). */
    bool dirty = false;
    /** Issue timestamp of the original request; data replies echo it
     *  back so the requester can measure the miss latency
     *  (Section 4.1's timestamp scheme). */
    Tick timestamp = 0;
};

} // namespace csr

#endif // CSR_NUMA_PROTOCOL_H
