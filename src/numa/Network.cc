#include "numa/Network.h"

#include <algorithm>

#include "telemetry/Telemetry.h"
#include "util/Logging.h"

namespace csr
{

MeshNetwork::MeshNetwork(const NumaConfig &config, EventQueue &events)
    : config_(config), events_(events), sinks_(config.numNodes()),
      linkFree_(static_cast<std::size_t>(config.numNodes()) * 4, 0)
{
}

void
MeshNetwork::attach(ProcId id, Deliver sink)
{
    csr_assert(id < sinks_.size(), "node id out of range");
    sinks_[id] = std::move(sink);
}

std::uint32_t
MeshNetwork::hops(ProcId src, ProcId dst) const
{
    const auto dx = static_cast<std::int32_t>(colOf(src)) -
                    static_cast<std::int32_t>(colOf(dst));
    const auto dy = static_cast<std::int32_t>(rowOf(src)) -
                    static_cast<std::int32_t>(rowOf(dst));
    return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

Tick
MeshNetwork::unloadedLatency(ProcId src, ProcId dst, bool data) const
{
    if (src == dst)
        return config_.localBusNs;
    const std::uint32_t flits =
        data ? config_.dataFlits : config_.ctrlFlits;
    const std::uint32_t h = hops(src, dst);
    // Cut-through: head flit pays router+flit per hop; the body
    // serializes behind it once (on the narrowest -- here every --
    // link).
    return 2 * config_.nicNs + h * (config_.routerNs + config_.flitNs) +
           Tick{flits - 1} * config_.flitNs;
}

std::size_t
MeshNetwork::linkIndex(ProcId a, ProcId b) const
{
    // Direction: 0=east, 1=west, 2=south, 3=north.
    std::size_t dir;
    if (rowOf(a) == rowOf(b))
        dir = colOf(b) == colOf(a) + 1 ? 0 : 1;
    else
        dir = rowOf(b) == rowOf(a) + 1 ? 2 : 3;
    return static_cast<std::size_t>(a) * 4 + dir;
}

std::vector<ProcId>
MeshNetwork::route(ProcId src, ProcId dst) const
{
    std::vector<ProcId> path;
    path.push_back(src);
    ProcId cur = src;
    // X first.
    while (colOf(cur) != colOf(dst)) {
        cur = colOf(cur) < colOf(dst) ? cur + 1 : cur - 1;
        path.push_back(cur);
    }
    // Then Y.
    while (rowOf(cur) != rowOf(dst)) {
        cur = rowOf(cur) < rowOf(dst) ? cur + config_.meshCols
                                      : cur - config_.meshCols;
        path.push_back(cur);
    }
    return path;
}

void
MeshNetwork::send(const Message &msg)
{
    csr_assert(msg.dst < sinks_.size() && sinks_[msg.dst],
               "send to unattached node");
    const Tick now = events_.now();
    stats_.inc("net.messages");

    if (msg.src == msg.dst) {
        // Intra-node: local bus only.
        stats_.inc("net.local");
        events_.schedule(now + config_.localBusNs,
                         [this, msg] { sinks_[msg.dst](msg); });
        return;
    }

    const bool data = carriesData(msg.type);
    const std::uint32_t flits =
        data ? config_.dataFlits : config_.ctrlFlits;
    const Tick occupancy = Tick{flits} * config_.flitNs;
    stats_.inc("net.flits", flits);

    // Head-flit progression with per-link availability.
    Tick head = now + config_.nicNs;
    const auto path = route(msg.src, msg.dst);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const std::size_t link = linkIndex(path[i], path[i + 1]);
        Tick &free_at = linkFree_[link];
        const Tick start = std::max(head, free_at);
        const Tick queued = start - head;
        if (queued > 0)
            stats_.inc("net.queue_ns", queued);
        free_at = start + occupancy;
        head = start + config_.routerNs + config_.flitNs;
    }
    // Tail serialization once (cut-through) plus ejection NIC.
    const Tick arrival =
        head + Tick{flits - 1} * config_.flitNs + config_.nicNs;

    stats_.inc("net.hop_total", hops(msg.src, msg.dst));
    CSR_TRACE_INSTANT_V("numa", "net.msg_latency_ns", arrival - now);
    events_.schedule(arrival, [this, msg] { sinks_[msg.dst](msg); });
}

} // namespace csr
