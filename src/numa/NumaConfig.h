/**
 * @file
 * CC-NUMA system configuration -- the paper's Table 4 baseline.
 *
 * All times are in nanoseconds (1 tick == 1 ns).  Processor-cycle
 * quantities scale with the clock: 1 GHz => 1 ns/cycle, 500 MHz =>
 * 2 ns/cycle, which is exactly how the paper's two processor speeds
 * change the relative weight of memory latency.
 */

#ifndef CSR_NUMA_NUMACONFIG_H
#define CSR_NUMA_NUMACONFIG_H

#include <cstdint>

#include "cache/PolicyFactory.h"
#include "util/Types.h"

namespace csr
{

/** Full system configuration (defaults follow Table 4). */
struct NumaConfig
{
    // --- topology ---------------------------------------------------------
    std::uint32_t meshCols = 4;          ///< 4x4 mesh
    std::uint32_t meshRows = 4;
    /** Number of nodes = meshCols * meshRows. */
    std::uint32_t numNodes() const { return meshCols * meshRows; }

    // --- processor --------------------------------------------------------
    /** Nanoseconds per processor cycle (1 = 1 GHz, 2 = 500 MHz). */
    std::uint32_t cycleNs = 2;
    /** Active-list run-ahead: ops the core may issue past the oldest
     *  outstanding miss (Table 4: 64-entry active list). */
    std::uint32_t activeList = 64;
    /** Outstanding misses per processor (Table 4: 8 L2 MSHRs). */
    std::uint32_t mshrs = 8;
    /** Outstanding *write* misses the core tolerates before it
     *  stalls.  Depth 1 approximates RSIM's sequential-consistency
     *  store serialization; the default of 8 (= the MSHR count, i.e.
     *  unconstrained) matches the paper's relative results best and
     *  is swept by bench_ablation_ilp. */
    std::uint32_t storeBufferDepth = 8;

    // --- caches -----------------------------------------------------------
    std::uint64_t l1Bytes = 4 * 1024;    ///< direct-mapped
    std::uint64_t l2Bytes = 16 * 1024;   ///< 4-way
    std::uint32_t l2Assoc = 4;
    std::uint32_t blockBytes = 64;
    std::uint32_t l1HitCycles = 1;
    std::uint32_t l2HitCycles = 6;

    // --- memory & directory -------------------------------------------------
    Tick memAccessNs = 60;               ///< DRAM access (Table 4)
    std::uint32_t memBanks = 4;          ///< 4-way interleaved
    Tick dirProcessNs = 14;              ///< directory/controller occupancy
    Tick localBusNs = 14;                ///< L2 <-> local node crossing

    // --- network ------------------------------------------------------------
    Tick flitNs = 6;                     ///< per-flit link delay (Table 4)
    Tick routerNs = 8;                   ///< per-hop routing latency
    Tick nicNs = 42;                     ///< network interface crossing
    std::uint32_t ctrlFlits = 1;         ///< header-only message
    std::uint32_t dataFlits = 9;         ///< header + 64 B on 64-bit links

    // --- protocol & policy ----------------------------------------------------
    /** MESI with replacement hints (Table 4).  Table 3's latency
     *  correlation study runs with hints off. */
    bool replacementHints = true;
    /** L2 replacement policy under test. */
    PolicyKind policy = PolicyKind::Lru;
    PolicyParams policyParams = {};
    /** Default miss-latency prediction for never-missed blocks (ns);
     *  roughly the local clean latency. */
    Cost defaultPredictedLatency = 120.0;
    /** Weight applied to the measured latency of *write* misses when
     *  it becomes the block's replacement cost.  1.0 reproduces the
     *  paper's latency cost function; values < 1 implement the
     *  Section 7 penalty idea that buffered stores hurt less than
     *  loads, so blocks that miss on stores are cheaper to evict. */
    double storeCostWeight = 1.0;

    // --- robustness -----------------------------------------------------------
    /** Hard budget on simulated time (--max-cycles); 0 = unlimited.
     *  Exceeding it raises SimulationStallError with a diagnostic
     *  snapshot instead of running forever. */
    Tick maxSimNs = 0;
    /** Stall watchdog window (--stall-window): if no processor
     *  retires an op and no miss completes for this much simulated
     *  time, the run is declared stalled.  0 disables the watchdog. */
    Tick stallWindowNs = 10'000'000;
    /** Run the coherence invariant check every N events (--validate);
     *  0 checks only at end of run. */
    std::uint64_t validateEveryEvents = 0;

    /** Convenience: ns for n processor cycles. */
    Tick cycles(std::uint32_t n) const { return Tick{n} * cycleNs; }
};

} // namespace csr

#endif // CSR_NUMA_NUMACONFIG_H
