#include "numa/Directory.h"

#include <algorithm>

#include "telemetry/Telemetry.h"
#include "util/Logging.h"

namespace csr
{

DirectoryController::DirectoryController(ProcId node,
                                         const NumaConfig &config,
                                         EventQueue &events,
                                         MeshNetwork &network)
    : node_(node), config_(config), events_(events), network_(network),
      bankFree_(config.memBanks, 0)
{
}

const DirEntry *
DirectoryController::entryOf(Addr block) const
{
    auto it = dir_.find(block);
    return it == dir_.end() ? nullptr : &it->second;
}

void
DirectoryController::receive(const Message &msg)
{
    switch (msg.type) {
      case MsgType::GetS:
      case MsgType::GetX: {
        // Busy means: a transaction in flight, or a queued successor
        // waiting out the directory-occupancy delay before starting.
        auto wit = waiting_.find(msg.block);
        const bool queued = wit != waiting_.end() && !wit->second.empty();
        if (txns_.count(msg.block) || queued) {
            waiting_[msg.block].push_back(msg);
            stats_.inc("dir.queued");
        } else {
            startTransaction(msg);
        }
        break;
      }
      case MsgType::InvAck:
        handleAck(msg);
        break;
      case MsgType::FetchResp:
      case MsgType::FetchStale:
        handleFetchDone(msg);
        break;
      case MsgType::PutM:
        handlePutM(msg);
        break;
      case MsgType::PutS:
        handlePutS(msg);
        break;
      case MsgType::PutE:
        handlePutE(msg);
        break;
      default:
        csr_panic("directory received %s", msgTypeName(msg.type).c_str());
    }
}

void
DirectoryController::startTransaction(const Message &req)
{
    Txn txn;
    txn.req = req;
    txn.stateAtArrival = dir_[req.block].state;
    auto [it, inserted] = txns_.emplace(req.block, txn);
    csr_assert(inserted, "transaction already in flight");
    stats_.inc(req.type == MsgType::GetS ? "dir.gets" : "dir.getx");
    CSR_TRACE_INSTANT("numa", req.type == MsgType::GetS ? "dir.txn.gets"
                                                        : "dir.txn.getx");

    if (req.type == MsgType::GetS)
        handleGetS(it->second);
    else
        handleGetX(it->second);
}

void
DirectoryController::handleGetS(Txn &txn)
{
    DirEntry &entry = dir_[txn.req.block];
    const Addr block = txn.req.block;

    switch (entry.state) {
      case DirEntry::State::Uncached:
      case DirEntry::State::Shared:
        accessMemory(block, [this, block] {
            auto it = txns_.find(block);
            csr_assert(it != txns_.end(), "mem done without txn");
            it->second.memDone = true;
            maybeComplete(block);
        });
        break;
      case DirEntry::State::Exclusive:
        if (entry.owner == txn.req.src) {
            // Owner silently evicted a clean-exclusive line (no-hints
            // mode) and now re-reads: memory is valid.
            accessMemory(block, [this, block] {
                txns_.at(block).memDone = true;
                maybeComplete(block);
            });
        } else {
            txn.waitingFetch = true;
            sendToCache(MsgType::Fetch, block, entry.owner, txn.req.src,
                        txn.req.timestamp);
        }
        break;
    }
}

void
DirectoryController::handleGetX(Txn &txn)
{
    DirEntry &entry = dir_[txn.req.block];
    const Addr block = txn.req.block;

    switch (entry.state) {
      case DirEntry::State::Uncached:
        accessMemory(block, [this, block] {
            txns_.at(block).memDone = true;
            maybeComplete(block);
        });
        break;
      case DirEntry::State::Shared: {
        std::uint32_t invs = 0;
        for (ProcId sharer : entry.sharers) {
            if (sharer == txn.req.src)
                continue;
            sendToCache(MsgType::Inv, block, sharer, txn.req.src,
                        txn.req.timestamp);
            ++invs;
        }
        txn.pendingAcks = invs;
        stats_.inc("dir.invs", invs);
        accessMemory(block, [this, block] {
            txns_.at(block).memDone = true;
            maybeComplete(block);
        });
        break;
      }
      case DirEntry::State::Exclusive:
        if (entry.owner == txn.req.src) {
            // Silent clean eviction followed by a write re-request.
            accessMemory(block, [this, block] {
                txns_.at(block).memDone = true;
                maybeComplete(block);
            });
        } else {
            txn.waitingFetch = true;
            sendToCache(MsgType::FetchInv, block, entry.owner,
                        txn.req.src, txn.req.timestamp);
        }
        break;
    }
}

void
DirectoryController::handleAck(const Message &msg)
{
    auto it = txns_.find(msg.block);
    csr_assert(it != txns_.end(), "InvAck without transaction");
    csr_assert(it->second.pendingAcks > 0, "unexpected InvAck");
    --it->second.pendingAcks;
    maybeComplete(msg.block);
}

void
DirectoryController::handleFetchDone(const Message &msg)
{
    auto it = txns_.find(msg.block);
    if (it == txns_.end()) {
        // A FetchStale can trail a transaction that a racing PutM
        // already completed; it is harmless.
        stats_.inc("dir.stale_fetch_resp");
        return;
    }
    Txn &txn = it->second;
    csr_assert(txn.waitingFetch, "fetch response without fetch");
    txn.waitingFetch = false;

    if (msg.type == MsgType::FetchResp) {
        txn.ownerWasDirty = msg.dirty;
        if (msg.dirty) {
            txn.dataFromOwner = true;
            accessMemory(msg.block, nullptr); // writeback, off path
            txn.memDone = true;
            maybeComplete(msg.block);
            return;
        }
        // Clean copy at the owner: memory is valid, read it.
    }
    // FetchStale, or clean FetchResp: read memory (unless a racing
    // PutM already delivered the data).
    if (txn.dataFromOwner) {
        txn.memDone = true;
        maybeComplete(msg.block);
        return;
    }
    const Addr block = msg.block;
    accessMemory(block, [this, block] {
        txns_.at(block).memDone = true;
        maybeComplete(block);
    });
}

void
DirectoryController::handlePutM(const Message &msg)
{
    DirEntry &entry = dir_[msg.block];
    auto it = txns_.find(msg.block);
    if (it != txns_.end()) {
        // Racing with a Fetch/FetchInv for the same block: use the
        // writeback as the data; the FetchStale will complete us.
        it->second.dataFromOwner = true;
        it->second.ownerWasDirty = true;
        accessMemory(msg.block, nullptr);
        stats_.inc("dir.putm_race");
        return;
    }
    if (entry.state == DirEntry::State::Exclusive &&
        entry.owner == msg.src) {
        accessMemory(msg.block, nullptr);
        entry.state = DirEntry::State::Uncached;
        entry.sharers.clear();
        stats_.inc("dir.putm");
    } else {
        stats_.inc("dir.putm_stale");
    }
}

void
DirectoryController::handlePutS(const Message &msg)
{
    DirEntry &entry = dir_[msg.block];
    auto it = std::find(entry.sharers.begin(), entry.sharers.end(),
                        msg.src);
    if (it != entry.sharers.end()) {
        entry.sharers.erase(it);
        if (entry.sharers.empty() &&
            entry.state == DirEntry::State::Shared &&
            txns_.find(msg.block) == txns_.end()) {
            entry.state = DirEntry::State::Uncached;
        }
        stats_.inc("dir.puts");
    } else {
        stats_.inc("dir.puts_stale");
    }
}

void
DirectoryController::handlePutE(const Message &msg)
{
    DirEntry &entry = dir_[msg.block];
    if (txns_.count(msg.block)) {
        // The in-flight Fetch will be answered with FetchStale; the
        // completion path rebuilds the entry.
        stats_.inc("dir.pute_race");
        return;
    }
    if (entry.state == DirEntry::State::Exclusive &&
        entry.owner == msg.src) {
        entry.state = DirEntry::State::Uncached;
        entry.sharers.clear();
        stats_.inc("dir.pute");
    } else {
        stats_.inc("dir.pute_stale");
    }
}

void
DirectoryController::maybeComplete(Addr block)
{
    auto it = txns_.find(block);
    csr_assert(it != txns_.end(), "maybeComplete without txn");
    const Txn &txn = it->second;
    if (txn.pendingAcks == 0 && !txn.waitingFetch && txn.memDone)
        complete(block);
}

void
DirectoryController::complete(Addr block)
{
    const Txn txn = txns_.at(block);
    DirEntry &entry = dir_[block];
    const ProcId req = txn.req.src;

    if (txn.req.type == MsgType::GetS) {
        if (txn.stateAtArrival == DirEntry::State::Exclusive &&
            entry.owner != req) {
            // Downgrade: previous owner (if it still holds the line)
            // plus the requester now share it.
            entry.state = DirEntry::State::Shared;
            entry.sharers.clear();
            entry.sharers.push_back(entry.owner);
            entry.sharers.push_back(req);
            CSR_TRACE_INSTANT("numa", "coh.E_to_S");
            sendToCache(MsgType::DataS, block, req, req,
                        txn.req.timestamp);
        } else if (txn.stateAtArrival == DirEntry::State::Shared) {
            if (std::find(entry.sharers.begin(), entry.sharers.end(),
                          req) == entry.sharers.end()) {
                entry.sharers.push_back(req);
            }
            entry.state = DirEntry::State::Shared;
            CSR_TRACE_INSTANT("numa", "coh.S_to_S");
            sendToCache(MsgType::DataS, block, req, req,
                        txn.req.timestamp);
        } else {
            // Uncached (or silent self re-read): grant exclusive.
            entry.state = DirEntry::State::Exclusive;
            entry.owner = req;
            entry.sharers.clear();
            CSR_TRACE_INSTANT("numa", "coh.U_to_E");
            sendToCache(MsgType::DataE, block, req, req,
                        txn.req.timestamp);
        }
    } else {
        entry.state = DirEntry::State::Exclusive;
        entry.owner = req;
        entry.sharers.clear();
        CSR_TRACE_INSTANT("numa", "coh.to_M");
        sendToCache(MsgType::DataM, block, req, req, txn.req.timestamp);
    }

    if (observer_) {
        MissService service;
        service.requester = req;
        service.block = block;
        service.write = txn.req.type == MsgType::GetX;
        service.stateAtArrival = txn.stateAtArrival;
        service.ownerWasDirty = txn.ownerWasDirty;
        service.unloadedLatency = unloadedServiceLatency(txn);
        observer_(service);
    }

    txns_.erase(block);

    // Serve the next queued request for this block, paying the
    // directory occupancy again.  The message stays in the queue
    // until it actually starts so that the block reads as busy and
    // newly arriving requests keep queueing FIFO behind it.
    auto wit = waiting_.find(block);
    if (wit != waiting_.end() && !wit->second.empty()) {
        events_.scheduleIn(config_.dirProcessNs, [this, block] {
            auto it = waiting_.find(block);
            csr_assert(it != waiting_.end() && !it->second.empty(),
                       "queued request vanished");
            Message next = it->second.front();
            it->second.pop_front();
            if (it->second.empty())
                waiting_.erase(it);
            startTransaction(next);
        });
    }
}

void
DirectoryController::accessMemory(Addr block, std::function<void()> cb)
{
    const std::size_t bank = block % config_.memBanks;
    const Tick start = std::max(events_.now() + config_.dirProcessNs,
                                bankFree_[bank]);
    bankFree_[bank] = start + config_.memAccessNs;
    stats_.inc("dir.mem_access");
    if (cb)
        events_.schedule(start + config_.memAccessNs, std::move(cb));
}

void
DirectoryController::sendToCache(MsgType type, Addr block, ProcId dst,
                                 ProcId requester, Tick timestamp,
                                 bool dirty)
{
    Message msg;
    msg.type = type;
    msg.block = block;
    msg.src = node_;
    msg.dst = dst;
    msg.requester = requester;
    msg.timestamp = timestamp;
    msg.dirty = dirty;
    network_.send(msg);
}

Tick
DirectoryController::unloadedServiceLatency(const Txn &txn) const
{
    const ProcId req = txn.req.src;
    const Tick req_leg = network_.unloadedLatency(req, node_, false);
    const Tick data_leg = network_.unloadedLatency(node_, req, true);
    Tick service = config_.dirProcessNs + config_.memAccessNs;
    if (txn.stateAtArrival == DirEntry::State::Exclusive &&
        txn.ownerWasDirty) {
        // Three-hop: the fetch round trip to the (former) owner
        // replaces part of the memory access but adds two legs.  Use
        // the average owner distance for the class value so that the
        // class depends only on (type, state, dirtiness).
        service += 2 * network_.unloadedLatency(node_, (node_ + 1) %
                                                config_.numNodes(),
                                                true);
    }
    return req_leg + service + data_leg;
}

} // namespace csr
