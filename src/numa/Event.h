/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global queue of (tick, sequence, action) triples.  The
 * sequence number makes simultaneous events fire in scheduling order,
 * which keeps runs deterministic.
 */

#ifndef CSR_NUMA_EVENT_H
#define CSR_NUMA_EVENT_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/Logging.h"
#include "util/Types.h"

namespace csr
{

/** Deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Schedule an action at an absolute tick (>= current time). */
    void
    schedule(Tick when, Action action)
    {
        csr_assert(when >= now_, "scheduling into the past");
        heap_.push(Entry{when, seq_++, std::move(action)});
    }

    /** Schedule an action delta ticks from now. */
    void
    scheduleIn(Tick delta, Action action)
    {
        schedule(now_ + delta, std::move(action));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    std::size_t pending() const { return heap_.size(); }

    /** Pop and execute the next event.  @return false if empty. */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Entry's action cannot be moved out of the priority queue
        // directly (top() is const); copy the handle out first.
        Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.when;
        entry.action();
        return true;
    }

    /** Run until the queue drains or max_events fire.
     *  @return number of events executed. */
    std::uint64_t
    run(std::uint64_t max_events = UINT64_MAX)
    {
        std::uint64_t n = 0;
        while (n < max_events && step())
            ++n;
        return n;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Action action;

        bool
        operator>(const Entry &other) const
        {
            return when != other.when ? when > other.when
                                      : seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace csr

#endif // CSR_NUMA_EVENT_H
