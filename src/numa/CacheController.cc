#include "numa/CacheController.h"

#include "telemetry/Telemetry.h"
#include "util/Logging.h"

namespace csr
{

CacheController::CacheController(ProcId node, const NumaConfig &config,
                                 EventQueue &events, MeshNetwork &network,
                                 HomeMap &homes)
    : node_(node), config_(config), events_(events), network_(network),
      homes_(homes), l1Geom_(config.l1Bytes, 1, config.blockBytes),
      l2Geom_(config.l2Bytes, config.l2Assoc, config.blockBytes),
      l1_(l1Geom_),
      l2_(l2Geom_, makePolicy(config.policy, l2Geom_, config.policyParams)),
      predictor_(config.defaultPredictedLatency)
{
}

bool
CacheController::hasLine(Addr block) const
{
    const Addr addr = byteOf(block);
    return l2_.lookup(l2Geom_.setIndex(addr), l2Geom_.tag(addr)) !=
           kInvalidWay;
}

LineState
CacheController::lineState(Addr block) const
{
    const Addr addr = byteOf(block);
    const std::uint32_t set = l2Geom_.setIndex(addr);
    const int way = l2_.lookup(set, l2Geom_.tag(addr));
    csr_assert(way != kInvalidWay, "lineState of absent block");
    return static_cast<LineState>(l2_.auxAt(set, way));
}

AccessOutcome
CacheController::access(Addr byte_addr, bool write, MissDone done)
{
    const Addr block = blockOf(byte_addr);
    const std::uint32_t set = l2Geom_.setIndex(byte_addr);
    const Addr tag = l2Geom_.tag(byte_addr);
    const int way = l2_.lookup(set, tag);
    const bool writable =
        way != kInvalidWay &&
        static_cast<LineState>(l2_.auxAt(set, way)) != LineState::Shared;

    // L1 filter: pure hits only; writes must still consult the L2
    // state (an L1 copy of an S line cannot absorb a store).
    if (way != kInvalidWay && (!write || writable)) {
        const std::uint32_t l1set = l1Geom_.setIndex(byte_addr);
        const bool l1hit =
            l1_.lookup(l1set, l1Geom_.tag(byte_addr)) != kInvalidWay;
        // Recency update (and possible reservation success) in the L2
        // policy happens on every processor access that reaches it;
        // an L1 hit models a filtered access, so only L2 accesses
        // touch the policy.
        if (l1hit) {
            if (write) {
                l2_.setAux(set, way,
                           static_cast<std::uint32_t>(
                               LineState::Modified));
            }
            stats_.inc("l1.hit");
            return AccessOutcome::HitL1;
        }
        l2_.noteAccess(set, tag, way);
        if (write) {
            l2_.setAux(set, way,
                       static_cast<std::uint32_t>(LineState::Modified));
        }
        installL1(block);
        stats_.inc("l2.hit");
        return AccessOutcome::HitL2;
    }

    // Miss (including upgrade-miss on a Shared line).
    stats_.inc(write ? "l2.miss.write" : "l2.miss.read");
    auto it = mshrs_.find(block);
    if (it != mshrs_.end()) {
        // Coalesce into the outstanding transaction.
        it->second.waiters.emplace_back(write, std::move(done));
        stats_.inc("l2.mshr.coalesce");
        return AccessOutcome::Miss;
    }

    const bool upgrade = way != kInvalidWay;
    if (upgrade) {
        csr_assert(write, "read upgrade is impossible");
        // Recency: the S line was accessed.
        l2_.noteAccess(set, tag, way);
    } else {
        // ETD lookup happens on every miss (Section 2.4).
        l2_.noteAccess(set, tag, kInvalidWay);
    }

    Mshr mshr;
    mshr.write = write;
    mshr.upgrade = upgrade;
    mshr.issued = events_.now();
    mshr.waiters.emplace_back(write, std::move(done));
    mshrs_.emplace(block, std::move(mshr));
    issueRequest(block, write, upgrade);
    return AccessOutcome::Miss;
}

void
CacheController::issueRequest(Addr block, bool write, bool upgrade)
{
    (void)upgrade;
    sendToHome(write ? MsgType::GetX : MsgType::GetS, block,
               events_.now());
}

void
CacheController::receive(const Message &msg)
{
    const Addr addr = byteOf(msg.block);
    const std::uint32_t set = l2Geom_.setIndex(addr);
    const Addr tag = l2Geom_.tag(addr);

    switch (msg.type) {
      case MsgType::DataS:
      case MsgType::DataE:
      case MsgType::DataM:
        handleData(msg);
        break;

      case MsgType::Inv: {
        // Invalidate our (shared) copy; the ETD entry, if any, dies
        // with it (Section 2.4).  Ack even when we no longer hold
        // the line (it may have been evicted silently or the hint is
        // still in flight).
        const int way = l2_.invalidateTag(set, tag);
        if (way != kInvalidWay) {
            invalidateL1(msg.block);
            stats_.inc("coh.inv");
        } else {
            stats_.inc("coh.inv_absent");
        }
        Message ack;
        ack.type = MsgType::InvAck;
        ack.block = msg.block;
        ack.src = node_;
        ack.dst = msg.src;
        ack.requester = msg.requester;
        network_.send(ack);
        break;
      }

      case MsgType::Fetch:
      case MsgType::FetchInv: {
        const int way = l2_.lookup(set, tag);
        Message resp;
        resp.block = msg.block;
        resp.src = node_;
        resp.dst = msg.src;
        resp.requester = msg.requester;
        if (way == kInvalidWay) {
            resp.type = MsgType::FetchStale;
            stats_.inc("coh.fetch_stale");
        } else {
            resp.type = MsgType::FetchResp;
            resp.dirty = static_cast<LineState>(l2_.auxAt(set, way)) ==
                         LineState::Modified;
            if (msg.type == MsgType::Fetch) {
                l2_.setAux(set, way,
                           static_cast<std::uint32_t>(
                               LineState::Shared));
                stats_.inc("coh.downgrade");
            } else {
                l2_.invalidateTag(set, tag);
                invalidateL1(msg.block);
                stats_.inc("coh.fetch_inv");
            }
        }
        network_.send(resp);
        break;
      }

      default:
        csr_panic("cache received %s", msgTypeName(msg.type).c_str());
    }
}

void
CacheController::handleData(const Message &msg)
{
    auto it = mshrs_.find(msg.block);
    csr_assert(it != mshrs_.end(), "data reply without MSHR");
    Mshr mshr = std::move(it->second);
    mshrs_.erase(it);

    const Tick now = events_.now();
    const auto latency = static_cast<Cost>(now - mshr.issued);
    predictor_.update(msg.block, latency);
    missLatency_.add(latency);
    missLatencyHist_.add(latency);
    stats_.inc("l2.fill");
    CSR_TRACE_INSTANT_V("numa", "l2.fill_latency_ns", latency);

    // Replacement cost of the block's next miss: the measured latency,
    // optionally discounted for store misses (penalty weighting,
    // Section 7).
    const Cost cost =
        mshr.write ? latency * config_.storeCostWeight : latency;

    const Addr addr = byteOf(msg.block);
    const std::uint32_t set = l2Geom_.setIndex(addr);
    const Addr tag = l2Geom_.tag(addr);
    const int way = l2_.lookup(set, tag);

    LineState state = LineState::Shared;
    if (msg.type == MsgType::DataE)
        state = LineState::Exclusive;
    if (msg.type == MsgType::DataM)
        state = LineState::Modified;

    if (way != kInvalidWay) {
        // Upgrade completion: the S line is still resident.
        csr_assert(msg.type == MsgType::DataM, "unexpected reply state");
        l2_.setAux(set, way, static_cast<std::uint32_t>(state));
        // Refresh the line's predicted next-miss cost.
        l2_.updateCost(set, way, cost);
        installL1(msg.block);
    } else {
        installLine(msg.block, state, cost);
    }

    // Wake the waiters.  Write waiters that found only an S line
    // re-execute and chain an upgrade transaction.
    for (auto &[is_write, done] : mshr.waiters) {
        if (is_write && state == LineState::Shared) {
            const AccessOutcome outcome =
                access(addr, true, std::move(done));
            (void)outcome;
        } else {
            done(now);
        }
    }
}

void
CacheController::installLine(Addr block, LineState state, Cost cost)
{
    const Addr addr = byteOf(block);
    const std::uint32_t set = l2Geom_.setIndex(addr);
    const Addr tag = l2Geom_.tag(addr);

    l2_.fillVictimOrFree(
        set, tag, cost, static_cast<std::uint32_t>(state),
        [&](int, Addr victim_tag, std::uint32_t victim_aux) {
            disposeVictim(set, victim_tag, victim_aux);
        });
    installL1(block);
}

void
CacheController::disposeVictim(std::uint32_t set, Addr victim_tag,
                               std::uint32_t victim_aux)
{
    const Addr victim_block = l2Geom_.blockAddrOf(set, victim_tag);
    const auto state = static_cast<LineState>(victim_aux);

    if (state == LineState::Modified) {
        sendToHome(MsgType::PutM, victim_block, events_.now());
        stats_.inc("l2.writeback");
    } else if (config_.replacementHints) {
        sendToHome(state == LineState::Exclusive ? MsgType::PutE
                                                 : MsgType::PutS,
                   victim_block, events_.now());
        stats_.inc("l2.hint");
    } else {
        stats_.inc("l2.silent_evict");
    }
    // Note: the policy is NOT told about evictions through
    // invalidate(); selectVictim()/fill() manage the stack, and the
    // ETD must retain the victim's tag (that is DCL's whole point).
    invalidateL1(victim_block);
}

void
CacheController::invalidateL1(Addr block)
{
    const Addr addr = byteOf(block);
    const std::uint32_t set = l1Geom_.setIndex(addr);
    const int way = l1_.lookup(set, l1Geom_.tag(addr));
    if (way != kInvalidWay)
        l1_.invalidateWay(set, way);
}

void
CacheController::installL1(Addr block)
{
    const Addr addr = byteOf(block);
    l1_.install(l1Geom_.setIndex(addr), 0, l1Geom_.tag(addr));
}

void
CacheController::sendToHome(MsgType type, Addr block, Tick timestamp)
{
    Message msg;
    msg.type = type;
    msg.block = block;
    msg.src = node_;
    msg.dst = homes_.homeOf(block, node_);
    msg.requester = node_;
    msg.timestamp = timestamp;
    network_.send(msg);
}

} // namespace csr
