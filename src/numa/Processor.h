/**
 * @file
 * ILP-lite processor model.
 *
 * RSIM models a full dynamically-scheduled pipeline; what the paper's
 * experiment actually needs from it is (a) memory-level parallelism
 * bounded by the active list and the MSHRs, so that miss latency is
 * partially overlappable, and (b) an execution time dominated by the
 * part of aggregate miss latency that cannot be hidden.  This model
 * captures exactly that: the core issues its access stream in order,
 * pays compute gaps and hit latencies synchronously, lets misses
 * proceed in the background, and stalls only when the MSHRs fill or
 * when it has run more than an active-list's worth of work ahead of
 * the oldest outstanding miss.
 */

#ifndef CSR_NUMA_PROCESSOR_H
#define CSR_NUMA_PROCESSOR_H

#include <deque>
#include <memory>

#include "numa/CacheController.h"
#include "numa/Event.h"
#include "numa/NumaConfig.h"
#include "trace/Workload.h"
#include "util/Stats.h"

namespace csr
{

/** One node's core, driven by a workload access stream. */
class Processor
{
  public:
    Processor(ProcId id, const NumaConfig &config, EventQueue &events,
              CacheController &cache,
              std::unique_ptr<ProcAccessStream> stream);

    /** Schedule the first instruction at tick 0. */
    void start();

    /** True once the stream is exhausted and all misses drained. */
    bool done() const { return finished_ && outstanding_.empty(); }

    /** Tick at which the program completed (valid once done()). */
    Tick finishTime() const { return finishTime_; }

    std::uint64_t opsIssued() const { return opIndex_; }

    const StatGroup &stats() const { return stats_; }

  private:
    /** Issue ops until a stall condition or the end of the stream. */
    void advance();

    /** A background miss completed. */
    void onMissDone(std::uint64_t op_index, Tick when);

    /** True if issue must pause until a completion event. */
    bool stalled() const;

    ProcId id_;
    NumaConfig config_;
    EventQueue &events_;
    CacheController &cache_;
    std::unique_ptr<ProcAccessStream> stream_;

    MemAccess op_{};
    bool haveOp_ = false;
    bool finished_ = false;
    bool sleeping_ = false;  ///< waiting for a miss completion
    bool wakePending_ = false; ///< an advance() event is scheduled
    Tick localTime_ = 0;     ///< core-local clock (>= event time at issue)
    std::uint64_t opIndex_ = 0;
    std::deque<std::uint64_t> outstanding_; // op indices, oldest first
    std::deque<std::uint64_t> outstandingWrites_;
    Tick finishTime_ = 0;
    StatGroup stats_;
};

} // namespace csr

#endif // CSR_NUMA_PROCESSOR_H
