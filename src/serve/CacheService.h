/**
 * @file
 * csr::serve::CacheService -- a thread-safe, sharded, in-process
 * key-value cache whose replacement decisions are driven by the
 * paper's cost-sensitive policies, with the *online* cost of a block
 * being its measured backend fetch latency.
 *
 * Architecture (DESIGN.md sections 3.4-3.6):
 *
 *  - The keyspace is hash-partitioned over N independent shards (high
 *    bits of hashMix64(key), so shard choice is uncorrelated with the
 *    set index bits).  Each shard is itself an array of S
 *    independently locked *stripes* (serve/ShardState.h): set-aligned
 *    sub-shards selected by the key's low set-index bits, each owning
 *    a CacheModel bound to its own ReplacementPolicy instance (built
 *    by the existing PolicyFactory -- LRU/GD/BCL/DCL/ACL all work), a
 *    per-(set, way) value lane, and a per-key EWMA latency tracker.
 *    With S stripes, fills and write-allocates on different stripes
 *    of one shard proceed in parallel; `stripes = 1` reproduces the
 *    single-mutex shard bit for bit.
 *
 *  - Two hit paths.  HitPath::Locked serializes every op on the
 *    stripe mutex -- the deterministic golden reference (CI diffs its
 *    stdout across worker counts).  HitPath::Seqlock serves read hits
 *    with NO lock at all: an optimistic SIMD tag probe validated by a
 *    per-stripe sequence lock (serve/Seqlock.h), with recency
 *    promotion deferred through a lock-free access log drained by the
 *    next lock holder (serve/AccessLog.h).
 *
 *  - Misses are single-flight (serve/InflightTable.h): concurrent
 *    misses on one key coalesce onto one backend fetch, performed
 *    OUTSIDE the stripe mutex, and the measured latency is folded
 *    into every waiter's EWMA so the paper's cost signal sees one
 *    sample per requester under stampede.  A leader whose fetch
 *    throws publishes the exception to every waiter before
 *    propagating it -- no thread is left parked on a dead flight.
 *
 *  - A write is write-through with write-allocate and always takes
 *    the stripe mutex: the store latency is also an observation of
 *    the key's backend cost, so a write to a *resident* key refreshes
 *    the line's cost prediction through CacheModel::updateCost -- the
 *    online closing of the paper's cost-feedback loop.
 */

#ifndef CSR_SERVE_CACHESERVICE_H
#define CSR_SERVE_CACHESERVICE_H

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/PolicyFactory.h"
#include "serve/Backend.h"
#include "serve/CircuitBreaker.h"

namespace csr
{
class CliArgs;
class MetricRegistry;
}

namespace csr::serve
{

struct Shard;
struct Stripe;

/** How read hits are served. */
enum class HitPath
{
    /** Every op under the stripe mutex (deterministic reference). */
    Locked,
    /** Optimistic seqlock-validated hits; mutex only for writes,
     *  misses, and fallback. */
    Seqlock,
};

/** "locked" / "seqlock", or std::nullopt. */
std::optional<HitPath> parseHitPath(const std::string &name);

/** parseHitPath, but a parse failure throws ConfigError listing the
 *  accepted names (the requirePolicyKind pattern for --hitpath). */
HitPath requireHitPath(const std::string &name);

const char *hitPathName(HitPath path);

/**
 * Parse a stripe-count argument: "auto" (or "0") means
 * kStripesAuto, anything else must be a power-of-two count.
 * @throws ConfigError listing the accepted values otherwise.
 */
unsigned requireStripes(const std::string &text);

/** ServeConfig::stripes value meaning "size to the machine". */
inline constexpr unsigned kStripesAuto = 0;

/**
 * Construction parameters of a CacheService.
 *
 * The one place the service flags live: drivers parse them with
 * fromArgs() (the same spellings csrserve always accepted), library
 * callers fill the struct directly, and both funnel through
 * validate() -- every constraint throws ConfigError naming the field
 * and the accepted values, so a bad --stripes reads the same from the
 * CLI, a test, or the network driver.
 */
struct ServeConfig
{
    /** Shard count; must be a power of two. */
    unsigned shards = 8;
    /** Per-shard cache capacity in bytes. */
    std::uint64_t shardBytes = 256 * 1024;
    std::uint32_t assoc = 8;
    /** One cached object occupies one line. */
    std::uint32_t blockBytes = 64;
    PolicyKind policy = PolicyKind::Acl;
    PolicyParams policyParams;
    /** Weight of the newest latency sample in the per-key EWMA. */
    double ewmaAlpha = 0.25;
    HitPath hitPath = HitPath::Locked;
    /** Per-stripe deferred-recency ring size (power of two). */
    std::size_t accessLogCapacity = 1024;
    /** Independently locked sub-shards per shard; a power of two no
     *  larger than the sets per shard, or kStripesAuto to size to
     *  the machine.  1 (the default) is the PR-6 single-mutex shard,
     *  bit for bit. */
    unsigned stripes = 1;
    /** Bound on a coalesced miss's wait for its leader's fetch, in
     *  milliseconds; 0 = wait forever.  A waiter that times out sees
     *  a typed TimeoutError instead of parking a thread (or a network
     *  connection) on a wedged leader. */
    double inflightWaitMs = 10'000.0;
    /** Per-shard backend circuit breaker (serve/CircuitBreaker.h);
     *  the seed field is overwritten with the policy seed so jitter
     *  is a function of the one --seed flag. */
    BreakerConfig breaker;

    /**
     * Read the service flags out of @p args: --policy --shards
     * --shard-bytes --assoc --block-bytes --ewma-alpha --hitpath
     * --stripes --inflight-wait-ms --breaker[-window/-rate/-timeouts/
     * -backoff-ms/-backoff-max-ms] --stale-while-broken (and --seed
     * for the policy RNG + breaker jitter).  The result is
     * validate()d.  @throws ConfigError with the accepted values on
     * any bad flag.
     */
    static ServeConfig fromArgs(const CliArgs &args);

    /** Every constraint the constructor enforces, as one callable
     *  check: pow2 shard/stripe counts, EWMA alpha in (0,1], a
     *  power-of-two access log, an online-capable policy, a
     *  non-negative wait bound.  @throws ConfigError. */
    void validate() const;

    /** Total lines across all shards. */
    std::uint64_t
    totalLines() const
    {
        return static_cast<std::uint64_t>(shards) * shardBytes /
               blockBytes;
    }
};

/** Outcome of one get()/put(). */
struct ServeOpResult
{
    bool hit = false;
    std::uint64_t value = 0;
    /** Measured backend latency of this op (0 on a read hit). */
    double backendNs = 0.0;
};

/**
 * Deterministic aggregate counters (everything here is a pure
 * function of the per-shard op sequences under the locked hit path
 * with shard affinity -- no wall-clock).
 */
struct ServeTotals
{
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeHits = 0; ///< writes that found the key resident
    std::uint64_t evictions = 0;
    std::uint64_t trackedKeys = 0; ///< keys with an EWMA estimate
    /** Sum of measured read-miss fetch latencies: the paper's
     *  aggregate miss cost, measured online.  A coalesced miss
     *  charges the leader's measured latency, the same nanoseconds
     *  the waiter spent parked. */
    double missCostNs = 0.0;
    /** Sum of measured write-through latencies (reported separately;
     *  stores pay the backend regardless of the policy). */
    double storeCostNs = 0.0;

    // -- concurrency counters (all zero under HitPath::Locked except
    //    backendFetches == misses) ------------------------------------
    std::uint64_t seqlockHits = 0;      ///< hits served without the mutex
    std::uint64_t seqlockRetries = 0;   ///< optimistic reads discarded
    std::uint64_t lockedFallbacks = 0;  ///< retry budgets exhausted by writers
    std::uint64_t logFullFallbacks = 0; ///< promotions dropped, log full
    std::uint64_t backendFetches = 0;   ///< actual Backend::fetch calls
    std::uint64_t coalescedMisses = 0;  ///< misses that joined a fetch

    // -- robustness counters (all zero on a healthy, unshed run) ------
    std::uint64_t shedOps = 0;          ///< commands refused with -BUSY
    std::uint64_t breakerOpens = 0;     ///< circuit trips (incl. reopens)
    std::uint64_t breakerFastFails = 0; ///< fetches refused while open
    std::uint64_t staleServes = 0;      ///< stale values served while open

    double
    hitRatio() const
    {
        return gets ? static_cast<double>(hits) /
                          static_cast<double>(gets)
                    : 0.0;
    }
};

class CacheService
{
  public:
    /**
     * @p backend must outlive the service and be safe for concurrent
     * calls.  @throws ConfigError / CacheGeometryError on a bad
     * configuration.
     */
    CacheService(const ServeConfig &config, Backend &backend);
    ~CacheService();

    CacheService(const CacheService &) = delete;
    CacheService &operator=(const CacheService &) = delete;

    /** Read @p key: cache hit, or backend fetch + admission.  A
     *  coalesced miss waits at most inflightWaitMs for its leader,
     *  then throws TimeoutError. */
    ServeOpResult get(Addr key);

    /**
     * Completion of getAsync(): on success @p error is null; on a
     * failed or timed-out backend fetch the result is meaningless and
     * @p error carries what get() would have thrown.  May run inline
     * on the calling thread (hits, sync backends) or on whichever
     * thread completes the fetch -- callers that care (the network
     * event loop) marshal themselves back.
     */
    using GetCallback = std::function<void(const ServeOpResult &result,
                                           std::exception_ptr error)>;

    /**
     * get(), minus the blocking: hits and coalesced misses never park
     * the calling thread, and a leader miss rides
     * Backend::fetchAsync.  Counters move exactly as get()'s do.
     * This is the surface the RESP server drives -- a net worker
     * thread is never parked inside someone else's backend round
     * trip.
     */
    void getAsync(Addr key, GetCallback done);

    /** Write-through @p value under @p key (write-allocate). */
    ServeOpResult put(Addr key, std::uint64_t value);

    /** Drop @p key from the cache (the wire protocol's DEL): the line
     *  is invalidated, the policy told, the cost estimate kept.
     *  @return true when the key was resident. */
    bool del(Addr key);

    /** Shard that owns @p key (stable; the harness partitions ops by
     *  this to keep runs deterministic for any worker count). */
    unsigned shardOf(Addr key) const;

    /**
     * Live-capture hook: called at the top of every get()/getAsync()
     * (op 0), put() (op 1) and del() (op 2) with the key, BEFORE the
     * op executes, in per-thread arrival order.  The callable must be
     * thread-safe (csrserve --record wraps a TraceWriter in a mutex).
     * Capture order across threads is the lock-acquisition order of
     * that mutex, so a recorded stream is deterministic only for
     * single-threaded drivers (--workers 1 / --net-workers 1).  Pass
     * an empty function to detach.  Not safe to change while ops are
     * in flight.
     */
    using OpRecorder = std::function<void(Addr key, unsigned op)>;
    void setRecorder(OpRecorder recorder);

    unsigned numShards() const { return config_.shards; }
    /** Resolved stripes per shard (auto is resolved at
     *  construction, so this is never kStripesAuto). */
    unsigned numStripes() const { return config_.stripes; }
    const ServeConfig &config() const { return config_; }
    std::string policyName() const;

    /** EWMA sample count of @p key (tests: stampede coalescing). */
    std::uint64_t keySamples(Addr key) const;

    /** Aggregate the per-stripe counters (locks stripe by stripe).
     *  shedOps stays zero here -- shedding happens in the network
     *  tier, which folds its count in before reporting. */
    ServeTotals totals() const;

    /** The circuit breaker guarding @p shard's backend fetches. */
    CircuitBreaker &breakerOf(unsigned shard);

    /**
     * Drain-path: fail every in-flight fetch across all stripes with
     * a TimeoutError naming @p why, unparking every waiter and firing
     * every subscriber.  Late leader completions find their entry
     * gone and complete a dead flight harmlessly.  @return the number
     * of flights failed.
     */
    std::size_t failInflight(const std::string &why);

    /** Export totals + per-key cost-estimate stats into @p registry
     *  under "serve.". */
    void exportMetrics(MetricRegistry &registry) const;

    /** Structural checks of every stripe's cache model and value
     *  store; throws InvariantError on corruption. */
    void checkInvariants() const;

  private:
    Stripe &stripeFor(Addr key);

    /** Optimistic seqlock read; nullopt means take the locked path. */
    std::optional<ServeOpResult> tryOptimisticGet(Stripe &stripe,
                                                  std::uint32_t set,
                                                  Addr tag, Addr key);

    ServeOpResult lockedGet(Stripe &stripe, std::uint32_t set,
                            Addr tag, Addr key);

    /** Waiter side: fold the leader's measured latency into this
     *  requester's EWMA + the aggregate miss cost (takes the stripe
     *  mutex). */
    void absorbLeaderSample(Stripe &stripe, std::uint32_t set,
                            Addr tag, Addr key, double latency_ns);

    /** Leader side: install a successful fetch -- observe the
     *  latency, fill or cost-refresh the line, retire the flight
     *  (takes the stripe mutex). */
    void installFetched(Stripe &stripe, std::uint32_t set, Addr tag,
                        Addr key, const BackendResult &fetched);

    ServeConfig config_;
    Backend &backend_;
    OpRecorder recorder_; ///< optional live-capture hook (see above)
    std::uint64_t inflightWaitNs_; ///< resolved from inflightWaitMs
    unsigned shardShift_;  ///< hash bits above this select the shard
    unsigned stripeMask_;  ///< stripes - 1; low key bits pick the stripe
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace csr::serve

#endif // CSR_SERVE_CACHESERVICE_H
