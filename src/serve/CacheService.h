/**
 * @file
 * csr::serve::CacheService -- a thread-safe, sharded, in-process
 * key-value cache whose replacement decisions are driven by the
 * paper's cost-sensitive policies, with the *online* cost of a block
 * being its measured backend fetch latency.
 *
 * Architecture (DESIGN.md section 3.4):
 *
 *  - The keyspace is hash-partitioned over N independent shards (high
 *    bits of hashMix64(key), so shard choice is uncorrelated with the
 *    set index bits).  Each shard owns, behind one mutex: a
 *    CacheModel bound to its own ReplacementPolicy instance (built by
 *    the existing PolicyFactory -- LRU/GD/BCL/DCL/ACL all work), a
 *    per-(set, way) value array, and a per-key EWMA latency tracker.
 *
 *  - A read miss fetches from the Backend under the shard lock,
 *    charges the measured latency to the aggregate miss cost, folds
 *    it into the key's EWMA, and installs the block with the EWMA as
 *    its predicted next-miss cost -- exactly the quantity the paper's
 *    policies weigh against recency.
 *
 *  - A write is write-through with write-allocate: the store latency
 *    is also an observation of the key's backend cost, so a write to
 *    a *resident* key refreshes the line's cost prediction through
 *    CacheModel::updateCost -- the online closing of the paper's
 *    cost-feedback loop (offline, LatencyCorrelator played this
 *    role).
 *
 * Per-op work is a handful of map/array touches; the service keeps no
 * global state, so throughput scales with shard count until the
 * backend saturates.
 */

#ifndef CSR_SERVE_CACHESERVICE_H
#define CSR_SERVE_CACHESERVICE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/CacheModel.h"
#include "cache/PolicyFactory.h"
#include "serve/Backend.h"

namespace csr
{
class MetricRegistry;
}

namespace csr::serve
{

/** Construction parameters of a CacheService. */
struct ServeConfig
{
    /** Shard count; must be a power of two. */
    unsigned shards = 8;
    /** Per-shard cache capacity in bytes. */
    std::uint64_t shardBytes = 256 * 1024;
    std::uint32_t assoc = 8;
    /** One cached object occupies one line. */
    std::uint32_t blockBytes = 64;
    PolicyKind policy = PolicyKind::Acl;
    PolicyParams policyParams;
    /** Weight of the newest latency sample in the per-key EWMA. */
    double ewmaAlpha = 0.25;

    /** Total lines across all shards. */
    std::uint64_t
    totalLines() const
    {
        return static_cast<std::uint64_t>(shards) * shardBytes /
               blockBytes;
    }
};

/** Outcome of one get()/put(). */
struct ServeOpResult
{
    bool hit = false;
    std::uint64_t value = 0;
    /** Measured backend latency of this op (0 on a read hit). */
    double backendNs = 0.0;
};

/**
 * Deterministic aggregate counters (everything here is a pure
 * function of the per-shard op sequences -- no wall-clock).
 */
struct ServeTotals
{
    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeHits = 0; ///< writes that found the key resident
    std::uint64_t evictions = 0;
    std::uint64_t trackedKeys = 0; ///< keys with an EWMA estimate
    /** Sum of measured read-miss fetch latencies: the paper's
     *  aggregate miss cost, measured online. */
    double missCostNs = 0.0;
    /** Sum of measured write-through latencies (reported separately;
     *  stores pay the backend regardless of the policy). */
    double storeCostNs = 0.0;

    double
    hitRatio() const
    {
        return gets ? static_cast<double>(hits) /
                          static_cast<double>(gets)
                    : 0.0;
    }
};

class CacheService
{
  public:
    /**
     * @p backend must outlive the service and be safe for concurrent
     * calls.  @throws ConfigError / CacheGeometryError on a bad
     * configuration.
     */
    CacheService(const ServeConfig &config, Backend &backend);
    ~CacheService();

    CacheService(const CacheService &) = delete;
    CacheService &operator=(const CacheService &) = delete;

    /** Read @p key: cache hit, or backend fetch + admission. */
    ServeOpResult get(Addr key);

    /** Write-through @p value under @p key (write-allocate). */
    ServeOpResult put(Addr key, std::uint64_t value);

    /** Shard that owns @p key (stable; the harness partitions ops by
     *  this to keep runs deterministic for any worker count). */
    unsigned shardOf(Addr key) const;

    unsigned numShards() const { return config_.shards; }
    const ServeConfig &config() const { return config_; }
    std::string policyName() const;

    /** Aggregate the per-shard counters (locks shard by shard). */
    ServeTotals totals() const;

    /** Export totals + per-key cost-estimate stats into @p registry
     *  under "serve.". */
    void exportMetrics(MetricRegistry &registry) const;

    /** Structural checks of every shard's cache model and value
     *  store; throws InvariantError on corruption. */
    void checkInvariants() const;

  private:
    struct Shard;

    Shard &shardFor(Addr key);

    ServeConfig config_;
    Backend &backend_;
    unsigned shardShift_; ///< hash bits above this select the shard
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace csr::serve

#endif // CSR_SERVE_CACHESERVICE_H
