#include "serve/KeyGenerator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "robust/Errors.h"

namespace csr::serve
{

namespace
{

std::string
lowered(const std::string &name)
{
    std::string out = name;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

/** Generalized harmonic number sum_{i=1..n} 1/i^theta. */
double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

// zeta(numKeys, theta) is an O(numKeys) sum -- for the default 2^20
// keyspace that was tens of milliseconds of setup burned once per
// KeyGenerator, i.e. once per worker/connection in drivers that give
// each thread its own generator.  The value depends only on
// (n, theta), so one process-wide cache serves every construction.
// Keyed on theta's bit pattern: exact-equality semantics, no epsilon.
std::mutex zetaCacheMutex;
std::map<std::pair<std::uint64_t, std::uint64_t>, double> &
zetaCacheMap()
{
    static std::map<std::pair<std::uint64_t, std::uint64_t>, double>
        cache;
    return cache;
}

double
cachedZeta(std::uint64_t n, double theta)
{
    const std::pair<std::uint64_t, std::uint64_t> key{
        n, std::bit_cast<std::uint64_t>(theta)};
    {
        const std::lock_guard<std::mutex> lock(zetaCacheMutex);
        const auto it = zetaCacheMap().find(key);
        if (it != zetaCacheMap().end())
            return it->second;
    }
    // Compute outside the lock: concurrent first builders duplicate
    // the work but insert the identical value (the sum is a pure
    // function of the key), which beats serializing every ctor
    // behind one O(n) loop.
    const double value = zeta(n, theta);
    const std::lock_guard<std::mutex> lock(zetaCacheMutex);
    return zetaCacheMap().emplace(key, value).first->second;
}

} // namespace

std::size_t
zetaCacheEntries()
{
    const std::lock_guard<std::mutex> lock(zetaCacheMutex);
    return zetaCacheMap().size();
}

KeyDist
parseKeyDist(const std::string &name)
{
    const std::string n = lowered(name);
    if (n == "uniform")
        return KeyDist::Uniform;
    if (n == "zipf" || n == "zipfian")
        return KeyDist::Zipfian;
    if (n == "hotspot")
        return KeyDist::Hotspot;
    if (n == "scan")
        return KeyDist::Scan;
    std::string valid;
    for (const std::string &d : listKeyDistNames())
        valid += (valid.empty() ? "" : " ") + d;
    throw ConfigError("unknown key distribution '" + name +
                      "' (valid: " + valid + ")");
}

const std::vector<std::string> &
listKeyDistNames()
{
    static const std::vector<std::string> names = {
        "uniform",
        "zipf",
        "hotspot",
        "scan",
    };
    return names;
}

std::string
keyDistName(KeyDist dist)
{
    switch (dist) {
      case KeyDist::Uniform:
        return "uniform";
      case KeyDist::Zipfian:
        return "zipf";
      case KeyDist::Hotspot:
        return "hotspot";
      case KeyDist::Scan:
        return "scan";
    }
    return "?";
}

std::string
WorkloadMix::describe() const
{
    std::string out = keyDistName(dist) +
                      "(keys=" + std::to_string(numKeys);
    if (dist == KeyDist::Zipfian) {
        std::string theta = std::to_string(zipfTheta);
        theta.resize(4); // "0.99"
        out += ",theta=" + theta;
    }
    if (dist == KeyDist::Hotspot)
        out += ",hot=" + std::to_string(hotFraction) + "@" +
               std::to_string(hotProbability);
    out += ",writes=" + std::to_string(writeFraction) + ")";
    return out;
}

KeyGenerator::KeyGenerator(const WorkloadMix &mix, std::uint64_t seed)
    : mix_(mix), rng_(seed)
{
    if (mix_.numKeys == 0)
        throw ConfigError("workload keyspace must be non-empty");
    if (mix_.writeFraction < 0.0 || mix_.writeFraction > 1.0)
        throw ConfigError("write fraction must be in [0,1]");
    if (mix_.dist == KeyDist::Zipfian) {
        if (mix_.zipfTheta <= 0.0 || mix_.zipfTheta >= 1.0)
            throw ConfigError("zipf theta must be in (0,1)");
        const double theta = mix_.zipfTheta;
        const auto n = static_cast<double>(mix_.numKeys);
        zetaN_ = cachedZeta(mix_.numKeys, theta);
        zipfAlpha_ = 1.0 / (1.0 - theta);
        zipfEta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
                   (1.0 - zeta(2, theta) / zetaN_);
    }
    if (mix_.dist == KeyDist::Hotspot) {
        if (mix_.hotFraction <= 0.0 || mix_.hotFraction > 1.0)
            throw ConfigError("hotspot fraction must be in (0,1]");
        if (mix_.hotProbability < 0.0 || mix_.hotProbability > 1.0)
            throw ConfigError("hotspot probability must be in [0,1]");
    }
}

Addr
KeyGenerator::zipfianRank()
{
    // Gray et al. "Quickly generating billion-record synthetic
    // databases" rejection-free inversion, as used by YCSB.
    const double u = rng_.nextDouble();
    const double uz = u * zetaN_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, mix_.zipfTheta))
        return 1;
    const auto n = static_cast<double>(mix_.numKeys);
    const auto rank = static_cast<Addr>(
        n * std::pow(zipfEta_ * u - zipfEta_ + 1.0, zipfAlpha_));
    return rank >= mix_.numKeys ? mix_.numKeys - 1 : rank;
}

Addr
KeyGenerator::nextKey()
{
    switch (mix_.dist) {
      case KeyDist::Uniform:
        return rng_.nextBelow(mix_.numKeys);
      case KeyDist::Zipfian:
        // Scramble the rank so the hottest keys spread across the
        // keyspace (and therefore across shards and backend tiers)
        // instead of clustering at 0.
        return hashMix64(zipfianRank()) % mix_.numKeys;
      case KeyDist::Hotspot: {
        const auto hot = static_cast<std::uint64_t>(
            mix_.hotFraction * static_cast<double>(mix_.numKeys));
        const std::uint64_t hot_keys = hot ? hot : 1;
        if (rng_.nextBool(mix_.hotProbability))
            return rng_.nextBelow(hot_keys);
        return hot_keys >= mix_.numKeys
                   ? rng_.nextBelow(mix_.numKeys)
                   : hot_keys + rng_.nextBelow(mix_.numKeys - hot_keys);
      }
      case KeyDist::Scan: {
        const Addr key = scanCursor_;
        scanCursor_ = (scanCursor_ + 1) % mix_.numKeys;
        return key;
      }
    }
    return 0;
}

Op
KeyGenerator::next()
{
    Op op;
    op.key = nextKey();
    // Always draw, so the key sequence is identical across write
    // fractions (read-mostly vs write-heavy runs stay comparable).
    op.write = rng_.nextBool(mix_.writeFraction);
    return op;
}

} // namespace csr::serve
