/**
 * @file
 * Deterministic synthetic backend with a two-tier latency
 * distribution.
 *
 * Mirrors the paper's two-static-cost study in the online setting: a
 * seed-selected fraction of the keyspace is "slow" (remote region,
 * cold storage tier, overloaded replica) and the rest "fast", with
 * bounded per-access jitter on top.  Every quantity is a pure
 * function of (seed, key, salt) -- no shared mutable state -- so the
 * backend is trivially thread-safe and a load-harness run is
 * bit-reproducible for any worker count (the same config-hash
 * seeding discipline as the sweep engine).
 *
 * By default latency is *simulated*: fetch() returns the latency it
 * would have taken without sleeping, which keeps soak tests fast and
 * sanitizer-friendly.  With spin=true the call busy-waits for the
 * reported duration, turning csrserve into a wall-clock-realistic
 * load generator.
 */

#ifndef CSR_SERVE_SYNTHETICBACKEND_H
#define CSR_SERVE_SYNTHETICBACKEND_H

#include "serve/Backend.h"

namespace csr
{
class CliArgs;
}

namespace csr::serve
{

/** Tunables of the synthetic latency distribution. */
struct SyntheticBackendConfig
{
    std::uint64_t seed = 1;      ///< tier + jitter + payload seed
    double fastNs = 2000.0;      ///< base latency of the fast tier
    double slowNs = 16000.0;     ///< base latency of the slow tier
    double slowFraction = 0.2;   ///< fraction of keys in the slow tier
    double jitterFraction = 0.1; ///< +- uniform jitter per access
    double storeMultiplier = 1.0; ///< store latency over fetch latency
    bool spin = false;           ///< busy-wait the simulated latency

    /** Read --fast-ns --slow-ns --slow-frac --jitter --spin --seed
     *  out of @p args and validate() the result. */
    static SyntheticBackendConfig fromArgs(const CliArgs &args);

    /** @throws ConfigError on out-of-range fractions/latencies. */
    void validate() const;
};

class SyntheticBackend : public Backend
{
  public:
    /** @throws ConfigError on out-of-range fractions or latencies. */
    explicit SyntheticBackend(const SyntheticBackendConfig &config);

    BackendResult fetch(Addr key, std::uint64_t salt) override;
    /** Completes inline on the calling thread with exactly the bytes
     *  and latency fetch() would return -- the pure-function
     *  discipline extends to the async surface, so a networked run's
     *  cost signal is comparable to an in-process one. */
    void fetchAsync(Addr key, std::uint64_t salt,
                    FetchCallback done) override;
    BackendResult store(Addr key, std::uint64_t value,
                        std::uint64_t salt) override;
    std::string describe() const override;

    /** True when hashing puts @p key in the slow tier. */
    bool isSlowKey(Addr key) const;

    /** Base (jitter-free) fetch latency of @p key. */
    double baseLatencyNs(Addr key) const;

    /** The canonical payload of @p key (integrity checks). */
    std::uint64_t valueOf(Addr key) const;

    const SyntheticBackendConfig &config() const { return config_; }

  private:
    double latencyNs(Addr key, std::uint64_t salt,
                     double multiplier) const;
    void maybeSpin(double ns) const;

    SyntheticBackendConfig config_;
};

} // namespace csr::serve

#endif // CSR_SERVE_SYNTHETICBACKEND_H
