/**
 * @file
 * The striped state behind one CacheService shard.
 *
 * A shard no longer owns a single CacheModel behind a single mutex:
 * it owns S independently locked *stripes* (DESIGN.md section 3.6).
 * Each Stripe is a complete miniature of the PR-6 shard -- its own
 * CacheModel + policy, value lane, per-key cost estimates, mutex,
 * seqlock, deferred access log, and in-flight fetch table -- over a
 * set-aligned slice of the shard's sets.  Keys are routed to stripes
 * by their low set-index bits, so no cache set ever spans a lock and
 * two fills on different stripes never contend.
 *
 * Concurrency model per stripe (DESIGN.md sections 3.5-3.6):
 *
 *  - Writers -- miss fills, write-allocates, cost refreshes -- hold
 *    `mutex` and wrap every mutation of seqlock-probed state (tag
 *    lane, valid words, value lane) in a SeqlockWriteGuard.
 *
 *  - Optimistic readers (the seqlock hit path) hold nothing: they
 *    bracket probeConcurrent() + loadValue() in a seqlock read
 *    section, push the hit into `accessLog` for deferred recency
 *    promotion, and bump the relaxed atomic counters.
 *
 *  - The policy's own state (recency words, ETD, reservations) is
 *    only ever touched under `mutex`; drainAccessLog() replays the
 *    optimistic hits into it before any locked op proceeds.  Because
 *    each stripe drains only its own log, one hot stripe cannot
 *    starve another stripe's promotions.
 *
 * Aggregate doubles (missCostNs, storeCostNs) are only mutated under
 * `mutex`; the integer counters are relaxed atomics because the
 * optimistic hit path increments gets/hits without the lock.
 */

#ifndef CSR_SERVE_SHARDSTATE_H
#define CSR_SERVE_SHARDSTATE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/CacheModel.h"
#include "serve/AccessLog.h"
#include "serve/CircuitBreaker.h"
#include "serve/InflightTable.h"
#include "serve/Seqlock.h"
#include "util/Atomics.h"

namespace csr::serve
{

struct Stripe
{
    /**
     * @param geom the *stripe-local* geometry (the shard geometry
     *   with numSets divided by the stripe count).
     * @param stripe_bits log2 of the shard's stripe count; a key's
     *   low @p stripe_bits set-index bits select the stripe, the
     *   bits above them select the set within it.
     */
    Stripe(const CacheGeometry &geom, PolicyPtr policy,
           std::uint32_t stripe_bits, std::size_t access_log_capacity)
        : model(geom, std::move(policy)), stripeBits(stripe_bits),
          values(static_cast<std::size_t>(geom.numSets()) *
                     geom.assoc(),
                 0),
          accessLog(access_log_capacity)
    {
    }

    /** Per-key backend-latency estimate (the online cost model). */
    struct KeyState
    {
        double ewmaNs = 0.0;
        std::uint64_t samples = 0;
        /** Last value installed for this key (fetch or store); kept
         *  past eviction so --stale-while-broken can serve it while
         *  the shard's circuit breaker is open. */
        std::uint64_t lastValue = 0;
        bool hasValue = false;
    };

    std::size_t
    idx(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) *
                   model.geometry().assoc() +
               static_cast<std::size_t>(way);
    }

    /** Value-lane accessors; atomic so optimistic readers pair with
     *  lock-holding writers race-free (ordering from the seqlock). */
    std::uint64_t
    loadValue(std::uint32_t set, int way) const
    {
        return loadRelaxed(values[idx(set, way)]);
    }

    void
    storeValue(std::uint32_t set, int way, std::uint64_t value)
    {
        storeRelaxed(values[idx(set, way)], value);
    }

    /** Stripe-local set index of @p key (bits above the stripe id). */
    std::uint32_t
    setOf(Addr key) const
    {
        return static_cast<std::uint32_t>(
            (key >> stripeBits) & (model.geometry().numSets() - 1));
    }

    /** Stripe-local tag of @p key; equals the whole-shard tag since
     *  the stripe id bits sit below the set bits. */
    Addr
    tagOf(Addr key) const
    {
        return key >> (model.geometry().setBits() + stripeBits);
    }

    /** Fold a measured latency into the key's EWMA. */
    void
    observe(KeyState &state, double latency_ns, double alpha)
    {
        state.ewmaNs = state.samples == 0
                           ? latency_ns
                           : alpha * latency_ns +
                                 (1.0 - alpha) * state.ewmaNs;
        ++state.samples;
    }

    /**
     * Replay deferred optimistic hits into the policy, in log order.
     * Must hold `mutex`.  Runs before every locked op so that, at one
     * worker, the policy sees exactly the access sequence the fully
     * locked path would have produced.  An entry whose key was
     * evicted between the optimistic hit and the drain is dropped --
     * a stale recency hint, not a correctness problem.
     */
    void
    drainAccessLog()
    {
        accessLog.drain([&](Addr key) {
            const std::uint32_t set = setOf(key);
            const Addr tag = tagOf(key);
            const int way = model.lookup(set, tag);
            if (way != kInvalidWay)
                model.noteAccess(set, tag, way);
        });
    }

    std::mutex mutex;
    Seqlock seqlock;
    CacheModel model;
    /** log2(stripes per shard); fixed at construction. */
    std::uint32_t stripeBits;
    std::vector<std::uint64_t> values;
    std::unordered_map<Addr, KeyState> keys;
    AccessLog accessLog;
    InflightTable inflight;

    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> storeHits{0};
    std::atomic<std::uint64_t> evictions{0};
    /** Hits served entirely without the stripe mutex. */
    std::atomic<std::uint64_t> seqlockHits{0};
    /** Optimistic read sections discarded by validation. */
    std::atomic<std::uint64_t> seqlockRetries{0};
    /** Optimistic attempts beaten by writer contention (retry budget
     *  exhausted) that fell back to the mutex. */
    std::atomic<std::uint64_t> lockedFallbacks{0};
    /** Optimistic hits whose recency promotion was dropped because
     *  the access log was full; the op fell back to the mutex. */
    std::atomic<std::uint64_t> logFullFallbacks{0};
    /** Actual Backend::fetch calls (== misses unless coalesced). */
    std::atomic<std::uint64_t> backendFetches{0};
    /** Misses that joined another thread's in-flight fetch. */
    std::atomic<std::uint64_t> coalescedMisses{0};
    /** Misses served a stale resident value while the shard's
     *  circuit breaker was open (--stale-while-broken). */
    std::atomic<std::uint64_t> staleServes{0};

    double missCostNs = 0.0;  // under mutex
    double storeCostNs = 0.0; // under mutex
};

/** One CacheService shard: an array of independently locked stripes
 *  plus the circuit breaker guarding its backend fetches.  The shard
 *  itself holds no lock -- stripe state serializes per stripe, the
 *  breaker carries its own (miss-path-only) mutex. */
struct Shard
{
    std::vector<std::unique_ptr<Stripe>> stripes;
    std::unique_ptr<CircuitBreaker> breaker;
};

} // namespace csr::serve

#endif // CSR_SERVE_SHARDSTATE_H
