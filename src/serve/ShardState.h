/**
 * @file
 * One shard of the CacheService: the CacheModel + policy, the value
 * lane, the per-key cost estimates, and the shard's concurrency
 * machinery (mutex, seqlock, deferred access log, in-flight fetch
 * table).
 *
 * Concurrency model (DESIGN.md section 3.5):
 *
 *  - Writers -- miss fills, write-allocates, cost refreshes -- hold
 *    `mutex` and wrap every mutation of seqlock-probed state (tag
 *    lane, valid words, value lane) in a SeqlockWriteGuard.
 *
 *  - Optimistic readers (the seqlock hit path) hold nothing: they
 *    bracket probeConcurrent() + loadValue() in a seqlock read
 *    section, push the hit into `accessLog` for deferred recency
 *    promotion, and bump the relaxed atomic counters.
 *
 *  - The policy's own state (recency words, ETD, reservations) is
 *    only ever touched under `mutex`; drainAccessLog() replays the
 *    optimistic hits into it before any locked op proceeds.
 *
 * Aggregate doubles (missCostNs, storeCostNs) are only mutated under
 * `mutex`; the integer counters are relaxed atomics because the
 * optimistic hit path increments gets/hits without the lock.
 */

#ifndef CSR_SERVE_SHARDSTATE_H
#define CSR_SERVE_SHARDSTATE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/CacheModel.h"
#include "serve/AccessLog.h"
#include "serve/InflightTable.h"
#include "serve/Seqlock.h"
#include "util/Atomics.h"

namespace csr::serve
{

struct Shard
{
    Shard(const CacheGeometry &geom, PolicyPtr policy,
          std::size_t access_log_capacity)
        : model(geom, std::move(policy)),
          values(static_cast<std::size_t>(geom.numSets()) *
                     geom.assoc(),
                 0),
          accessLog(access_log_capacity)
    {
    }

    /** Per-key backend-latency estimate (the online cost model). */
    struct KeyState
    {
        double ewmaNs = 0.0;
        std::uint64_t samples = 0;
    };

    std::size_t
    idx(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) *
                   model.geometry().assoc() +
               static_cast<std::size_t>(way);
    }

    /** Value-lane accessors; atomic so optimistic readers pair with
     *  lock-holding writers race-free (ordering from the seqlock). */
    std::uint64_t
    loadValue(std::uint32_t set, int way) const
    {
        return loadRelaxed(values[idx(set, way)]);
    }

    void
    storeValue(std::uint32_t set, int way, std::uint64_t value)
    {
        storeRelaxed(values[idx(set, way)], value);
    }

    /** Fold a measured latency into the key's EWMA. */
    void
    observe(KeyState &state, double latency_ns, double alpha)
    {
        state.ewmaNs = state.samples == 0
                           ? latency_ns
                           : alpha * latency_ns +
                                 (1.0 - alpha) * state.ewmaNs;
        ++state.samples;
    }

    /**
     * Replay deferred optimistic hits into the policy, in log order.
     * Must hold `mutex`.  Runs before every locked op so that, at one
     * worker, the policy sees exactly the access sequence the fully
     * locked path would have produced.  An entry whose key was
     * evicted between the optimistic hit and the drain is dropped --
     * a stale recency hint, not a correctness problem.
     */
    void
    drainAccessLog()
    {
        const CacheGeometry &geom = model.geometry();
        accessLog.drain([&](Addr key) {
            const auto set = static_cast<std::uint32_t>(
                key & (geom.numSets() - 1));
            const Addr tag = key >> geom.setBits();
            const int way = model.lookup(set, tag);
            if (way != kInvalidWay)
                model.noteAccess(set, tag, way);
        });
    }

    std::mutex mutex;
    Seqlock seqlock;
    CacheModel model;
    std::vector<std::uint64_t> values;
    std::unordered_map<Addr, KeyState> keys;
    AccessLog accessLog;
    InflightTable inflight;

    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> storeHits{0};
    std::atomic<std::uint64_t> evictions{0};
    /** Hits served entirely without the shard mutex. */
    std::atomic<std::uint64_t> seqlockHits{0};
    /** Optimistic read sections discarded by validation. */
    std::atomic<std::uint64_t> seqlockRetries{0};
    /** Optimistic attempts that fell back to the mutex. */
    std::atomic<std::uint64_t> lockedFallbacks{0};
    /** Actual Backend::fetch calls (== misses unless coalesced). */
    std::atomic<std::uint64_t> backendFetches{0};
    /** Misses that joined another thread's in-flight fetch. */
    std::atomic<std::uint64_t> coalescedMisses{0};

    double missCostNs = 0.0;  // under mutex
    double storeCostNs = 0.0; // under mutex
};

} // namespace csr::serve

#endif // CSR_SERVE_SHARDSTATE_H
