/**
 * @file
 * Deterministic chaos decorator over any Backend.
 *
 * Wraps an inner backend and, per fetch, consults the wire chaos
 * config (robust/NetChaos.h) to inject a failed fetch or a latency
 * spike.  Decisions are keyed on (chaos seed, key, per-key attempt
 * ordinal) -- NOT on thread or wall-clock -- so the set of injected
 * faults is a pure function of the seeded client stream: under the
 * serve determinism contract (every fetch of a key happens in a
 * defined per-key order thanks to single-flight coalescing), two runs
 * at the same seed inject faults into the same fetches and produce
 * identical ServeTotals.
 *
 * The attempt-ordinal map is the one piece of state; it lives under a
 * small mutex on the miss path only.  Store traffic passes through
 * untouched: SET cost accounting is part of the deterministic summary
 * and write faults belong to a future write-path chaos site.
 */

#ifndef CSR_SERVE_CHAOSBACKEND_H
#define CSR_SERVE_CHAOSBACKEND_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "robust/NetChaos.h"
#include "serve/Backend.h"

namespace csr::serve
{

class ChaosBackend : public Backend
{
  public:
    /** Latency spikes multiply the inner latency by up to this. */
    static constexpr double kMaxLatencySpike = 8.0;

    ChaosBackend(Backend &inner, const ChaosConfig &chaos)
        : inner_(inner), chaos_(chaos)
    {
    }

    BackendResult fetch(Addr key, std::uint64_t salt) override
    {
        const std::uint64_t attempt = nextAttempt(key);
        maybeThrow(key, attempt);
        BackendResult result = inner_.fetch(key, salt);
        applyLatencySpike(key, attempt, result);
        return result;
    }

    void fetchAsync(Addr key, std::uint64_t salt,
                    FetchCallback done) override
    {
        const std::uint64_t attempt = nextAttempt(key);
        if (chaosDecide(chaos_, ChaosSite::BackendError, key,
                        attempt)) {
            ++injectedErrors_;
            done(BackendResult{},
                 std::make_exception_ptr(InjectedFaultError(
                     "chaos: injected backend fetch error (key " +
                     std::to_string(key) + ", attempt " +
                     std::to_string(attempt) + ")")));
            return;
        }
        inner_.fetchAsync(
            key, salt,
            [this, key, attempt, done = std::move(done)](
                const BackendResult &result,
                std::exception_ptr error) {
                if (error) {
                    done(result, error);
                    return;
                }
                BackendResult spiked = result;
                applyLatencySpike(key, attempt, spiked);
                done(spiked, nullptr);
            });
    }

    BackendResult store(Addr key, std::uint64_t value,
                        std::uint64_t salt) override
    {
        return inner_.store(key, value, salt);
    }

    std::string describe() const override
    {
        return inner_.describe() + " + chaos(rate=" +
               std::to_string(chaos_.rate) +
               ", seed=" + std::to_string(chaos_.seed) + ")";
    }

    std::uint64_t injectedErrors() const
    {
        return injectedErrors_.load(std::memory_order_relaxed);
    }

    std::uint64_t injectedSpikes() const
    {
        return injectedSpikes_.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t nextAttempt(Addr key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return attempts_[key]++;
    }

    void maybeThrow(Addr key, std::uint64_t attempt)
    {
        if (chaosDecide(chaos_, ChaosSite::BackendError, key,
                        attempt)) {
            ++injectedErrors_;
            throw InjectedFaultError(
                "chaos: injected backend fetch error (key " +
                std::to_string(key) + ", attempt " +
                std::to_string(attempt) + ")");
        }
    }

    void applyLatencySpike(Addr key, std::uint64_t attempt,
                           BackendResult &result)
    {
        if (!chaosDecide(chaos_, ChaosSite::BackendLatency, key,
                         attempt))
            return;
        ++injectedSpikes_;
        const double draw =
            chaosDraw(chaos_, ChaosSite::BackendLatency,
                      key ^ 0x5B1CEull, attempt);
        result.latencyNs *= 1.0 + draw * (kMaxLatencySpike - 1.0);
    }

    Backend &inner_;
    const ChaosConfig chaos_;
    std::mutex mutex_;
    std::unordered_map<Addr, std::uint64_t> attempts_;
    std::atomic<std::uint64_t> injectedErrors_{0};
    std::atomic<std::uint64_t> injectedSpikes_{0};
};

} // namespace csr::serve

#endif // CSR_SERVE_CHAOSBACKEND_H
