/**
 * @file
 * Single-flight miss coalescing: one backend fetch per missing key,
 * no matter how many threads miss on it concurrently.
 *
 * The first thread to miss on a key becomes the *leader*: it claims
 * an InflightFetch entry under the stripe mutex, releases the mutex,
 * performs the backend fetch, then re-acquires the mutex to install
 * the block and publish the result.  Threads that miss on the same
 * key while the fetch is in flight become *waiters*: they park on the
 * entry's condition variable (off the stripe mutex, so the stripe keeps
 * serving other keys) and, once woken, fold the leader's measured
 * latency into their own EWMA observation of the key -- the paper's
 * cost signal sees one sample per requester, exactly as if each had
 * paid the fetch, while the backend sees a single call (the stampede
 * protection every production cache tier wants).
 *
 * Two ways to join a flight.  awaitFetchFor() parks the calling
 * thread with a *bounded* condvar wait -- a wedged leader (backend
 * hang, lost completion) times the waiter out instead of parking a
 * network connection forever; the caller turns that into a typed
 * csr::TimeoutError.  subscribeFetch() registers a completion
 * callback instead of blocking: the network event loop's miss path,
 * where a net worker must never sleep on someone else's fetch.
 *
 * Moving the fetch outside the stripe mutex is itself the second half
 * of the tentpole: under the old code a shard was serialized for the
 * whole backend round trip; now it is held only for the map/array
 * bookkeeping on either side.
 */

#ifndef CSR_SERVE_INFLIGHTTABLE_H
#define CSR_SERVE_INFLIGHTTABLE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/Types.h"

namespace csr::serve
{

/** One in-flight backend fetch; waiters park on cv until done. */
struct InflightFetch
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::uint64_t value = 0;
    double latencyNs = 0.0;
    /** Set instead of value/latencyNs when the leader's fetch threw;
     *  awaitFetchFor rethrows it in every waiter, subscribers see it
     *  through the published entry. */
    std::exception_ptr error;
    /** Non-blocking waiters (subscribeFetch); drained exactly once by
     *  the completing thread, after done is set, with no lock held. */
    std::vector<std::function<void()>> subscribers;
};

/** Run-and-clear the subscriber list (completer-side helper). */
inline void
notifySubscribers(std::vector<std::function<void()>> subscribers)
{
    for (auto &fn : subscribers)
        fn();
}

/**
 * Publish the leader's result and wake every waiter -- parked and
 * subscribed alike.  Called with the stripe mutex NOT held (the entry
 * has its own mutex).
 */
inline void
completeFetch(InflightFetch &fetch, std::uint64_t value,
              double latency_ns)
{
    std::vector<std::function<void()>> subscribers;
    {
        std::lock_guard<std::mutex> lock(fetch.mutex);
        fetch.value = value;
        fetch.latencyNs = latency_ns;
        fetch.done = true;
        subscribers.swap(fetch.subscribers);
    }
    fetch.cv.notify_all();
    notifySubscribers(std::move(subscribers));
}

/**
 * Publish the leader's *failure* and wake every waiter: parked ones
 * rethrow @p error out of awaitFetchFor, subscribers observe it on
 * the entry.  Called with the stripe mutex NOT held, after the leader
 * has already erased the entry from the table (so a later miss on the
 * key elects a fresh leader rather than joining the dead flight).
 */
inline void
failFetch(InflightFetch &fetch, std::exception_ptr error)
{
    std::vector<std::function<void()>> subscribers;
    {
        std::lock_guard<std::mutex> lock(fetch.mutex);
        fetch.error = std::move(error);
        fetch.done = true;
        subscribers.swap(fetch.subscribers);
    }
    fetch.cv.notify_all();
    notifySubscribers(std::move(subscribers));
}

/**
 * Block until the leader publishes, for at most @p timeout_ns
 * (0 = unbounded, the historical behaviour).  Rethrows the leader's
 * exception if the fetch failed.  @return false when the wait timed
 * out with the fetch still in flight -- the entry is untouched, so
 * the leader can still complete it for everyone else; the caller
 * decides how loudly to give up.  Stripe mutex must NOT be held.
 */
inline bool
awaitFetchFor(InflightFetch &fetch, std::uint64_t timeout_ns)
{
    std::unique_lock<std::mutex> lock(fetch.mutex);
    const auto ready = [&fetch] { return fetch.done; };
    if (timeout_ns == 0)
        fetch.cv.wait(lock, ready);
    else if (!fetch.cv.wait_for(
                 lock, std::chrono::nanoseconds(timeout_ns), ready))
        return false;
    if (fetch.error)
        std::rethrow_exception(fetch.error);
    return true;
}

/**
 * Join a flight without blocking: @p fn runs exactly once after the
 * leader publishes (inspect the entry's value/latencyNs/error fields
 * then), on the completing thread -- or inline, right here, when the
 * flight already completed.  The network miss path: the callback
 * re-enters the owning event loop instead of a thread parking.
 * Stripe mutex must NOT be held (callers registering under the stripe
 * mutex would lock-invert against completeFetch's callers).
 */
inline void
subscribeFetch(InflightFetch &fetch, std::function<void()> fn)
{
    {
        std::unique_lock<std::mutex> lock(fetch.mutex);
        if (!fetch.done) {
            fetch.subscribers.push_back(std::move(fn));
            return;
        }
    }
    fn();
}

/**
 * The per-stripe table of in-flight fetches.  All methods must be
 * called with the stripe mutex held; the entries themselves outlive
 * erase() through shared ownership, so waiters that joined before
 * the leader finished still see the published result.
 */
class InflightTable
{
  public:
    /** Join @p key's in-flight fetch, or claim leadership of a new
     *  one.  Second element is true for the leader. */
    std::pair<std::shared_ptr<InflightFetch>, bool>
    claim(Addr key)
    {
        auto [it, inserted] = map_.try_emplace(key);
        if (inserted)
            it->second = std::make_shared<InflightFetch>();
        return {it->second, inserted};
    }

    /** Leader-only: retire the entry once the block is installed. */
    void
    erase(Addr key)
    {
        map_.erase(key);
    }

    /**
     * Drain-path: remove and return every entry at once.  The caller
     * (holding the stripe mutex) then failFetch()es each one with the
     * mutex released, unparking all waiters -- how a draining server
     * guarantees no connection stays parked on a flight whose leader
     * will never complete.
     */
    std::vector<std::shared_ptr<InflightFetch>>
    takeAll()
    {
        std::vector<std::shared_ptr<InflightFetch>> flights;
        flights.reserve(map_.size());
        for (auto &[key, flight] : map_)
            flights.push_back(std::move(flight));
        map_.clear();
        return flights;
    }

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<Addr, std::shared_ptr<InflightFetch>> map_;
};

} // namespace csr::serve

#endif // CSR_SERVE_INFLIGHTTABLE_H
