/**
 * @file
 * Single-flight miss coalescing: one backend fetch per missing key,
 * no matter how many threads miss on it concurrently.
 *
 * The first thread to miss on a key becomes the *leader*: it claims
 * an InflightFetch entry under the stripe mutex, releases the mutex,
 * performs the backend fetch, then re-acquires the mutex to install
 * the block and publish the result.  Threads that miss on the same
 * key while the fetch is in flight become *waiters*: they park on the
 * entry's condition variable (off the stripe mutex, so the stripe keeps
 * serving other keys) and, once woken, fold the leader's measured
 * latency into their own EWMA observation of the key -- the paper's
 * cost signal sees one sample per requester, exactly as if each had
 * paid the fetch, while the backend sees a single call (the stampede
 * protection every production cache tier wants).
 *
 * Moving the fetch outside the stripe mutex is itself the second half
 * of the tentpole: under the old code a shard was serialized for the
 * whole backend round trip; now it is held only for the map/array
 * bookkeeping on either side.
 */

#ifndef CSR_SERVE_INFLIGHTTABLE_H
#define CSR_SERVE_INFLIGHTTABLE_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/Types.h"

namespace csr::serve
{

/** One in-flight backend fetch; waiters park on cv until done. */
struct InflightFetch
{
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::uint64_t value = 0;
    double latencyNs = 0.0;
    /** Set instead of value/latencyNs when the leader's fetch threw;
     *  awaitFetch rethrows it in every waiter. */
    std::exception_ptr error;
};

/**
 * Publish the leader's result and wake every waiter.  Called with
 * the stripe mutex NOT held (the entry has its own mutex).
 */
inline void
completeFetch(InflightFetch &fetch, std::uint64_t value,
              double latency_ns)
{
    {
        std::lock_guard<std::mutex> lock(fetch.mutex);
        fetch.value = value;
        fetch.latencyNs = latency_ns;
        fetch.done = true;
    }
    fetch.cv.notify_all();
}

/**
 * Publish the leader's *failure* and wake every waiter: each one
 * rethrows @p error out of awaitFetch instead of consuming a value.
 * Called with the stripe mutex NOT held, after the leader has
 * already erased the entry from the table (so a later miss on the
 * key elects a fresh leader rather than joining the dead flight).
 */
inline void
failFetch(InflightFetch &fetch, std::exception_ptr error)
{
    {
        std::lock_guard<std::mutex> lock(fetch.mutex);
        fetch.error = std::move(error);
        fetch.done = true;
    }
    fetch.cv.notify_all();
}

/** Block until the leader publishes; rethrows the leader's exception
 *  if the fetch failed.  Stripe mutex must NOT be held. */
inline void
awaitFetch(InflightFetch &fetch)
{
    std::unique_lock<std::mutex> lock(fetch.mutex);
    fetch.cv.wait(lock, [&fetch] { return fetch.done; });
    if (fetch.error)
        std::rethrow_exception(fetch.error);
}

/**
 * The per-stripe table of in-flight fetches.  All methods must be
 * called with the stripe mutex held; the entries themselves outlive
 * erase() through shared ownership, so waiters that joined before
 * the leader finished still see the published result.
 */
class InflightTable
{
  public:
    /** Join @p key's in-flight fetch, or claim leadership of a new
     *  one.  Second element is true for the leader. */
    std::pair<std::shared_ptr<InflightFetch>, bool>
    claim(Addr key)
    {
        auto [it, inserted] = map_.try_emplace(key);
        if (inserted)
            it->second = std::make_shared<InflightFetch>();
        return {it->second, inserted};
    }

    /** Leader-only: retire the entry once the block is installed. */
    void
    erase(Addr key)
    {
        map_.erase(key);
    }

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<Addr, std::shared_ptr<InflightFetch>> map_;
};

} // namespace csr::serve

#endif // CSR_SERVE_INFLIGHTTABLE_H
