/**
 * @file
 * Closed-loop load harness for CacheService.
 *
 * Replays a deterministic op stream -- synthetic (KeyGenerator) or a
 * recorded .csrt trace (HarnessConfig::replayPath) -- against a
 * service from N worker threads and reports throughput, hit ratio and
 * end-to-end latency percentiles.  Reproducibility contract, same as
 * the sweep engine's: with shard affinity on (the default), the
 * deterministic outputs -- hit counts, miss counts, aggregate miss
 * cost -- are bit-identical for ANY worker count, because
 *
 *   1. the op stream is a pure function of (mix, seed), or of the
 *      trace file's bytes when replaying,
 *   2. ops are partitioned by owning shard, whole shards are assigned
 *      to workers round-robin, and each worker replays its share in
 *      global stream order -- so every shard sees the same op
 *      subsequence in the same order regardless of worker count, and
 *   3. the synthetic backend's latencies are pure functions of
 *      (seed, key, per-key ordinal).
 *
 * With --affinity free the partition is strided op-by-op instead:
 * workers then contend on shard locks (the realistic mode, and what
 * the TSan soak exercises), at the price of an interleaving- and
 * worker-count-dependent outcome.
 */

#ifndef CSR_SERVE_LOADHARNESS_H
#define CSR_SERVE_LOADHARNESS_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/CacheService.h"
#include "serve/KeyGenerator.h"
#include "util/Stats.h"
#include "util/Table.h"

namespace csr
{
class CliArgs;
class MetricRegistry;
}

namespace csr::serve
{

/** Load-harness parameters. */
struct HarnessConfig
{
    std::uint64_t ops = 1'000'000;
    /** Non-empty: replay this .csrt trace (replay/TraceReader.h)
     *  instead of generating a synthetic stream -- Get/Set/Del
     *  records become get/put/del ops in trace order, and the mix
     *  flags are ignored.  ops then bounds the replay (0 = the whole
     *  trace, the --replay default). */
    std::string replayPath;
    /** Worker threads; 0 = one per hardware thread. */
    unsigned workers = 1;
    /** Aggregate target throughput; 0 = unpaced (closed loop at full
     *  speed). */
    double targetQps = 0.0;
    WorkloadMix mix;
    std::uint64_t seed = 1;
    /** Partition ops so each shard is driven by exactly one worker
     *  (deterministic); false = strided free-for-all. */
    bool shardAffinity = true;
    /** True when the backend burns real wall-clock time (spin mode):
     *  simulated latency is then already inside the measured op time
     *  and must not be added again. */
    bool backendIsReal = false;
    /** Shape of the latency histograms. */
    double histMaxNs = 131072.0;
    std::size_t histBuckets = 1024;

    /**
     * Read --ops --workers --qps --affinity --spin --replay plus the
     * workload-mix flags (--workload --keys --zipf-theta --hot-frac
     * --hot-prob --write-frac --seed) out of @p args; the result is
     * validate()d.  With --replay, an omitted --ops means the whole
     * trace.  @throws ConfigError listing accepted values.
     */
    static HarnessConfig fromArgs(const CliArgs &args);

    /** @throws ConfigError on invalid pacing/histogram parameters. */
    void validate() const;
};

/** The deterministic payload a write op carries for @p key: a pure
 *  function of (seed, key), shared by the in-process workers and the
 *  network client so a wire run's server-side state is comparable to
 *  an in-process run's. */
std::uint64_t harnessPayload(std::uint64_t seed, Addr key);

/** Everything one harness run produced. */
struct HarnessResult
{
    HarnessResult(double hist_max_ns, std::size_t buckets)
        : opLatencyNs(0.0, hist_max_ns, buckets),
          missLatencyNs(0.0, hist_max_ns, buckets)
    {
    }

    ServeTotals totals;      ///< deterministic service counters
    std::uint64_t ops = 0;
    unsigned workers = 1;
    double wallSec = 0.0;    ///< serving phase only (not generation)
    double qps = 0.0;
    /** End-to-end per-op latency (lock wait + service + backend). */
    Histogram opLatencyNs;
    /** Backend fetch latency of read misses (the online miss cost). */
    Histogram missLatencyNs;

    /** The deterministic outputs only: byte-identical across worker
     *  counts under shard affinity (drivers print this to stdout). */
    TextTable summaryTable(const std::string &title) const;

    /** Wall-clock outputs: throughput and latency percentiles
     *  (drivers print this to stderr to keep stdout diffable). */
    TextTable timingTable() const;

    /** One JSON object with both halves (the per-policy row of
     *  bench_serve_policies and `csrserve --json`). */
    void writeJsonObject(std::ostream &os, const std::string &policy,
                        const std::string &workload,
                        int indent = 0) const;

    /** Export into @p registry under "serve." (counters, wall timer,
     *  latency histograms). */
    void exportMetrics(MetricRegistry &registry) const;
};

/**
 * Run @p config's op stream against @p service.  The service's
 * counters are expected to start at zero (use a fresh service per
 * run).  @throws ConfigError on invalid parameters.
 */
HarnessResult runLoad(CacheService &service,
                      const HarnessConfig &config);

} // namespace csr::serve

#endif // CSR_SERVE_LOADHARNESS_H
