/**
 * @file
 * The backing store behind csr::serve::CacheService.
 *
 * The paper's premise is that a miss's cost is the *latency of
 * fetching the block*, and that this latency is non-uniform.  In the
 * serving layer the backend is where that latency lives: every cache
 * miss turns into a fetch whose measured latency is (a) charged to
 * the aggregate miss cost and (b) fed into the per-key EWMA latency
 * tracker that closes the paper's cost loop through
 * CacheModel::updateCost.
 *
 * Implementations must be safe for concurrent calls from every shard
 * of the service; SyntheticBackend achieves this by being a pure
 * function of (seed, key, salt).
 *
 * Two fetch surfaces.  fetch() is the synchronous call the in-process
 * harness uses; fetchAsync() hands the result to a completion
 * callback instead of blocking the caller, which is what the network
 * event loop needs -- a net worker must never park inside a backend
 * round trip.  The base class adapts fetchAsync() onto fetch() (the
 * completion runs inline on the calling thread), so existing sync
 * backends are async-capable for free; a truly asynchronous backend
 * overrides fetchAsync() and may invoke the completion from any
 * thread.  Completions must be invoked exactly once.
 */

#ifndef CSR_SERVE_BACKEND_H
#define CSR_SERVE_BACKEND_H

#include <cstdint>
#include <exception>
#include <functional>
#include <string>

#include "util/Types.h"

namespace csr::serve
{

/** One backend round trip: the payload and its measured latency. */
struct BackendResult
{
    std::uint64_t value = 0;
    /** Fetch/store latency in nanoseconds -- the online miss cost. */
    double latencyNs = 0.0;
};

/**
 * Completion of an asynchronous fetch.  On success @p error is null
 * and @p result carries the payload + measured latency; on failure
 * @p result is meaningless and @p error holds what fetch() would have
 * thrown.  May run on any thread, including inline on the caller's.
 */
using FetchCallback =
    std::function<void(const BackendResult &result,
                       std::exception_ptr error)>;

/**
 * Abstract backing store.  @p salt is a caller-maintained per-key
 * access ordinal; deterministic backends mix it into their jitter so
 * repeated fetches of one key vary reproducibly.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    Backend() = default;
    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    /** Read @p key (a cache read miss), blocking the caller. */
    virtual BackendResult fetch(Addr key, std::uint64_t salt) = 0;

    /**
     * Read @p key and deliver the result through @p done instead of
     * blocking.  The default adapter performs a synchronous fetch()
     * and completes inline -- correct for compute-only backends like
     * SyntheticBackend, where "async" costs nothing; backends with
     * real I/O override this to complete from their own reactor.
     */
    virtual void
    fetchAsync(Addr key, std::uint64_t salt, FetchCallback done)
    {
        BackendResult result;
        try {
            result = fetch(key, salt);
        } catch (...) {
            done(BackendResult{}, std::current_exception());
            return;
        }
        done(result, nullptr);
    }

    /** Write-through @p value to @p key. */
    virtual BackendResult store(Addr key, std::uint64_t value,
                                std::uint64_t salt) = 0;

    /** Human-readable parameter summary for banners and JSON. */
    virtual std::string describe() const = 0;
};

} // namespace csr::serve

#endif // CSR_SERVE_BACKEND_H
