/**
 * @file
 * The backing store behind csr::serve::CacheService.
 *
 * The paper's premise is that a miss's cost is the *latency of
 * fetching the block*, and that this latency is non-uniform.  In the
 * serving layer the backend is where that latency lives: every cache
 * miss turns into a fetch whose measured latency is (a) charged to
 * the aggregate miss cost and (b) fed into the per-key EWMA latency
 * tracker that closes the paper's cost loop through
 * CacheModel::updateCost.
 *
 * Implementations must be safe for concurrent calls from every shard
 * of the service; SyntheticBackend achieves this by being a pure
 * function of (seed, key, salt).
 */

#ifndef CSR_SERVE_BACKEND_H
#define CSR_SERVE_BACKEND_H

#include <cstdint>
#include <string>

#include "util/Types.h"

namespace csr::serve
{

/** One backend round trip: the payload and its measured latency. */
struct BackendResult
{
    std::uint64_t value = 0;
    /** Fetch/store latency in nanoseconds -- the online miss cost. */
    double latencyNs = 0.0;
};

/**
 * Abstract backing store.  @p salt is a caller-maintained per-key
 * access ordinal; deterministic backends mix it into their jitter so
 * repeated fetches of one key vary reproducibly.
 */
class Backend
{
  public:
    virtual ~Backend() = default;

    Backend() = default;
    Backend(const Backend &) = delete;
    Backend &operator=(const Backend &) = delete;

    /** Read @p key (a cache read miss). */
    virtual BackendResult fetch(Addr key, std::uint64_t salt) = 0;

    /** Write-through @p value to @p key. */
    virtual BackendResult store(Addr key, std::uint64_t value,
                                std::uint64_t salt) = 0;

    /** Human-readable parameter summary for banners and JSON. */
    virtual std::string describe() const = 0;
};

} // namespace csr::serve

#endif // CSR_SERVE_BACKEND_H
