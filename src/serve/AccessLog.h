/**
 * @file
 * Bounded lock-free access log: deferred recency promotion for the
 * seqlock hit path.
 *
 * An optimistic hit must not touch the replacement policy's recency
 * state (that would race with lock-holding writers), so it records
 * the hit key here instead; the next thread to take the shard mutex
 * drains the log in FIFO order and replays the accesses into the
 * policy.  The structure is Vyukov's bounded MPMC ring: producers
 * claim a slot by CAS on the head and publish the payload with a
 * release store of the slot's sequence number, so the (single,
 * mutex-holding) consumer acquires the payload race-free.
 *
 * push() returns false when the ring is full; the caller then falls
 * back to the locked path, which drains the ring before serving the
 * op -- so at one worker no promotion is ever lost or reordered, and
 * the locked/seqlock end states coincide (test_serve_concurrency).
 */

#ifndef CSR_SERVE_ACCESSLOG_H
#define CSR_SERVE_ACCESSLOG_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/Logging.h"
#include "util/MathUtil.h"
#include "util/Types.h"

namespace csr::serve
{

class AccessLog
{
  public:
    explicit AccessLog(std::size_t capacity = 1024)
        : mask_(capacity - 1),
          cells_(std::make_unique<Cell[]>(capacity))
    {
        // Power-of-two capacity so slot selection is a mask.
        csr_assert(capacity >= 2 && isPow2(capacity),
                   "access log capacity must be a power of two >= 2");
        for (std::size_t i = 0; i < capacity; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    AccessLog(const AccessLog &) = delete;
    AccessLog &operator=(const AccessLog &) = delete;

    /** Record a hit on @p key.  Lock-free; false when full. */
    bool
    push(Addr key)
    {
        std::uint64_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::uint64_t seq =
                cell.seq.load(std::memory_order_acquire);
            const auto dif = static_cast<std::int64_t>(seq) -
                             static_cast<std::int64_t>(pos);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    cell.key = key;
                    cell.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (dif < 0) {
                return false; // full: caller takes the locked path
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Drain every published entry in FIFO order into @p fn(key).
     * Single consumer: the caller must hold the shard mutex.
     */
    template <typename Fn>
    void
    drain(Fn &&fn)
    {
        std::uint64_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::uint64_t seq =
                cell.seq.load(std::memory_order_acquire);
            if (static_cast<std::int64_t>(seq) -
                    static_cast<std::int64_t>(pos + 1) <
                0)
                break; // empty, or a claimed slot not yet published
            const Addr key = cell.key;
            cell.seq.store(pos + mask_ + 1,
                           std::memory_order_release);
            ++pos;
            fn(key);
        }
        tail_.store(pos, std::memory_order_relaxed);
    }

  private:
    struct Cell
    {
        std::atomic<std::uint64_t> seq{0};
        Addr key = 0;
    };

    const std::uint64_t mask_;
    std::unique_ptr<Cell[]> cells_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

} // namespace csr::serve

#endif // CSR_SERVE_ACCESSLOG_H
