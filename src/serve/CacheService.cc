#include "serve/CacheService.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#include "robust/Errors.h"
#include "serve/ShardState.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Telemetry.h"
#include "util/CliArgs.h"
#include "util/MathUtil.h"
#include "util/Random.h"

namespace csr::serve
{

namespace
{

/** Optimistic read attempts before falling back to the mutex. */
constexpr int kOptimisticRetries = 4;

/** Auto-striping never exceeds this many stripes per shard. */
constexpr unsigned kMaxAutoStripes = 8;

/** Largest power of two <= min(hardware threads, kMaxAutoStripes);
 *  more stripes than runnable threads only buys allocator overhead. */
unsigned
autoStripes()
{
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    unsigned stripes = 1;
    while (stripes * 2 <= std::min(hw, kMaxAutoStripes))
        stripes *= 2;
    return stripes;
}

/** Monotonic clock feeding the circuit breakers' state machines. */
std::uint64_t
breakerNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Did a backend fetch fail by *timing out* (vs erroring)?  Feeds
 *  the breaker's consecutive-timeout trip condition. */
bool
isTimeoutFailure(const std::exception_ptr &error)
{
    try {
        std::rethrow_exception(error);
    } catch (const TimeoutError &) {
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace

std::optional<HitPath>
parseHitPath(const std::string &name)
{
    if (name == "locked")
        return HitPath::Locked;
    if (name == "seqlock")
        return HitPath::Seqlock;
    return std::nullopt;
}

HitPath
requireHitPath(const std::string &name)
{
    if (auto path = parseHitPath(name))
        return *path;
    throw ConfigError("unknown hitpath '" + name +
                      "' (valid: locked seqlock)");
}

const char *
hitPathName(HitPath path)
{
    return path == HitPath::Locked ? "locked" : "seqlock";
}

unsigned
requireStripes(const std::string &text)
{
    if (text == "auto")
        return kStripesAuto;
    std::size_t consumed = 0;
    unsigned long value = 0;
    try {
        value = std::stoul(text, &consumed);
    } catch (const std::exception &) {
        consumed = 0;
    }
    if (consumed == text.size() && !text.empty() &&
        value <= 1u << 30 &&
        (value == 0 || isPow2(static_cast<std::uint64_t>(value))))
        return static_cast<unsigned>(value);
    throw ConfigError("invalid stripe count '" + text +
                      "' (valid: auto, or a power of two: 1 2 4 "
                      "8 ...; 0 means auto)");
}

ServeConfig
ServeConfig::fromArgs(const CliArgs &args)
{
    ServeConfig config;
    const std::string policy_name = args.get("policy", "acl");
    if (auto kind = parsePolicyKind(policy_name))
        config.policy = *kind;
    else
        throw ConfigError("unknown policy '" + policy_name +
                          "' (valid: " + policyNamesJoined(" ") + ")");
    config.shards =
        static_cast<unsigned>(args.getUInt("shards", config.shards));
    config.shardBytes = args.getUInt("shard-bytes", config.shardBytes);
    config.assoc = static_cast<std::uint32_t>(
        args.getUInt("assoc", config.assoc));
    config.blockBytes = static_cast<std::uint32_t>(
        args.getUInt("block-bytes", config.blockBytes));
    config.ewmaAlpha = args.getDouble("ewma-alpha", config.ewmaAlpha);
    config.policyParams.seed = args.seed(1);
    config.hitPath = requireHitPath(args.get("hitpath", "locked"));
    config.stripes = requireStripes(args.get("stripes", "auto"));
    config.inflightWaitMs =
        args.getDouble("inflight-wait-ms", config.inflightWaitMs);
    config.breaker = BreakerConfig::fromArgs(args);
    config.breaker.seed = config.policyParams.seed;
    config.validate();
    return config;
}

void
ServeConfig::validate() const
{
    if (shards == 0 || !isPow2(shards))
        throw ConfigError("shard count (" + std::to_string(shards) +
                          ") must be a power of two");
    if (ewmaAlpha <= 0.0 || ewmaAlpha > 1.0)
        throw ConfigError("EWMA alpha must be in (0,1], got " +
                          std::to_string(ewmaAlpha));
    if (accessLogCapacity < 2 || !isPow2(accessLogCapacity))
        throw ConfigError("access log capacity (" +
                          std::to_string(accessLogCapacity) +
                          ") must be a power of two >= 2");
    if (policy == PolicyKind::Opt || policy == PolicyKind::CostOpt)
        throw ConfigError("offline oracle policies cannot drive an "
                          "online service (pick one of lru random lfu "
                          "gd bcl dcl acl)");
    if (stripes != kStripesAuto && !isPow2(stripes))
        throw ConfigError("stripe count (" + std::to_string(stripes) +
                          ") must be a power of two, or 0 for auto");
    if (inflightWaitMs < 0.0)
        throw ConfigError(
            "in-flight wait bound must be >= 0 ms (0 = unbounded), "
            "got " +
            std::to_string(inflightWaitMs));
    breaker.validate();
}

CacheService::CacheService(const ServeConfig &config, Backend &backend)
    : config_(config), backend_(backend),
      inflightWaitNs_(static_cast<std::uint64_t>(
          config.inflightWaitMs * 1e6))
{
    config_.validate();

    // Throws CacheGeometryError naming the bad parameter.  Validate
    // the whole-shard geometry first so a bad shard size is reported
    // as such, not as a confusing stripe-sized failure.
    const CacheGeometry shard_geom(config_.shardBytes, config_.assoc,
                                   config_.blockBytes);
    if (config_.stripes == kStripesAuto)
        config_.stripes = std::min<unsigned>(
            autoStripes(),
            static_cast<unsigned>(shard_geom.numSets()));
    if (config_.stripes > shard_geom.numSets())
        throw ConfigError(
            "stripe count (" + std::to_string(config_.stripes) +
            ") exceeds the sets per shard (" +
            std::to_string(shard_geom.numSets()) +
            "); shrink --stripes or grow --shard-bytes");

    const CacheGeometry stripe_geom(
        config_.shardBytes / config_.stripes, config_.assoc,
        config_.blockBytes);
    const auto stripe_bits = static_cast<std::uint32_t>(
        floorLog2(config_.stripes));
    shardShift_ =
        64u - static_cast<unsigned>(floorLog2(config_.shards));
    stripeMask_ = config_.stripes - 1;

    shards_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->breaker =
            std::make_unique<CircuitBreaker>(config_.breaker, s);
        shard->stripes.reserve(config_.stripes);
        for (unsigned t = 0; t < config_.stripes; ++t) {
            // Decorrelate any stochastic policy state across stripes
            // while keeping it a pure function of the configured
            // seed; at stripes == 1 this is the PR-6 per-shard seed.
            PolicyParams params = config_.policyParams;
            params.seed = hashMix64(params.seed +
                                    static_cast<std::uint64_t>(s) *
                                        config_.stripes +
                                    t + 1);
            shard->stripes.push_back(std::make_unique<Stripe>(
                stripe_geom,
                makePolicy(config_.policy, stripe_geom, params),
                stripe_bits, config_.accessLogCapacity));
        }
        shards_.push_back(std::move(shard));
    }
}

CacheService::~CacheService() = default;

unsigned
CacheService::shardOf(Addr key) const
{
    if (config_.shards == 1)
        return 0;
    return static_cast<unsigned>(hashMix64(key) >> shardShift_);
}

void
CacheService::setRecorder(OpRecorder recorder)
{
    recorder_ = std::move(recorder);
}

Stripe &
CacheService::stripeFor(Addr key)
{
    // Stripe choice is the key's low set-index bits: every key of a
    // set routes to the same stripe, so no set ever spans a lock.
    return *shards_[shardOf(key)]
                ->stripes[static_cast<unsigned>(key) & stripeMask_];
}

std::string
CacheService::policyName() const
{
    return shards_[0]->stripes[0]->model.policy()->name();
}

std::uint64_t
CacheService::keySamples(Addr key) const
{
    Stripe &stripe =
        *shards_[shardOf(key)]
             ->stripes[static_cast<unsigned>(key) & stripeMask_];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.keys.find(key);
    return it == stripe.keys.end() ? 0 : it->second.samples;
}

/**
 * The lock-free hit path.  A stable seqlock read section around the
 * SIMD tag probe and the value load serves a hit without ever
 * touching the stripe mutex; recency promotion is deferred through
 * the access log.  Returns nullopt when the op must take the locked
 * path: a validated miss, a full access log, or retry exhaustion.
 */
std::optional<ServeOpResult>
CacheService::tryOptimisticGet(Stripe &stripe, std::uint32_t set,
                               Addr tag, Addr key)
{
    for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
        const std::uint64_t begin = stripe.seqlock.readBegin();
        if (begin & 1) {
            // A writer is inside a write section; re-snapshot.
            stripe.seqlockRetries.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        const int way = stripe.model.probeConcurrent(set, tag);
        if (way == kInvalidWay) {
            if (stripe.seqlock.readValidate(begin))
                return std::nullopt; // genuine miss
            stripe.seqlockRetries.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        const std::uint64_t value = stripe.loadValue(set, way);
        if (!stripe.seqlock.readValidate(begin)) {
            stripe.seqlockRetries.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        // Hit committed.  Defer the recency promotion; a full log
        // means the locked path must drain first, so re-serve the op
        // there (it will count as an ordinary locked hit).  Counted
        // apart from contention fallbacks: a saturated log is a
        // sizing problem, a beaten retry budget a contention one.
        if (!stripe.accessLog.push(key)) {
            stripe.logFullFallbacks.fetch_add(
                1, std::memory_order_relaxed);
            return std::nullopt;
        }
        stripe.gets.fetch_add(1, std::memory_order_relaxed);
        stripe.hits.fetch_add(1, std::memory_order_relaxed);
        stripe.seqlockHits.fetch_add(1, std::memory_order_relaxed);
        ServeOpResult result;
        result.hit = true;
        result.value = value;
        return result;
    }
    stripe.lockedFallbacks.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

ServeOpResult
CacheService::get(Addr key)
{
    if (recorder_)
        recorder_(key, 0);
    Stripe &stripe = stripeFor(key);
    const std::uint32_t set = stripe.setOf(key);
    const Addr tag = stripe.tagOf(key);

    if (config_.hitPath == HitPath::Seqlock) {
        if (auto result = tryOptimisticGet(stripe, set, tag, key))
            return *result;
    }
    return lockedGet(stripe, set, tag, key);
}

ServeOpResult
CacheService::lockedGet(Stripe &stripe, std::uint32_t set, Addr tag,
                        Addr key)
{
    std::unique_lock<std::mutex> lock(stripe.mutex, std::defer_lock);
    {
        CSR_TRACE_SPAN("serve", "stripe.lock_wait");
        lock.lock();
    }
    stripe.drainAccessLog();
    stripe.gets.fetch_add(1, std::memory_order_relaxed);

    const int way = stripe.model.access(set, tag);
    if (way != kInvalidWay) {
        stripe.hits.fetch_add(1, std::memory_order_relaxed);
        ServeOpResult result;
        result.hit = true;
        result.value = stripe.loadValue(set, way);
        return result;
    }

    stripe.misses.fetch_add(1, std::memory_order_relaxed);
    CircuitBreaker &breaker = *shards_[shardOf(key)]->breaker;
    auto [flight, leader] = stripe.inflight.claim(key);

    if (leader && breaker.admit(breakerNowNs()) ==
                      CircuitBreaker::Admit::FailFast) {
        // The shard's breaker is open and this miss would have
        // started a fresh fetch: fail fast (the whole point -- no
        // thread parks on a backend that keeps failing).  A resident
        // cost estimate with a remembered value may be served stale
        // instead.  The just-claimed flight has no subscribers yet
        // (we still hold the stripe mutex), so erasing it is enough.
        stripe.inflight.erase(key);
        if (config_.breaker.staleWhileBroken) {
            const auto it = stripe.keys.find(key);
            if (it != stripe.keys.end() && it->second.hasValue) {
                stripe.staleServes.fetch_add(
                    1, std::memory_order_relaxed);
                ServeOpResult result;
                result.hit = false;
                result.value = it->second.lastValue;
                return result;
            }
        }
        throw CircuitOpenError(
            "circuit open on serve shard " +
            std::to_string(shardOf(key)) +
            ": backend fetches keep failing, refusing key " +
            std::to_string(key) + " without a fetch");
    }

    if (!leader) {
        // Another thread's fetch for this key is in flight: park on
        // it instead of hammering the backend (single-flight), then
        // fold ITS measured latency into this requester's view of
        // the key -- the cost signal sees one observation per miss,
        // the backend one call per stampede.
        stripe.coalescedMisses.fetch_add(1,
                                         std::memory_order_relaxed);
        CSR_TRACE_INSTANT("serve", "coalesced_miss");
        lock.unlock();
        {
            CSR_TRACE_SPAN("serve", "inflight.wait");
            // Bounded: a wedged leader must not park this thread (or
            // the network connection behind it) forever.  Rethrows a
            // failed leader's error.
            if (!awaitFetchFor(*flight, inflightWaitNs_))
                throw TimeoutError(
                    "coalesced miss on key " + std::to_string(key) +
                    " waited " +
                    std::to_string(config_.inflightWaitMs) +
                    " ms for its single-flight leader's backend "
                    "fetch (raise --inflight-wait-ms, or find the "
                    "wedged backend)");
        }
        absorbLeaderSample(stripe, set, tag, key, flight->latencyNs);
        ServeOpResult result;
        result.hit = false;
        result.value = flight->value;
        result.backendNs = flight->latencyNs;
        return result;
    }

    // Leader: read the fetch salt under the lock, fetch with the
    // stripe UNLOCKED (other keys keep being served), then re-acquire
    // to install the block and publish to the waiters.
    const std::uint64_t salt = stripe.keys[key].samples;
    lock.unlock();
    BackendResult fetched;
    try {
        CSR_TRACE_SPAN("serve", "backend.fetch");
        fetched = backend_.fetch(key, salt);
    } catch (...) {
        // Leader crash path: retire the flight BEFORE publishing the
        // failure, so a retrying waiter elects a fresh leader instead
        // of rejoining the dead entry, then wake every waiter with
        // the exception rather than leaving them parked forever.
        const std::exception_ptr error = std::current_exception();
        breaker.onFailure(isTimeoutFailure(error), breakerNowNs());
        lock.lock();
        stripe.inflight.erase(key);
        lock.unlock();
        failFetch(*flight, error);
        throw;
    }
    breaker.onSuccess(breakerNowNs());
    installFetched(stripe, set, tag, key, fetched);
    completeFetch(*flight, fetched.value, fetched.latencyNs);

    ServeOpResult result;
    result.hit = false;
    result.value = fetched.value;
    result.backendNs = fetched.latencyNs;
    return result;
}

void
CacheService::absorbLeaderSample(Stripe &stripe, std::uint32_t set,
                                 Addr tag, Addr key, double latency_ns)
{
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.drainAccessLog();
    Stripe::KeyState &state = stripe.keys[key];
    stripe.observe(state, latency_ns, config_.ewmaAlpha);
    stripe.missCostNs += latency_ns;
    const int resident = stripe.model.lookup(set, tag);
    if (resident != kInvalidWay) {
        SeqlockWriteGuard guard(stripe.seqlock);
        stripe.model.updateCost(set, resident, state.ewmaNs);
    }
}

void
CacheService::installFetched(Stripe &stripe, std::uint32_t set,
                             Addr tag, Addr key,
                             const BackendResult &fetched)
{
    stripe.backendFetches.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.drainAccessLog();
    Stripe::KeyState &state = stripe.keys[key];
    stripe.observe(state, fetched.latencyNs, config_.ewmaAlpha);
    state.lastValue = fetched.value;
    state.hasValue = true;
    stripe.missCostNs += fetched.latencyNs;

    const int resident = stripe.model.lookup(set, tag);
    if (resident != kInvalidWay) {
        // A concurrent put write-allocated the key while we fetched;
        // its value is newer than our read, so only refresh the cost.
        SeqlockWriteGuard guard(stripe.seqlock);
        stripe.model.updateCost(set, resident, state.ewmaNs);
    } else {
        SeqlockWriteGuard guard(stripe.seqlock);
        const int filled = stripe.model.fillVictimOrFree(
            set, tag, state.ewmaNs, 0, [&](int, Addr, std::uint32_t) {
                stripe.evictions.fetch_add(1,
                                           std::memory_order_relaxed);
                CSR_TRACE_INSTANT("serve", "evict");
            });
        stripe.storeValue(set, filled, fetched.value);
    }
    stripe.inflight.erase(key);
}

void
CacheService::getAsync(Addr key, GetCallback done)
{
    if (recorder_)
        recorder_(key, 0);
    Stripe &stripe = stripeFor(key);
    const std::uint32_t set = stripe.setOf(key);
    const Addr tag = stripe.tagOf(key);

    if (config_.hitPath == HitPath::Seqlock) {
        if (auto result = tryOptimisticGet(stripe, set, tag, key)) {
            done(*result, nullptr);
            return;
        }
    }

    std::shared_ptr<InflightFetch> flight;
    bool leader = false;
    std::uint64_t salt = 0;
    CircuitBreaker &breaker = *shards_[shardOf(key)]->breaker;
    {
        std::unique_lock<std::mutex> lock(stripe.mutex,
                                          std::defer_lock);
        {
            CSR_TRACE_SPAN("serve", "stripe.lock_wait");
            lock.lock();
        }
        stripe.drainAccessLog();
        stripe.gets.fetch_add(1, std::memory_order_relaxed);

        const int way = stripe.model.access(set, tag);
        if (way != kInvalidWay) {
            stripe.hits.fetch_add(1, std::memory_order_relaxed);
            ServeOpResult result;
            result.hit = true;
            result.value = stripe.loadValue(set, way);
            lock.unlock();
            done(result, nullptr);
            return;
        }

        stripe.misses.fetch_add(1, std::memory_order_relaxed);
        std::tie(flight, leader) = stripe.inflight.claim(key);
        if (leader) {
            if (breaker.admit(breakerNowNs()) ==
                CircuitBreaker::Admit::FailFast) {
                // Same fail-fast protocol as lockedGet: retire the
                // subscriber-less flight under the mutex, then
                // complete -- stale value or CircuitOpenError --
                // without ever touching the backend.
                stripe.inflight.erase(key);
                ServeOpResult stale;
                bool haveStale = false;
                if (config_.breaker.staleWhileBroken) {
                    const auto it = stripe.keys.find(key);
                    if (it != stripe.keys.end() &&
                        it->second.hasValue) {
                        stripe.staleServes.fetch_add(
                            1, std::memory_order_relaxed);
                        stale.hit = false;
                        stale.value = it->second.lastValue;
                        haveStale = true;
                    }
                }
                lock.unlock();
                if (haveStale)
                    done(stale, nullptr);
                else
                    done(ServeOpResult{},
                         std::make_exception_ptr(CircuitOpenError(
                             "circuit open on serve shard " +
                             std::to_string(shardOf(key)) +
                             ": backend fetches keep failing, "
                             "refusing key " + std::to_string(key) +
                             " without a fetch")));
                return;
            }
            salt = stripe.keys[key].samples;
        } else {
            stripe.coalescedMisses.fetch_add(
                1, std::memory_order_relaxed);
            CSR_TRACE_INSTANT("serve", "coalesced_miss");
        }
    }

    if (!leader) {
        // Join the flight without parking: the completion runs on
        // whichever thread publishes the leader's result (or inline
        // when it already has).
        subscribeFetch(
            *flight, [this, &stripe, set, tag, key, flight,
                      done = std::move(done)] {
                if (flight->error) {
                    done(ServeOpResult{}, flight->error);
                    return;
                }
                absorbLeaderSample(stripe, set, tag, key,
                                   flight->latencyNs);
                ServeOpResult result;
                result.hit = false;
                result.value = flight->value;
                result.backendNs = flight->latencyNs;
                done(result, nullptr);
            });
        return;
    }

    // Leader, asynchronously: hand the fetch to the backend and
    // finish -- install + publish + completion -- whenever and
    // wherever it completes.  The calling thread never blocks.
    backend_.fetchAsync(
        key, salt,
        [this, &stripe, &breaker, set, tag, key, flight,
         done = std::move(done)](const BackendResult &fetched,
                                 std::exception_ptr error) {
            if (error) {
                // Same crash protocol as the sync leader: retire the
                // flight first so retries elect a fresh leader, then
                // publish the failure to every joiner.
                breaker.onFailure(isTimeoutFailure(error),
                                  breakerNowNs());
                {
                    std::lock_guard<std::mutex> lock(stripe.mutex);
                    stripe.inflight.erase(key);
                }
                failFetch(*flight, error);
                done(ServeOpResult{}, error);
                return;
            }
            breaker.onSuccess(breakerNowNs());
            installFetched(stripe, set, tag, key, fetched);
            completeFetch(*flight, fetched.value, fetched.latencyNs);
            ServeOpResult result;
            result.hit = false;
            result.value = fetched.value;
            result.backendNs = fetched.latencyNs;
            done(result, nullptr);
        });
}

bool
CacheService::del(Addr key)
{
    if (recorder_)
        recorder_(key, 2);
    Stripe &stripe = stripeFor(key);
    const std::uint32_t set = stripe.setOf(key);
    const Addr tag = stripe.tagOf(key);

    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.drainAccessLog();
    // Under the seqlock guard so a concurrent optimistic reader
    // re-validates instead of serving the dying line.
    SeqlockWriteGuard guard(stripe.seqlock);
    return stripe.model.invalidateTag(set, tag) != kInvalidWay;
}

ServeOpResult
CacheService::put(Addr key, std::uint64_t value)
{
    if (recorder_)
        recorder_(key, 1);
    Stripe &stripe = stripeFor(key);
    const std::uint32_t set = stripe.setOf(key);
    const Addr tag = stripe.tagOf(key);

    std::unique_lock<std::mutex> lock(stripe.mutex, std::defer_lock);
    {
        CSR_TRACE_SPAN("serve", "stripe.lock_wait");
        lock.lock();
    }
    stripe.drainAccessLog();
    stripe.stores.fetch_add(1, std::memory_order_relaxed);

    Stripe::KeyState &state = stripe.keys[key];
    BackendResult stored;
    {
        CSR_TRACE_SPAN("serve", "backend.store");
        stored = backend_.store(key, value, state.samples);
    }
    // A write-through round trip is a fresh observation of this key's
    // backend latency, so it refreshes the cost estimate too.
    stripe.observe(state, stored.latencyNs, config_.ewmaAlpha);
    state.lastValue = value;
    state.hasValue = true;
    stripe.storeCostNs += stored.latencyNs;

    ServeOpResult result;
    result.value = value;
    result.backendNs = stored.latencyNs;

    const int way = stripe.model.access(set, tag);
    if (way != kInvalidWay) {
        // Resident: refresh the value and push the new prediction to
        // the policy -- the online analogue of the paper's dynamic
        // cost updates (CacheModel::updateCost).
        stripe.storeHits.fetch_add(1, std::memory_order_relaxed);
        SeqlockWriteGuard guard(stripe.seqlock);
        stripe.storeValue(set, way, value);
        stripe.model.updateCost(set, way, state.ewmaNs);
        result.hit = true;
        return result;
    }

    // Write-allocate, so subsequent reads of a written key hit.
    SeqlockWriteGuard guard(stripe.seqlock);
    const int filled = stripe.model.fillVictimOrFree(
        set, tag, state.ewmaNs, 0, [&](int, Addr, std::uint32_t) {
            stripe.evictions.fetch_add(1, std::memory_order_relaxed);
            CSR_TRACE_INSTANT("serve", "evict");
        });
    stripe.storeValue(set, filled, value);
    result.hit = false;
    return result;
}

ServeTotals
CacheService::totals() const
{
    ServeTotals totals;
    for (const auto &shard_ptr : shards_) {
        for (const auto &stripe_ptr : shard_ptr->stripes) {
            Stripe &stripe = *stripe_ptr;
            std::lock_guard<std::mutex> lock(stripe.mutex);
            totals.gets +=
                stripe.gets.load(std::memory_order_relaxed);
            totals.hits +=
                stripe.hits.load(std::memory_order_relaxed);
            totals.misses +=
                stripe.misses.load(std::memory_order_relaxed);
            totals.stores +=
                stripe.stores.load(std::memory_order_relaxed);
            totals.storeHits +=
                stripe.storeHits.load(std::memory_order_relaxed);
            totals.evictions +=
                stripe.evictions.load(std::memory_order_relaxed);
            totals.trackedKeys += stripe.keys.size();
            totals.missCostNs += stripe.missCostNs;
            totals.storeCostNs += stripe.storeCostNs;
            totals.seqlockHits +=
                stripe.seqlockHits.load(std::memory_order_relaxed);
            totals.seqlockRetries +=
                stripe.seqlockRetries.load(std::memory_order_relaxed);
            totals.lockedFallbacks += stripe.lockedFallbacks.load(
                std::memory_order_relaxed);
            totals.logFullFallbacks += stripe.logFullFallbacks.load(
                std::memory_order_relaxed);
            totals.backendFetches +=
                stripe.backendFetches.load(std::memory_order_relaxed);
            totals.coalescedMisses += stripe.coalescedMisses.load(
                std::memory_order_relaxed);
            totals.staleServes +=
                stripe.staleServes.load(std::memory_order_relaxed);
        }
        totals.breakerOpens += shard_ptr->breaker->opens();
        totals.breakerFastFails += shard_ptr->breaker->fastFails();
    }
    return totals;
}

CircuitBreaker &
CacheService::breakerOf(unsigned shard)
{
    return *shards_[shard]->breaker;
}

std::size_t
CacheService::failInflight(const std::string &why)
{
    std::size_t failed = 0;
    const auto error =
        std::make_exception_ptr(TimeoutError(why));
    for (const auto &shard_ptr : shards_) {
        for (const auto &stripe_ptr : shard_ptr->stripes) {
            Stripe &stripe = *stripe_ptr;
            std::vector<std::shared_ptr<InflightFetch>> flights;
            {
                std::lock_guard<std::mutex> lock(stripe.mutex);
                flights = stripe.inflight.takeAll();
            }
            // Publish with the stripe mutex released (failFetch's
            // contract); a late leader completion finds its entry
            // gone and completes the dead flight harmlessly.
            for (const auto &flight : flights) {
                failFetch(*flight, error);
                ++failed;
            }
        }
    }
    return failed;
}

void
CacheService::exportMetrics(MetricRegistry &registry) const
{
    const ServeTotals totals = this->totals();
    registry.setCounter("serve.gets", totals.gets);
    registry.setCounter("serve.hits", totals.hits);
    registry.setCounter("serve.misses", totals.misses);
    registry.setCounter("serve.stores", totals.stores);
    registry.setCounter("serve.store_hits", totals.storeHits);
    registry.setCounter("serve.evictions", totals.evictions);
    registry.setCounter("serve.tracked_keys", totals.trackedKeys);
    registry.setCounter(
        "serve.miss_cost_ns",
        static_cast<std::uint64_t>(totals.missCostNs));
    registry.setCounter(
        "serve.store_cost_ns",
        static_cast<std::uint64_t>(totals.storeCostNs));
    registry.setCounter("serve.shards", config_.shards);
    registry.setCounter("serve.stripes", config_.stripes);
    registry.setCounter("serve.seqlock_hits", totals.seqlockHits);
    registry.setCounter("serve.seqlock_retries",
                        totals.seqlockRetries);
    registry.setCounter("serve.locked_fallbacks",
                        totals.lockedFallbacks);
    registry.setCounter("serve.log_full_fallbacks",
                        totals.logFullFallbacks);
    registry.setCounter("serve.backend_fetches",
                        totals.backendFetches);
    registry.setCounter("serve.coalesced_misses",
                        totals.coalescedMisses);
    registry.setCounter("serve.breaker_opens", totals.breakerOpens);
    registry.setCounter("serve.breaker_fast_fails",
                        totals.breakerFastFails);
    registry.setCounter("serve.stale_serves", totals.staleServes);

    RunningStat ewma;
    for (const auto &shard_ptr : shards_) {
        for (const auto &stripe_ptr : shard_ptr->stripes) {
            Stripe &stripe = *stripe_ptr;
            std::lock_guard<std::mutex> lock(stripe.mutex);
            for (const auto &[key, state] : stripe.keys) {
                (void)key;
                ewma.add(state.ewmaNs);
            }
        }
    }
    registry.mergeStat("serve.key_ewma_ns", ewma);
}

void
CacheService::checkInvariants() const
{
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const auto &stripes = shards_[s]->stripes;
        for (std::size_t t = 0; t < stripes.size(); ++t) {
            Stripe &stripe = *stripes[t];
            std::lock_guard<std::mutex> lock(stripe.mutex);
            stripe.model.checkInvariants();
            if (stripe.inflight.size() != 0)
                throw InvariantError(
                    "serve shard " + std::to_string(s) + " stripe " +
                    std::to_string(t) + ": " +
                    std::to_string(stripe.inflight.size()) +
                    " in-flight fetches in a quiescent service");
            const CacheGeometry &geom = stripe.model.geometry();
            for (std::uint32_t set = 0; set < geom.numSets(); ++set) {
                for (std::uint32_t way = 0; way < geom.assoc();
                     ++way) {
                    if (!stripe.model.isValid(set,
                                              static_cast<int>(way)))
                        continue;
                    const Addr tag =
                        stripe.model.tagAt(set,
                                           static_cast<int>(way));
                    // Reassemble the key the routing decomposed:
                    // tag | local set | stripe id, low bits last.
                    const Addr key =
                        (((tag << geom.setBits()) | set)
                         << stripe.stripeBits) |
                        t;
                    if (stripe.keys.find(key) == stripe.keys.end())
                        throw InvariantError(
                            "serve shard " + std::to_string(s) +
                            " stripe " + std::to_string(t) +
                            ": resident key " + std::to_string(key) +
                            " has no latency estimate");
                }
            }
        }
    }
}

} // namespace csr::serve
