#include "serve/CacheService.h"

#include <mutex>
#include <utility>

#include "robust/Errors.h"
#include "serve/ShardState.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Telemetry.h"
#include "util/MathUtil.h"
#include "util/Random.h"

namespace csr::serve
{

namespace
{

/** Optimistic read attempts before falling back to the mutex. */
constexpr int kOptimisticRetries = 4;

} // namespace

std::optional<HitPath>
parseHitPath(const std::string &name)
{
    if (name == "locked")
        return HitPath::Locked;
    if (name == "seqlock")
        return HitPath::Seqlock;
    return std::nullopt;
}

const char *
hitPathName(HitPath path)
{
    return path == HitPath::Locked ? "locked" : "seqlock";
}

CacheService::CacheService(const ServeConfig &config, Backend &backend)
    : config_(config), backend_(backend)
{
    if (config_.shards == 0 || !isPow2(config_.shards))
        throw ConfigError("shard count (" +
                          std::to_string(config_.shards) +
                          ") must be a power of two");
    if (config_.ewmaAlpha <= 0.0 || config_.ewmaAlpha > 1.0)
        throw ConfigError("EWMA alpha must be in (0,1], got " +
                          std::to_string(config_.ewmaAlpha));
    if (config_.accessLogCapacity < 2 ||
        !isPow2(config_.accessLogCapacity))
        throw ConfigError(
            "access log capacity (" +
            std::to_string(config_.accessLogCapacity) +
            ") must be a power of two >= 2");
    if (config_.policy == PolicyKind::Opt ||
        config_.policy == PolicyKind::CostOpt)
        throw ConfigError("offline oracle policies cannot drive an "
                          "online service (pick one of lru random lfu "
                          "gd bcl dcl acl)");

    // Throws CacheGeometryError naming the bad parameter.
    const CacheGeometry geom(config_.shardBytes, config_.assoc,
                             config_.blockBytes);
    shardShift_ =
        64u - static_cast<unsigned>(floorLog2(config_.shards));

    shards_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
        // Decorrelate any stochastic policy state across shards while
        // keeping it a pure function of the configured seed.
        PolicyParams params = config_.policyParams;
        params.seed = hashMix64(params.seed + s + 1);
        shards_.push_back(std::make_unique<Shard>(
            geom, makePolicy(config_.policy, geom, params),
            config_.accessLogCapacity));
    }
}

CacheService::~CacheService() = default;

unsigned
CacheService::shardOf(Addr key) const
{
    if (config_.shards == 1)
        return 0;
    return static_cast<unsigned>(hashMix64(key) >> shardShift_);
}

Shard &
CacheService::shardFor(Addr key)
{
    return *shards_[shardOf(key)];
}

std::string
CacheService::policyName() const
{
    return shards_[0]->model.policy()->name();
}

std::uint64_t
CacheService::keySamples(Addr key) const
{
    Shard &shard = *shards_[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.keys.find(key);
    return it == shard.keys.end() ? 0 : it->second.samples;
}

/**
 * The lock-free hit path.  A stable seqlock read section around the
 * SIMD tag probe and the value load serves a hit without ever
 * touching the shard mutex; recency promotion is deferred through the
 * access log.  Returns nullopt when the op must take the locked path:
 * a validated miss, a full access log, or retry exhaustion.
 */
std::optional<ServeOpResult>
CacheService::tryOptimisticGet(Shard &shard, std::uint32_t set,
                               Addr tag, Addr key)
{
    for (int attempt = 0; attempt < kOptimisticRetries; ++attempt) {
        const std::uint64_t begin = shard.seqlock.readBegin();
        if (begin & 1) {
            // A writer is inside a write section; re-snapshot.
            shard.seqlockRetries.fetch_add(1,
                                           std::memory_order_relaxed);
            continue;
        }
        const int way = shard.model.probeConcurrent(set, tag);
        if (way == kInvalidWay) {
            if (shard.seqlock.readValidate(begin))
                return std::nullopt; // genuine miss
            shard.seqlockRetries.fetch_add(1,
                                           std::memory_order_relaxed);
            continue;
        }
        const std::uint64_t value = shard.loadValue(set, way);
        if (!shard.seqlock.readValidate(begin)) {
            shard.seqlockRetries.fetch_add(1,
                                           std::memory_order_relaxed);
            continue;
        }
        // Hit committed.  Defer the recency promotion; a full log
        // means the locked path must drain first, so re-serve the op
        // there (it will count as an ordinary locked hit).
        if (!shard.accessLog.push(key)) {
            shard.lockedFallbacks.fetch_add(1,
                                            std::memory_order_relaxed);
            return std::nullopt;
        }
        shard.gets.fetch_add(1, std::memory_order_relaxed);
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        shard.seqlockHits.fetch_add(1, std::memory_order_relaxed);
        ServeOpResult result;
        result.hit = true;
        result.value = value;
        return result;
    }
    shard.lockedFallbacks.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

ServeOpResult
CacheService::get(Addr key)
{
    Shard &shard = shardFor(key);
    const CacheGeometry &geom = shard.model.geometry();
    const auto set =
        static_cast<std::uint32_t>(key & (geom.numSets() - 1));
    const Addr tag = key >> geom.setBits();

    if (config_.hitPath == HitPath::Seqlock) {
        if (auto result = tryOptimisticGet(shard, set, tag, key))
            return *result;
    }
    return lockedGet(shard, set, tag, key);
}

ServeOpResult
CacheService::lockedGet(Shard &shard, std::uint32_t set, Addr tag,
                        Addr key)
{
    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    {
        CSR_TRACE_SPAN("serve", "shard.lock_wait");
        lock.lock();
    }
    shard.drainAccessLog();
    shard.gets.fetch_add(1, std::memory_order_relaxed);

    const int way = shard.model.access(set, tag);
    if (way != kInvalidWay) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        ServeOpResult result;
        result.hit = true;
        result.value = shard.loadValue(set, way);
        return result;
    }

    shard.misses.fetch_add(1, std::memory_order_relaxed);
    auto [flight, leader] = shard.inflight.claim(key);

    if (!leader) {
        // Another thread's fetch for this key is in flight: park on
        // it instead of hammering the backend (single-flight), then
        // fold ITS measured latency into this requester's view of
        // the key -- the cost signal sees one observation per miss,
        // the backend one call per stampede.
        shard.coalescedMisses.fetch_add(1, std::memory_order_relaxed);
        CSR_TRACE_INSTANT("serve", "coalesced_miss");
        lock.unlock();
        {
            CSR_TRACE_SPAN("serve", "inflight.wait");
            awaitFetch(*flight);
        }
        lock.lock();
        shard.drainAccessLog();
        Shard::KeyState &state = shard.keys[key];
        shard.observe(state, flight->latencyNs, config_.ewmaAlpha);
        shard.missCostNs += flight->latencyNs;
        const int resident = shard.model.lookup(set, tag);
        if (resident != kInvalidWay) {
            SeqlockWriteGuard guard(shard.seqlock);
            shard.model.updateCost(set, resident, state.ewmaNs);
        }
        ServeOpResult result;
        result.hit = false;
        result.value = flight->value;
        result.backendNs = flight->latencyNs;
        return result;
    }

    // Leader: read the fetch salt under the lock, fetch with the
    // shard UNLOCKED (other keys keep being served), then re-acquire
    // to install the block and publish to the waiters.
    Shard::KeyState &state = shard.keys[key];
    const std::uint64_t salt = state.samples;
    lock.unlock();
    BackendResult fetched;
    {
        CSR_TRACE_SPAN("serve", "backend.fetch");
        fetched = backend_.fetch(key, salt);
    }
    shard.backendFetches.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    shard.drainAccessLog();
    shard.observe(state, fetched.latencyNs, config_.ewmaAlpha);
    shard.missCostNs += fetched.latencyNs;

    const int resident = shard.model.lookup(set, tag);
    if (resident != kInvalidWay) {
        // A concurrent put write-allocated the key while we fetched;
        // its value is newer than our read, so only refresh the cost.
        SeqlockWriteGuard guard(shard.seqlock);
        shard.model.updateCost(set, resident, state.ewmaNs);
    } else {
        SeqlockWriteGuard guard(shard.seqlock);
        const int filled = shard.model.fillVictimOrFree(
            set, tag, state.ewmaNs, 0, [&](int, Addr, std::uint32_t) {
                shard.evictions.fetch_add(1,
                                          std::memory_order_relaxed);
                CSR_TRACE_INSTANT("serve", "evict");
            });
        shard.storeValue(set, filled, fetched.value);
    }
    shard.inflight.erase(key);
    lock.unlock();
    completeFetch(*flight, fetched.value, fetched.latencyNs);

    ServeOpResult result;
    result.hit = false;
    result.value = fetched.value;
    result.backendNs = fetched.latencyNs;
    return result;
}

ServeOpResult
CacheService::put(Addr key, std::uint64_t value)
{
    Shard &shard = shardFor(key);
    const CacheGeometry &geom = shard.model.geometry();
    const auto set =
        static_cast<std::uint32_t>(key & (geom.numSets() - 1));
    const Addr tag = key >> geom.setBits();

    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    {
        CSR_TRACE_SPAN("serve", "shard.lock_wait");
        lock.lock();
    }
    shard.drainAccessLog();
    shard.stores.fetch_add(1, std::memory_order_relaxed);

    Shard::KeyState &state = shard.keys[key];
    BackendResult stored;
    {
        CSR_TRACE_SPAN("serve", "backend.store");
        stored = backend_.store(key, value, state.samples);
    }
    // A write-through round trip is a fresh observation of this key's
    // backend latency, so it refreshes the cost estimate too.
    shard.observe(state, stored.latencyNs, config_.ewmaAlpha);
    shard.storeCostNs += stored.latencyNs;

    ServeOpResult result;
    result.value = value;
    result.backendNs = stored.latencyNs;

    const int way = shard.model.access(set, tag);
    if (way != kInvalidWay) {
        // Resident: refresh the value and push the new prediction to
        // the policy -- the online analogue of the paper's dynamic
        // cost updates (CacheModel::updateCost).
        shard.storeHits.fetch_add(1, std::memory_order_relaxed);
        SeqlockWriteGuard guard(shard.seqlock);
        shard.storeValue(set, way, value);
        shard.model.updateCost(set, way, state.ewmaNs);
        result.hit = true;
        return result;
    }

    // Write-allocate, so subsequent reads of a written key hit.
    SeqlockWriteGuard guard(shard.seqlock);
    const int filled = shard.model.fillVictimOrFree(
        set, tag, state.ewmaNs, 0, [&](int, Addr, std::uint32_t) {
            shard.evictions.fetch_add(1, std::memory_order_relaxed);
            CSR_TRACE_INSTANT("serve", "evict");
        });
    shard.storeValue(set, filled, value);
    result.hit = false;
    return result;
}

ServeTotals
CacheService::totals() const
{
    ServeTotals totals;
    for (const auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        totals.gets += shard.gets.load(std::memory_order_relaxed);
        totals.hits += shard.hits.load(std::memory_order_relaxed);
        totals.misses += shard.misses.load(std::memory_order_relaxed);
        totals.stores += shard.stores.load(std::memory_order_relaxed);
        totals.storeHits +=
            shard.storeHits.load(std::memory_order_relaxed);
        totals.evictions +=
            shard.evictions.load(std::memory_order_relaxed);
        totals.trackedKeys += shard.keys.size();
        totals.missCostNs += shard.missCostNs;
        totals.storeCostNs += shard.storeCostNs;
        totals.seqlockHits +=
            shard.seqlockHits.load(std::memory_order_relaxed);
        totals.seqlockRetries +=
            shard.seqlockRetries.load(std::memory_order_relaxed);
        totals.lockedFallbacks +=
            shard.lockedFallbacks.load(std::memory_order_relaxed);
        totals.backendFetches +=
            shard.backendFetches.load(std::memory_order_relaxed);
        totals.coalescedMisses +=
            shard.coalescedMisses.load(std::memory_order_relaxed);
    }
    return totals;
}

void
CacheService::exportMetrics(MetricRegistry &registry) const
{
    const ServeTotals totals = this->totals();
    registry.setCounter("serve.gets", totals.gets);
    registry.setCounter("serve.hits", totals.hits);
    registry.setCounter("serve.misses", totals.misses);
    registry.setCounter("serve.stores", totals.stores);
    registry.setCounter("serve.store_hits", totals.storeHits);
    registry.setCounter("serve.evictions", totals.evictions);
    registry.setCounter("serve.tracked_keys", totals.trackedKeys);
    registry.setCounter(
        "serve.miss_cost_ns",
        static_cast<std::uint64_t>(totals.missCostNs));
    registry.setCounter(
        "serve.store_cost_ns",
        static_cast<std::uint64_t>(totals.storeCostNs));
    registry.setCounter("serve.shards", config_.shards);
    registry.setCounter("serve.seqlock_hits", totals.seqlockHits);
    registry.setCounter("serve.seqlock_retries",
                        totals.seqlockRetries);
    registry.setCounter("serve.locked_fallbacks",
                        totals.lockedFallbacks);
    registry.setCounter("serve.backend_fetches",
                        totals.backendFetches);
    registry.setCounter("serve.coalesced_misses",
                        totals.coalescedMisses);

    RunningStat ewma;
    for (const auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const auto &[key, state] : shard.keys) {
            (void)key;
            ewma.add(state.ewmaNs);
        }
    }
    registry.mergeStat("serve.key_ewma_ns", ewma);
}

void
CacheService::checkInvariants() const
{
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard &shard = *shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.model.checkInvariants();
        if (shard.inflight.size() != 0)
            throw InvariantError(
                "serve shard " + std::to_string(s) + ": " +
                std::to_string(shard.inflight.size()) +
                " in-flight fetches in a quiescent service");
        const CacheGeometry &geom = shard.model.geometry();
        for (std::uint32_t set = 0; set < geom.numSets(); ++set) {
            for (std::uint32_t way = 0; way < geom.assoc(); ++way) {
                if (!shard.model.isValid(set, static_cast<int>(way)))
                    continue;
                const Addr tag =
                    shard.model.tagAt(set, static_cast<int>(way));
                const Addr key =
                    (tag << geom.setBits()) | set;
                if (shard.keys.find(key) == shard.keys.end())
                    throw InvariantError(
                        "serve shard " + std::to_string(s) +
                        ": resident key " + std::to_string(key) +
                        " has no latency estimate");
            }
        }
    }
}

} // namespace csr::serve
