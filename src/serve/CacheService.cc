#include "serve/CacheService.h"

#include <utility>

#include "robust/Errors.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Telemetry.h"
#include "util/MathUtil.h"
#include "util/Random.h"

namespace csr::serve
{

/**
 * One shard: a CacheModel + policy behind a mutex, the per-(set, way)
 * value store, and the per-key latency estimates.
 */
struct CacheService::Shard
{
    Shard(const CacheGeometry &geom, PolicyPtr policy)
        : model(geom, std::move(policy)),
          values(static_cast<std::size_t>(geom.numSets()) * geom.assoc(),
                 0)
    {
    }

    /** Per-key backend-latency estimate (the online cost model). */
    struct KeyState
    {
        double ewmaNs = 0.0;
        std::uint64_t samples = 0;
    };

    std::size_t
    idx(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) * model.geometry().assoc() +
               static_cast<std::size_t>(way);
    }

    std::mutex mutex;
    CacheModel model;
    std::vector<std::uint64_t> values;
    std::unordered_map<Addr, KeyState> keys;

    std::uint64_t gets = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t evictions = 0;
    double missCostNs = 0.0;
    double storeCostNs = 0.0;

    /** Fold a measured latency into the key's EWMA. */
    void
    observe(KeyState &state, double latency_ns, double alpha)
    {
        state.ewmaNs = state.samples == 0
                           ? latency_ns
                           : alpha * latency_ns +
                                 (1.0 - alpha) * state.ewmaNs;
        ++state.samples;
    }
};

CacheService::CacheService(const ServeConfig &config, Backend &backend)
    : config_(config), backend_(backend)
{
    if (config_.shards == 0 || !isPow2(config_.shards))
        throw ConfigError("shard count (" +
                          std::to_string(config_.shards) +
                          ") must be a power of two");
    if (config_.ewmaAlpha <= 0.0 || config_.ewmaAlpha > 1.0)
        throw ConfigError("EWMA alpha must be in (0,1], got " +
                          std::to_string(config_.ewmaAlpha));
    if (config_.policy == PolicyKind::Opt ||
        config_.policy == PolicyKind::CostOpt)
        throw ConfigError("offline oracle policies cannot drive an "
                          "online service (pick one of lru random lfu "
                          "gd bcl dcl acl)");

    // Throws CacheGeometryError naming the bad parameter.
    const CacheGeometry geom(config_.shardBytes, config_.assoc,
                             config_.blockBytes);
    shardShift_ =
        64u - static_cast<unsigned>(floorLog2(config_.shards));

    shards_.reserve(config_.shards);
    for (unsigned s = 0; s < config_.shards; ++s) {
        // Decorrelate any stochastic policy state across shards while
        // keeping it a pure function of the configured seed.
        PolicyParams params = config_.policyParams;
        params.seed = hashMix64(params.seed + s + 1);
        shards_.push_back(std::make_unique<Shard>(
            geom, makePolicy(config_.policy, geom, params)));
    }
}

CacheService::~CacheService() = default;

unsigned
CacheService::shardOf(Addr key) const
{
    if (config_.shards == 1)
        return 0;
    return static_cast<unsigned>(hashMix64(key) >> shardShift_);
}

CacheService::Shard &
CacheService::shardFor(Addr key)
{
    return *shards_[shardOf(key)];
}

std::string
CacheService::policyName() const
{
    return shards_[0]->model.policy()->name();
}

ServeOpResult
CacheService::get(Addr key)
{
    Shard &shard = shardFor(key);
    const CacheGeometry &geom = shard.model.geometry();
    const auto set =
        static_cast<std::uint32_t>(key & (geom.numSets() - 1));
    const Addr tag = key >> geom.setBits();

    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    {
        CSR_TRACE_SPAN("serve", "shard.lock_wait");
        lock.lock();
    }
    ++shard.gets;

    const int way = shard.model.access(set, tag);
    if (way != kInvalidWay) {
        ++shard.hits;
        ServeOpResult result;
        result.hit = true;
        result.value = shard.values[shard.idx(set, way)];
        return result;
    }

    ++shard.misses;
    Shard::KeyState &state = shard.keys[key];
    BackendResult fetched;
    {
        CSR_TRACE_SPAN("serve", "backend.fetch");
        fetched = backend_.fetch(key, state.samples);
    }
    shard.observe(state, fetched.latencyNs, config_.ewmaAlpha);
    shard.missCostNs += fetched.latencyNs;

    const int filled = shard.model.fillVictimOrFree(
        set, tag, state.ewmaNs, 0, [&](int, Addr, std::uint32_t) {
            ++shard.evictions;
            CSR_TRACE_INSTANT("serve", "evict");
        });
    shard.values[shard.idx(set, filled)] = fetched.value;

    ServeOpResult result;
    result.hit = false;
    result.value = fetched.value;
    result.backendNs = fetched.latencyNs;
    return result;
}

ServeOpResult
CacheService::put(Addr key, std::uint64_t value)
{
    Shard &shard = shardFor(key);
    const CacheGeometry &geom = shard.model.geometry();
    const auto set =
        static_cast<std::uint32_t>(key & (geom.numSets() - 1));
    const Addr tag = key >> geom.setBits();

    std::unique_lock<std::mutex> lock(shard.mutex, std::defer_lock);
    {
        CSR_TRACE_SPAN("serve", "shard.lock_wait");
        lock.lock();
    }
    ++shard.stores;

    Shard::KeyState &state = shard.keys[key];
    BackendResult stored;
    {
        CSR_TRACE_SPAN("serve", "backend.store");
        stored = backend_.store(key, value, state.samples);
    }
    // A write-through round trip is a fresh observation of this key's
    // backend latency, so it refreshes the cost estimate too.
    shard.observe(state, stored.latencyNs, config_.ewmaAlpha);
    shard.storeCostNs += stored.latencyNs;

    ServeOpResult result;
    result.value = value;
    result.backendNs = stored.latencyNs;

    const int way = shard.model.access(set, tag);
    if (way != kInvalidWay) {
        // Resident: refresh the value and push the new prediction to
        // the policy -- the online analogue of the paper's dynamic
        // cost updates (CacheModel::updateCost).
        ++shard.storeHits;
        shard.values[shard.idx(set, way)] = value;
        shard.model.updateCost(set, way, state.ewmaNs);
        result.hit = true;
        return result;
    }

    // Write-allocate, so subsequent reads of a written key hit.
    const int filled = shard.model.fillVictimOrFree(
        set, tag, state.ewmaNs, 0, [&](int, Addr, std::uint32_t) {
            ++shard.evictions;
            CSR_TRACE_INSTANT("serve", "evict");
        });
    shard.values[shard.idx(set, filled)] = value;
    result.hit = false;
    return result;
}

ServeTotals
CacheService::totals() const
{
    ServeTotals totals;
    for (const auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        totals.gets += shard.gets;
        totals.hits += shard.hits;
        totals.misses += shard.misses;
        totals.stores += shard.stores;
        totals.storeHits += shard.storeHits;
        totals.evictions += shard.evictions;
        totals.trackedKeys += shard.keys.size();
        totals.missCostNs += shard.missCostNs;
        totals.storeCostNs += shard.storeCostNs;
    }
    return totals;
}

void
CacheService::exportMetrics(MetricRegistry &registry) const
{
    const ServeTotals totals = this->totals();
    registry.setCounter("serve.gets", totals.gets);
    registry.setCounter("serve.hits", totals.hits);
    registry.setCounter("serve.misses", totals.misses);
    registry.setCounter("serve.stores", totals.stores);
    registry.setCounter("serve.store_hits", totals.storeHits);
    registry.setCounter("serve.evictions", totals.evictions);
    registry.setCounter("serve.tracked_keys", totals.trackedKeys);
    registry.setCounter(
        "serve.miss_cost_ns",
        static_cast<std::uint64_t>(totals.missCostNs));
    registry.setCounter(
        "serve.store_cost_ns",
        static_cast<std::uint64_t>(totals.storeCostNs));
    registry.setCounter("serve.shards", config_.shards);

    RunningStat ewma;
    for (const auto &shard_ptr : shards_) {
        Shard &shard = *shard_ptr;
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const auto &[key, state] : shard.keys) {
            (void)key;
            ewma.add(state.ewmaNs);
        }
    }
    registry.mergeStat("serve.key_ewma_ns", ewma);
}

void
CacheService::checkInvariants() const
{
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard &shard = *shards_[s];
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.model.checkInvariants();
        const CacheGeometry &geom = shard.model.geometry();
        for (std::uint32_t set = 0; set < geom.numSets(); ++set) {
            for (std::uint32_t way = 0; way < geom.assoc(); ++way) {
                if (!shard.model.isValid(set, static_cast<int>(way)))
                    continue;
                const Addr tag =
                    shard.model.tagAt(set, static_cast<int>(way));
                const Addr key =
                    (tag << geom.setBits()) | set;
                if (shard.keys.find(key) == shard.keys.end())
                    throw InvariantError(
                        "serve shard " + std::to_string(s) +
                        ": resident key " + std::to_string(key) +
                        " has no latency estimate");
            }
        }
    }
}

} // namespace csr::serve
