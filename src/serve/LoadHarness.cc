#include "serve/LoadHarness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <thread>
#include <vector>

#include "replay/Format.h"
#include "replay/TraceReader.h"
#include "robust/Errors.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Telemetry.h"
#include "util/CliArgs.h"
#include "util/Random.h"
#include "util/ThreadPool.h"

namespace csr::serve
{

namespace
{

/** Per-worker accumulators, merged after the pool drains. */
struct WorkerOutput
{
    WorkerOutput(double hist_max_ns, std::size_t buckets)
        : opLatencyNs(0.0, hist_max_ns, buckets),
          missLatencyNs(0.0, hist_max_ns, buckets)
    {
    }

    Histogram opLatencyNs;
    Histogram missLatencyNs;
};

/** Full precision, so bit-identical doubles print identically (the
 *  CI determinism check diffs this output across worker counts). */
std::string
numFull(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
numShort(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

std::uint64_t
harnessPayload(std::uint64_t seed, Addr key)
{
    return hashMix64(key + 0x9E3779B97F4A7C15ull * (seed + 1));
}

HarnessConfig
HarnessConfig::fromArgs(const CliArgs &args)
{
    HarnessConfig config;
    config.replayPath = args.get("replay", "");
    // Replay runs default to the whole trace; synthetic runs need an
    // explicit length (with its usual default).
    config.ops = args.getUInt(
        "ops", config.replayPath.empty() ? config.ops : 0);
    config.workers = static_cast<unsigned>(args.getUInt("workers", 1));
    config.targetQps = args.getDouble("qps", 0.0);
    config.seed = args.seed(1);
    config.backendIsReal = args.has("spin");

    const std::string affinity = args.get("affinity", "shard");
    if (affinity == "shard")
        config.shardAffinity = true;
    else if (affinity == "free")
        config.shardAffinity = false;
    else
        throw ConfigError("unknown affinity '" + affinity +
                          "' (valid: shard free)");

    config.mix.dist = parseKeyDist(args.get("workload", "zipf"));
    config.mix.numKeys = args.getUInt("keys", config.mix.numKeys);
    config.mix.zipfTheta =
        args.getDouble("zipf-theta", config.mix.zipfTheta);
    config.mix.hotFraction =
        args.getDouble("hot-frac", config.mix.hotFraction);
    config.mix.hotProbability =
        args.getDouble("hot-prob", config.mix.hotProbability);
    config.mix.writeFraction =
        args.getDouble("write-frac", config.mix.writeFraction);
    config.validate();
    return config;
}

void
HarnessConfig::validate() const
{
    if (histBuckets == 0)
        throw ConfigError("latency histogram needs at least one bucket");
    if (histMaxNs <= 0.0)
        throw ConfigError("latency histogram upper edge must be > 0");
    if (targetQps < 0.0)
        throw ConfigError("target QPS must be non-negative");
}

TextTable
HarnessResult::summaryTable(const std::string &title) const
{
    // Deterministic fields only -- nothing wall-clock-derived, so the
    // rendered table is byte-identical across worker counts under
    // shard affinity.
    TextTable table(title);
    table.setHeader({"metric", "value"});
    table.addRow({"ops", TextTable::count(ops)});
    table.addRow({"gets", TextTable::count(totals.gets)});
    table.addRow({"hits", TextTable::count(totals.hits)});
    table.addRow({"misses", TextTable::count(totals.misses)});
    table.addRow({"hit ratio %", TextTable::num(totals.hitRatio() * 100.0)});
    table.addRow({"stores", TextTable::count(totals.stores)});
    table.addRow({"store hits", TextTable::count(totals.storeHits)});
    table.addRow({"evictions", TextTable::count(totals.evictions)});
    table.addRow({"tracked keys", TextTable::count(totals.trackedKeys)});
    table.addRow(
        {"miss cost ms", TextTable::num(totals.missCostNs / 1e6, 3)});
    table.addRow(
        {"store cost ms", TextTable::num(totals.storeCostNs / 1e6, 3)});
    return table;
}

TextTable
HarnessResult::timingTable() const
{
    TextTable table("timing (wall-clock; varies run to run)");
    table.setHeader({"metric", "value"});
    table.addRow({"workers", TextTable::count(workers)});
    table.addRow({"wall s", TextTable::num(wallSec, 3)});
    table.addRow({"qps", TextTable::num(qps, 0)});
    table.addRow(
        {"op latency p50 us", TextTable::num(opLatencyNs.percentile(0.50) / 1e3, 2)});
    table.addRow(
        {"op latency p90 us", TextTable::num(opLatencyNs.percentile(0.90) / 1e3, 2)});
    table.addRow(
        {"op latency p99 us", TextTable::num(opLatencyNs.percentile(0.99) / 1e3, 2)});
    table.addRow(
        {"miss cost p99 us", TextTable::num(missLatencyNs.percentile(0.99) / 1e3, 2)});
    return table;
}

void
HarnessResult::writeJsonObject(std::ostream &os,
                               const std::string &policy,
                               const std::string &workload,
                               int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string in = pad + "  ";
    const std::string in2 = in + "  ";
    os << "{\n"
       << in << "\"policy\": \"" << policy << "\",\n"
       << in << "\"workload\": \"" << workload << "\",\n"
       << in << "\"ops\": " << ops << ",\n"
       << in << "\"workers\": " << workers << ",\n"
       << in << "\"deterministic\": {\n"
       << in2 << "\"gets\": " << totals.gets << ",\n"
       << in2 << "\"hits\": " << totals.hits << ",\n"
       << in2 << "\"misses\": " << totals.misses << ",\n"
       << in2 << "\"hitRatio\": " << numFull(totals.hitRatio()) << ",\n"
       << in2 << "\"stores\": " << totals.stores << ",\n"
       << in2 << "\"storeHits\": " << totals.storeHits << ",\n"
       << in2 << "\"evictions\": " << totals.evictions << ",\n"
       << in2 << "\"trackedKeys\": " << totals.trackedKeys << ",\n"
       << in2 << "\"missCostNs\": " << numFull(totals.missCostNs) << ",\n"
       << in2 << "\"storeCostNs\": " << numFull(totals.storeCostNs) << "\n"
       << in << "},\n"
       // Deterministic under --hitpath locked (all zero except
       // backendFetches == misses); scheduling-dependent under
       // seqlock, hence a block of its own.
       << in << "\"concurrency\": {\n"
       << in2 << "\"seqlockHits\": " << totals.seqlockHits << ",\n"
       << in2 << "\"seqlockRetries\": " << totals.seqlockRetries << ",\n"
       << in2 << "\"lockedFallbacks\": " << totals.lockedFallbacks << ",\n"
       << in2 << "\"logFullFallbacks\": " << totals.logFullFallbacks << ",\n"
       << in2 << "\"backendFetches\": " << totals.backendFetches << ",\n"
       << in2 << "\"coalescedMisses\": " << totals.coalescedMisses << ",\n"
       // Robustness counters: all zero on a healthy, unshed run with
       // the backend behaving, so the deterministic baselines carry
       // them as zeroes.
       << in2 << "\"shedOps\": " << totals.shedOps << ",\n"
       << in2 << "\"breakerOpens\": " << totals.breakerOpens << ",\n"
       << in2 << "\"breakerFastFails\": " << totals.breakerFastFails << ",\n"
       << in2 << "\"staleServes\": " << totals.staleServes << "\n"
       << in << "},\n"
       << in << "\"timing\": {\n"
       << in2 << "\"wallSec\": " << numShort(wallSec) << ",\n"
       << in2 << "\"qps\": " << numShort(qps) << ",\n"
       << in2 << "\"opLatencyNs\": {\"p50\": "
       << numShort(opLatencyNs.percentile(0.50))
       << ", \"p90\": " << numShort(opLatencyNs.percentile(0.90))
       << ", \"p99\": " << numShort(opLatencyNs.percentile(0.99)) << "},\n"
       << in2 << "\"missLatencyNs\": {\"p50\": "
       << numShort(missLatencyNs.percentile(0.50))
       << ", \"p99\": " << numShort(missLatencyNs.percentile(0.99))
       << "}\n"
       << in << "}\n"
       << pad << "}";
}

void
HarnessResult::exportMetrics(MetricRegistry &registry) const
{
    registry.setCounter("serve.harness.ops", ops);
    registry.setCounter("serve.harness.workers", workers);
    registry.recordTimerSec("serve.harness.wall", wallSec);
    registry.stat("serve.harness.qps").add(qps);
    registry.mergeHistogram("serve.op_latency_ns", opLatencyNs);
    registry.mergeHistogram("serve.miss_latency_ns", missLatencyNs);
}

HarnessResult
runLoad(CacheService &service, const HarnessConfig &config)
{
    config.validate();

    const unsigned workers =
        config.workers ? config.workers : ThreadPool::defaultThreads();

    // Generate (or decode) the whole op stream up front, then
    // partition it.  With shard affinity every op lands with the
    // worker that owns its shard, so per-shard op order is the global
    // stream order for any worker count; the strided split instead
    // makes workers contend on the shard locks.
    std::uint64_t total_ops = config.ops;
    std::vector<std::vector<Op>> plan(workers);
    const auto place = [&](std::uint64_t i, const Op &op) {
        const std::size_t w =
            config.shardAffinity
                ? service.shardOf(op.key) % workers
                : static_cast<std::size_t>(i) % workers;
        plan[w].push_back(op);
    };
    if (config.replayPath.empty()) {
        CSR_TRACE_SPAN("serve", "harness.generate");
        for (auto &ops : plan)
            ops.reserve(
                static_cast<std::size_t>(total_ops / workers + 1));
        KeyGenerator gen(config.mix, config.seed);
        for (std::uint64_t i = 0; i < total_ops; ++i)
            place(i, gen.next());
    } else {
        CSR_TRACE_SPAN("serve", "harness.load_trace");
        replay::TraceReader reader(config.replayPath);
        total_ops = config.ops
                        ? std::min(config.ops, reader.recordCount())
                        : reader.recordCount();
        for (auto &ops : plan)
            ops.reserve(
                static_cast<std::size_t>(total_ops / workers + 1));
        replay::ReplayBlock block;
        std::uint64_t i = 0;
        for (std::uint64_t b = 0;
             b < reader.blockCount() && i < total_ops; ++b) {
            reader.readBlock(b, block);
            for (std::size_t r = 0;
                 r < block.size() && i < total_ops; ++r, ++i) {
                Op op;
                op.key = block.key[r];
                op.write = block.op[r] ==
                           static_cast<std::uint8_t>(
                               replay::TraceOp::Set);
                op.del = block.op[r] ==
                         static_cast<std::uint8_t>(
                             replay::TraceOp::Del);
                place(i, op);
            }
        }
    }

    std::vector<WorkerOutput> outputs;
    outputs.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        outputs.emplace_back(config.histMaxNs, config.histBuckets);

    // Closed-loop pacing: each worker owns a 1/workers slice of the
    // aggregate target rate and spaces its ops on a fixed schedule
    // anchored at its own start (no coordination, no drift).
    const double interval_sec =
        config.targetQps > 0.0
            ? static_cast<double>(workers) / config.targetQps
            : 0.0;

    const auto worker_fn = [&](std::size_t w) {
        CSR_TRACE_SPAN_DYN("serve", "worker " + std::to_string(w));
        WorkerOutput &out = outputs[w];
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t n = 0;
        for (const Op &op : plan[w]) {
            if (interval_sec > 0.0) {
                const auto deadline =
                    start + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(
                                    static_cast<double>(n) *
                                    interval_sec));
                std::this_thread::sleep_until(deadline);
            }
            const auto t0 = std::chrono::steady_clock::now();
            ServeOpResult result;
            if (op.del)
                service.del(op.key); // invalidation; no backend
            else
                result = op.write
                             ? service.put(op.key,
                                           harnessPayload(config.seed,
                                                          op.key))
                             : service.get(op.key);
            const double real_ns =
                std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            // Simulated backend latency is modelled, not slept, so it
            // is added on top of the measured in-cache time -- unless
            // the backend spins, in which case it is already in there.
            const double op_ns =
                real_ns +
                (config.backendIsReal ? 0.0 : result.backendNs);
            out.opLatencyNs.add(op_ns);
            if (!op.write && !op.del && !result.hit)
                out.missLatencyNs.add(result.backendNs);
            ++n;
        }
    };

    WallTimer wall;
    if (workers == 1) {
        worker_fn(0);
    } else {
        ThreadPool pool(workers);
        parallelFor(pool, workers, worker_fn);
    }

    HarnessResult result(config.histMaxNs, config.histBuckets);
    result.wallSec = wall.elapsedSec();
    result.ops = total_ops;
    result.workers = workers;
    result.qps = result.wallSec > 0.0
                     ? static_cast<double>(total_ops) / result.wallSec
                     : 0.0;
    for (const WorkerOutput &out : outputs) {
        result.opLatencyNs.merge(out.opLatencyNs);
        result.missLatencyNs.merge(out.missLatencyNs);
    }
    result.totals = service.totals();
    return result;
}

} // namespace csr::serve
