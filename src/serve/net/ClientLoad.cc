#include "serve/net/ClientLoad.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "replay/Format.h"
#include "replay/TraceReader.h"
#include "robust/Errors.h"
#include "serve/net/NetCommon.h"
#include "serve/net/RespClient.h"
#include "serve/net/Server.h"
#include "telemetry/Telemetry.h"
#include "util/CliArgs.h"
#include "util/MathUtil.h"
#include "util/Random.h"

namespace csr::serve::net
{

namespace
{

/** Per-connection accumulators, merged after the threads join. */
struct ConnOutput
{
    ConnOutput(double hist_max_ns, std::size_t buckets)
        : opLatencyNs(0.0, hist_max_ns, buckets)
    {
    }

    std::uint64_t gets = 0;
    std::uint64_t sets = 0;
    std::uint64_t dels = 0;
    std::uint64_t errors = 0;
    std::uint64_t busy = 0;
    std::uint64_t mismatches = 0;
    Histogram opLatencyNs;
};

} // namespace

unsigned
wireShardOf(Addr key, unsigned shards)
{
    if (shards == 1)
        return 0;
    const unsigned shift =
        64u - static_cast<unsigned>(floorLog2(shards));
    return static_cast<unsigned>(hashMix64(key) >> shift);
}

ClientConfig
ClientConfig::fromArgs(const CliArgs &args)
{
    ClientConfig config;
    const auto [host, port] = parseHostPort(args.get("connect", ""));
    config.host = host;
    config.port = port;
    config.connections = static_cast<unsigned>(
        args.getUInt("connections", config.connections));
    config.pipeline = args.getUInt("pipeline", config.pipeline);
    config.timeoutSec =
        args.getDouble("net-timeout", config.timeoutSec);
    config.serverShards = static_cast<unsigned>(
        args.getUInt("shards", config.serverShards));
    config.harness = HarnessConfig::fromArgs(args);
    config.validate();
    return config;
}

void
ClientConfig::validate() const
{
    if (port == 0)
        throw ConfigError("--connect needs an explicit port (the "
                          "server prints its resolved one)");
    if (connections == 0)
        throw ConfigError("--connections must be at least 1");
    if (pipeline == 0)
        throw ConfigError("--pipeline must be at least 1");
    if (timeoutSec < 0.0)
        throw ConfigError("--net-timeout must be non-negative");
    // Plumb-through check: SO_RCVTIMEO rounds a positive-but-tiny
    // bound down to zero microseconds, which the kernel reads as
    // "no timeout" -- the exact opposite of what was asked for.
    if (timeoutSec > 0.0 && timeoutSec < 1.0e-3)
        throw ConfigError(
            "--net-timeout must be 0 (unbounded) or >= 0.001 s; " +
            std::to_string(timeoutSec) +
            " would silently become unbounded");
    if (serverShards == 0 ||
        (serverShards & (serverShards - 1)) != 0)
        throw ConfigError("--shards must be a power of two (it is "
                          "the wire partition key)");
    harness.validate();
}

ClientResult
runClientLoad(const ClientConfig &config)
{
    config.validate();

    // Same stream, same order as runLoad() -- then partitioned by
    // owning server shard so each shard's subsequence arrives in
    // global stream order over exactly one connection.
    std::uint64_t total_ops = config.harness.ops;
    std::vector<std::vector<Op>> plan(config.connections);
    const auto place = [&](const Op &op) {
        plan[wireShardOf(op.key, config.serverShards) %
             config.connections]
            .push_back(op);
    };
    if (config.harness.replayPath.empty()) {
        CSR_TRACE_SPAN("net", "client.generate");
        KeyGenerator gen(config.harness.mix, config.harness.seed);
        for (std::uint64_t i = 0; i < total_ops; ++i)
            place(gen.next());
    } else {
        CSR_TRACE_SPAN("net", "client.load_trace");
        replay::TraceReader reader(config.harness.replayPath);
        total_ops =
            config.harness.ops
                ? std::min(config.harness.ops, reader.recordCount())
                : reader.recordCount();
        replay::ReplayBlock block;
        std::uint64_t i = 0;
        for (std::uint64_t b = 0;
             b < reader.blockCount() && i < total_ops; ++b) {
            reader.readBlock(b, block);
            for (std::size_t r = 0;
                 r < block.size() && i < total_ops; ++r, ++i) {
                Op op;
                op.key = block.key[r];
                op.write = block.op[r] ==
                           static_cast<std::uint8_t>(
                               replay::TraceOp::Set);
                op.del = block.op[r] ==
                         static_cast<std::uint8_t>(
                             replay::TraceOp::Del);
                place(op);
            }
        }
    }

    std::vector<ConnOutput> outputs;
    outputs.reserve(config.connections);
    for (unsigned c = 0; c < config.connections; ++c)
        outputs.emplace_back(config.harness.histMaxNs,
                             config.harness.histBuckets);

    // Worker threads may throw (refused connect, timeout); the first
    // exception wins and is rethrown on the caller's thread.
    std::exception_ptr failure;
    std::atomic<bool> failed{false};

    const auto conn_fn = [&](std::size_t c) {
        CSR_TRACE_SPAN_DYN("net", "client conn " + std::to_string(c));
        using Clock = std::chrono::steady_clock;
        ConnOutput &out = outputs[c];
        RespClient client(config.host, config.port,
                          config.timeoutSec);
        std::deque<std::pair<char, Clock::time_point>> window;

        const auto drainOne = [&] {
            const RespClient::Reply reply = client.readReply();
            const auto [verb, sent_at] = window.front();
            window.pop_front();
            out.opLatencyNs.add(
                std::chrono::duration<double, std::nano>(
                    Clock::now() - sent_at)
                    .count());
            if (reply.isError()) {
                if (reply.text.rfind("BUSY", 0) == 0)
                    ++out.busy;
                else
                    ++out.errors;
                return;
            }
            // SET replies +OK, DEL replies :0/:1, GET replies a
            // non-null bulk (a replayed GET may legitimately miss a
            // deleted key, but the server still fetches and returns
            // it -- a null bulk is a protocol bug).
            const bool ok = verb == 'S'
                                ? reply.type == '+'
                                : verb == 'D'
                                      ? reply.type == ':'
                                      : (reply.type == '$' &&
                                         !reply.isNull);
            if (!ok)
                ++out.mismatches;
        };

        for (const Op &op : plan[c]) {
            char verb = 'G';
            if (op.del) {
                client.send({"DEL", std::to_string(op.key)});
                ++out.dels;
                verb = 'D';
            } else if (op.write) {
                client.send({"SET", std::to_string(op.key),
                             std::to_string(harnessPayload(
                                 config.harness.seed, op.key))});
                ++out.sets;
                verb = 'S';
            } else {
                client.send({"GET", std::to_string(op.key)});
                ++out.gets;
            }
            window.emplace_back(verb, Clock::now());
            client.flush();
            while (window.size() >= config.pipeline)
                drainOne();
        }
        client.flush();
        while (!window.empty())
            drainOne();
    };

    WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(config.connections);
    for (unsigned c = 0; c < config.connections; ++c) {
        threads.emplace_back([&, c] {
            try {
                conn_fn(c);
            } catch (...) {
                if (!failed.exchange(true))
                    failure = std::current_exception();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    if (failed.load())
        std::rethrow_exception(failure);

    ClientResult result(config.harness.histMaxNs,
                        config.harness.histBuckets);
    result.harness.wallSec = wall.elapsedSec();
    result.harness.ops = total_ops;
    result.harness.workers = config.connections;
    result.harness.qps =
        result.harness.wallSec > 0.0
            ? static_cast<double>(total_ops) /
                  result.harness.wallSec
            : 0.0;
    for (const ConnOutput &out : outputs) {
        result.harness.opLatencyNs.merge(out.opLatencyNs);
        result.sentGets += out.gets;
        result.sentSets += out.sets;
        result.sentDels += out.dels;
        result.errorReplies += out.errors;
        result.busyReplies += out.busy;
        result.typeMismatches += out.mismatches;
    }

    // The deterministic half of the report is the server's: INFO over
    // one more connection, parsed back into ServeTotals.
    RespClient info_client(config.host, config.port,
                           config.timeoutSec);
    const RespClient::Reply info = info_client.roundTrip({"INFO"});
    if (info.type != '$' || info.isNull)
        throw NetError("INFO did not return a bulk reply");
    result.harness.totals = parseInfoTotals(info.text);
    return result;
}

} // namespace csr::serve::net
