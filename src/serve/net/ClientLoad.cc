#include "serve/net/ClientLoad.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "robust/Errors.h"
#include "serve/net/NetCommon.h"
#include "serve/net/RespClient.h"
#include "serve/net/Server.h"
#include "telemetry/Telemetry.h"
#include "util/CliArgs.h"
#include "util/MathUtil.h"
#include "util/Random.h"

namespace csr::serve::net
{

namespace
{

/** Per-connection accumulators, merged after the threads join. */
struct ConnOutput
{
    ConnOutput(double hist_max_ns, std::size_t buckets)
        : opLatencyNs(0.0, hist_max_ns, buckets)
    {
    }

    std::uint64_t gets = 0;
    std::uint64_t sets = 0;
    std::uint64_t errors = 0;
    std::uint64_t busy = 0;
    std::uint64_t mismatches = 0;
    Histogram opLatencyNs;
};

} // namespace

unsigned
wireShardOf(Addr key, unsigned shards)
{
    if (shards == 1)
        return 0;
    const unsigned shift =
        64u - static_cast<unsigned>(floorLog2(shards));
    return static_cast<unsigned>(hashMix64(key) >> shift);
}

ClientConfig
ClientConfig::fromArgs(const CliArgs &args)
{
    ClientConfig config;
    const auto [host, port] = parseHostPort(args.get("connect", ""));
    config.host = host;
    config.port = port;
    config.connections = static_cast<unsigned>(
        args.getUInt("connections", config.connections));
    config.pipeline = args.getUInt("pipeline", config.pipeline);
    config.timeoutSec =
        args.getDouble("net-timeout", config.timeoutSec);
    config.serverShards = static_cast<unsigned>(
        args.getUInt("shards", config.serverShards));
    config.harness = HarnessConfig::fromArgs(args);
    config.validate();
    return config;
}

void
ClientConfig::validate() const
{
    if (port == 0)
        throw ConfigError("--connect needs an explicit port (the "
                          "server prints its resolved one)");
    if (connections == 0)
        throw ConfigError("--connections must be at least 1");
    if (pipeline == 0)
        throw ConfigError("--pipeline must be at least 1");
    if (timeoutSec < 0.0)
        throw ConfigError("--net-timeout must be non-negative");
    // Plumb-through check: SO_RCVTIMEO rounds a positive-but-tiny
    // bound down to zero microseconds, which the kernel reads as
    // "no timeout" -- the exact opposite of what was asked for.
    if (timeoutSec > 0.0 && timeoutSec < 1.0e-3)
        throw ConfigError(
            "--net-timeout must be 0 (unbounded) or >= 0.001 s; " +
            std::to_string(timeoutSec) +
            " would silently become unbounded");
    if (serverShards == 0 ||
        (serverShards & (serverShards - 1)) != 0)
        throw ConfigError("--shards must be a power of two (it is "
                          "the wire partition key)");
    harness.validate();
}

ClientResult
runClientLoad(const ClientConfig &config)
{
    config.validate();

    // Same stream, same order as runLoad() -- then partitioned by
    // owning server shard so each shard's subsequence arrives in
    // global stream order over exactly one connection.
    std::vector<std::vector<Op>> plan(config.connections);
    {
        CSR_TRACE_SPAN("net", "client.generate");
        KeyGenerator gen(config.harness.mix, config.harness.seed);
        for (std::uint64_t i = 0; i < config.harness.ops; ++i) {
            const Op op = gen.next();
            const std::size_t c =
                wireShardOf(op.key, config.serverShards) %
                config.connections;
            plan[c].push_back(op);
        }
    }

    std::vector<ConnOutput> outputs;
    outputs.reserve(config.connections);
    for (unsigned c = 0; c < config.connections; ++c)
        outputs.emplace_back(config.harness.histMaxNs,
                             config.harness.histBuckets);

    // Worker threads may throw (refused connect, timeout); the first
    // exception wins and is rethrown on the caller's thread.
    std::exception_ptr failure;
    std::atomic<bool> failed{false};

    const auto conn_fn = [&](std::size_t c) {
        CSR_TRACE_SPAN_DYN("net", "client conn " + std::to_string(c));
        using Clock = std::chrono::steady_clock;
        ConnOutput &out = outputs[c];
        RespClient client(config.host, config.port,
                          config.timeoutSec);
        std::deque<std::pair<bool, Clock::time_point>> window;

        const auto drainOne = [&] {
            const RespClient::Reply reply = client.readReply();
            const auto [was_write, sent_at] = window.front();
            window.pop_front();
            out.opLatencyNs.add(
                std::chrono::duration<double, std::nano>(
                    Clock::now() - sent_at)
                    .count());
            if (reply.isError()) {
                if (reply.text.rfind("BUSY", 0) == 0)
                    ++out.busy;
                else
                    ++out.errors;
            } else if (was_write
                           ? reply.type != '+'
                           : (reply.type != '$' || reply.isNull)) {
                ++out.mismatches;
            }
        };

        for (const Op &op : plan[c]) {
            if (op.write) {
                client.send({"SET", std::to_string(op.key),
                             std::to_string(harnessPayload(
                                 config.harness.seed, op.key))});
                ++out.sets;
            } else {
                client.send({"GET", std::to_string(op.key)});
                ++out.gets;
            }
            window.emplace_back(op.write, Clock::now());
            client.flush();
            while (window.size() >= config.pipeline)
                drainOne();
        }
        client.flush();
        while (!window.empty())
            drainOne();
    };

    WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(config.connections);
    for (unsigned c = 0; c < config.connections; ++c) {
        threads.emplace_back([&, c] {
            try {
                conn_fn(c);
            } catch (...) {
                if (!failed.exchange(true))
                    failure = std::current_exception();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    if (failed.load())
        std::rethrow_exception(failure);

    ClientResult result(config.harness.histMaxNs,
                        config.harness.histBuckets);
    result.harness.wallSec = wall.elapsedSec();
    result.harness.ops = config.harness.ops;
    result.harness.workers = config.connections;
    result.harness.qps =
        result.harness.wallSec > 0.0
            ? static_cast<double>(config.harness.ops) /
                  result.harness.wallSec
            : 0.0;
    for (const ConnOutput &out : outputs) {
        result.harness.opLatencyNs.merge(out.opLatencyNs);
        result.sentGets += out.gets;
        result.sentSets += out.sets;
        result.errorReplies += out.errors;
        result.busyReplies += out.busy;
        result.typeMismatches += out.mismatches;
    }

    // The deterministic half of the report is the server's: INFO over
    // one more connection, parsed back into ServeTotals.
    RespClient info_client(config.host, config.port,
                           config.timeoutSec);
    const RespClient::Reply info = info_client.roundTrip({"INFO"});
    if (info.type != '$' || info.isNull)
        throw NetError("INFO did not return a bulk reply");
    result.harness.totals = parseInfoTotals(info.text);
    return result;
}

} // namespace csr::serve::net
