/**
 * @file
 * A single-threaded epoll event loop (DESIGN.md section 3.7).
 *
 * One EventLoop == one worker thread == one epoll instance.  File
 * descriptors are registered with a callback that receives the ready
 * event mask; all callbacks run on the loop thread, so per-connection
 * state needs no locking.  The one cross-thread entry point is
 * post(): any thread may hand the loop a closure, which an eventfd
 * wakeup delivers to the loop thread's next iteration.  That is how
 * an asynchronous backend completion -- which may fire on an
 * arbitrary thread -- re-enters the connection that is waiting for
 * it without a single shared-state lock on the hot path.
 *
 * Handlers are held by shared_ptr during dispatch and looked up
 * fresh per event, so a handler may del() its own fd (closing a
 * connection from inside its read callback) while later events for
 * that fd are still queued in the same epoll_wait batch: the lookup
 * simply misses and the stale event is dropped.
 *
 * The loop also owns a hashed timer wheel (addTimer/cancelTimer,
 * loop-thread-only like add/mod/del): coarse 10ms ticks over 128
 * slots, which is plenty for connection idle/read deadlines and
 * chaos-injected accept delays -- none of which need sub-tick
 * precision.  The epoll_wait timeout tightens to the earliest armed
 * deadline so a timer never waits out the full idle period.
 */

#ifndef CSR_SERVE_NET_EVENTLOOP_H
#define CSR_SERVE_NET_EVENTLOOP_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace csr::serve::net
{

class EventLoop
{
  public:
    using FdHandler = std::function<void(std::uint32_t events)>;
    using TimerId = std::uint64_t;

    /** @throws NetError when epoll/eventfd creation fails. */
    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Register @p fd for @p events (EPOLLIN etc).  Loop thread
     *  only (or before run()).  @throws NetError. */
    void add(int fd, std::uint32_t events, FdHandler handler);

    /** Change @p fd's interest mask.  Loop thread only. */
    void mod(int fd, std::uint32_t events);

    /** Deregister @p fd (does not close it).  Loop thread only. */
    void del(int fd);

    /** Run @p fn on the loop thread at the next iteration.  Safe
     *  from any thread, including the loop thread itself (the
     *  closure still runs later, never reentrantly).  Closures
     *  posted after stop() run during the loop's final drain. */
    void post(std::function<void()> fn);

    /** Dispatch until stop().  Call from the owning thread. */
    void run();

    /** Ask run() to return (thread-safe, idempotent).  Pending
     *  posted closures are drained before it does. */
    void stop();

    /** True when called from inside run() on the loop thread. */
    bool inLoopThread() const;

    /**
     * Arm a one-shot timer: @p fn runs on the loop thread once at
     * least @p delay_ns have elapsed (10ms tick granularity).  Loop
     * thread only (or before run()); cross-thread callers go through
     * post().  The callback may arm further timers.  Returns an id
     * for cancelTimer(); ids are never reused.
     */
    TimerId addTimer(std::uint64_t delay_ns, std::function<void()> fn);

    /** Disarm @p id if it has not fired (loop thread only).  Unknown
     *  or already-fired ids are ignored. */
    void cancelTimer(TimerId id);

    /** Armed, not-yet-fired timer count (loop thread only; tests). */
    std::size_t pendingTimers() const { return timerCount_; }

  private:
    struct TimerEntry
    {
        TimerId id;
        std::uint64_t deadlineNs;
        std::function<void()> fn;
    };

    static constexpr std::size_t kWheelSlots = 128; // power of two
    static constexpr std::uint64_t kWheelTickNs = 10'000'000; // 10ms

    void wake();
    void drainPosted();
    void fireDueTimers(std::uint64_t now_ns);
    int epollTimeoutMs(std::uint64_t now_ns) const;

    int epollFd_ = -1;
    int wakeFd_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<std::thread::id> loopThread_{};
    std::mutex postMutex_;
    std::vector<std::function<void()>> posted_;
    std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;

    // Timer wheel state: loop-thread-only, no locks.
    std::array<std::vector<TimerEntry>, kWheelSlots> wheel_;
    TimerId nextTimerId_ = 1;
    std::size_t timerCount_ = 0;
    std::uint64_t wheelCursorTick_ = 0; ///< last tick fully fired
    std::uint64_t earliestDeadlineNs_ = 0; ///< 0 = no timers armed
};

} // namespace csr::serve::net

#endif // CSR_SERVE_NET_EVENTLOOP_H
