/**
 * @file
 * Network client mode of the load harness: replay the SAME
 * deterministic op stream an in-process run uses, but over RESP
 * connections to a remote NetServer.
 *
 * The comparability contract extends the harness's shard-affinity
 * discipline across the wire.  The op stream is a pure function of
 * (mix, seed) -- or of a recorded .csrt trace's bytes with --replay
 * (HarnessConfig::replayPath; Get/Set/Del records become
 * GET/SET/DEL commands); ops are partitioned over C connections by
 * OWNING SERVER SHARD (shard % C), each connection pipelines its
 * share in global stream order, and a connection's requests are
 * executed by the server in arrival order -- so every server shard
 * sees the same op subsequence in the same order as an in-process
 * run with the same flags, and the server's deterministic
 * ServeTotals (fetched via INFO at the end) are the ones `csrserve`
 * would print locally.  That requires the client's --shards and
 * --seed to match the server's, which the driver forwards.
 */

#ifndef CSR_SERVE_NET_CLIENTLOAD_H
#define CSR_SERVE_NET_CLIENTLOAD_H

#include <cstdint>
#include <string>

#include "serve/LoadHarness.h"

namespace csr::serve::net
{

/** Client-mode parameters. */
struct ClientConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Concurrent connections, each on its own thread. */
    unsigned connections = 2;
    /** In-flight request window per connection. */
    std::size_t pipeline = 64;
    /** Socket timeout per read/connect; 0 = unbounded. */
    double timeoutSec = 30.0;
    /** The server's shard count -- the partition key (must match the
     *  server for the determinism contract to hold). */
    unsigned serverShards = 8;
    /** Op stream (ops, seed, mix); workers/qps/affinity unused. */
    HarnessConfig harness;

    /**
     * Read --connect HOST:PORT --connections C --pipeline W plus the
     * shared workload flags (via HarnessConfig::fromArgs) and
     * --shards out of @p args.  validate()d.  @throws ConfigError.
     */
    static ClientConfig fromArgs(const CliArgs &args);

    /** @throws ConfigError on a zero port/connection/window. */
    void validate() const;
};

/** What a client-mode run produced. */
struct ClientResult
{
    /** totals come from the server's INFO; latency histograms are
     *  measured client-side (send-to-reply, queuing included). */
    HarnessResult harness;
    std::uint64_t sentGets = 0;
    std::uint64_t sentSets = 0;
    std::uint64_t sentDels = 0;
    /** '-ERR' replies (0 in a healthy run). */
    std::uint64_t errorReplies = 0;
    /** '-BUSY' replies -- the server shed those commands under
     *  overload; counted apart from errors because the client
     *  contract says they are retryable, not broken. */
    std::uint64_t busyReplies = 0;
    /** Replies whose type did not match the verb (0 expected). */
    std::uint64_t typeMismatches = 0;

    ClientResult(double hist_max_ns, std::size_t buckets)
        : harness(hist_max_ns, buckets)
    {
    }

    /** sentGets == server gets && sentSets == server stores: true
     *  exactly when this client was the fresh server's only
     *  traffic -- the loopback CI check. */
    bool
    consistentWithServer() const
    {
        return sentGets == harness.totals.gets &&
               sentSets == harness.totals.stores;
    }
};

/** The shard the server will route @p key to (replicates
 *  CacheService::shardOf for a @p shards -shard server). */
unsigned wireShardOf(Addr key, unsigned shards);

/**
 * Run @p config's op stream against the remote server.  @throws
 * ConfigError / NetError / TimeoutError.
 */
ClientResult runClientLoad(const ClientConfig &config);

} // namespace csr::serve::net

#endif // CSR_SERVE_NET_CLIENTLOAD_H
