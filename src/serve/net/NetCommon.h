/**
 * @file
 * Small shared pieces of the csr::serve::net layer: an owning file
 * descriptor, errno formatting, and the "host:port" listen-spec
 * grammar shared by --listen and --connect.
 */

#ifndef CSR_SERVE_NET_NETCOMMON_H
#define CSR_SERVE_NET_NETCOMMON_H

#include <cstdint>
#include <string>
#include <utility>

namespace csr::serve::net
{

/** RAII file descriptor (close on destruction, move-only). */
class ScopedFd
{
  public:
    ScopedFd() = default;
    explicit ScopedFd(int fd) : fd_(fd) {}
    ~ScopedFd() { reset(); }

    ScopedFd(ScopedFd &&other) noexcept : fd_(other.release()) {}

    ScopedFd &
    operator=(ScopedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }

    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        return std::exchange(fd_, -1);
    }

    /** Close now (idempotent). */
    void reset();

  private:
    int fd_ = -1;
};

/** "errno 111 (Connection refused)" for error messages. */
std::string errnoText(int err);

/**
 * Parse "host:port" or ":port" (host defaults to 127.0.0.1).  The
 * host must be an IPv4 dotted quad -- name resolution is out of
 * scope for a loopback-first tool.  @throws ConfigError naming the
 * accepted grammar.
 */
std::pair<std::string, std::uint16_t>
parseHostPort(const std::string &spec);

/** Set O_NONBLOCK on @p fd.  @throws NetError. */
void setNonBlocking(int fd);

} // namespace csr::serve::net

#endif // CSR_SERVE_NET_NETCOMMON_H
