/**
 * @file
 * csr::serve::net::NetServer -- the RESP front door of a
 * CacheService (DESIGN.md section 3.7).
 *
 * N workers, each a thread running its own EventLoop, each with its
 * OWN listening socket bound to the same address via SO_REUSEPORT:
 * the kernel load-balances accepts across them, so there is no
 * shared acceptor, no accept mutex, and no cross-worker handoff --
 * a connection lives its whole life on the worker that accepted it.
 * The only cross-thread traffic is an asynchronous backend
 * completion posting itself back to its connection's loop.
 *
 * Commands map onto the service surface:
 *
 *   GET k    -> CacheService::getAsync  (read-through; never nil)
 *   SET k v  -> CacheService::put       (write-through; v = uint64)
 *   DEL k    -> CacheService::del       (:1 resident, :0 not)
 *   PING     -> +PONG
 *   INFO     -> bulk of "key:value" lines: ServeTotals + net stats
 *
 * The seqlock/striped hit path is untouched: the server is a caller
 * of CacheService like any other, so every determinism and
 * concurrency property of the in-process service carries over to
 * the wire verbatim.
 */

#ifndef CSR_SERVE_NET_SERVER_H
#define CSR_SERVE_NET_SERVER_H

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/CacheService.h"
#include "serve/net/Connection.h"
#include "serve/net/NetCommon.h"

namespace csr
{
class MetricRegistry;
}

namespace csr::serve::net
{

/** Listener + worker-pool parameters. */
struct NetServerConfig
{
    std::string host = "127.0.0.1";
    /** 0 = ephemeral (tests bind port 0, then read port()). */
    std::uint16_t port = 0;
    /** Event-loop threads; 0 = one per hardware thread. */
    unsigned workers = 1;
    int backlog = 128;
    /** Live-connection cap; accepts past it are refused with
     *  "-ERR server at capacity" (0 = unlimited). */
    std::size_t maxConns = 0;
    NetTuning tuning;
    /** Deterministic wire chaos (rate 0 = off). */
    ChaosConfig chaos;

    /**
     * Read --listen HOST:PORT, --net-workers N, --max-conns N, the
     * --idle-timeout-ms / --read-deadline-ms / --shed-pending-ops /
     * --shed-write-bytes tuning knobs, and the --chaos-* family out
     * of @p args (absent --listen leaves host/port at their defaults
     * -- the driver decides whether that means "no server").  The
     * result is validate()d.  @throws ConfigError.
     */
    static NetServerConfig fromArgs(const CliArgs &args);

    /** @throws ConfigError on a zero bound or absurd worker count. */
    void validate() const;
};

/** Aggregated view of every worker's counters. */
struct NetStats
{
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsClosed = 0;
    std::uint64_t cmdGet = 0;
    std::uint64_t cmdSet = 0;
    std::uint64_t cmdDel = 0;
    std::uint64_t cmdPing = 0;
    std::uint64_t cmdInfo = 0;
    std::uint64_t errorReplies = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    std::uint64_t backpressureStalls = 0;
    std::uint64_t shedOps = 0;
    std::uint64_t idleClosed = 0;
    std::uint64_t deadlineClosed = 0;
    std::uint64_t capacityRejections = 0;
    std::uint64_t chaosShortWrites = 0;
    std::uint64_t chaosDeferredAccepts = 0;
    std::uint64_t chaosResets = 0;
    /** Complete only after stop() (loop-thread-local until then). */
    Histogram wireLatencyNs{0.0, 1.0e7, 512};
};

/** What one graceful drain accomplished (the net.drain.* block). */
struct DrainReport
{
    /** Connections open when the drain began. */
    std::uint64_t drainedConns = 0;
    /** Of those, how many had to be aborted at the hard deadline. */
    std::uint64_t forcedCloses = 0;
    /** In-flight backend fetches failed fast at the deadline. */
    std::uint64_t failedFetches = 0;
    double drainMs = 0.0;
    bool deadlineExpired = false;
};

class NetServer
{
  public:
    /** @p service must outlive the server.  Does not start. */
    NetServer(CacheService &service, const NetServerConfig &config);
    ~NetServer(); ///< stop()s if still running

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /** Bind + listen + spawn the workers.  @throws NetError when the
     *  address is taken, ConfigError on a bad config. */
    void start();

    /** Stop accepting, drain the loops, join the workers.  Open
     *  connections are dropped (the protocol has no goodbye).
     *  Idempotent. */
    void stop();

    /**
     * Graceful shutdown, phase one (call before stop()): close every
     * listener, ask each open connection to flush its queued replies
     * and close, and wait up to @p deadline_ms for all of them to
     * finish.  If the deadline expires, every in-flight backend
     * fetch is failed fast (so parked completions turn into -ERR
     * replies), stragglers get a short grace to flush those, and
     * whatever is still open is aborted.  The report is also kept as
     * lastDrain() for exportMetrics().  Idempotent; safe to call
     * from a signal-handling thread (not from a worker loop).
     */
    DrainReport drain(double deadline_ms);

    /** Report of the most recent drain() (zeroes if none ran). */
    const DrainReport &lastDrain() const { return lastDrain_; }

    /** Resolved listen port (after start(); useful with port 0). */
    std::uint16_t port() const { return port_; }

    bool
    running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Counters are live; the latency histogram only after stop(). */
    NetStats stats() const;

    /** The INFO payload: "key:value" lines, "#"-prefixed section
     *  headers, ServeTotals first and net counters second. */
    std::string infoText() const;

    /** Export net counters + wire latency under "net." (call after
     *  stop() for a complete histogram). */
    void exportMetrics(MetricRegistry &registry) const;

  private:
    struct Worker
    {
        EventLoop loop;
        ScopedFd listenFd;
        WorkerStats stats;
        std::unordered_map<int, std::shared_ptr<Connection>> conns;
        std::thread thread;
    };

    ScopedFd makeListener(std::uint16_t port);
    void onAcceptable(Worker &worker);
    /** Wrap an accepted @p fd in a Connection on @p worker's loop
     *  (the tail of onAcceptable; deferred-accept chaos lands here
     *  from a timer). */
    void adoptConnection(Worker &worker, int fd,
                         std::uint64_t serial);

    CacheService &service_;
    NetServerConfig config_;
    std::uint16_t port_ = 0;
    /** Atomic: INFO handlers on loop threads read it while start()
     *  and stop() write it from the controlling thread. */
    std::atomic<bool> running_{false};
    /** Set once drain() begins; late deferred-accept adoptions just
     *  close their socket instead of joining a draining server. */
    std::atomic<bool> draining_{false};
    /** Open connections across all workers (accept++ / close--);
     *  drives --max-conns and the drain wait. */
    std::atomic<std::uint64_t> liveConns_{0};
    /** Server-unique connection ordinal; keys chaos draws. */
    std::atomic<std::uint64_t> connSerial_{0};
    /** Server-wide admission-control aggregates (shed watermarks). */
    WorkerLoad load_;
    DrainReport lastDrain_;
    std::vector<std::unique_ptr<Worker>> workers_;
};

/**
 * Parse an INFO payload's "# serve" section back into ServeTotals
 * (the network client's side of the metrics loop: the harness prints
 * the same summary table from a wire run as from an in-process one).
 * Unknown lines are ignored; missing keys stay zero.
 */
ServeTotals parseInfoTotals(const std::string &info);

} // namespace csr::serve::net

#endif // CSR_SERVE_NET_SERVER_H
