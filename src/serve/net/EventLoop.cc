#include "serve/net/EventLoop.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "robust/Errors.h"
#include "serve/net/NetCommon.h"

namespace csr::serve::net
{

namespace
{
std::uint64_t
monotonicNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}
} // namespace

EventLoop::EventLoop()
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        throw NetError("epoll_create1 failed: " + errnoText(errno));
    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakeFd_ < 0) {
        const int err = errno;
        ::close(epollFd_);
        epollFd_ = -1;
        throw NetError("eventfd failed: " + errnoText(err));
    }
    add(wakeFd_, EPOLLIN, [this](std::uint32_t) {
        std::uint64_t drained = 0;
        while (::read(wakeFd_, &drained, sizeof(drained)) > 0) {
            // Swallow every pending tick; posted closures are
            // drained once per iteration regardless.
        }
    });
}

EventLoop::~EventLoop()
{
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

void
EventLoop::add(int fd, std::uint32_t events, FdHandler handler)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0)
        throw NetError("epoll_ctl(ADD) failed: " + errnoText(errno));
    handlers_[fd] =
        std::make_shared<FdHandler>(std::move(handler));
}

void
EventLoop::mod(int fd, std::uint32_t events)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev) < 0)
        throw NetError("epoll_ctl(MOD) failed: " + errnoText(errno));
}

void
EventLoop::del(int fd)
{
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    handlers_.erase(fd);
}

void
EventLoop::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(postMutex_);
        posted_.push_back(std::move(fn));
    }
    wake();
}

void
EventLoop::wake()
{
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore EAGAIN.
    [[maybe_unused]] const ssize_t n =
        ::write(wakeFd_, &one, sizeof(one));
}

void
EventLoop::drainPosted()
{
    std::vector<std::function<void()>> batch;
    {
        std::lock_guard<std::mutex> lock(postMutex_);
        batch.swap(posted_);
    }
    for (auto &fn : batch)
        fn();
}

bool
EventLoop::inLoopThread() const
{
    return loopThread_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
}

EventLoop::TimerId
EventLoop::addTimer(std::uint64_t delay_ns, std::function<void()> fn)
{
    const TimerId id = nextTimerId_++;
    const std::uint64_t deadline = monotonicNs() + delay_ns;
    const std::size_t slot =
        (deadline / kWheelTickNs) & (kWheelSlots - 1);
    wheel_[slot].push_back(TimerEntry{id, deadline, std::move(fn)});
    ++timerCount_;
    if (earliestDeadlineNs_ == 0 || deadline < earliestDeadlineNs_)
        earliestDeadlineNs_ = deadline;
    return id;
}

void
EventLoop::cancelTimer(TimerId id)
{
    // Timers are few (per-connection deadline watchers, chaos accept
    // delays) and short-lived, so a wheel scan on the cold cancel
    // path beats carrying an id->slot index on the arm path.
    for (auto &slot : wheel_) {
        for (auto it = slot.begin(); it != slot.end(); ++it) {
            if (it->id != id)
                continue;
            slot.erase(it);
            --timerCount_;
            // earliestDeadlineNs_ may now be stale (pointing at the
            // cancelled timer); that only causes one early wakeup,
            // after which fireDueTimers() recomputes it.
            return;
        }
    }
}

void
EventLoop::fireDueTimers(std::uint64_t now_ns)
{
    if (timerCount_ == 0) {
        earliestDeadlineNs_ = 0;
        wheelCursorTick_ = now_ns / kWheelTickNs;
        return;
    }
    const std::uint64_t nowTick = now_ns / kWheelTickNs;
    // Sweep every tick since the last pass, capped at one full
    // rotation (the wheel aliases past that anyway).  The current
    // tick is re-swept each call so sub-tick delays fire promptly;
    // re-sweeping is harmless because only due entries leave.
    std::uint64_t firstTick = wheelCursorTick_;
    if (nowTick >= kWheelSlots - 1 &&
        firstTick < nowTick - (kWheelSlots - 1))
        firstTick = nowTick - (kWheelSlots - 1);
    std::vector<TimerEntry> due;
    for (std::uint64_t tick = firstTick; tick <= nowTick; ++tick) {
        auto &slot = wheel_[tick & (kWheelSlots - 1)];
        for (std::size_t i = 0; i < slot.size();) {
            if (slot[i].deadlineNs <= now_ns) {
                due.push_back(std::move(slot[i]));
                slot[i] = std::move(slot.back());
                slot.pop_back();
                --timerCount_;
            } else {
                ++i;
            }
        }
    }
    wheelCursorTick_ = nowTick;
    if (!due.empty()) {
        // Deterministic fire order within one pass.
        std::sort(due.begin(), due.end(),
                  [](const TimerEntry &a, const TimerEntry &b) {
                      return a.deadlineNs != b.deadlineNs
                                 ? a.deadlineNs < b.deadlineNs
                                 : a.id < b.id;
                  });
        // Recompute the earliest remaining deadline before running
        // callbacks; addTimer() from inside a callback folds its own
        // deadline in via the min() on the arm path.
        earliestDeadlineNs_ = 0;
        for (const auto &slot : wheel_) {
            for (const auto &entry : slot) {
                if (earliestDeadlineNs_ == 0 ||
                    entry.deadlineNs < earliestDeadlineNs_)
                    earliestDeadlineNs_ = entry.deadlineNs;
            }
        }
        for (auto &entry : due)
            entry.fn();
    }
}

int
EventLoop::epollTimeoutMs(std::uint64_t now_ns) const
{
    constexpr int kIdleTimeoutMs = 200;
    if (timerCount_ == 0 || earliestDeadlineNs_ == 0)
        return kIdleTimeoutMs;
    if (earliestDeadlineNs_ <= now_ns)
        return 1;
    const std::uint64_t waitMs =
        (earliestDeadlineNs_ - now_ns) / 1'000'000 + 1;
    return static_cast<int>(
        std::min<std::uint64_t>(waitMs, kIdleTimeoutMs));
}

void
EventLoop::run()
{
    loopThread_.store(std::this_thread::get_id(),
                      std::memory_order_release);
    std::array<epoll_event, 64> events;
    while (!stop_.load(std::memory_order_acquire)) {
        const int n =
            ::epoll_wait(epollFd_, events.data(),
                         static_cast<int>(events.size()),
                         epollTimeoutMs(monotonicNs()));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw NetError("epoll_wait failed: " + errnoText(errno));
        }
        for (int i = 0; i < n; ++i) {
            // Look the handler up per event: an earlier handler in
            // this batch may have del()ed this fd.
            const auto it = handlers_.find(events[i].data.fd);
            if (it == handlers_.end())
                continue;
            const std::shared_ptr<FdHandler> handler = it->second;
            (*handler)(events[i].events);
        }
        fireDueTimers(monotonicNs());
        drainPosted();
    }
    // Final drain so a completion posted concurrently with stop()
    // is not silently dropped (its connection may own resources).
    drainPosted();
    loopThread_.store(std::thread::id(), std::memory_order_release);
}

void
EventLoop::stop()
{
    stop_.store(true, std::memory_order_release);
    wake();
}

} // namespace csr::serve::net
