#include "serve/net/EventLoop.h"

#include <array>
#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "robust/Errors.h"
#include "serve/net/NetCommon.h"

namespace csr::serve::net
{

EventLoop::EventLoop()
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        throw NetError("epoll_create1 failed: " + errnoText(errno));
    wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakeFd_ < 0) {
        const int err = errno;
        ::close(epollFd_);
        epollFd_ = -1;
        throw NetError("eventfd failed: " + errnoText(err));
    }
    add(wakeFd_, EPOLLIN, [this](std::uint32_t) {
        std::uint64_t drained = 0;
        while (::read(wakeFd_, &drained, sizeof(drained)) > 0) {
            // Swallow every pending tick; posted closures are
            // drained once per iteration regardless.
        }
    });
}

EventLoop::~EventLoop()
{
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
    if (epollFd_ >= 0)
        ::close(epollFd_);
}

void
EventLoop::add(int fd, std::uint32_t events, FdHandler handler)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0)
        throw NetError("epoll_ctl(ADD) failed: " + errnoText(errno));
    handlers_[fd] =
        std::make_shared<FdHandler>(std::move(handler));
}

void
EventLoop::mod(int fd, std::uint32_t events)
{
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev) < 0)
        throw NetError("epoll_ctl(MOD) failed: " + errnoText(errno));
}

void
EventLoop::del(int fd)
{
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    handlers_.erase(fd);
}

void
EventLoop::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(postMutex_);
        posted_.push_back(std::move(fn));
    }
    wake();
}

void
EventLoop::wake()
{
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore EAGAIN.
    [[maybe_unused]] const ssize_t n =
        ::write(wakeFd_, &one, sizeof(one));
}

void
EventLoop::drainPosted()
{
    std::vector<std::function<void()>> batch;
    {
        std::lock_guard<std::mutex> lock(postMutex_);
        batch.swap(posted_);
    }
    for (auto &fn : batch)
        fn();
}

bool
EventLoop::inLoopThread() const
{
    return loopThread_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
}

void
EventLoop::run()
{
    loopThread_.store(std::this_thread::get_id(),
                      std::memory_order_release);
    std::array<epoll_event, 64> events;
    while (!stop_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(epollFd_, events.data(),
                                   static_cast<int>(events.size()),
                                   /*timeout_ms=*/200);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw NetError("epoll_wait failed: " + errnoText(errno));
        }
        for (int i = 0; i < n; ++i) {
            // Look the handler up per event: an earlier handler in
            // this batch may have del()ed this fd.
            const auto it = handlers_.find(events[i].data.fd);
            if (it == handlers_.end())
                continue;
            const std::shared_ptr<FdHandler> handler = it->second;
            (*handler)(events[i].events);
        }
        drainPosted();
    }
    // Final drain so a completion posted concurrently with stop()
    // is not silently dropped (its connection may own resources).
    drainPosted();
    loopThread_.store(std::thread::id(), std::memory_order_release);
}

void
EventLoop::stop()
{
    stop_.store(true, std::memory_order_release);
    wake();
}

} // namespace csr::serve::net
