#include "serve/net/Connection.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "robust/Errors.h"
#include "serve/net/NetCommon.h"
#include "telemetry/Telemetry.h"
#include "util/Random.h"

namespace csr::serve::net
{

namespace
{

constexpr std::size_t kReadChunk = 16 * 1024;

std::uint64_t
monotonicNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
msToNs(double ms)
{
    return static_cast<std::uint64_t>(ms * 1.0e6);
}

std::string
upperOf(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c >= 'a' && c <= 'z')
            c = static_cast<char>(c - 'a' + 'A');
    return out;
}

/** True when @p s is a decimal uint64 (no sign, no spaces). */
bool
parseU64(const std::string &s, std::uint64_t &value)
{
    if (s.empty() || s.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
        if (v > (UINT64_MAX - 9) / 10)
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    value = v;
    return true;
}

/**
 * Wire key -> cache key.  Decimal keys map to themselves, so the
 * network client's deterministic streams hit the very same Addrs an
 * in-process harness run uses (that is what makes server-side totals
 * comparable).  Anything else -- "user:17", "π" -- is FNV-1a-hashed,
 * so arbitrary redis-cli traffic works too, just without the
 * identity guarantee.
 */
Addr
wireKeyOf(const std::string &text)
{
    std::uint64_t direct = 0;
    if (parseU64(text, direct))
        return direct;
    std::uint64_t h = 1469598103934665603ull; // FNV-1a 64 offset
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return hashMix64(h);
}

std::string
bulkOf(const std::string &payload)
{
    std::string out;
    out.reserve(payload.size() + 16);
    out += '$';
    out += std::to_string(payload.size());
    out += "\r\n";
    out += payload;
    out += "\r\n";
    return out;
}

std::string
errorOf(std::exception_ptr error)
{
    try {
        std::rethrow_exception(error);
    } catch (const Error &e) {
        return "-ERR " + std::string(e.kind()) + ": " + e.what() +
               "\r\n";
    } catch (const std::exception &e) {
        return std::string("-ERR ") + e.what() + "\r\n";
    }
}

} // namespace

Connection::Connection(ConnectionContext ctx, int fd)
    : ctx_(std::move(ctx)), fd_(fd), parser_(ctx_.tuning.limits)
{
}

Connection::~Connection()
{
    // Normally closeNow() already ran; this catches a worker being
    // torn down with connections still open.
    if (!closed_ && fd_ >= 0)
        ::close(fd_);
}

void
Connection::open()
{
    auto self = shared_from_this();
    interest_ = EPOLLIN;
    ctx_.loop.add(fd_, interest_,
                  [self](std::uint32_t events) { self->onEvents(events); });
    lastActivityNs_ = monotonicNowNs();
    armDeadlineTimer();
    CSR_TRACE_INSTANT_V("net", "conn.open", fd_);
}

void
Connection::onEvents(std::uint32_t events)
{
    if (closed_)
        return;
    if (events & (EPOLLERR | EPOLLHUP)) {
        closeNow();
        return;
    }
    if (events & EPOLLOUT)
        onWritable();
    if (closed_)
        return;
    if (events & EPOLLIN)
        onReadable();
}

bool
Connection::stalled() const
{
    return unfilled_ >= ctx_.tuning.maxPendingOps ||
           outBuf_.size() - outPos_ >= ctx_.tuning.writeWatermark;
}

void
Connection::onReadable()
{
    char chunk[kReadChunk];
    bool sawBytes = false;
    while (true) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            sawBytes = true;
            ctx_.stats.bytesIn.fetch_add(
                static_cast<std::uint64_t>(n),
                std::memory_order_relaxed);
            parser_.feed(chunk, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof(chunk))
                break;
            continue;
        }
        if (n == 0) {
            peerClosed_ = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeNow();
        return;
    }

    if (sawBytes)
        lastActivityNs_ = monotonicNowNs();
    processBuffered();
    if (closed_)
        return;
    flushOutput();
    if (closed_)
        return;
    updateInterest();
    maybeClose();
}

void
Connection::processBuffered()
{
    // Reentrancy guard: a synchronous verb's reply lands via
    // fillSlot() while we are still inside this loop, and fillSlot
    // would otherwise try to resume parsing recursively.
    if (processing_)
        return;
    processing_ = true;
    RespCommand cmd;
    while (!closed_ && !closeAfterReply_ && !stalled()) {
        const RespParseStatus status = parser_.next(cmd);
        if (status == RespParseStatus::NeedMore)
            break;
        if (status == RespParseStatus::ProtocolError) {
            ctx_.stats.protocolErrors.fetch_add(
                1, std::memory_order_relaxed);
            reply("-ERR Protocol error: " + parser_.error() + "\r\n");
            closeAfterReply_ = true;
            break;
        }
        execute(std::move(cmd));
    }
    processing_ = false;
    if (!closed_)
        notePartialFrame();
}

void
Connection::execute(RespCommand &&cmd)
{
    const std::uint64_t cmdIndex = cmdSeq_++;
    if (chaosDecide(ctx_.chaos, ChaosSite::ConnReset, ctx_.serial,
                    cmdIndex)) {
        // Mid-command reset: the peer's connection dies with this
        // command unanswered.  Lossy by design -- only fires behind
        // --chaos-resets (chaosDecide gates it).
        ctx_.stats.chaosResets.fetch_add(1,
                                         std::memory_order_relaxed);
        closeNow();
        return;
    }
    const std::string verb = upperOf(cmd.argv.at(0));
    if ((verb == "GET" || verb == "SET" || verb == "DEL") &&
        shouldShed()) {
        // Admission control: refuse data commands while the
        // server-wide aggregates sit past their watermarks.  PING and
        // INFO stay exempt so health checks and operators can still
        // get through to a struggling server.
        ctx_.stats.shedOps.fetch_add(1, std::memory_order_relaxed);
        reply("-BUSY shed: server overloaded, retry later\r\n");
        return;
    }
    if (verb == "GET" && cmd.argv.size() == 2) {
        ctx_.stats.cmdGet.fetch_add(1, std::memory_order_relaxed);
        executeGet(cmd.argv[1]);
    } else if (verb == "SET" && cmd.argv.size() == 3) {
        ctx_.stats.cmdSet.fetch_add(1, std::memory_order_relaxed);
        executeSet(cmd.argv[1], cmd.argv[2]);
    } else if (verb == "DEL" && cmd.argv.size() == 2) {
        ctx_.stats.cmdDel.fetch_add(1, std::memory_order_relaxed);
        const bool was = ctx_.service.del(wireKeyOf(cmd.argv[1]));
        reply(was ? ":1\r\n" : ":0\r\n");
    } else if (verb == "PING" && cmd.argv.size() <= 2) {
        ctx_.stats.cmdPing.fetch_add(1, std::memory_order_relaxed);
        reply(cmd.argv.size() == 2 ? bulkOf(cmd.argv[1])
                                   : "+PONG\r\n");
    } else if (verb == "INFO" && cmd.argv.size() == 1) {
        ctx_.stats.cmdInfo.fetch_add(1, std::memory_order_relaxed);
        reply(bulkOf(ctx_.infoText()));
    } else if (verb == "GET" || verb == "SET" || verb == "DEL" ||
               verb == "PING" || verb == "INFO") {
        ctx_.stats.errorReplies.fetch_add(1,
                                          std::memory_order_relaxed);
        reply("-ERR wrong number of arguments for '" + verb +
              "'\r\n");
    } else {
        ctx_.stats.errorReplies.fetch_add(1,
                                          std::memory_order_relaxed);
        reply("-ERR unknown command '" + cmd.argv[0] +
              "' (supported: GET SET DEL PING INFO)\r\n");
    }
}

void
Connection::executeGet(const std::string &keyText)
{
    const Addr key = wireKeyOf(keyText);
    const std::uint64_t slot = allocSlot();
    auto self = weak_from_this();
    EventLoop *loop = &ctx_.loop;
    ctx_.service.getAsync(
        key,
        [self, loop, slot](const ServeOpResult &result,
                           std::exception_ptr error) {
            // Render the reply here: `result` is only valid for the
            // duration of this callback.
            std::string text =
                error ? errorOf(error)
                      : bulkOf(std::to_string(result.value));
            auto deliver = [self, slot,
                            text = std::move(text)]() mutable {
                if (auto conn = self.lock())
                    conn->fillSlot(slot, std::move(text));
            };
            if (loop->inLoopThread())
                deliver();
            else
                loop->post(std::move(deliver));
        });
}

void
Connection::executeSet(const std::string &keyText,
                       const std::string &valueText)
{
    std::uint64_t value = 0;
    if (!parseU64(valueText, value)) {
        ctx_.stats.errorReplies.fetch_add(1,
                                          std::memory_order_relaxed);
        reply("-ERR value must be a decimal unsigned 64-bit "
              "integer\r\n");
        return;
    }
    // Writes are write-through and synchronous by design (the store
    // latency is itself a cost observation); a simulated backend
    // makes this a pure compute step.
    try {
        ctx_.service.put(wireKeyOf(keyText), value);
        reply("+OK\r\n");
    } catch (const Error &e) {
        ctx_.stats.errorReplies.fetch_add(1,
                                          std::memory_order_relaxed);
        reply("-ERR " + std::string(e.kind()) + ": " + e.what() +
              "\r\n");
    }
}

std::uint64_t
Connection::allocSlot()
{
    slots_.push_back(ReplySlot{std::string(), Clock::now(), false});
    ++unfilled_;
    ctx_.load.pendingOps.fetch_add(1, std::memory_order_relaxed);
    return nextSlot_++;
}

void
Connection::reply(std::string text)
{
    fillSlot(allocSlot(), std::move(text));
}

void
Connection::fillSlot(std::uint64_t slot, std::string reply_text)
{
    if (closed_)
        return;
    const std::size_t idx =
        static_cast<std::size_t>(slot - baseSlot_);
    ReplySlot &s = slots_[idx];
    s.data = std::move(reply_text);
    s.ready = true;
    --unfilled_;
    ctx_.load.pendingOps.fetch_sub(1, std::memory_order_relaxed);
    ctx_.stats.wireLatencyNs.add(
        std::chrono::duration<double, std::nano>(Clock::now() -
                                                 s.start)
            .count());
    flushReady();
    flushOutput();
    if (closed_)
        return;
    // A drained slot queue may lift backpressure; bytes already
    // sitting in the parser will never get another EPOLLIN, so
    // resume decoding them here (no-op while inside
    // processBuffered()).
    if (!processing_ && !stalled() && parser_.buffered() > 0) {
        processBuffered();
        if (closed_)
            return;
        flushOutput();
        if (closed_)
            return;
    }
    updateInterest();
    maybeClose();
}

void
Connection::flushReady()
{
    while (!slots_.empty() && slots_.front().ready) {
        ctx_.load.bufferedBytes.fetch_add(slots_.front().data.size(),
                                          std::memory_order_relaxed);
        outBuf_ += slots_.front().data;
        slots_.pop_front();
        ++baseSlot_;
    }
}

void
Connection::flushOutput()
{
    while (outPos_ < outBuf_.size()) {
        std::size_t len = outBuf_.size() - outPos_;
        bool shortWrite = false;
        if (ctx_.chaos.enabled() &&
            chaosDecide(ctx_.chaos, ChaosSite::ShortWrite,
                        ctx_.serial, writeSeq_)) {
            // TIMING fault: send at most half of what is queued (but
            // at least one byte) and stop -- the remainder waits for
            // EPOLLOUT, exercising the partial-flush resume paths.
            const double draw =
                chaosDraw(ctx_.chaos, ChaosSite::ShortWrite,
                          ctx_.serial ^ 0x5Cu, writeSeq_);
            len = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       static_cast<double>(len) * 0.5 * draw));
            shortWrite = true;
        }
        ++writeSeq_;
        const ssize_t n =
            ::send(fd_, outBuf_.data() + outPos_, len, MSG_NOSIGNAL);
        if (n > 0) {
            ctx_.stats.bytesOut.fetch_add(
                static_cast<std::uint64_t>(n),
                std::memory_order_relaxed);
            ctx_.load.bufferedBytes.fetch_sub(
                static_cast<std::uint64_t>(n),
                std::memory_order_relaxed);
            outPos_ += static_cast<std::size_t>(n);
            if (shortWrite) {
                ctx_.stats.chaosShortWrites.fetch_add(
                    1, std::memory_order_relaxed);
                break;
            }
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeNow();
        return;
    }
    if (outPos_ == outBuf_.size()) {
        outBuf_.clear();
        outPos_ = 0;
    } else if (outPos_ >= 64 * 1024) {
        outBuf_.erase(0, outPos_);
        outPos_ = 0;
    }
}

void
Connection::updateInterest()
{
    const bool stalled =
        unfilled_ >= ctx_.tuning.maxPendingOps ||
        outBuf_.size() - outPos_ >= ctx_.tuning.writeWatermark;
    std::uint32_t want = 0;
    if (!peerClosed_ && !closeAfterReply_ && !stalled)
        want |= EPOLLIN;
    if (outPos_ < outBuf_.size())
        want |= EPOLLOUT;
    if (want == interest_)
        return;
    if (stalled && (interest_ & EPOLLIN) && !(want & EPOLLIN))
        ctx_.stats.backpressureStalls.fetch_add(
            1, std::memory_order_relaxed);
    ctx_.loop.mod(fd_, want);
    interest_ = want;
}

void
Connection::onWritable()
{
    flushOutput();
    if (closed_)
        return;
    // Draining the write buffer may lift backpressure; bytes already
    // buffered in the parser must then be re-examined even though no
    // new EPOLLIN will fire for them.
    if (!stalled() && parser_.buffered() > 0) {
        processBuffered();
        if (closed_)
            return;
        flushOutput();
        if (closed_)
            return;
    }
    updateInterest();
    maybeClose();
}

void
Connection::maybeClose()
{
    if (closed_)
        return;
    const bool drained =
        unfilled_ == 0 && slots_.empty() && outPos_ == outBuf_.size();
    if ((peerClosed_ || closeAfterReply_) && drained)
        closeNow();
}

void
Connection::closeNow()
{
    if (closed_)
        return;
    // The onClosed callback drops the owner's shared_ptr; keep
    // ourselves alive until this frame unwinds.
    auto self = shared_from_this();
    closed_ = true;
    if (deadlineTimer_ != 0) {
        ctx_.loop.cancelTimer(deadlineTimer_);
        deadlineTimer_ = 0;
    }
    // Return our outstanding charges to the server-wide aggregates:
    // slots that will never fill, reply bytes that will never send.
    if (unfilled_ > 0)
        ctx_.load.pendingOps.fetch_sub(unfilled_,
                                       std::memory_order_relaxed);
    if (outPos_ < outBuf_.size())
        ctx_.load.bufferedBytes.fetch_sub(outBuf_.size() - outPos_,
                                          std::memory_order_relaxed);
    const int fd = fd_;
    fd_ = -1;
    ctx_.loop.del(fd);
    ::close(fd);
    CSR_TRACE_INSTANT_V("net", "conn.close", fd);
    ctx_.stats.connectionsClosed.fetch_add(1,
                                           std::memory_order_relaxed);
    ctx_.onClosed(fd);
}

void
Connection::beginDrain()
{
    if (closed_)
        return;
    // closeAfterReply_ is exactly the drain contract the reply path
    // already honours: stop decoding new commands (processBuffered's
    // loop condition), keep filling + flushing claimed slots, close
    // once everything queued has hit the socket.
    closeAfterReply_ = true;
    partialSinceNs_ = 0;
    updateInterest();
    maybeClose();
}

void
Connection::abort()
{
    closeNow();
}

bool
Connection::drainPending() const
{
    return unfilled_ != 0 || !slots_.empty() ||
           outPos_ != outBuf_.size();
}

bool
Connection::shouldShed() const
{
    const NetTuning &t = ctx_.tuning;
    if (t.shedPendingOps != 0 &&
        ctx_.load.pendingOps.load(std::memory_order_relaxed) >=
            t.shedPendingOps)
        return true;
    if (t.shedWriteBytes != 0 &&
        ctx_.load.bufferedBytes.load(std::memory_order_relaxed) >=
            t.shedWriteBytes)
        return true;
    return false;
}

void
Connection::notePartialFrame()
{
    // A partial frame only counts against the peer while the parser
    // is genuinely waiting on it: bytes held back by our own
    // backpressure or a latched close are not the peer's fault.
    if (parser_.buffered() > 0 && !stalled() && !closeAfterReply_) {
        if (partialSinceNs_ == 0) {
            partialSinceNs_ = monotonicNowNs();
            // The read deadline may be nearer than whatever the timer
            // was armed for (typically the idle check); re-arm.
            if (deadlineTimer_ != 0) {
                ctx_.loop.cancelTimer(deadlineTimer_);
                deadlineTimer_ = 0;
            }
            armDeadlineTimer();
        }
    } else {
        partialSinceNs_ = 0;
    }
}

void
Connection::checkDeadlines()
{
    deadlineTimer_ = 0;
    if (closed_)
        return;
    const std::uint64_t now = monotonicNowNs();
    const NetTuning &t = ctx_.tuning;
    if (t.readDeadlineMs > 0 && partialSinceNs_ != 0 &&
        now - partialSinceNs_ >= msToNs(t.readDeadlineMs)) {
        ctx_.stats.deadlineClosed.fetch_add(
            1, std::memory_order_relaxed);
        closeNow();
        return;
    }
    if (t.idleTimeoutMs > 0 && !drainPending() &&
        parser_.buffered() == 0 &&
        now - lastActivityNs_ >= msToNs(t.idleTimeoutMs)) {
        ctx_.stats.idleClosed.fetch_add(1, std::memory_order_relaxed);
        closeNow();
        return;
    }
    armDeadlineTimer();
}

void
Connection::armDeadlineTimer()
{
    if (deadlineTimer_ != 0 || closed_)
        return;
    const NetTuning &t = ctx_.tuning;
    if (t.idleTimeoutMs <= 0 && t.readDeadlineMs <= 0)
        return;
    // Fire at the earliest applicable deadline, computed from the
    // timestamps as of now.  Activity after arming just makes the
    // timer fire early; checkDeadlines() then re-arms with the
    // remaining time, so nothing needs cancelling on the hot path.
    const std::uint64_t now = monotonicNowNs();
    std::uint64_t delay = UINT64_MAX;
    if (t.idleTimeoutMs > 0) {
        const std::uint64_t deadline =
            lastActivityNs_ + msToNs(t.idleTimeoutMs);
        delay = deadline > now ? deadline - now : 0;
    }
    if (t.readDeadlineMs > 0) {
        const std::uint64_t since =
            partialSinceNs_ != 0 ? partialSinceNs_ : now;
        const std::uint64_t deadline =
            since + msToNs(t.readDeadlineMs);
        delay = std::min(delay,
                         deadline > now ? deadline - now : 0);
    }
    // Floor keeps a just-expired deadline from hot-looping the timer.
    delay = std::max<std::uint64_t>(delay, 1'000'000);
    auto self = weak_from_this();
    deadlineTimer_ = ctx_.loop.addTimer(delay, [self] {
        if (auto conn = self.lock())
            conn->checkDeadlines();
    });
}

} // namespace csr::serve::net
