#include "serve/net/RespClient.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "robust/Errors.h"

namespace csr::serve::net
{

RespClient::RespClient(const std::string &host, std::uint16_t port,
                       double timeout_sec)
    : timeoutSec_(timeout_sec)
{
    fd_ = ScopedFd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd_.valid())
        throw NetError("socket() failed: " + errnoText(errno));

    if (timeout_sec > 0.0) {
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(timeout_sec);
        tv.tv_usec = static_cast<suseconds_t>(
            (timeout_sec - std::floor(timeout_sec)) * 1e6);
        ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv));
        ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv,
                     sizeof(tv));
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw ConfigError("bad host '" + host +
                          "' (expected an IPv4 dotted quad)");
    while (::connect(fd_.get(), reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)) < 0) {
        if (errno == EINTR)
            continue; // a signal is not a refusal; retry
        throw NetError("connect(" + host + ":" +
                       std::to_string(port) +
                       ") failed: " + errnoText(errno));
    }
    const int one = 1;
    ::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
}

void
RespClient::send(const std::vector<std::string> &argv)
{
    sendBuf_ += '*';
    sendBuf_ += std::to_string(argv.size());
    sendBuf_ += "\r\n";
    for (const std::string &arg : argv) {
        sendBuf_ += '$';
        sendBuf_ += std::to_string(arg.size());
        sendBuf_ += "\r\n";
        sendBuf_ += arg;
        sendBuf_ += "\r\n";
    }
}

void
RespClient::flush()
{
    std::size_t at = 0;
    while (at < sendBuf_.size()) {
        const ssize_t n =
            ::send(fd_.get(), sendBuf_.data() + at,
                   sendBuf_.size() - at, MSG_NOSIGNAL);
        if (n > 0) {
            at += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            throw TimeoutError("send timed out with " +
                               std::to_string(sendBuf_.size() - at) +
                               " bytes unsent");
        throw NetError("send failed: " + errnoText(errno));
    }
    sendBuf_.clear();
}

void
RespClient::fillBuffer()
{
    if (pos_ > 0 && pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
    }
    char chunk[16 * 1024];
    while (true) {
        const ssize_t n =
            ::recv(fd_.get(), chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            return;
        }
        if (n == 0) {
            // Peer close and timeout are different failures: one says
            // the server went away, the other that it is (still)
            // there but slow.  Say which, and how much of a reply was
            // already buffered when it happened.
            const std::size_t partial = buffer_.size() - pos_;
            throw NetError(
                partial == 0
                    ? "server closed the connection between replies"
                    : "server closed the connection mid-reply (" +
                          std::to_string(partial) +
                          " bytes of a partial reply buffered)");
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            throw TimeoutError(
                "no server reply within the --net-timeout bound (" +
                std::to_string(timeoutSec_) +
                " s); the peer is still connected, just slow");
        throw NetError("recv failed: " + errnoText(errno));
    }
}

std::string
RespClient::readLine()
{
    while (true) {
        const std::size_t at = buffer_.find("\r\n", pos_);
        if (at != std::string::npos) {
            std::string out = buffer_.substr(pos_, at - pos_);
            pos_ = at + 2;
            return out;
        }
        fillBuffer();
    }
}

RespClient::Reply
RespClient::readReply()
{
    const std::string head = readLine();
    if (head.empty())
        throw NetError("empty reply line");
    Reply reply;
    reply.type = head[0];
    const std::string rest = head.substr(1);
    switch (reply.type) {
      case '+':
      case '-':
        reply.text = rest;
        return reply;
      case ':':
        reply.integer = std::strtoll(rest.c_str(), nullptr, 10);
        return reply;
      case '$': {
        const long long len = std::strtoll(rest.c_str(), nullptr, 10);
        if (len < 0) {
            reply.isNull = true;
            return reply;
        }
        const std::size_t need = static_cast<std::size_t>(len) + 2;
        while (buffer_.size() - pos_ < need)
            fillBuffer();
        reply.text = buffer_.substr(pos_, static_cast<std::size_t>(len));
        pos_ += need;
        return reply;
      }
      default:
        throw NetError("unsupported reply type '" +
                       std::string(1, reply.type) + "'");
    }
}

RespClient::Reply
RespClient::roundTrip(const std::vector<std::string> &argv)
{
    send(argv);
    flush();
    return readReply();
}

} // namespace csr::serve::net
