/**
 * @file
 * Incremental RESP2-subset request parser (DESIGN.md section 3.7).
 *
 * Decodes the client->server half of the Redis serialization
 * protocol: multibulk commands (`*N\r\n` then N bulk strings
 * `$len\r\n<bytes>\r\n`) plus the space-separated inline form a
 * human types into `nc`.  The parser is push-based and incremental:
 * feed() it whatever bytes arrived, then drain complete commands
 * with next().  A command split across any number of reads costs
 * nothing extra -- partial input is simply left buffered until the
 * rest shows up -- and pipelined input yields one command per
 * next() call with no copying between commands.
 *
 * All input is untrusted, so every length field is bounded by
 * RespLimits before a single payload byte is believed: an oversized
 * bulk or array is a protocol error at header-parse time, not an
 * allocation.  After the first protocol error the parser latches --
 * the server's contract is "reply -ERR, then close", and parsing
 * past garbage would only manufacture confused commands.
 */

#ifndef CSR_SERVE_NET_RESPPARSER_H
#define CSR_SERVE_NET_RESPPARSER_H

#include <cstddef>
#include <string>
#include <vector>

namespace csr::serve::net
{

/** Bounds on untrusted wire input, per connection. */
struct RespLimits
{
    /** Longest accepted bulk-string payload (keys and values here
     *  are short; 512 KiB matches redis's inline default). */
    std::size_t maxBulkBytes = 512 * 1024;
    /** Most elements in one multibulk command. */
    std::size_t maxArrayElements = 64;
    /** Longest accepted inline command line (including CRLF). */
    std::size_t maxInlineBytes = 4096;
};

/** One decoded request; argv[0] is the verb as sent. */
struct RespCommand
{
    std::vector<std::string> argv;
};

enum class RespParseStatus
{
    Command,       ///< out holds one complete command
    NeedMore,      ///< no complete command buffered; feed() more
    ProtocolError, ///< malformed input; error() says how; latched
};

class RespParser
{
  public:
    explicit RespParser(const RespLimits &limits = {});

    /** Append @p n raw bytes from the socket. */
    void feed(const char *data, std::size_t n);

    /**
     * Try to decode the next complete command into @p out.  Consumes
     * input only on Command (so a half-received frame is re-examined
     * from its start on the next call -- cheap, the buffer is
     * contiguous).  Once ProtocolError is returned every later call
     * returns ProtocolError too.
     */
    RespParseStatus next(RespCommand &out);

    /** Human-readable reason, valid after ProtocolError. */
    const std::string &error() const { return error_; }

    /** Bytes fed but not yet consumed by decoded commands. */
    std::size_t buffered() const { return buffer_.size() - pos_; }

  private:
    RespParseStatus fail(const std::string &why);
    RespParseStatus nextMultibulk(RespCommand &out);
    RespParseStatus nextInline(RespCommand &out);

    /** Find CRLF at/after @p from; npos when not buffered yet. */
    std::size_t findCrlf(std::size_t from) const;

    /** Parse a non-negative decimal length at [@p from, @p end).
     *  Returns false on any non-digit or empty field. */
    bool parseLength(std::size_t from, std::size_t end,
                     std::uint64_t &value) const;

    RespLimits limits_;
    std::string buffer_;
    std::size_t pos_ = 0; ///< consumed prefix of buffer_
    bool broken_ = false;
    std::string error_;
};

} // namespace csr::serve::net

#endif // CSR_SERVE_NET_RESPPARSER_H
