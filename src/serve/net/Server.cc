#include "serve/net/Server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "robust/Errors.h"
#include "telemetry/MetricRegistry.h"
#include "telemetry/Telemetry.h"
#include "util/CliArgs.h"
#include "util/Logging.h"

namespace csr::serve::net
{

namespace
{

/** Full-precision double, identical to the harness's JSON spelling,
 *  so a client-side summary reproduces the server's numbers. */
std::string
numFull(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
line(std::string &out, const char *key, std::uint64_t v)
{
    out += key;
    out += ':';
    out += std::to_string(v);
    out += '\n';
}

} // namespace

NetServerConfig
NetServerConfig::fromArgs(const CliArgs &args)
{
    NetServerConfig config;
    const std::string listen = args.get("listen", "");
    if (!listen.empty()) {
        const auto [host, port] = parseHostPort(listen);
        config.host = host;
        config.port = port;
    }
    config.workers = static_cast<unsigned>(
        args.getUInt("net-workers", config.workers));
    config.maxConns = static_cast<std::size_t>(
        args.getUInt("max-conns", config.maxConns));
    config.tuning.idleTimeoutMs = args.getDouble(
        "idle-timeout-ms", config.tuning.idleTimeoutMs);
    config.tuning.readDeadlineMs = args.getDouble(
        "read-deadline-ms", config.tuning.readDeadlineMs);
    config.tuning.shedPendingOps = static_cast<std::size_t>(
        args.getUInt("shed-pending-ops",
                     config.tuning.shedPendingOps));
    config.tuning.shedWriteBytes = static_cast<std::size_t>(
        args.getUInt("shed-write-bytes",
                     config.tuning.shedWriteBytes));
    config.chaos = ChaosConfig::fromArgs(args);
    config.validate();
    return config;
}

void
NetServerConfig::validate() const
{
    if (workers > 1024)
        throw ConfigError("--net-workers " + std::to_string(workers) +
                          " is absurd (accepted: 0 = one per "
                          "hardware thread, or 1-1024)");
    if (backlog <= 0)
        throw ConfigError("listen backlog must be positive");
    if (tuning.maxPendingOps == 0)
        throw ConfigError(
            "per-connection pending-op bound must be positive");
    if (tuning.writeWatermark == 0)
        throw ConfigError("write watermark must be positive");
    if (tuning.idleTimeoutMs < 0.0)
        throw ConfigError(
            "--idle-timeout-ms must be >= 0 (0 disables)");
    if (tuning.readDeadlineMs < 0.0)
        throw ConfigError(
            "--read-deadline-ms must be >= 0 (0 disables)");
    chaos.validate();
}

NetServer::NetServer(CacheService &service,
                     const NetServerConfig &config)
    : service_(service), config_(config)
{
    config_.validate();
    if (config_.workers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        config_.workers = hw ? (hw > 64 ? 64u : hw) : 1u;
    }
}

NetServer::~NetServer()
{
    stop();
}

ScopedFd
NetServer::makeListener(std::uint16_t port)
{
    ScopedFd fd(::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0));
    if (!fd.valid())
        throw NetError("socket() failed: " + errnoText(errno));
    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) < 0 ||
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof(one)) < 0)
        throw NetError("setsockopt(SO_REUSEPORT) failed: " +
                       errnoText(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
        1)
        throw ConfigError("bad listen host '" + config_.host + "'");
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        throw NetError("bind(" + config_.host + ":" +
                       std::to_string(port) +
                       ") failed: " + errnoText(errno));
    if (::listen(fd.get(), config_.backlog) < 0)
        throw NetError("listen() failed: " + errnoText(errno));
    return fd;
}

void
NetServer::start()
{
    if (running_)
        return;
    workers_.clear();
    workers_.reserve(config_.workers);
    draining_.store(false, std::memory_order_release);
    liveConns_.store(0, std::memory_order_relaxed);
    connSerial_.store(0, std::memory_order_relaxed);

    for (unsigned w = 0; w < config_.workers; ++w) {
        auto worker = std::make_unique<Worker>();
        // Worker 0 may bind port 0; everyone else binds whatever
        // the kernel resolved it to, sharing via SO_REUSEPORT.
        worker->listenFd = makeListener(w == 0 ? config_.port : port_);
        if (w == 0) {
            sockaddr_in bound{};
            socklen_t len = sizeof(bound);
            if (::getsockname(worker->listenFd.get(),
                              reinterpret_cast<sockaddr *>(&bound),
                              &len) < 0)
                throw NetError("getsockname() failed: " +
                               errnoText(errno));
            port_ = ntohs(bound.sin_port);
        }
        Worker *raw = worker.get();
        worker->loop.add(worker->listenFd.get(), EPOLLIN,
                         [this, raw](std::uint32_t) {
                             onAcceptable(*raw);
                         });
        workers_.push_back(std::move(worker));
    }

    for (auto &worker : workers_) {
        Worker *raw = worker.get();
        worker->thread = std::thread([raw] {
            try {
                raw->loop.run();
            } catch (const std::exception &e) {
                // A worker dying takes its connections with it but
                // must not take the process: report and bow out.
                warn("net worker failed: %s", e.what());
            }
        });
    }
    running_.store(true, std::memory_order_release);
}

void
NetServer::onAcceptable(Worker &worker)
{
    while (true) {
        const int fd =
            ::accept4(worker.listenFd.get(), nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("accept failed: %s", errnoText(errno).c_str());
            return;
        }
        if (config_.maxConns != 0 &&
            liveConns_.load(std::memory_order_relaxed) >=
                config_.maxConns) {
            // Refuse *before* spending a Connection on it.  The reply
            // is best-effort -- a freshly accepted socket's buffer is
            // empty, so the short send virtually always lands whole.
            static const char kAtCapacity[] =
                "-ERR server at capacity\r\n";
            (void)::send(fd, kAtCapacity, sizeof(kAtCapacity) - 1,
                         MSG_NOSIGNAL);
            ::close(fd);
            worker.stats.capacityRejections.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        worker.stats.connectionsAccepted.fetch_add(
            1, std::memory_order_relaxed);
        liveConns_.fetch_add(1, std::memory_order_relaxed);
        CSR_TRACE_INSTANT_V("net", "conn.accept", fd);

        const std::uint64_t serial =
            connSerial_.fetch_add(1, std::memory_order_relaxed);
        if (chaosDecide(config_.chaos, ChaosSite::DeferAccept,
                        serial)) {
            // TIMING fault: the socket sits accepted-but-unserviced
            // for 1-10 ms before its Connection exists, so the first
            // commands pile into the kernel buffer and arrive as one
            // burst.  The holder owns the fd until adoption in case
            // the loop dies with the timer still pending.
            worker.stats.chaosDeferredAccepts.fetch_add(
                1, std::memory_order_relaxed);
            const double draw = chaosDraw(
                config_.chaos, ChaosSite::DeferAccept, serial, 1);
            const std::uint64_t delayNs =
                1'000'000 +
                static_cast<std::uint64_t>(draw * 9.0e6);
            Worker *raw = &worker;
            auto holder = std::make_shared<ScopedFd>(fd);
            worker.loop.addTimer(
                delayNs, [this, raw, holder, serial] {
                    adoptConnection(*raw, holder->release(), serial);
                });
            continue;
        }
        adoptConnection(worker, fd, serial);
    }
}

void
NetServer::adoptConnection(Worker &worker, int fd,
                           std::uint64_t serial)
{
    if (draining_.load(std::memory_order_acquire)) {
        // A deferred accept can land after drain() already swept the
        // connection map; it never decoded a command, so closing it
        // unanswered keeps the one-reply-per-accepted-command
        // contract intact.
        ::close(fd);
        worker.stats.connectionsClosed.fetch_add(
            1, std::memory_order_relaxed);
        liveConns_.fetch_sub(1, std::memory_order_relaxed);
        return;
    }
    Worker *raw = &worker;
    ConnectionContext ctx{
        worker.loop,
        service_,
        config_.tuning,
        worker.stats,
        load_,
        config_.chaos,
        serial,
        [this] { return infoText(); },
        [this, raw](int closed_fd) {
            raw->conns.erase(closed_fd);
            liveConns_.fetch_sub(1, std::memory_order_relaxed);
        },
    };
    auto conn = std::make_shared<Connection>(std::move(ctx), fd);
    worker.conns.emplace(fd, conn);
    conn->open();
}

void
NetServer::stop()
{
    if (!running_.load(std::memory_order_acquire))
        return;
    for (auto &worker : workers_)
        worker->loop.stop();
    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();
    // Loops are quiescent now; dropping the connection maps closes
    // any sockets still open (Connection's destructor).
    for (auto &worker : workers_)
        worker->conns.clear();
    running_.store(false, std::memory_order_release);
}

DrainReport
NetServer::drain(double deadline_ms)
{
    DrainReport report;
    if (!running_.load(std::memory_order_acquire) ||
        draining_.exchange(true, std::memory_order_acq_rel)) {
        return lastDrain_;
    }
    const auto start = std::chrono::steady_clock::now();
    const auto elapsedMs = [start] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    report.drainedConns =
        liveConns_.load(std::memory_order_relaxed);

    // Phase 1, on each worker's own loop thread: stop accepting and
    // start draining every connection it owns.  beginDrain() may
    // close (and erase) synchronously, so iterate over a copy.
    for (auto &worker : workers_) {
        Worker *raw = worker.get();
        raw->loop.post([raw] {
            if (raw->listenFd.valid()) {
                raw->loop.del(raw->listenFd.get());
                raw->listenFd.reset();
            }
            std::vector<std::shared_ptr<Connection>> open;
            open.reserve(raw->conns.size());
            for (auto &[fd, conn] : raw->conns)
                open.push_back(conn);
            for (auto &conn : open)
                conn->beginDrain();
        });
    }

    // Phase 2: wait for the flush to finish everywhere.
    while (liveConns_.load(std::memory_order_relaxed) != 0 &&
           elapsedMs() < deadline_ms)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    if (liveConns_.load(std::memory_order_relaxed) != 0) {
        // Phase 3, deadline expired.  Most stragglers are parked on
        // a backend fetch that will never finish in time: fail every
        // in-flight fetch fast (completions become -ERR replies),
        // grant a short grace to flush those, then abort the rest.
        report.deadlineExpired = true;
        report.failedFetches = service_.failInflight(
            "server draining: backend fetch abandoned at the drain "
            "deadline");
        const double graceUntilMs = elapsedMs() + 250.0;
        while (liveConns_.load(std::memory_order_relaxed) != 0 &&
               elapsedMs() < graceUntilMs)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));

        report.forcedCloses =
            liveConns_.load(std::memory_order_relaxed);
        for (auto &worker : workers_) {
            Worker *raw = worker.get();
            raw->loop.post([raw] {
                std::vector<std::shared_ptr<Connection>> open;
                open.reserve(raw->conns.size());
                for (auto &[fd, conn] : raw->conns)
                    open.push_back(conn);
                for (auto &conn : open)
                    conn->abort();
            });
        }
        // Aborts are synchronous once the post runs; bounded wait.
        const double abortUntilMs = elapsedMs() + 250.0;
        while (liveConns_.load(std::memory_order_relaxed) != 0 &&
               elapsedMs() < abortUntilMs)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }

    report.drainMs = elapsedMs();
    lastDrain_ = report;
    return report;
}

NetStats
NetServer::stats() const
{
    NetStats total;
    for (const auto &worker : workers_) {
        const WorkerStats &s = worker->stats;
        total.connectionsAccepted +=
            s.connectionsAccepted.load(std::memory_order_relaxed);
        total.connectionsClosed +=
            s.connectionsClosed.load(std::memory_order_relaxed);
        total.cmdGet += s.cmdGet.load(std::memory_order_relaxed);
        total.cmdSet += s.cmdSet.load(std::memory_order_relaxed);
        total.cmdDel += s.cmdDel.load(std::memory_order_relaxed);
        total.cmdPing += s.cmdPing.load(std::memory_order_relaxed);
        total.cmdInfo += s.cmdInfo.load(std::memory_order_relaxed);
        total.errorReplies +=
            s.errorReplies.load(std::memory_order_relaxed);
        total.protocolErrors +=
            s.protocolErrors.load(std::memory_order_relaxed);
        total.bytesIn += s.bytesIn.load(std::memory_order_relaxed);
        total.bytesOut += s.bytesOut.load(std::memory_order_relaxed);
        total.backpressureStalls +=
            s.backpressureStalls.load(std::memory_order_relaxed);
        total.shedOps += s.shedOps.load(std::memory_order_relaxed);
        total.idleClosed +=
            s.idleClosed.load(std::memory_order_relaxed);
        total.deadlineClosed +=
            s.deadlineClosed.load(std::memory_order_relaxed);
        total.capacityRejections +=
            s.capacityRejections.load(std::memory_order_relaxed);
        total.chaosShortWrites +=
            s.chaosShortWrites.load(std::memory_order_relaxed);
        total.chaosDeferredAccepts +=
            s.chaosDeferredAccepts.load(std::memory_order_relaxed);
        total.chaosResets +=
            s.chaosResets.load(std::memory_order_relaxed);
        if (!running_.load(std::memory_order_acquire))
            total.wireLatencyNs.merge(s.wireLatencyNs);
    }
    return total;
}

std::string
NetServer::infoText() const
{
    const ServeTotals t = service_.totals();
    const NetStats n = stats();
    std::string out;
    out.reserve(768);
    out += "# serve\n";
    out += "policy:" + service_.policyName() + "\n";
    line(out, "shards", service_.numShards());
    line(out, "stripes", service_.numStripes());
    out += "hitpath:";
    out += hitPathName(service_.config().hitPath);
    out += '\n';
    line(out, "gets", t.gets);
    line(out, "hits", t.hits);
    line(out, "misses", t.misses);
    out += "hitRatio:" + numFull(t.hitRatio()) + "\n";
    line(out, "stores", t.stores);
    line(out, "storeHits", t.storeHits);
    line(out, "evictions", t.evictions);
    line(out, "trackedKeys", t.trackedKeys);
    out += "missCostNs:" + numFull(t.missCostNs) + "\n";
    out += "storeCostNs:" + numFull(t.storeCostNs) + "\n";
    line(out, "seqlockHits", t.seqlockHits);
    line(out, "seqlockRetries", t.seqlockRetries);
    line(out, "lockedFallbacks", t.lockedFallbacks);
    line(out, "logFullFallbacks", t.logFullFallbacks);
    line(out, "backendFetches", t.backendFetches);
    line(out, "coalescedMisses", t.coalescedMisses);
    // The robustness block: shedOps is folded in from the net tier
    // (the service itself never sheds), the rest come from the
    // service's breakers and stale-serve counters.
    line(out, "shedOps", n.shedOps);
    line(out, "breakerOpens", t.breakerOpens);
    line(out, "breakerFastFails", t.breakerFastFails);
    line(out, "staleServes", t.staleServes);
    out += "# net\n";
    line(out, "connectionsAccepted", n.connectionsAccepted);
    line(out, "connectionsClosed", n.connectionsClosed);
    line(out, "cmdGet", n.cmdGet);
    line(out, "cmdSet", n.cmdSet);
    line(out, "cmdDel", n.cmdDel);
    line(out, "cmdPing", n.cmdPing);
    line(out, "cmdInfo", n.cmdInfo);
    line(out, "errorReplies", n.errorReplies);
    line(out, "protocolErrors", n.protocolErrors);
    line(out, "bytesIn", n.bytesIn);
    line(out, "bytesOut", n.bytesOut);
    line(out, "backpressureStalls", n.backpressureStalls);
    line(out, "idleClosed", n.idleClosed);
    line(out, "deadlineClosed", n.deadlineClosed);
    line(out, "capacityRejections", n.capacityRejections);
    line(out, "chaosShortWrites", n.chaosShortWrites);
    line(out, "chaosDeferredAccepts", n.chaosDeferredAccepts);
    line(out, "chaosResets", n.chaosResets);
    return out;
}

void
NetServer::exportMetrics(MetricRegistry &registry) const
{
    const NetStats n = stats();
    registry.setCounter("net.connections.accepted",
                        n.connectionsAccepted);
    registry.setCounter("net.connections.closed",
                        n.connectionsClosed);
    registry.setCounter("net.cmd.get", n.cmdGet);
    registry.setCounter("net.cmd.set", n.cmdSet);
    registry.setCounter("net.cmd.del", n.cmdDel);
    registry.setCounter("net.cmd.ping", n.cmdPing);
    registry.setCounter("net.cmd.info", n.cmdInfo);
    registry.setCounter("net.error_replies", n.errorReplies);
    registry.setCounter("net.protocol_errors", n.protocolErrors);
    registry.setCounter("net.bytes.in", n.bytesIn);
    registry.setCounter("net.bytes.out", n.bytesOut);
    registry.setCounter("net.backpressure_stalls",
                        n.backpressureStalls);
    registry.setCounter("net.sheds", n.shedOps);
    registry.setCounter("net.idle_closed", n.idleClosed);
    registry.setCounter("net.deadline_closed", n.deadlineClosed);
    registry.setCounter("net.capacity_rejections",
                        n.capacityRejections);
    registry.setCounter("net.chaos.short_writes",
                        n.chaosShortWrites);
    registry.setCounter("net.chaos.deferred_accepts",
                        n.chaosDeferredAccepts);
    registry.setCounter("net.chaos.resets", n.chaosResets);
    registry.setCounter("net.drain.drained_conns",
                        lastDrain_.drainedConns);
    registry.setCounter("net.drain.forced_closes",
                        lastDrain_.forcedCloses);
    registry.setCounter("net.drain.failed_fetches",
                        lastDrain_.failedFetches);
    registry.setCounter("net.drain.deadline_expired",
                        lastDrain_.deadlineExpired ? 1 : 0);
    registry.recordTimerSec("net.drain.duration",
                            lastDrain_.drainMs / 1000.0);
    registry.mergeHistogram("net.wire_latency_ns", n.wireLatencyNs);
}

ServeTotals
parseInfoTotals(const std::string &info)
{
    ServeTotals t;
    std::size_t at = 0;
    bool in_serve = false;
    while (at < info.size()) {
        std::size_t end = info.find('\n', at);
        if (end == std::string::npos)
            end = info.size();
        const std::string row = info.substr(at, end - at);
        at = end + 1;
        if (!row.empty() && row[0] == '#') {
            in_serve = row == "# serve";
            continue;
        }
        if (!in_serve)
            continue;
        const std::size_t colon = row.find(':');
        if (colon == std::string::npos)
            continue;
        const std::string key = row.substr(0, colon);
        const std::string value = row.substr(colon + 1);
        const auto u64 = [&value]() -> std::uint64_t {
            return std::strtoull(value.c_str(), nullptr, 10);
        };
        if (key == "gets")
            t.gets = u64();
        else if (key == "hits")
            t.hits = u64();
        else if (key == "misses")
            t.misses = u64();
        else if (key == "stores")
            t.stores = u64();
        else if (key == "storeHits")
            t.storeHits = u64();
        else if (key == "evictions")
            t.evictions = u64();
        else if (key == "trackedKeys")
            t.trackedKeys = u64();
        else if (key == "missCostNs")
            t.missCostNs = std::strtod(value.c_str(), nullptr);
        else if (key == "storeCostNs")
            t.storeCostNs = std::strtod(value.c_str(), nullptr);
        else if (key == "seqlockHits")
            t.seqlockHits = u64();
        else if (key == "seqlockRetries")
            t.seqlockRetries = u64();
        else if (key == "lockedFallbacks")
            t.lockedFallbacks = u64();
        else if (key == "logFullFallbacks")
            t.logFullFallbacks = u64();
        else if (key == "backendFetches")
            t.backendFetches = u64();
        else if (key == "coalescedMisses")
            t.coalescedMisses = u64();
        else if (key == "shedOps")
            t.shedOps = u64();
        else if (key == "breakerOpens")
            t.breakerOpens = u64();
        else if (key == "breakerFastFails")
            t.breakerFastFails = u64();
        else if (key == "staleServes")
            t.staleServes = u64();
    }
    return t;
}

} // namespace csr::serve::net
