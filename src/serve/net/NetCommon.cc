#include "serve/net/NetCommon.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

#include "robust/Errors.h"

namespace csr::serve::net
{

void
ScopedFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::string
errnoText(int err)
{
    return "errno " + std::to_string(err) + " (" +
           std::strerror(err) + ")";
}

std::pair<std::string, std::uint16_t>
parseHostPort(const std::string &spec)
{
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos)
        throw ConfigError("bad address '" + spec +
                          "' (expected HOST:PORT or :PORT)");
    std::string host = spec.substr(0, colon);
    if (host.empty())
        host = "127.0.0.1";
    const std::string port_text = spec.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos)
        throw ConfigError("bad port '" + port_text + "' in '" + spec +
                          "' (expected 0-65535; 0 = ephemeral)");
    unsigned long port = 0;
    try {
        port = std::stoul(port_text);
    } catch (const std::exception &) {
        port = 65536; // force the range error below
    }
    if (port > 65535)
        throw ConfigError("port " + port_text +
                          " out of range (0-65535)");
    in_addr probe{};
    if (inet_pton(AF_INET, host.c_str(), &probe) != 1)
        throw ConfigError("bad host '" + host + "' in '" + spec +
                          "' (expected an IPv4 dotted quad, e.g. "
                          "127.0.0.1)");
    return {host, static_cast<std::uint16_t>(port)};
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw NetError("fcntl(O_NONBLOCK) failed: " +
                       errnoText(errno));
}

} // namespace csr::serve::net
