/**
 * @file
 * A small blocking RESP client: what the load harness's --connect
 * mode and the loopback tests speak to a NetServer with.
 *
 * Deliberately synchronous -- the *client* side of the harness wants
 * bounded, explicit pipelining (send W requests, then read W
 * replies), not another event loop.  send() only buffers; flush()
 * writes; readReply() blocks (bounded by the socket timeout) for one
 * complete reply.  The reply decoder accepts exactly what NetServer
 * emits: simple strings, errors, integers and bulk strings.
 */

#ifndef CSR_SERVE_NET_RESPCLIENT_H
#define CSR_SERVE_NET_RESPCLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/NetCommon.h"

namespace csr::serve::net
{

class RespClient
{
  public:
    /** One decoded server reply. */
    struct Reply
    {
        char type = '\0'; ///< '+', '-', ':' or '$'
        std::string text; ///< payload ('-' includes the message)
        std::int64_t integer = 0; ///< valid when type == ':'
        bool isNull = false;      ///< $-1

        bool isError() const { return type == '-'; }
    };

    /**
     * Connect to @p host:@p port.  @p timeout_sec bounds connect and
     * every subsequent read (TimeoutError on expiry); 0 = no bound.
     * @throws NetError when the peer refuses.
     */
    RespClient(const std::string &host, std::uint16_t port,
               double timeout_sec = 30.0);
    ~RespClient() = default;

    RespClient(const RespClient &) = delete;
    RespClient &operator=(const RespClient &) = delete;

    /** Encode @p argv as a multibulk command into the send buffer. */
    void send(const std::vector<std::string> &argv);

    /** Write the whole send buffer.  @throws NetError. */
    void flush();

    /** Block for the next reply.  @throws TimeoutError / NetError
     *  (a malformed or array reply is a NetError). */
    Reply readReply();

    /** send + flush + readReply, for unpipelined use. */
    Reply roundTrip(const std::vector<std::string> &argv);

  private:
    /** Pull more bytes off the socket into buffer_. */
    void fillBuffer();

    /** Blocking: return one full CRLF-terminated line sans CRLF. */
    std::string readLine();

    ScopedFd fd_;
    std::string sendBuf_;
    std::string buffer_;
    std::size_t pos_ = 0;
    /** Configured socket timeout, kept for error messages (so a
     *  timeout names the bound that expired, not just "timed out"). */
    double timeoutSec_ = 0.0;
};

} // namespace csr::serve::net

#endif // CSR_SERVE_NET_RESPCLIENT_H
