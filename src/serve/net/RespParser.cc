#include "serve/net/RespParser.h"

#include <cstdint>

namespace csr::serve::net
{

RespParser::RespParser(const RespLimits &limits) : limits_(limits) {}

void
RespParser::feed(const char *data, std::size_t n)
{
    if (broken_)
        return; // latched: the connection is already condemned
    // Compact before growing: everything before pos_ is decoded
    // commands' bytes, dead weight a pipelining client would
    // otherwise accumulate forever.
    if (pos_ > 0 && (pos_ == buffer_.size() || pos_ >= 4096)) {
        buffer_.erase(0, pos_);
        pos_ = 0;
    }
    buffer_.append(data, n);
}

std::size_t
RespParser::findCrlf(std::size_t from) const
{
    const std::size_t at = buffer_.find("\r\n", from);
    return at;
}

bool
RespParser::parseLength(std::size_t from, std::size_t end,
                        std::uint64_t &value) const
{
    if (from >= end)
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = from; i < end; ++i) {
        const char c = buffer_[i];
        if (c < '0' || c > '9')
            return false;
        if (v > (UINT64_MAX - 9) / 10)
            return false; // would overflow; reject rather than wrap
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    value = v;
    return true;
}

RespParseStatus
RespParser::fail(const std::string &why)
{
    broken_ = true;
    error_ = why;
    return RespParseStatus::ProtocolError;
}

RespParseStatus
RespParser::next(RespCommand &out)
{
    if (broken_)
        return RespParseStatus::ProtocolError;
    // Inline empty lines (bare CRLF) are ignored, so loop past them.
    while (true) {
        if (pos_ >= buffer_.size())
            return RespParseStatus::NeedMore;
        if (buffer_[pos_] == '*')
            return nextMultibulk(out);
        const RespParseStatus status = nextInline(out);
        if (status != RespParseStatus::Command || !out.argv.empty())
            return status;
        // Blank inline line: consumed; try again for a real command.
    }
}

RespParseStatus
RespParser::nextMultibulk(RespCommand &out)
{
    std::size_t cursor = pos_; // committed to pos_ only on success
    const std::size_t header_end = findCrlf(cursor + 1);
    if (header_end == std::string::npos) {
        if (buffer_.size() - cursor > limits_.maxInlineBytes)
            return fail("multibulk header exceeds " +
                        std::to_string(limits_.maxInlineBytes) +
                        " bytes without CRLF");
        return RespParseStatus::NeedMore;
    }
    std::uint64_t count = 0;
    if (!parseLength(cursor + 1, header_end, count))
        return fail("invalid multibulk length '" +
                    buffer_.substr(cursor + 1,
                                   header_end - cursor - 1) +
                    "'");
    if (count == 0 || count > limits_.maxArrayElements)
        return fail("multibulk of " + std::to_string(count) +
                    " elements outside [1, " +
                    std::to_string(limits_.maxArrayElements) + "]");
    cursor = header_end + 2;

    std::vector<std::string> argv;
    argv.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        if (cursor >= buffer_.size())
            return RespParseStatus::NeedMore;
        if (buffer_[cursor] != '$')
            return fail(std::string("expected '$' bulk header, got '") +
                        buffer_[cursor] + "'");
        const std::size_t len_end = findCrlf(cursor + 1);
        if (len_end == std::string::npos) {
            if (buffer_.size() - cursor > 32)
                return fail("bulk length header without CRLF");
            return RespParseStatus::NeedMore;
        }
        std::uint64_t len = 0;
        if (!parseLength(cursor + 1, len_end, len))
            return fail("invalid bulk length '" +
                        buffer_.substr(cursor + 1,
                                       len_end - cursor - 1) +
                        "'");
        if (len > limits_.maxBulkBytes)
            return fail("bulk of " + std::to_string(len) +
                        " bytes exceeds limit " +
                        std::to_string(limits_.maxBulkBytes));
        const std::size_t payload = len_end + 2;
        if (payload + len + 2 > buffer_.size())
            return RespParseStatus::NeedMore;
        if (buffer_[payload + len] != '\r' ||
            buffer_[payload + len + 1] != '\n')
            return fail("bulk payload not terminated by CRLF");
        argv.emplace_back(buffer_, payload, len);
        cursor = payload + len + 2;
    }
    out.argv = std::move(argv);
    pos_ = cursor;
    return RespParseStatus::Command;
}

RespParseStatus
RespParser::nextInline(RespCommand &out)
{
    const std::size_t line_end = findCrlf(pos_);
    if (line_end == std::string::npos) {
        if (buffer_.size() - pos_ > limits_.maxInlineBytes)
            return fail("inline command exceeds " +
                        std::to_string(limits_.maxInlineBytes) +
                        " bytes without CRLF");
        return RespParseStatus::NeedMore;
    }
    if (line_end - pos_ > limits_.maxInlineBytes)
        return fail("inline command exceeds " +
                    std::to_string(limits_.maxInlineBytes) + " bytes");
    out.argv.clear();
    std::size_t i = pos_;
    while (i < line_end) {
        while (i < line_end &&
               (buffer_[i] == ' ' || buffer_[i] == '\t'))
            ++i;
        std::size_t start = i;
        while (i < line_end && buffer_[i] != ' ' && buffer_[i] != '\t')
            ++i;
        if (i > start)
            out.argv.emplace_back(buffer_, start, i - start);
    }
    pos_ = line_end + 2;
    return RespParseStatus::Command;
}

} // namespace csr::serve::net
