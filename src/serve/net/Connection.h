/**
 * @file
 * One RESP connection on one event-loop thread (DESIGN.md 3.7).
 *
 * A Connection owns a socket, an incremental RespParser, a write
 * buffer, and a queue of *reply slots*.  The slot queue is what
 * keeps pipelining correct under asynchronous misses: RESP replies
 * must be delivered in request order, but a GET that misses
 * completes whenever its backend fetch does -- possibly after a
 * later GET in the same pipeline hit in cache.  Each request
 * therefore claims the next slot at decode time; completions fill
 * their slot whenever they land; and only the contiguous ready
 * prefix is ever flushed to the socket.
 *
 * Backpressure is two-sided and entirely local to the connection:
 *
 *  - maxPendingOps unfilled slots -> stop reading (EPOLLIN off)
 *    until completions drain the queue.  A client that pipelines
 *    faster than the backend answers fills its socket buffer, not
 *    our memory.
 *  - writeWatermark buffered reply bytes -> same.  A client that
 *    never reads its replies is throttled the same way.
 *
 * Threading: every method runs on the owning loop's thread.  Async
 * completions from other threads marshal themselves back via
 * EventLoop::post() holding only a weak_ptr, so a connection that
 * died while a fetch was in flight is simply skipped.
 */

#ifndef CSR_SERVE_NET_CONNECTION_H
#define CSR_SERVE_NET_CONNECTION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "robust/NetChaos.h"
#include "serve/CacheService.h"
#include "serve/net/EventLoop.h"
#include "serve/net/RespParser.h"
#include "util/Stats.h"

namespace csr::serve::net
{

/** Per-connection resource bounds (one instance per server). */
struct NetTuning
{
    /** Unreplied pipelined requests before reads pause. */
    std::size_t maxPendingOps = 128;
    /** Buffered reply bytes before reads pause. */
    std::size_t writeWatermark = 1 << 20;
    /** Close a connection with no traffic and no pending work after
     *  this long (0 = never).  Keeps idle-forever peers from pinning
     *  fds. */
    double idleTimeoutMs = 60'000.0;
    /** Close a connection that started a command frame but has not
     *  finished it after this long (0 = never) -- the slow-loris
     *  defense: a peer trickling one byte per second cannot hold a
     *  partial frame open indefinitely. */
    double readDeadlineMs = 30'000.0;
    /** Server-wide pending-op count past which new data commands are
     *  answered -BUSY instead of queued (0 = never shed). */
    std::size_t shedPendingOps = 4096;
    /** Server-wide buffered reply bytes past which new data commands
     *  are answered -BUSY (0 = never shed). */
    std::size_t shedWriteBytes = 32u << 20;
    RespLimits limits;
};

/**
 * Server-wide load aggregates feeding admission control.  Relaxed
 * atomics: every worker's connections bump them, and the shed
 * decision tolerates a momentarily stale read -- the watermark is a
 * pressure valve, not an exact bound.
 */
struct WorkerLoad
{
    std::atomic<std::uint64_t> pendingOps{0};
    std::atomic<std::uint64_t> bufferedBytes{0};
};

/**
 * Counters one worker's connections mutate.  Counters are relaxed
 * atomics so INFO (which runs on whichever worker got the request)
 * can read every worker's numbers live; the latency histogram is
 * loop-thread-only and merged after the loops join.
 */
struct WorkerStats
{
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> connectionsClosed{0};
    std::atomic<std::uint64_t> cmdGet{0};
    std::atomic<std::uint64_t> cmdSet{0};
    std::atomic<std::uint64_t> cmdDel{0};
    std::atomic<std::uint64_t> cmdPing{0};
    std::atomic<std::uint64_t> cmdInfo{0};
    std::atomic<std::uint64_t> errorReplies{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> bytesIn{0};
    std::atomic<std::uint64_t> bytesOut{0};
    std::atomic<std::uint64_t> backpressureStalls{0};
    /** Data commands answered -BUSY by admission control. */
    std::atomic<std::uint64_t> shedOps{0};
    /** Connections closed by the idle timeout. */
    std::atomic<std::uint64_t> idleClosed{0};
    /** Connections closed by the partial-frame read deadline. */
    std::atomic<std::uint64_t> deadlineClosed{0};
    /** Accepts refused at --max-conns with "-ERR server at
     *  capacity". */
    std::atomic<std::uint64_t> capacityRejections{0};
    /** Chaos-injected short writes / deferred accepts / resets. */
    std::atomic<std::uint64_t> chaosShortWrites{0};
    std::atomic<std::uint64_t> chaosDeferredAccepts{0};
    std::atomic<std::uint64_t> chaosResets{0};
    /** Decode-to-reply-ready time per request; loop thread only. */
    Histogram wireLatencyNs{0.0, 1.0e7, 512};
};

/** Everything a Connection borrows from its server + worker. */
struct ConnectionContext
{
    EventLoop &loop;
    CacheService &service;
    const NetTuning &tuning;
    WorkerStats &stats;
    /** Server-wide admission-control aggregates. */
    WorkerLoad &load;
    /** Wire chaos config (rate 0 = off). */
    const ChaosConfig &chaos;
    /** Server-unique connection ordinal; keys chaos draws. */
    std::uint64_t serial = 0;
    /** Builds the INFO payload (server-wide view). */
    std::function<std::string()> infoText;
    /** Called once, on the loop thread, after the fd is closed; the
     *  owner drops its shared_ptr here. */
    std::function<void(int fd)> onClosed;
};

class Connection : public std::enable_shared_from_this<Connection>
{
  public:
    /** Takes ownership of @p fd (must be non-blocking). */
    Connection(ConnectionContext ctx, int fd);
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Register with the loop.  Call once, after shared_ptr
     *  construction (the handler keeps the connection alive). */
    void open();

    /**
     * Graceful-drain entry (loop thread only): stop reading, let
     * every claimed reply slot complete and flush, then close.  Bytes
     * already received but not yet decoded into a command are
     * dropped -- the drain contract is one reply per *accepted*
     * command, and a command is accepted when its frame decodes.
     * Idempotent.
     */
    void beginDrain();

    /** Hard-deadline close (loop thread only): drop everything,
     *  close the fd now.  Idempotent. */
    void abort();

    /** Pending work that beginDrain() would wait for (loop thread
     *  only): unflushed replies or unfinished async completions. */
    bool drainPending() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct ReplySlot
    {
        std::string data;
        Clock::time_point start;
        bool ready = false;
    };

    void onEvents(std::uint32_t events);
    void onReadable();
    void onWritable();

    /** Either backpressure bound tripped: stop decoding/reading. */
    bool stalled() const;

    /** Decode + execute commands already fed to the parser, until it
     *  runs dry, the connection stalls, or a protocol error latches.
     *  Reentrancy-safe (synchronous replies land mid-loop). */
    void processBuffered();

    void execute(RespCommand &&cmd);
    void executeGet(const std::string &keyText);
    void executeSet(const std::string &keyText,
                    const std::string &valueText);

    /** Claim the next in-order reply slot; returns its id. */
    std::uint64_t allocSlot();
    /** Deliver @p reply into @p slot; flushes the ready prefix. */
    void fillSlot(std::uint64_t slot, std::string reply);
    /** Shorthand: alloc + fill for synchronously answered verbs. */
    void reply(std::string text);

    void flushReady();
    void flushOutput();
    void updateInterest();
    void maybeClose();
    void closeNow();

    /** Should this data command be refused with -BUSY right now? */
    bool shouldShed() const;

    /** Fire/re-arm the idle + read-deadline watcher. */
    void checkDeadlines();
    void armDeadlineTimer();
    /** Start/stop the partial-frame clock after a decode pass. */
    void notePartialFrame();

    ConnectionContext ctx_;
    int fd_;
    RespParser parser_;
    std::deque<ReplySlot> slots_;
    std::uint64_t baseSlot_ = 0;  ///< id of slots_.front()
    std::uint64_t nextSlot_ = 0;
    std::size_t unfilled_ = 0;    ///< slots awaiting completion
    std::string outBuf_;
    std::size_t outPos_ = 0;
    std::uint32_t interest_ = 0;  ///< currently registered mask
    bool peerClosed_ = false;     ///< read side saw EOF
    bool closeAfterReply_ = false;
    bool closed_ = false;
    bool processing_ = false;     ///< inside processBuffered()

    std::uint64_t lastActivityNs_ = 0;
    /** Monotonic time the current partial frame started; 0 = no
     *  partial frame outstanding. */
    std::uint64_t partialSinceNs_ = 0;
    EventLoop::TimerId deadlineTimer_ = 0; ///< 0 = not armed
    std::uint64_t cmdSeq_ = 0;   ///< commands executed (chaos key)
    std::uint64_t writeSeq_ = 0; ///< send() attempts (chaos key)
};

} // namespace csr::serve::net

#endif // CSR_SERVE_NET_CONNECTION_H
