/**
 * @file
 * Per-shard sequence lock for the lock-free hit path.
 *
 * Writers (which additionally hold the shard mutex, so they never
 * race each other) bump the version to odd before mutating the
 * probed state -- tag lane, valid words, value lane -- and back to
 * even afterwards.  Readers snapshot the version, read the state
 * with relaxed atomics (util/Atomics.h), and validate that the
 * version is unchanged and even; on failure the whole read is
 * discarded and retried (or falls back to the mutex).
 *
 * Memory ordering follows Boehm's seqlock construction: the
 * write-begin bump is an acq_rel RMW so the subsequent data stores
 * cannot be hoisted above it, the write-end bump is a release so the
 * data stores are visible before the even version, the reader's
 * begin load is an acquire so the data loads cannot float above it,
 * and validation issues an acquire fence so the re-read of the
 * version cannot complete before the data loads.  All participating
 * accesses are atomic, which also makes the protocol TSan-clean.
 */

#ifndef CSR_SERVE_SEQLOCK_H
#define CSR_SERVE_SEQLOCK_H

#include <atomic>
#include <cstdint>

namespace csr::serve
{

class Seqlock
{
  public:
    /** Snapshot the version before an optimistic read. */
    std::uint64_t
    readBegin() const
    {
        return seq_.load(std::memory_order_acquire);
    }

    /** True when a read begun at @p begin saw a stable snapshot. */
    bool
    readValidate(std::uint64_t begin) const
    {
        std::atomic_thread_fence(std::memory_order_acquire);
        return (begin & 1) == 0 &&
               seq_.load(std::memory_order_relaxed) == begin;
    }

    /** Version is odd while a writer is inside a write section. */
    void
    writeBegin()
    {
        seq_.fetch_add(1, std::memory_order_acq_rel);
    }

    void
    writeEnd()
    {
        seq_.fetch_add(1, std::memory_order_release);
    }

    /** Completed write sections (diagnostics). */
    std::uint64_t
    writeCount() const
    {
        return seq_.load(std::memory_order_relaxed) / 2;
    }

  private:
    std::atomic<std::uint64_t> seq_{0};
};

/** RAII write section; the caller must hold the shard mutex. */
class SeqlockWriteGuard
{
  public:
    explicit SeqlockWriteGuard(Seqlock &lock) : lock_(lock)
    {
        lock_.writeBegin();
    }

    ~SeqlockWriteGuard() { lock_.writeEnd(); }

    SeqlockWriteGuard(const SeqlockWriteGuard &) = delete;
    SeqlockWriteGuard &operator=(const SeqlockWriteGuard &) = delete;

  private:
    Seqlock &lock_;
};

} // namespace csr::serve

#endif // CSR_SERVE_SEQLOCK_H
