/**
 * @file
 * Deterministic request-stream generators for the serving layer.
 *
 * The load harness replays a single op stream -- (key, read|write)
 * pairs -- generated here from an explicit seed, so a run is a pure
 * function of its configuration.  Three reference access patterns
 * plus a uniform control:
 *
 *   zipf     YCSB-style Zipfian ranks scrambled over the keyspace
 *            (theta 0.99 by default), the canonical skewed KV load;
 *   hotspot  a hot fraction of the keyspace takes a fixed share of
 *            the accesses, the rest is uniform;
 *   scan     sequential wrap-around sweep, the adversarial streaming
 *            pattern that flushes recency-only policies;
 *   uniform  no locality at all (baseline).
 */

#ifndef CSR_SERVE_KEYGENERATOR_H
#define CSR_SERVE_KEYGENERATOR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/Random.h"
#include "util/Types.h"

namespace csr::serve
{

enum class KeyDist
{
    Uniform,
    Zipfian,
    Hotspot,
    Scan,
};

/** Parse "uniform" / "zipf" / "hotspot" / "scan" (case-insensitive);
 *  throws ConfigError listing the valid names on anything else. */
KeyDist parseKeyDist(const std::string &name);

/** Canonical distribution names, parse order, for diagnostics. */
const std::vector<std::string> &listKeyDistNames();

std::string keyDistName(KeyDist dist);

/** The request mix the harness generates. */
struct WorkloadMix
{
    KeyDist dist = KeyDist::Zipfian;
    std::uint64_t numKeys = 1 << 20;
    double zipfTheta = 0.99;     ///< Zipfian skew (YCSB default)
    double hotFraction = 0.1;    ///< hotspot: share of keys that are hot
    double hotProbability = 0.9; ///< hotspot: share of accesses to them
    double writeFraction = 0.05; ///< read/write mix

    /** Short "zipf(n=...,theta=...)" style label. */
    std::string describe() const;
};

/** One request. */
struct Op
{
    Addr key = 0;
    bool write = false;
    /** Invalidate instead of read/write (trace replay only; the
     *  synthetic generators never emit deletes). */
    bool del = false;
};

/** Distinct (numKeys, theta) pairs whose Zipfian normalizer has been
 *  computed so far (the O(numKeys) zeta sum is cached process-wide;
 *  tests assert repeated constructions share one entry). */
std::size_t zetaCacheEntries();

/**
 * Stateful generator of the op stream.  Draws come from one Rng, so
 * the stream depends only on (mix, seed) -- never on worker count or
 * timing.
 */
class KeyGenerator
{
  public:
    /** @throws ConfigError on out-of-range mix parameters. */
    KeyGenerator(const WorkloadMix &mix, std::uint64_t seed);

    Op next();

    const WorkloadMix &mix() const { return mix_; }

  private:
    Addr nextKey();
    Addr zipfianRank();

    WorkloadMix mix_;
    Rng rng_;
    Addr scanCursor_ = 0;
    // Precomputed Zipfian constants (Gray et al.; the YCSB generator).
    double zetaN_ = 0.0;
    double zipfAlpha_ = 0.0;
    double zipfEta_ = 0.0;
};

} // namespace csr::serve

#endif // CSR_SERVE_KEYGENERATOR_H
