#include "serve/SyntheticBackend.h"

#include <chrono>
#include <string>

#include "robust/Errors.h"
#include "util/CliArgs.h"
#include "util/Random.h"

namespace csr::serve
{

namespace
{

/** Map a 64-bit hash to a uniform double in [0, 1). */
double
unitOf(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

SyntheticBackendConfig
SyntheticBackendConfig::fromArgs(const CliArgs &args)
{
    SyntheticBackendConfig config;
    config.seed = args.seed(1);
    config.fastNs = args.getDouble("fast-ns", config.fastNs);
    config.slowNs = args.getDouble("slow-ns", config.slowNs);
    config.slowFraction =
        args.getDouble("slow-frac", config.slowFraction);
    config.jitterFraction =
        args.getDouble("jitter", config.jitterFraction);
    config.spin = args.has("spin");
    config.validate();
    return config;
}

void
SyntheticBackendConfig::validate() const
{
    if (slowFraction < 0.0 || slowFraction > 1.0)
        throw ConfigError("backend slow fraction must be in [0,1], got " +
                          std::to_string(slowFraction));
    if (jitterFraction < 0.0 || jitterFraction >= 1.0)
        throw ConfigError("backend jitter fraction must be in [0,1), "
                          "got " +
                          std::to_string(jitterFraction));
    if (fastNs <= 0.0 || slowNs < fastNs)
        throw ConfigError(
            "backend latencies must satisfy 0 < fast <= slow, got "
            "fast=" +
            std::to_string(fastNs) + " slow=" + std::to_string(slowNs));
    if (storeMultiplier <= 0.0)
        throw ConfigError("backend store multiplier must be positive");
}

SyntheticBackend::SyntheticBackend(const SyntheticBackendConfig &config)
    : config_(config)
{
    config_.validate();
}

bool
SyntheticBackend::isSlowKey(Addr key) const
{
    const std::uint64_t h = hashMix64(config_.seed ^ hashMix64(key));
    return unitOf(h) < config_.slowFraction;
}

double
SyntheticBackend::baseLatencyNs(Addr key) const
{
    return isSlowKey(key) ? config_.slowNs : config_.fastNs;
}

std::uint64_t
SyntheticBackend::valueOf(Addr key) const
{
    return hashMix64(key + 0x9E3779B97F4A7C15ull * config_.seed);
}

double
SyntheticBackend::latencyNs(Addr key, std::uint64_t salt,
                            double multiplier) const
{
    const double base = baseLatencyNs(key) * multiplier;
    if (config_.jitterFraction == 0.0)
        return base;
    const std::uint64_t h = hashMix64(
        (config_.seed * 3 + 1) ^ hashMix64(key) ^ (salt + 1) * 0x9E37ull);
    const double unit = 2.0 * unitOf(h) - 1.0; // [-1, 1)
    return base * (1.0 + config_.jitterFraction * unit);
}

void
SyntheticBackend::maybeSpin(double ns) const
{
    if (!config_.spin)
        return;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::nanoseconds(
                           static_cast<std::int64_t>(ns));
    while (std::chrono::steady_clock::now() < until) {
        // Busy-wait: the simulated latency becomes wall-clock time.
    }
}

BackendResult
SyntheticBackend::fetch(Addr key, std::uint64_t salt)
{
    BackendResult result;
    result.value = valueOf(key);
    result.latencyNs = latencyNs(key, salt, 1.0);
    maybeSpin(result.latencyNs);
    return result;
}

void
SyntheticBackend::fetchAsync(Addr key, std::uint64_t salt,
                             FetchCallback done)
{
    // Deterministic by construction: the same (seed, key, salt) pure
    // function as fetch(), completed inline.  No thread hop means the
    // async path cannot reorder against the sync one.
    done(fetch(key, salt), nullptr);
}

BackendResult
SyntheticBackend::store(Addr key, std::uint64_t value, std::uint64_t salt)
{
    (void)value; // the canonical payload is derived, not stored
    BackendResult result;
    result.value = value;
    result.latencyNs = latencyNs(key, salt, config_.storeMultiplier);
    maybeSpin(result.latencyNs);
    return result;
}

std::string
SyntheticBackend::describe() const
{
    return "synthetic(fast=" + std::to_string(config_.fastNs) +
           "ns slow=" + std::to_string(config_.slowNs) +
           "ns slow-frac=" + std::to_string(config_.slowFraction) +
           " jitter=" + std::to_string(config_.jitterFraction) +
           (config_.spin ? " spin" : "") + ")";
}

} // namespace csr::serve
