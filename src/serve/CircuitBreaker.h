/**
 * @file
 * Per-shard circuit breaker over Backend::fetchAsync.
 *
 * A wedged backend tier must not park every event-loop waiter on the
 * inflight-wait timeout: after enough consecutive fetch timeouts or a
 * high-enough failure rate over a rolling window, the breaker trips
 * OPEN and subsequent misses against the shard fail fast with
 * CircuitOpenError (or serve a stale resident value when the service
 * runs --stale-while-broken).  After an exponential backoff with
 * deterministic seeded jitter the breaker admits exactly one PROBE
 * fetch (HALF-OPEN); a probe success closes the circuit and resets
 * the backoff exponent, a probe failure reopens it with the next
 * backoff step.
 *
 *        +--------+  trip (rate/timeouts)   +------+
 *        | CLOSED | ----------------------> | OPEN |<----+
 *        +--------+                         +------+     |
 *             ^                                |         |
 *             | probe ok        backoff expiry |         | probe
 *             |                                v         | fails
 *             |                          +-----------+   |
 *             +------------------------- | HALF-OPEN | --+
 *                                        +-----------+
 *
 * Time is caller-supplied (now_ns) so the state machine is unit
 * testable without sleeping; jitter is a pure function of
 * (seed, breaker id, trip count) so two runs of the same seeded
 * workload back off identically.  The breaker carries its own mutex:
 * one instance is shared by every stripe of a shard, and admit() is
 * only reached on the miss path, so the lock is far off the hit path.
 */

#ifndef CSR_SERVE_CIRCUITBREAKER_H
#define CSR_SERVE_CIRCUITBREAKER_H

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "robust/Errors.h"
#include "util/Random.h"

namespace csr::serve
{

/** Breaker knobs (csrserve --breaker-* flags). */
struct BreakerConfig
{
    bool enabled = true;
    /** Rolling outcome window per breaker. */
    unsigned windowOps = 32;
    /** Minimum outcomes in the window before the rate can trip. */
    unsigned minSamples = 16;
    /** Failure fraction over the window that trips the breaker. */
    double failureRateThreshold = 0.5;
    /** Consecutive fetch timeouts that trip it regardless of rate. */
    unsigned consecutiveTimeouts = 4;
    double backoffInitialMs = 100.0;
    double backoffMaxMs = 5000.0;
    /** Backoff jitter: each open period is scaled by a deterministic
     *  factor in [1-j, 1+j]. */
    double jitterFraction = 0.2;
    /** Seeds the jitter draws (the serve seed). */
    std::uint64_t seed = 0;
    /** While open, a GET whose key is still resident serves the last
     *  installed value (marked non-fresh) instead of failing fast. */
    bool staleWhileBroken = false;

    /** Consume --breaker-* / --stale-while-broken flags (templated on
     *  the CliArgs accessor surface, like ChaosConfig::fromArgs). */
    template <typename Args>
    static BreakerConfig fromArgs(const Args &args)
    {
        BreakerConfig cfg;
        cfg.enabled = args.getUInt("breaker", 1) != 0;
        cfg.windowOps = static_cast<unsigned>(
            args.getUInt("breaker-window", cfg.windowOps));
        cfg.failureRateThreshold = args.getDouble(
            "breaker-rate", cfg.failureRateThreshold);
        cfg.consecutiveTimeouts = static_cast<unsigned>(args.getUInt(
            "breaker-timeouts", cfg.consecutiveTimeouts));
        cfg.backoffInitialMs = args.getDouble("breaker-backoff-ms",
                                              cfg.backoffInitialMs);
        cfg.backoffMaxMs = args.getDouble("breaker-backoff-max-ms",
                                          cfg.backoffMaxMs);
        cfg.staleWhileBroken = args.has("stale-while-broken");
        cfg.minSamples = std::min(cfg.minSamples, cfg.windowOps);
        return cfg;
    }

    /** @throws ConfigError on out-of-range values. */
    void validate() const
    {
        if (windowOps == 0)
            throw ConfigError("--breaker-window must be >= 1");
        if (failureRateThreshold <= 0.0 ||
            failureRateThreshold > 1.0)
            throw ConfigError(
                "--breaker-rate must be in (0, 1], got " +
                std::to_string(failureRateThreshold));
        if (consecutiveTimeouts == 0)
            throw ConfigError("--breaker-timeouts must be >= 1");
        if (backoffInitialMs <= 0.0 ||
            backoffMaxMs < backoffInitialMs)
            throw ConfigError("--breaker-backoff-ms must be > 0 and "
                              "<= --breaker-backoff-max-ms");
        if (jitterFraction < 0.0 || jitterFraction >= 1.0)
            throw ConfigError("breaker jitter must be in [0, 1)");
    }
};

class CircuitBreaker
{
  public:
    enum class State
    {
        Closed,
        Open,
        HalfOpen
    };

    /** admit() verdict for one would-be backend fetch. */
    enum class Admit
    {
        Proceed,  ///< circuit closed, fetch normally
        Probe,    ///< half-open: this fetch is the probe
        FailFast, ///< open: do not fetch
    };

    CircuitBreaker(const BreakerConfig &config, unsigned id)
        : config_(config), id_(id)
    {
        window_.reserve(config_.windowOps);
    }

    /** May this miss start a backend fetch at @p now_ns?  A Probe
     *  verdict claims the half-open slot; the caller must report the
     *  probe's outcome via onSuccess/onFailure. */
    Admit admit(std::uint64_t now_ns)
    {
        if (!config_.enabled)
            return Admit::Proceed;
        std::lock_guard<std::mutex> lock(mutex_);
        switch (state_) {
        case State::Closed:
            return Admit::Proceed;
        case State::Open:
            if (now_ns < openUntilNs_) {
                ++fastFails_;
                return Admit::FailFast;
            }
            state_ = State::HalfOpen;
            probeInFlight_ = true;
            return Admit::Probe;
        case State::HalfOpen:
            if (probeInFlight_) {
                ++fastFails_;
                return Admit::FailFast;
            }
            probeInFlight_ = true;
            return Admit::Probe;
        }
        return Admit::Proceed; // unreachable
    }

    void onSuccess(std::uint64_t now_ns)
    {
        (void)now_ns;
        if (!config_.enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        consecutiveTimeouts_ = 0;
        if (state_ == State::HalfOpen) {
            // Probe succeeded: close and forget the whole episode.
            state_ = State::Closed;
            probeInFlight_ = false;
            trips_ = 0;
            window_.clear();
            windowPos_ = 0;
            return;
        }
        recordOutcome(false);
    }

    void onFailure(bool timeout, std::uint64_t now_ns)
    {
        if (!config_.enabled)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        consecutiveTimeouts_ =
            timeout ? consecutiveTimeouts_ + 1 : 0;
        if (state_ == State::HalfOpen) {
            // Probe failed: next backoff step.
            probeInFlight_ = false;
            trip(now_ns);
            return;
        }
        if (state_ != State::Closed)
            return; // late completion from before the trip
        recordOutcome(true);
        if (consecutiveTimeouts_ >= config_.consecutiveTimeouts ||
            windowTripped())
            trip(now_ns);
    }

    State state() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return state_;
    }

    /** Closed -> Open transitions (including half-open reopens). */
    std::uint64_t opens() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return opens_;
    }

    /** Fetches refused while open / probe pending. */
    std::uint64_t fastFails() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return fastFails_;
    }

    const BreakerConfig &config() const { return config_; }

    /** The deterministic backoff for trip number @p trips (>= 1), in
     *  nanoseconds.  Exposed for tests pinning the jitter draw. */
    std::uint64_t backoffNs(unsigned trips) const
    {
        double ms = config_.backoffInitialMs;
        for (unsigned i = 1; i < trips && ms < config_.backoffMaxMs;
             ++i)
            ms *= 2.0;
        ms = std::min(ms, config_.backoffMaxMs);
        const std::uint64_t h = hashMix64(
            config_.seed ^ (id_ + 1) * 0x9E3779B97F4A7C15ull ^
            trips * 0xBF58476D1CE4E5B9ull);
        const double draw =
            static_cast<double>(h >> 11) * 0x1.0p-53;
        const double factor = 1.0 - config_.jitterFraction +
                              2.0 * config_.jitterFraction * draw;
        return static_cast<std::uint64_t>(ms * factor * 1.0e6);
    }

  private:
    void trip(std::uint64_t now_ns)
    {
        state_ = State::Open;
        ++trips_;
        ++opens_;
        openUntilNs_ = now_ns + backoffNs(trips_);
        window_.clear();
        windowPos_ = 0;
        consecutiveTimeouts_ = 0;
    }

    void recordOutcome(bool failure)
    {
        if (window_.size() < config_.windowOps) {
            window_.push_back(failure);
        } else {
            window_[windowPos_] = failure;
            windowPos_ = (windowPos_ + 1) % config_.windowOps;
        }
    }

    bool windowTripped() const
    {
        if (window_.size() < config_.minSamples)
            return false;
        const auto failures = static_cast<double>(
            std::count(window_.begin(), window_.end(), true));
        return failures / static_cast<double>(window_.size()) >=
               config_.failureRateThreshold;
    }

    const BreakerConfig config_;
    const unsigned id_;

    mutable std::mutex mutex_;
    State state_ = State::Closed;
    bool probeInFlight_ = false;
    unsigned trips_ = 0;
    unsigned consecutiveTimeouts_ = 0;
    std::uint64_t openUntilNs_ = 0;
    std::uint64_t opens_ = 0;
    std::uint64_t fastFails_ = 0;
    std::vector<bool> window_;
    std::size_t windowPos_ = 0;
};

} // namespace csr::serve

#endif // CSR_SERVE_CIRCUITBREAKER_H
