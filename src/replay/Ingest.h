/**
 * @file
 * Streaming text-trace ingestion (csrtrace convert).
 *
 * Converts delimited KV-trace dumps into .csrt one line at a time --
 * constant memory, any input size.  Two public-trace presets bake in
 * the column layout:
 *
 *   twitter  Twitter cluster-trace 2020 cache lines:
 *            ts(s),key,keySize,valueSize,client,op,ttl
 *   meta     Meta kvcache-style lines:
 *            ts(s),key,keySize,op,opCount,valueSize
 *
 * and the generic preset maps columns explicitly via --col-* flags.
 * Keys that are pure decimal integers are taken verbatim; anything
 * else is FNV-1a hashed to 64 bits (stable across runs and
 * platforms).  Rows with no timestamp column get synthetic 1us
 * spacing so replay pacing still has a monotone clock.
 */

#ifndef CSR_REPLAY_INGEST_H
#define CSR_REPLAY_INGEST_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace csr
{
class CliArgs;
}

namespace csr::replay
{

class TraceWriter;

/** Timestamp column unit. */
enum class TsUnit
{
    Ns,
    Us,
    Ms,
    S,
};

/** "ns"/"us"/"ms"/"s"; @throws ConfigError listing the names. */
TsUnit requireTsUnit(const std::string &name);

std::uint64_t tsUnitToNs(TsUnit unit);

struct IngestConfig
{
    /** Column indices, 0-based; -1 = the input has no such column. */
    int colTs = -1;
    int colKey = 0;
    int colOp = -1;   ///< absent => every row is a GET
    int colSize = -1; ///< absent => valueSize 0
    int colCost = -1; ///< absent => costHint 0 (replay default applies)
    char delim = ',';
    TsUnit tsUnit = TsUnit::Ns;
    /** Skip this many leading lines (column headers). */
    unsigned skipLines = 0;

    /**
     * Build from --preset twitter|meta|generic plus the --col-ts
     * --col-key --col-op --col-size --col-cost --delim --ts-unit
     * --skip-lines overrides.  @throws ConfigError listing accepted
     * values.
     */
    static IngestConfig fromArgs(const CliArgs &args);

    void validate() const;
};

struct IngestStats
{
    std::uint64_t lines = 0;   ///< input lines seen
    std::uint64_t records = 0; ///< records written
    std::uint64_t skipped = 0; ///< blank / comment lines
};

/**
 * Convert @p in line by line into @p writer (the caller finish()es
 * it).  @throws TraceFormatError naming the input line for rows with
 * too few columns, unparsable numbers, or unknown op names.
 */
IngestStats ingestText(std::istream &in, const IngestConfig &config,
                       TraceWriter &writer);

/** Map an op token (get/read, set/put/add/..., del/delete/remove,
 *  case-insensitive) to a TraceOp; @return false for unknown names. */
bool parseOpToken(const std::string &token, std::uint8_t &op_out);

/** A key token: pure decimal parses verbatim, anything else FNV-1a
 *  hashes to 64 bits. */
std::uint64_t keyOf(const std::string &token);

} // namespace csr::replay

#endif // CSR_REPLAY_INGEST_H
