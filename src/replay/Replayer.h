/**
 * @file
 * High-throughput .csrt replay straight through CacheModel.
 *
 * The replayer drives the paper's policies with a recorded KV trace:
 * every record's 64-bit key becomes a block-granular address (key ->
 * set/tag through CacheGeometry), GETs are lookups with a
 * fill-on-miss, SETs are write-allocates, DELs are invalidations, and
 * the per-record cost hint (falling back to --default-cost) is the
 * miss cost the cost-sensitive policies optimize.
 *
 * Determinism contract, same as the sweep engine's and the serve
 * harness's: the deterministic outputs are byte-identical for ANY
 * --jobs value.  The partition that makes that true is by cache SET,
 * not by trace segment -- job j owns every set s with s % jobs == j,
 * runs its own CacheModel + policy instance, and replays only the
 * owned subsequence *in global trace order*.  Sets are independent in
 * CacheModel and in every policy (victim selection, recency, ETDs are
 * all per-set), so the merged counters equal a single-threaded run's
 * exactly.  Cost totals accumulate in integer nanoseconds, so the
 * merge is associative -- no floating-point reassociation across
 * jobs.
 *
 * Each job decodes from its own TraceReader (mmap'd readers share the
 * page cache); a job skips records it does not own after decode,
 * which keeps the hot loop branch-light and the partition exact.
 */

#ifndef CSR_REPLAY_REPLAYER_H
#define CSR_REPLAY_REPLAYER_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "cache/PolicyFactory.h"
#include "replay/TraceReader.h"
#include "util/Table.h"

namespace csr
{
class CliArgs;
}

namespace csr::replay
{

/** Replay parameters (csrsim replay's flag surface). */
struct ReplayConfig
{
    std::string path;
    std::uint64_t cacheBytes = 1 << 20;
    std::uint32_t assoc = 8;
    std::uint32_t blockBytes = 64;
    PolicyKind policy = PolicyKind::Lru;
    PolicyParams policyParams;
    /** Worker threads; 0 = one per hardware thread. */
    unsigned jobs = 1;
    /** Replay only the first N records; 0 = the whole trace. */
    std::uint64_t maxOps = 0;
    /** Miss cost in ns for records whose cost hint is 0.  Integral on
     *  purpose: cost totals sum exactly, in any order. */
    std::uint64_t defaultCostNs = 1000;
    ReadMode readMode = ReadMode::Mmap;

    /**
     * Read --file --cache-bytes --assoc --block-bytes --policy
     * --alias-bits --depreciation --jobs --max-ops --default-cost
     * --read-mode --seed out of @p args; the result is validate()d.
     * @throws ConfigError listing accepted values.
     */
    static ReplayConfig fromArgs(const CliArgs &args);

    /** @throws ConfigError on invalid parameters (offline policies,
     *  zero default cost, missing file path). */
    void validate() const;
};

/** Deterministic replay counters: a pure function of (trace, config),
 *  byte-identical for any jobs count. */
struct ReplayTotals
{
    std::uint64_t ops = 0;
    std::uint64_t gets = 0;
    std::uint64_t sets = 0;
    std::uint64_t dels = 0;
    std::uint64_t hits = 0;      ///< GET hits
    std::uint64_t misses = 0;    ///< GET misses
    std::uint64_t setHits = 0;   ///< SETs that found the key resident
    std::uint64_t evictions = 0;
    /** Sum of miss costs of GET misses, exact integer ns. */
    std::uint64_t missCostNs = 0;
    /** Sum of SET costs (write-through charge), exact integer ns. */
    std::uint64_t storeCostNs = 0;

    bool operator==(const ReplayTotals &) const = default;

    double
    hitRatio() const
    {
        return gets ? static_cast<double>(hits) /
                          static_cast<double>(gets)
                    : 0.0;
    }
};

/** Everything one replay run produced. */
struct ReplayResult
{
    ReplayTotals totals;
    std::uint64_t traceRecords = 0; ///< records in the file
    unsigned jobs = 1;
    double wallSec = 0.0;

    double
    opsPerSec() const
    {
        return wallSec > 0.0
                   ? static_cast<double>(totals.ops) / wallSec
                   : 0.0;
    }

    double opsPerMin() const { return opsPerSec() * 60.0; }

    /** Deterministic outputs only (drivers print this to stdout). */
    TextTable summaryTable(const std::string &title) const;

    /** Wall-clock outputs (stderr, keeps stdout diffable). */
    TextTable timingTable() const;

    /** One JSON object (the per-policy row of bench_replay). */
    void writeJsonObject(std::ostream &os, const std::string &policy,
                         int indent = 0) const;
};

/** Replay @p config's trace.  @throws ConfigError on bad parameters,
 *  TraceFormatError on a malformed trace. */
ReplayResult replayTrace(const ReplayConfig &config);

} // namespace csr::replay

#endif // CSR_REPLAY_REPLAYER_H
