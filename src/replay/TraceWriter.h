/**
 * @file
 * Buffered .csrt writer.
 *
 * append() accumulates records into in-memory SoA columns; every
 * blockSize records the block is delta/varint encoded (with a raw
 * fallback per column) and written out in one fwrite.  finish()
 * flushes the tail block, writes the footer block index, and patches
 * the header with the final counts and payload checksum -- so the
 * output path must be seekable (a regular file, not a pipe).
 */

#ifndef CSR_REPLAY_TRACEWRITER_H
#define CSR_REPLAY_TRACEWRITER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "replay/Format.h"

namespace csr::replay
{

class TraceWriter
{
  public:
    /**
     * Open @p path for writing (truncating).  @p block_size is the
     * record capacity of one block.  @throws ConfigError on an
     * unopenable path or a zero block size.
     */
    explicit TraceWriter(const std::string &path,
                         std::uint32_t block_size =
                             format::kDefaultBlockSize);

    /** finish()es if the caller did not (best effort: errors on this
     *  path panic rather than throw). */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Buffer one record; flushes a block when full.  @throws
     *  TraceFormatError on a write failure. */
    void append(const ReplayRecord &record);

    /** Flush the tail, write the index, patch the header, close.
     *  Idempotent.  @throws TraceFormatError on a write failure. */
    void finish();

    std::uint64_t recordCount() const { return recordCount_; }
    std::uint64_t blockCount() const { return index_.size(); }

  private:
    void flushBlock();
    void writeOrThrow(const std::uint8_t *data, std::size_t n);

    struct IndexEntry
    {
        std::uint64_t offset = 0;
        std::uint32_t records = 0;
    };

    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint32_t blockSize_;
    std::uint64_t recordCount_ = 0;
    std::uint64_t nextOffset_ = format::kHeaderBytes;
    std::uint64_t checksum_ = format::kFnvOffset;
    bool finished_ = false;

    // The pending block, SoA.
    std::vector<std::uint64_t> ts_;
    std::vector<std::uint64_t> key_;
    std::vector<std::uint8_t> op_;
    std::vector<std::uint32_t> valueSize_;
    std::vector<std::uint32_t> costHint_;

    std::vector<IndexEntry> index_;
    std::vector<std::uint8_t> scratch_; ///< encoded-block staging
};

} // namespace csr::replay

#endif // CSR_REPLAY_TRACEWRITER_H
