/**
 * @file
 * Bridge from .csrt traces into the sweep engine's SampledTrace form,
 * so recorded KV workloads can occupy grid cells next to the paper's
 * synthetic benchmarks (csrsim sweep ... traces=foo.csrt).
 */

#ifndef CSR_REPLAY_SWEEPTRACE_H
#define CSR_REPLAY_SWEEPTRACE_H

#include <cstdint>
#include <string>

#include "trace/SampledTrace.h"

namespace csr::replay
{

/** The benchmark label a trace file occupies a sweep cell under:
 *  the basename without the .csrt suffix. */
std::string traceCellName(const std::string &path);

/**
 * Decode @p path into a SampledTrace: keys become block-granular
 * addresses (key * block_bytes), SETs stores, GETs loads, DELs
 * skipped.  Every record is attributed to the sampled processor 0.
 * KV traces carry no NUMA placement, so homeOf is synthesized
 * deterministically (hashMix64(block) % 16) as a stand-in that gives
 * the first-touch cost mapping something stable to chew on; studies
 * that need real homes must use the synthetic benchmarks.
 *
 * @throws ConfigError / TraceFormatError from TraceReader.
 */
SampledTrace loadReplaySampledTrace(const std::string &path,
                                    std::uint32_t block_bytes);

} // namespace csr::replay

#endif // CSR_REPLAY_SWEEPTRACE_H
