/**
 * @file
 * BatchStream adapter over a .csrt trace.
 *
 * Lets any driver written against ProcAccessStream (the trace
 * simulator, the sweep engine's study machinery) pull a recorded KV
 * trace as if it were a synthetic workload program: blocks are
 * decoded one at a time into the BatchStream buffer, keys become
 * block-granular byte addresses (key * blockBytes), SETs become
 * writes and GETs loads.  DELs carry no address-stream meaning (a
 * MemAccess cannot express an invalidation) and are skipped; drivers
 * that model invalidations replay through Replayer instead.
 */

#ifndef CSR_REPLAY_REPLAYSTREAM_H
#define CSR_REPLAY_REPLAYSTREAM_H

#include <cstdint>

#include "replay/TraceReader.h"
#include "trace/BatchStream.h"

namespace csr::replay
{

class ReplayStream : public BatchStream
{
  public:
    /**
     * @param reader      open trace (not owned; must outlive the
     *                    stream; a stream is the reader's only user)
     * @param block_bytes cache block size the keys are scaled by
     * @param cap_refs    stop after this many accesses (0 = all)
     */
    ReplayStream(TraceReader &reader, std::uint32_t block_bytes,
                 std::uint64_t cap_refs = 0)
        : BatchStream(cap_refs), reader_(reader),
          blockBytes_(block_bytes)
    {
    }

  protected:
    void
    refill() override
    {
        while (nextBlock_ < reader_.blockCount()) {
            reader_.readBlock(nextBlock_++, block_);
            bool emitted = false;
            for (std::size_t i = 0; i < block_.size(); ++i) {
                const auto op = static_cast<TraceOp>(block_.op[i]);
                if (op == TraceOp::Del)
                    continue; // no MemAccess equivalent
                emit(block_.key[i] * blockBytes_, op == TraceOp::Set);
                emitted = true;
            }
            if (emitted)
                return;
            // All-DEL block: keep decoding, refill() must emit or
            // finish.
        }
        finish();
    }

  private:
    TraceReader &reader_;
    std::uint64_t blockBytes_;
    std::uint64_t nextBlock_ = 0;
    ReplayBlock block_;
};

} // namespace csr::replay

#endif // CSR_REPLAY_REPLAYSTREAM_H
