#include "replay/TraceReader.h"

#include <algorithm>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "robust/Errors.h"

namespace csr::replay
{

using namespace format;

namespace
{

/**
 * Decode one column's payload into @p out (a u64/u32/u8 vector).
 * @p col_offset is the file offset of the payload, for error text.
 */
template <typename T>
void
decodeColumn(Encoding encoding, const std::uint8_t *payload,
             std::size_t payload_bytes, std::size_t records,
             std::vector<T> &out, std::uint64_t col_offset,
             const std::string &path)
{
    out.resize(records);
    if (encoding == kEncodingRaw) {
        if (payload_bytes != records * sizeof(T))
            throw TraceFormatError(
                "raw column of '" + path + "' holds " +
                    std::to_string(payload_bytes) + " bytes, want " +
                    std::to_string(records * sizeof(T)),
                col_offset);
        for (std::size_t i = 0; i < records; ++i) {
            if constexpr (sizeof(T) == 8)
                out[i] = static_cast<T>(get64(payload + i * 8));
            else if constexpr (sizeof(T) == 4)
                out[i] = static_cast<T>(get32(payload + i * 4));
            else
                out[i] = static_cast<T>(payload[i]);
        }
        return;
    }
    // Varint: consecutive zig-zag deltas.
    const std::uint8_t *p = payload;
    const std::uint8_t *end = payload + payload_bytes;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < records; ++i) {
        std::uint64_t zz = 0;
        if (!getVarint(p, end, zz))
            throw TraceFormatError(
                "truncated varint column in '" + path + "'",
                col_offset +
                    static_cast<std::uint64_t>(p - payload));
        prev += static_cast<std::uint64_t>(unzigzag(zz));
        out[i] = static_cast<T>(prev);
    }
    if (p != end)
        throw TraceFormatError(
            "varint column of '" + path + "' has " +
                std::to_string(end - p) + " trailing bytes",
            col_offset + static_cast<std::uint64_t>(p - payload));
}

} // namespace

ReadMode
requireReadMode(const std::string &name)
{
    if (name == "mmap")
        return ReadMode::Mmap;
    if (name == "buffered")
        return ReadMode::Buffered;
    throw ConfigError("unknown read mode '" + name +
                      "' (valid: mmap buffered)");
}

const char *
readModeName(ReadMode mode)
{
    return mode == ReadMode::Mmap ? "mmap" : "buffered";
}

ReplayRecord
ReplayBlock::record(std::size_t i) const
{
    ReplayRecord r;
    r.tsNs = tsNs[i];
    r.key = key[i];
    r.op = static_cast<TraceOp>(op[i]);
    r.valueSize = valueSize[i];
    r.costHint = costHint[i];
    return r;
}

void
TraceReader::fail(const std::string &what, std::uint64_t offset) const
{
    throw TraceFormatError("'" + path_ + "': " + what, offset);
}

TraceReader::TraceReader(const std::string &path, ReadMode mode)
    : path_(path), mode_(mode)
{
    if (mode_ == ReadMode::Mmap) {
        fd_ = ::open(path.c_str(), O_RDONLY);
        if (fd_ < 0)
            throw ConfigError("cannot open .csrt trace '" + path +
                              "' for reading");
        struct stat st = {};
        if (::fstat(fd_, &st) != 0) {
            ::close(fd_);
            fd_ = -1;
            throw ConfigError("cannot stat .csrt trace '" + path + "'");
        }
        fileBytes_ = static_cast<std::uint64_t>(st.st_size);
        if (fileBytes_ >= kHeaderBytes) {
            void *m = ::mmap(nullptr, fileBytes_, PROT_READ,
                             MAP_PRIVATE, fd_, 0);
            if (m == MAP_FAILED) {
                ::close(fd_);
                fd_ = -1;
                throw ConfigError("cannot mmap .csrt trace '" + path +
                                  "'");
            }
            map_ = static_cast<const std::uint8_t *>(m);
        }
    } else {
        file_ = std::fopen(path.c_str(), "rb");
        if (file_ == nullptr)
            throw ConfigError("cannot open .csrt trace '" + path +
                              "' for reading");
        std::fseek(file_, 0, SEEK_END);
        const long size = std::ftell(file_);
        std::fseek(file_, 0, SEEK_SET);
        fileBytes_ = size > 0 ? static_cast<std::uint64_t>(size) : 0;
    }

    if (fileBytes_ < kHeaderBytes)
        fail("file holds " + std::to_string(fileBytes_) +
                 " bytes, smaller than the " +
                 std::to_string(kHeaderBytes) + "-byte header",
             0);

    const std::uint8_t *header = bytes(0, kHeaderBytes);
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0)
        fail("bad magic (not a columnar .csrt trace)", 0);
    const std::uint32_t version = get32(header + 8);
    if (version != kVersion)
        fail("unsupported version " + std::to_string(version) +
                 " (this build reads version " +
                 std::to_string(kVersion) + ")",
             8);
    if (get32(header + 12) != kHeaderBytes)
        fail("unexpected header size " +
                 std::to_string(get32(header + 12)),
             12);
    blockSize_ = get32(header + 16);
    if (blockSize_ == 0)
        fail("zero records-per-block", 16);
    recordCount_ = get64(header + 24);
    const std::uint64_t block_count = get64(header + 32);
    indexOffset_ = get64(header + 40);
    checksum_ = get64(header + 48);

    const std::uint64_t expect_blocks =
        (recordCount_ + blockSize_ - 1) / blockSize_;
    if (block_count != expect_blocks)
        fail(std::to_string(recordCount_) + " records in " +
                 std::to_string(block_count) + " blocks of " +
                 std::to_string(blockSize_) + " do not add up",
             32);
    if (indexOffset_ < kHeaderBytes || indexOffset_ > fileBytes_)
        fail("index offset " + std::to_string(indexOffset_) +
                 " outside the file",
             40);
    const std::uint64_t index_bytes = fileBytes_ - indexOffset_;
    if (index_bytes != block_count * kIndexEntryBytes)
        fail("index holds " + std::to_string(index_bytes) +
                 " bytes, want " +
                 std::to_string(block_count * kIndexEntryBytes),
             indexOffset_);

    index_.resize(block_count);
    std::uint64_t seen_records = 0;
    std::uint64_t prev_end = kHeaderBytes;
    const std::uint8_t *index_data =
        block_count ? bytes(indexOffset_, index_bytes) : nullptr;
    for (std::uint64_t b = 0; b < block_count; ++b) {
        const std::uint8_t *entry =
            index_data + b * kIndexEntryBytes;
        index_[b].offset = get64(entry);
        index_[b].records = get32(entry + 8);
        if (index_[b].offset != prev_end)
            fail("block " + std::to_string(b) + " indexed at offset " +
                     std::to_string(index_[b].offset) +
                     ", expected " + std::to_string(prev_end),
                 indexOffset_ + b * kIndexEntryBytes);
        if (index_[b].records == 0 || index_[b].records > blockSize_)
            fail("block " + std::to_string(b) + " claims " +
                     std::to_string(index_[b].records) + " records",
                 indexOffset_ + b * kIndexEntryBytes);
        if (b + 1 < block_count && index_[b].records != blockSize_)
            fail("non-final block " + std::to_string(b) +
                     " is not full (O(1) seek needs fixed-size "
                     "blocks)",
                 indexOffset_ + b * kIndexEntryBytes);
        // The next entry (or the index itself) bounds this block; a
        // detailed size check happens at decode time.
        prev_end = b + 1 < block_count
                       ? get64(index_data + (b + 1) * kIndexEntryBytes)
                       : indexOffset_;
        if (prev_end <= index_[b].offset || prev_end > indexOffset_)
            fail("block " + std::to_string(b) + " has no room before "
                     "offset " + std::to_string(prev_end),
                 indexOffset_ + b * kIndexEntryBytes);
        seen_records += index_[b].records;
    }
    if (seen_records != recordCount_)
        fail("index records sum to " + std::to_string(seen_records) +
                 ", header says " + std::to_string(recordCount_),
             indexOffset_);
    if (block_count == 0 && indexOffset_ != kHeaderBytes)
        fail("empty trace carries block payload", kHeaderBytes);
}

TraceReader::~TraceReader()
{
    if (map_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(map_), fileBytes_);
    if (fd_ >= 0)
        ::close(fd_);
    if (file_ != nullptr)
        std::fclose(file_);
}

const std::uint8_t *
TraceReader::bytes(std::uint64_t begin, std::uint64_t n)
{
    if (begin > fileBytes_ || n > fileBytes_ - begin)
        fail("read of " + std::to_string(n) +
                 " bytes runs past the end of the file",
             begin);
    if (mode_ == ReadMode::Mmap)
        return map_ + begin;
    buffer_.resize(n);
    if (std::fseek(file_, static_cast<long>(begin), SEEK_SET) != 0 ||
        std::fread(buffer_.data(), 1, n, file_) != n)
        fail("buffered read failed", begin);
    return buffer_.data();
}

std::uint64_t
TraceReader::blockBytes(std::uint64_t block) const
{
    const std::uint64_t end = block + 1 < index_.size()
                                  ? index_[block + 1].offset
                                  : indexOffset_;
    return end - index_[block].offset;
}

std::uint32_t
TraceReader::blockRecords(std::uint64_t block) const
{
    if (block >= index_.size())
        throw TraceFormatError("'" + path_ + "': block " +
                                   std::to_string(block) +
                                   " out of range",
                               indexOffset_);
    return index_[block].records;
}

void
TraceReader::readBlock(std::uint64_t block, ReplayBlock &out)
{
    out.clear();
    const std::uint32_t records = blockRecords(block);
    const std::uint64_t offset = index_[block].offset;
    const std::uint64_t nbytes = blockBytes(block);
    if (nbytes < kBlockHeaderBytes)
        fail("block " + std::to_string(block) + " smaller than its "
             "header", offset);
    const std::uint8_t *data = bytes(offset, nbytes);

    const std::uint64_t base_ts = get64(data);
    if (get32(data + 8) != records)
        fail("block " + std::to_string(block) +
                 " disagrees with the index about its record count",
             offset + 8);

    // Walk the five columns; each is bounds-checked against the
    // block's byte range before decode.
    std::uint64_t cursor = kBlockHeaderBytes;
    const std::uint8_t *payloads[kColumns];
    Encoding encodings[kColumns];
    std::size_t sizes[kColumns];
    for (unsigned c = 0; c < kColumns; ++c) {
        if (cursor + kColumnHeaderBytes > nbytes)
            fail("block " + std::to_string(block) + " truncated in "
                 "column " + std::to_string(c) + "'s header",
                 offset + cursor);
        const std::uint8_t enc = data[cursor];
        if (enc != kEncodingRaw && enc != kEncodingVarint)
            fail("unknown column encoding " + std::to_string(enc),
                 offset + cursor);
        const std::uint32_t len = get32(data + cursor + 1);
        cursor += kColumnHeaderBytes;
        if (len > nbytes - cursor)
            fail("column " + std::to_string(c) + " claims " +
                     std::to_string(len) + " payload bytes past the "
                     "block end",
                 offset + cursor);
        encodings[c] = static_cast<Encoding>(enc);
        payloads[c] = data + cursor;
        sizes[c] = len;
        cursor += len;
    }
    if (cursor != nbytes)
        fail("block " + std::to_string(block) + " has " +
                 std::to_string(nbytes - cursor) + " trailing bytes",
             offset + cursor);

    const auto col_off = [&](unsigned c) {
        return offset +
               static_cast<std::uint64_t>(payloads[c] - data);
    };
    std::vector<std::uint64_t> ts_delta;
    decodeColumn(encodings[kColTs], payloads[kColTs], sizes[kColTs],
                 records, ts_delta, col_off(kColTs), path_);
    decodeColumn(encodings[kColKey], payloads[kColKey],
                 sizes[kColKey], records, out.key, col_off(kColKey),
                 path_);
    decodeColumn(encodings[kColOp], payloads[kColOp], sizes[kColOp],
                 records, out.op, col_off(kColOp), path_);
    decodeColumn(encodings[kColValueSize], payloads[kColValueSize],
                 sizes[kColValueSize], records, out.valueSize,
                 col_off(kColValueSize), path_);
    decodeColumn(encodings[kColCostHint], payloads[kColCostHint],
                 sizes[kColCostHint], records, out.costHint,
                 col_off(kColCostHint), path_);

    for (std::size_t i = 0; i < records; ++i) {
        if (out.op[i] > static_cast<std::uint8_t>(TraceOp::Del))
            fail("record " +
                     std::to_string(firstRecordOf(block) + i) +
                     " has op byte " + std::to_string(out.op[i]),
                 col_off(kColOp));
    }

    // Rehydrate absolute timestamps from the per-record deltas.
    out.tsNs.resize(records);
    std::uint64_t ts = base_ts;
    for (std::size_t i = 0; i < records; ++i) {
        ts += ts_delta[i];
        out.tsNs[i] = ts;
    }
}

format::Encoding
TraceReader::columnEncoding(std::uint64_t block, unsigned column)
{
    if (column >= kColumns)
        throw ConfigError("column index " + std::to_string(column) +
                          " out of range (0.." +
                          std::to_string(kColumns - 1) + ")");
    const std::uint64_t offset = index_.at(block).offset;
    const std::uint64_t nbytes = blockBytes(block);
    const std::uint8_t *data = bytes(offset, nbytes);
    std::uint64_t cursor = kBlockHeaderBytes;
    for (unsigned c = 0; c < column; ++c) {
        if (cursor + kColumnHeaderBytes > nbytes)
            fail("truncated column headers", offset + cursor);
        cursor += kColumnHeaderBytes + get32(data + cursor + 1);
    }
    if (cursor + kColumnHeaderBytes > nbytes)
        fail("truncated column headers", offset + cursor);
    return static_cast<Encoding>(data[cursor]);
}

void
TraceReader::verifyChecksum()
{
    std::uint64_t h = kFnvOffset;
    for (std::uint64_t b = 0; b < index_.size(); ++b) {
        const std::uint64_t nbytes = blockBytes(b);
        const std::uint8_t *data = bytes(index_[b].offset, nbytes);
        h = fnv1a(h, data, nbytes);
    }
    if (h != checksum_)
        fail("payload checksum mismatch (header " +
                 std::to_string(checksum_) + ", computed " +
                 std::to_string(h) + ")",
             48);
}

std::vector<ReplayRecord>
TraceReader::readAll()
{
    std::vector<ReplayRecord> rows;
    rows.reserve(recordCount_);
    ReplayBlock block;
    for (std::uint64_t b = 0; b < blockCount(); ++b) {
        readBlock(b, block);
        for (std::size_t i = 0; i < block.size(); ++i)
            rows.push_back(block.record(i));
    }
    return rows;
}

} // namespace csr::replay
