#include "replay/TraceWriter.h"

#include <cstring>

#include "robust/Errors.h"
#include "util/Logging.h"

namespace csr::replay
{

namespace
{

using namespace format;

/**
 * Encode one integer column as zig-zag varint deltas into @p out,
 * falling back to raw fixed-width values when that is no smaller
 * (random 64-bit keys varint to ~10 bytes each; raw caps them at 8).
 * @return the encoding chosen.
 */
template <typename T>
Encoding
encodeColumn(const std::vector<T> &values, std::vector<std::uint8_t> &out)
{
    const std::size_t raw_bytes = values.size() * sizeof(T);
    std::vector<std::uint8_t> varint;
    varint.reserve(values.size() * 2);
    std::uint8_t buf[kMaxVarintBytes];
    std::uint64_t prev = 0;
    for (const T v : values) {
        const std::uint64_t cur = static_cast<std::uint64_t>(v);
        const std::uint64_t zz = zigzag(
            static_cast<std::int64_t>(cur - prev));
        const unsigned n = putVarint(buf, zz);
        varint.insert(varint.end(), buf, buf + n);
        prev = cur;
        if (varint.size() >= raw_bytes)
            break; // already no better than raw
    }
    if (varint.size() < raw_bytes) {
        out = std::move(varint);
        return kEncodingVarint;
    }
    out.resize(raw_bytes);
    for (std::size_t i = 0; i < values.size(); ++i) {
        if constexpr (sizeof(T) == 8)
            put64(out.data() + i * 8,
                  static_cast<std::uint64_t>(values[i]));
        else
            put32(out.data() + i * 4,
                  static_cast<std::uint32_t>(values[i]));
    }
    return kEncodingRaw;
}

void
appendColumn(std::vector<std::uint8_t> &block, Encoding encoding,
             const std::vector<std::uint8_t> &payload)
{
    block.push_back(static_cast<std::uint8_t>(encoding));
    std::uint8_t len[4];
    put32(len, static_cast<std::uint32_t>(payload.size()));
    block.insert(block.end(), len, len + 4);
    block.insert(block.end(), payload.begin(), payload.end());
}

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         std::uint32_t block_size)
    : path_(path), blockSize_(block_size)
{
    if (blockSize_ == 0)
        throw ConfigError("csrt block size must be >= 1 record");
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        throw ConfigError("cannot open '" + path +
                          "' for writing a .csrt trace");
    // Header placeholder; finish() seeks back and writes the real one.
    const std::uint8_t zero[kHeaderBytes] = {};
    writeOrThrow(zero, sizeof(zero));
    ts_.reserve(blockSize_);
    key_.reserve(blockSize_);
    op_.reserve(blockSize_);
    valueSize_.reserve(blockSize_);
    costHint_.reserve(blockSize_);
}

TraceWriter::~TraceWriter()
{
    if (finished_)
        return;
    try {
        finish();
    } catch (const Error &e) {
        // A destructor must not throw; an unfinished writer whose
        // flush fails leaves a file verify() will reject.
        warn("TraceWriter(%s): finish failed in destructor: %s",
             path_.c_str(), e.what());
    }
}

void
TraceWriter::writeOrThrow(const std::uint8_t *data, std::size_t n)
{
    if (std::fwrite(data, 1, n, file_) != n)
        throw TraceFormatError("short write to '" + path_ + "'",
                               nextOffset_);
}

void
TraceWriter::append(const ReplayRecord &record)
{
    if (finished_)
        throw TraceFormatError("append to a finished .csrt writer",
                               nextOffset_);
    ts_.push_back(record.tsNs);
    key_.push_back(record.key);
    op_.push_back(static_cast<std::uint8_t>(record.op));
    valueSize_.push_back(record.valueSize);
    costHint_.push_back(record.costHint);
    ++recordCount_;
    if (ts_.size() >= blockSize_)
        flushBlock();
}

void
TraceWriter::flushBlock()
{
    if (ts_.empty())
        return;
    using namespace format;

    // The timestamp column stores per-record deltas against the
    // previous record (record 0 against the block's base timestamp,
    // so its delta is 0); the block is then self-contained.
    const std::uint64_t base_ts = ts_.front();
    std::vector<std::uint64_t> ts_delta(ts_.size());
    std::uint64_t prev = base_ts;
    for (std::size_t i = 0; i < ts_.size(); ++i) {
        ts_delta[i] = ts_[i] - prev;
        prev = ts_[i];
    }

    scratch_.clear();
    scratch_.resize(kBlockHeaderBytes);
    put64(scratch_.data(), base_ts);
    put32(scratch_.data() + 8, static_cast<std::uint32_t>(ts_.size()));

    std::vector<std::uint8_t> payload;
    // The delta transform above already made the ts column small and
    // zero-based, so it goes through the generic delta coder too (its
    // deltas-of-deltas squeeze jittered-but-regular arrival times).
    appendColumn(scratch_, encodeColumn(ts_delta, payload), payload);
    appendColumn(scratch_, encodeColumn(key_, payload), payload);
    {
        // The op column is one byte per record already; raw always.
        payload.assign(op_.begin(), op_.end());
        appendColumn(scratch_, kEncodingRaw, payload);
    }
    appendColumn(scratch_, encodeColumn(valueSize_, payload), payload);
    appendColumn(scratch_, encodeColumn(costHint_, payload), payload);

    index_.push_back({nextOffset_,
                      static_cast<std::uint32_t>(ts_.size())});
    checksum_ = fnv1a(checksum_, scratch_.data(), scratch_.size());
    writeOrThrow(scratch_.data(), scratch_.size());
    nextOffset_ += scratch_.size();

    ts_.clear();
    key_.clear();
    op_.clear();
    valueSize_.clear();
    costHint_.clear();
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    using namespace format;
    flushBlock();

    const std::uint64_t index_offset = nextOffset_;
    std::vector<std::uint8_t> footer(index_.size() * kIndexEntryBytes,
                                     0);
    for (std::size_t i = 0; i < index_.size(); ++i) {
        std::uint8_t *entry = footer.data() + i * kIndexEntryBytes;
        put64(entry, index_[i].offset);
        put32(entry + 8, index_[i].records);
    }
    if (!footer.empty())
        writeOrThrow(footer.data(), footer.size());

    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    put32(header + 8, kVersion);
    put32(header + 12, kHeaderBytes);
    put32(header + 16, blockSize_);
    put32(header + 20, 0); // flags, reserved
    put64(header + 24, recordCount_);
    put64(header + 32, index_.size());
    put64(header + 40, index_offset);
    put64(header + 48, checksum_);
    if (std::fseek(file_, 0, SEEK_SET) != 0)
        throw TraceFormatError("cannot seek '" + path_ +
                               "' to patch the header");
    writeOrThrow(header, sizeof(header));

    const int rc = std::fclose(file_);
    file_ = nullptr;
    finished_ = true;
    if (rc != 0)
        throw TraceFormatError("close failed for '" + path_ + "'",
                               nextOffset_);
}

const char *
traceOpName(TraceOp op)
{
    switch (op) {
      case TraceOp::Get:
        return "get";
      case TraceOp::Set:
        return "set";
      case TraceOp::Del:
        return "del";
    }
    return "?";
}

} // namespace csr::replay
