/**
 * @file
 * .csrt reader: mmap-backed zero-copy by default, with a plain
 * buffered-FILE mode kept as the portable reference (tests assert the
 * two decode byte-identically).
 *
 * The footer block index is loaded at construction, so seeking is
 * O(1): record N lives in block N / blockSize at the indexed offset.
 * Every header field and index entry is validated up front and every
 * decode is bounds-checked -- a truncated or corrupt file throws
 * TraceFormatError carrying the byte offset, never reads out of
 * bounds.
 *
 * A reader is cheap to construct and single-threaded by design: the
 * replay engine gives each job its own reader over the same file (an
 * mmap per reader costs a few pages of page table, not a copy).
 */

#ifndef CSR_REPLAY_TRACEREADER_H
#define CSR_REPLAY_TRACEREADER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "replay/Format.h"

namespace csr::replay
{

enum class ReadMode
{
    Mmap,
    Buffered,
};

/** "mmap" / "buffered"; @throws ConfigError listing the names. */
ReadMode requireReadMode(const std::string &name);

const char *readModeName(ReadMode mode);

/** One decoded block, SoA (timestamps are absolute again). */
struct ReplayBlock
{
    std::vector<std::uint64_t> tsNs;
    std::vector<std::uint64_t> key;
    std::vector<std::uint8_t> op;
    std::vector<std::uint32_t> valueSize;
    std::vector<std::uint32_t> costHint;

    std::size_t size() const { return key.size(); }

    void
    clear()
    {
        tsNs.clear();
        key.clear();
        op.clear();
        valueSize.clear();
        costHint.clear();
    }

    /** Row view of record @p i (tests and the info tool). */
    ReplayRecord record(std::size_t i) const;
};

class TraceReader
{
  public:
    /** Open and validate @p path.  @throws ConfigError when the file
     *  cannot be opened, TraceFormatError when it is not a well-formed
     *  .csrt. */
    explicit TraceReader(const std::string &path,
                         ReadMode mode = ReadMode::Mmap);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    std::uint64_t recordCount() const { return recordCount_; }
    std::uint64_t blockCount() const { return index_.size(); }
    /** Record capacity of a full block. */
    std::uint32_t blockSize() const { return blockSize_; }
    std::uint64_t fileBytes() const { return fileBytes_; }
    ReadMode mode() const { return mode_; }
    const std::string &path() const { return path_; }

    /** Index of the block holding record @p n (O(1) seek). */
    std::uint64_t
    blockOfRecord(std::uint64_t n) const
    {
        return n / blockSize_;
    }

    /** Global index of block @p b's first record. */
    std::uint64_t
    firstRecordOf(std::uint64_t b) const
    {
        return b * blockSize_;
    }

    std::uint32_t blockRecords(std::uint64_t block) const;

    /** Decode block @p block into @p out (cleared first).  @throws
     *  TraceFormatError on any malformed content. */
    void readBlock(std::uint64_t block, ReplayBlock &out);

    /** The encoding byte of one column of one block (the info tool
     *  and the fallback tests read this). */
    format::Encoding columnEncoding(std::uint64_t block, unsigned column);

    /** Recompute the payload checksum over every block and compare
     *  with the header's.  @throws TraceFormatError on mismatch. */
    void verifyChecksum();

    /** Decode the whole file into rows (tests, info, small files). */
    std::vector<ReplayRecord> readAll();

  private:
    struct IndexEntry
    {
        std::uint64_t offset = 0;
        std::uint32_t records = 0;
    };

    /** Bytes [begin, begin+n) of the file: a pointer into the map, or
     *  into buffer_ after a read.  Validated against fileBytes_. */
    const std::uint8_t *bytes(std::uint64_t begin, std::uint64_t n);

    std::uint64_t blockBytes(std::uint64_t block) const;
    [[noreturn]] void fail(const std::string &what,
                           std::uint64_t offset) const;

    std::string path_;
    ReadMode mode_;
    int fd_ = -1;                        ///< mmap mode
    const std::uint8_t *map_ = nullptr;  ///< mmap mode
    std::FILE *file_ = nullptr;          ///< buffered mode
    std::vector<std::uint8_t> buffer_;   ///< buffered mode scratch

    std::uint64_t fileBytes_ = 0;
    std::uint32_t blockSize_ = 0;
    std::uint64_t recordCount_ = 0;
    std::uint64_t indexOffset_ = 0;
    std::uint64_t checksum_ = 0;
    std::vector<IndexEntry> index_;
};

} // namespace csr::replay

#endif // CSR_REPLAY_TRACEREADER_H
