#include "replay/Replayer.h"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "cache/CacheModel.h"
#include "robust/Errors.h"
#include "util/CliArgs.h"
#include "util/ThreadPool.h"

namespace csr::replay
{

namespace
{

/** Full precision, so bit-identical doubles print identically (CI
 *  diffs replay JSON across --jobs counts). */
std::string
numFull(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Per-job replay state: a private model (its own policy instance)
 *  plus private counters, merged by summation afterwards. */
struct JobState
{
    ReplayTotals totals;
};

} // namespace

ReplayConfig
ReplayConfig::fromArgs(const CliArgs &args)
{
    ReplayConfig config;
    config.path = args.get("file", "");
    config.cacheBytes = args.getUInt("cache-bytes", config.cacheBytes);
    config.assoc = static_cast<std::uint32_t>(
        args.getUInt("assoc", config.assoc));
    config.blockBytes = static_cast<std::uint32_t>(
        args.getUInt("block-bytes", config.blockBytes));
    if (args.has("policy"))
        config.policy = requirePolicyKind(args.get("policy", ""));
    config.policyParams.etdAliasBits = static_cast<unsigned>(
        args.getUInt("alias-bits", config.policyParams.etdAliasBits));
    config.policyParams.depreciationFactor = args.getDouble(
        "depreciation", config.policyParams.depreciationFactor);
    config.policyParams.seed =
        args.seed(config.policyParams.seed);
    config.jobs = args.jobs();
    config.maxOps = args.getUInt("max-ops", config.maxOps);
    config.defaultCostNs =
        args.getUInt("default-cost", config.defaultCostNs);
    if (args.has("read-mode"))
        config.readMode = requireReadMode(args.get("read-mode", ""));
    config.validate();
    return config;
}

void
ReplayConfig::validate() const
{
    if (path.empty())
        throw ConfigError(
            "replay needs a trace: pass --file PATH (a .csrt file "
            "written by csrtrace)");
    if (policy == PolicyKind::Opt || policy == PolicyKind::CostOpt)
        throw ConfigError(
            std::string("policy '") + policyKindName(policy) +
            "' is offline (needs the future) and cannot replay a "
            "stream; valid: lru random lfu gd bcl dcl acl");
    if (defaultCostNs == 0)
        throw ConfigError("--default-cost must be >= 1 ns (it is the "
                          "miss cost of records without a hint)");
    if (policyParams.depreciationFactor < 1.0)
        throw ConfigError("--depreciation must be >= 1");
    // Geometry errors (non-pow2 sizes, assoc > capacity) surface from
    // the CacheGeometry constructor with their own typed error.
}

ReplayResult
replayTrace(const ReplayConfig &config)
{
    config.validate();
    const CacheGeometry geom(config.cacheBytes, config.assoc,
                             config.blockBytes);

    // Probe the trace once up front so header problems surface before
    // any worker spawns, and so totalOps is known.
    std::uint64_t trace_records = 0;
    {
        TraceReader probe(config.path, config.readMode);
        trace_records = probe.recordCount();
    }
    const std::uint64_t total_ops =
        config.maxOps == 0
            ? trace_records
            : (config.maxOps < trace_records ? config.maxOps
                                             : trace_records);

    unsigned jobs =
        config.jobs == 0 ? ThreadPool::defaultThreads() : config.jobs;
    // More jobs than sets would leave workers with an empty partition;
    // harmless, but pointless threads.
    if (static_cast<std::uint64_t>(jobs) > geom.numSets())
        jobs = static_cast<unsigned>(geom.numSets());
    if (jobs == 0)
        jobs = 1;

    std::vector<JobState> states(jobs);
    const auto t0 = std::chrono::steady_clock::now();

    // Job j replays, in global trace order, exactly the records whose
    // set satisfies set % jobs == j.  Sets are independent in the
    // model and in every online policy, so the merged counters are
    // byte-identical to a jobs=1 run (see the header comment).
    auto run_job = [&](std::size_t j) {
        TraceReader reader(config.path, config.readMode);
        CacheModel model(geom,
                         makePolicy(config.policy, geom,
                                    config.policyParams));
        ReplayTotals &t = states[j].totals;
        const std::uint64_t block_bytes = config.blockBytes;
        const std::uint64_t default_cost = config.defaultCostNs;

        ReplayBlock block;
        std::uint64_t done = 0;
        const std::uint64_t nblocks = reader.blockCount();
        for (std::uint64_t b = 0; b < nblocks && done < total_ops;
             ++b) {
            reader.readBlock(b, block);
            const std::size_t n = block.size();
            for (std::size_t i = 0; i < n && done < total_ops;
                 ++i, ++done) {
                const Addr addr = block.key[i] * block_bytes;
                const std::uint32_t set = geom.setIndex(addr);
                if (set % jobs != j)
                    continue;
                const Addr tag = geom.tag(addr);
                const std::uint64_t cost_ns =
                    block.costHint[i] ? block.costHint[i]
                                      : default_cost;
                switch (static_cast<TraceOp>(block.op[i])) {
                  case TraceOp::Get: {
                    ++t.gets;
                    const int way = model.access(set, tag);
                    if (way != kInvalidWay) {
                        ++t.hits;
                    } else {
                        ++t.misses;
                        t.missCostNs += cost_ns;
                        model.fillVictimOrFree(
                            set, tag, static_cast<Cost>(cost_ns), 0,
                            [&t](int, Addr, std::uint32_t) {
                                ++t.evictions;
                            });
                    }
                    break;
                  }
                  case TraceOp::Set: {
                    ++t.sets;
                    t.storeCostNs += cost_ns;
                    const int way = model.access(set, tag);
                    if (way != kInvalidWay) {
                        ++t.setHits;
                        model.updateCost(set, way,
                                         static_cast<Cost>(cost_ns));
                    } else {
                        model.fillVictimOrFree(
                            set, tag, static_cast<Cost>(cost_ns), 0,
                            [&t](int, Addr, std::uint32_t) {
                                ++t.evictions;
                            });
                    }
                    break;
                  }
                  case TraceOp::Del:
                    ++t.dels;
                    model.invalidateTag(set, tag);
                    break;
                }
                ++t.ops;
            }
        }
    };

    if (jobs == 1) {
        run_job(0);
    } else {
        ThreadPool pool(jobs);
        parallelFor(pool, jobs, run_job);
    }

    const auto t1 = std::chrono::steady_clock::now();

    ReplayResult result;
    result.traceRecords = trace_records;
    result.jobs = jobs;
    result.wallSec =
        std::chrono::duration<double>(t1 - t0).count();
    for (const JobState &s : states) {
        ReplayTotals &t = result.totals;
        t.ops += s.totals.ops;
        t.gets += s.totals.gets;
        t.sets += s.totals.sets;
        t.dels += s.totals.dels;
        t.hits += s.totals.hits;
        t.misses += s.totals.misses;
        t.setHits += s.totals.setHits;
        t.evictions += s.totals.evictions;
        t.missCostNs += s.totals.missCostNs;
        t.storeCostNs += s.totals.storeCostNs;
    }
    return result;
}

TextTable
ReplayResult::summaryTable(const std::string &title) const
{
    TextTable table(title);
    table.setHeader({"metric", "value"});
    table.addRow({"trace records", TextTable::count(traceRecords)});
    table.addRow({"replayed ops", TextTable::count(totals.ops)});
    table.addRow({"gets", TextTable::count(totals.gets)});
    table.addRow({"sets", TextTable::count(totals.sets)});
    table.addRow({"dels", TextTable::count(totals.dels)});
    table.addRow({"hits", TextTable::count(totals.hits)});
    table.addRow({"misses", TextTable::count(totals.misses)});
    table.addRow(
        {"hit ratio %", TextTable::num(totals.hitRatio() * 100.0, 4)});
    table.addRow({"set hits", TextTable::count(totals.setHits)});
    table.addRow({"evictions", TextTable::count(totals.evictions)});
    table.addRow(
        {"miss cost ms",
         TextTable::num(static_cast<double>(totals.missCostNs) / 1e6,
                        3)});
    table.addRow(
        {"store cost ms",
         TextTable::num(static_cast<double>(totals.storeCostNs) / 1e6,
                        3)});
    return table;
}

TextTable
ReplayResult::timingTable() const
{
    TextTable table("replay timing (wall clock, non-deterministic)");
    table.setHeader({"metric", "value"});
    table.addRow({"jobs", TextTable::count(jobs)});
    table.addRow({"wall s", TextTable::num(wallSec, 3)});
    table.addRow({"ops/s", TextTable::num(opsPerSec(), 0)});
    table.addRow({"Mops/min", TextTable::num(opsPerMin() / 1e6, 1)});
    return table;
}

void
ReplayResult::writeJsonObject(std::ostream &os,
                              const std::string &policy,
                              int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string in = pad + "  ";
    const std::string in2 = in + "  ";
    os << pad << "{\n"
       << in << "\"policy\": \"" << policy << "\",\n"
       << in << "\"traceRecords\": " << traceRecords << ",\n"
       << in << "\"deterministic\": {\n"
       << in2 << "\"ops\": " << totals.ops << ",\n"
       << in2 << "\"gets\": " << totals.gets << ",\n"
       << in2 << "\"sets\": " << totals.sets << ",\n"
       << in2 << "\"dels\": " << totals.dels << ",\n"
       << in2 << "\"hits\": " << totals.hits << ",\n"
       << in2 << "\"misses\": " << totals.misses << ",\n"
       << in2 << "\"hitRatio\": " << numFull(totals.hitRatio())
       << ",\n"
       << in2 << "\"setHits\": " << totals.setHits << ",\n"
       << in2 << "\"evictions\": " << totals.evictions << ",\n"
       << in2 << "\"missCostNs\": " << totals.missCostNs << ",\n"
       << in2 << "\"storeCostNs\": " << totals.storeCostNs << "\n"
       << in << "},\n"
       // Wall-clock block: check_bench skips the "timing" subtree.
       << in << "\"timing\": {\n"
       << in2 << "\"jobs\": " << jobs << ",\n"
       << in2 << "\"wallSec\": " << numFull(wallSec) << ",\n"
       << in2 << "\"opsPerSec\": " << numFull(opsPerSec()) << ",\n"
       << in2 << "\"opsPerMin\": " << numFull(opsPerMin()) << "\n"
       << in << "}\n"
       << pad << "}";
}

} // namespace csr::replay
