#include "replay/Ingest.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <istream>

#include "replay/TraceWriter.h"
#include "robust/Errors.h"
#include "util/CliArgs.h"

namespace csr::replay
{

namespace
{

/** Split @p line on @p delim into @p out (reused across lines). */
void
splitLine(const std::string &line, char delim,
          std::vector<std::string> &out)
{
    out.clear();
    std::size_t begin = 0;
    for (;;) {
        const std::size_t end = line.find(delim, begin);
        if (end == std::string::npos) {
            out.push_back(line.substr(begin));
            return;
        }
        out.push_back(line.substr(begin, end - begin));
        begin = end + 1;
    }
}

[[noreturn]] void
badLine(std::uint64_t line_no, const std::string &what)
{
    throw TraceFormatError("input line " + std::to_string(line_no) +
                           ": " + what);
}

std::uint64_t
parseU64(const std::string &token, std::uint64_t line_no,
         const char *column)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end != token.c_str() + token.size() ||
        errno == ERANGE)
        badLine(line_no, std::string("bad number '") + token +
                             "' in the " + column + " column");
    return v;
}

/** Timestamp: integral nanoseconds parse exactly; coarser units may
 *  be fractional (e.g. "12.5" seconds) and go through a double. */
std::uint64_t
parseTs(const std::string &token, TsUnit unit, std::uint64_t line_no)
{
    if (unit == TsUnit::Ns)
        return parseU64(token, line_no, "timestamp");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        errno == ERANGE || v < 0.0)
        badLine(line_no, "bad timestamp '" + token + "'");
    return static_cast<std::uint64_t>(
        v * static_cast<double>(tsUnitToNs(unit)) + 0.5);
}

std::uint32_t
clampU32(std::uint64_t v)
{
    return v > 0xFFFFFFFFull ? 0xFFFFFFFFu
                             : static_cast<std::uint32_t>(v);
}

int
colFlag(const CliArgs &args, const char *key, int preset_value)
{
    if (!args.has(key))
        return preset_value;
    return static_cast<int>(args.getUInt(key, 0));
}

} // namespace

TsUnit
requireTsUnit(const std::string &name)
{
    if (name == "ns")
        return TsUnit::Ns;
    if (name == "us")
        return TsUnit::Us;
    if (name == "ms")
        return TsUnit::Ms;
    if (name == "s")
        return TsUnit::S;
    throw ConfigError("unknown --ts-unit '" + name +
                      "'; valid: ns us ms s");
}

std::uint64_t
tsUnitToNs(TsUnit unit)
{
    switch (unit) {
      case TsUnit::Ns:
        return 1;
      case TsUnit::Us:
        return 1000;
      case TsUnit::Ms:
        return 1000 * 1000;
      case TsUnit::S:
        return 1000ull * 1000 * 1000;
    }
    return 1;
}

IngestConfig
IngestConfig::fromArgs(const CliArgs &args)
{
    IngestConfig config;
    const std::string preset = args.get("preset", "generic");
    if (preset == "twitter") {
        // ts(s),key,keySize,valueSize,client,op,ttl
        config.colTs = 0;
        config.colKey = 1;
        config.colSize = 3;
        config.colOp = 5;
        config.tsUnit = TsUnit::S;
    } else if (preset == "meta") {
        // ts(s),key,keySize,op,opCount,valueSize
        config.colTs = 0;
        config.colKey = 1;
        config.colOp = 3;
        config.colSize = 5;
        config.tsUnit = TsUnit::S;
    } else if (preset != "generic") {
        throw ConfigError("unknown --preset '" + preset +
                          "'; valid: twitter meta generic");
    }

    config.colTs = colFlag(args, "col-ts", config.colTs);
    config.colKey = colFlag(args, "col-key", config.colKey);
    config.colOp = colFlag(args, "col-op", config.colOp);
    config.colSize = colFlag(args, "col-size", config.colSize);
    config.colCost = colFlag(args, "col-cost", config.colCost);

    if (args.has("delim")) {
        const std::string d = args.get("delim", ",");
        if (d == "tab" || d == "\\t")
            config.delim = '\t';
        else if (d.size() == 1)
            config.delim = d[0];
        else
            throw ConfigError("--delim wants one character or 'tab'");
    }
    if (args.has("ts-unit"))
        config.tsUnit = requireTsUnit(args.get("ts-unit", ""));
    config.skipLines = static_cast<unsigned>(
        args.getUInt("skip-lines", config.skipLines));

    config.validate();
    return config;
}

void
IngestConfig::validate() const
{
    if (colKey < 0)
        throw ConfigError(
            "the input must have a key column (--col-key N)");
}

bool
parseOpToken(const std::string &token, std::uint8_t &op_out)
{
    std::string t;
    t.reserve(token.size());
    for (const char c : token)
        t.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (t == "get" || t == "gets" || t == "read") {
        op_out = static_cast<std::uint8_t>(TraceOp::Get);
        return true;
    }
    if (t == "set" || t == "put" || t == "add" || t == "replace" ||
        t == "cas" || t == "append" || t == "prepend" ||
        t == "write" || t == "update") {
        op_out = static_cast<std::uint8_t>(TraceOp::Set);
        return true;
    }
    if (t == "del" || t == "delete" || t == "remove") {
        op_out = static_cast<std::uint8_t>(TraceOp::Del);
        return true;
    }
    return false;
}

std::uint64_t
keyOf(const std::string &token)
{
    if (!token.empty()) {
        bool decimal = true;
        for (const char c : token) {
            if (c < '0' || c > '9') {
                decimal = false;
                break;
            }
        }
        // Pure decimal keys round-trip verbatim (<= 20 digits parses
        // or saturates deterministically; hash anything longer).
        if (decimal && token.size() <= 20) {
            errno = 0;
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(token.c_str(), &end, 10);
            if (end == token.c_str() + token.size() &&
                errno != ERANGE)
                return v;
        }
    }
    return format::fnv1aString(token);
}

IngestStats
ingestText(std::istream &in, const IngestConfig &config,
           TraceWriter &writer)
{
    config.validate();
    IngestStats stats;
    int max_col = config.colKey;
    for (const int c : {config.colTs, config.colOp, config.colSize,
                        config.colCost})
        if (c > max_col)
            max_col = c;

    std::string line;
    std::vector<std::string> fields;
    while (std::getline(in, line)) {
        ++stats.lines;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (stats.lines <= config.skipLines || line.empty() ||
            line[0] == '#') {
            ++stats.skipped;
            continue;
        }
        splitLine(line, config.delim, fields);
        if (fields.size() <= static_cast<std::size_t>(max_col))
            badLine(stats.lines,
                    "expected at least " +
                        std::to_string(max_col + 1) + " columns, got " +
                        std::to_string(fields.size()));

        ReplayRecord rec;
        rec.tsNs = config.colTs >= 0
                       ? parseTs(fields[config.colTs], config.tsUnit,
                                 stats.lines)
                       : stats.records * 1000; // synthetic 1us spacing
        rec.key = keyOf(fields[config.colKey]);
        if (config.colOp >= 0) {
            std::uint8_t op = 0;
            if (!parseOpToken(fields[config.colOp], op))
                badLine(stats.lines, "unknown op '" +
                                         fields[config.colOp] +
                                         "' (valid: get set del and "
                                         "their aliases)");
            rec.op = static_cast<TraceOp>(op);
        }
        if (config.colSize >= 0)
            rec.valueSize = clampU32(parseU64(
                fields[config.colSize], stats.lines, "value-size"));
        if (config.colCost >= 0)
            rec.costHint = clampU32(parseU64(
                fields[config.colCost], stats.lines, "cost-hint"));

        writer.append(rec);
        ++stats.records;
    }
    return stats;
}

} // namespace csr::replay
