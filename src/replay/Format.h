/**
 * @file
 * The `csrt` columnar trace format (DESIGN.md section 3.9).
 *
 * A .csrt file stores a production-style KV access trace --
 * (timestamp, key, op, value size, cost hint) records -- as
 * fixed-size blocks of structure-of-arrays columns:
 *
 *   header (64 B) | block 0 | block 1 | ... | block index
 *
 * Each block holds up to blockSize records and is decodable on its
 * own: it carries the absolute timestamp of its first record, and
 * every column is either raw little-endian fixed width or zig-zag
 * delta varint -- whichever encoded smaller for that block (skewed
 * key streams and near-monotone timestamps compress well; the raw
 * fallback caps adversarial blocks at fixed-width size).  The footer
 * index maps block number to byte offset, so seeking to record N is
 * O(1): block N / blockSize, offset from the index.
 *
 * Everything here is byte-layout: shared constants, the record
 * struct, and the varint/zig-zag/checksum primitives the writer and
 * reader agree on.  All multi-byte fields are little-endian.
 */

#ifndef CSR_REPLAY_FORMAT_H
#define CSR_REPLAY_FORMAT_H

#include <cstdint>
#include <cstring>
#include <string>

namespace csr::replay
{

/** What one trace record did.  The on-disk op column stores these
 *  byte values; anything else is a format error. */
enum class TraceOp : std::uint8_t
{
    Get = 0,
    Set = 1,
    Del = 2,
};

const char *traceOpName(TraceOp op);

/** One decoded trace record. */
struct ReplayRecord
{
    std::uint64_t tsNs = 0;     ///< absolute timestamp, nanoseconds
    std::uint64_t key = 0;      ///< 64-bit key (hash of string keys)
    TraceOp op = TraceOp::Get;
    std::uint32_t valueSize = 0; ///< object size in bytes (0 = unknown)
    std::uint32_t costHint = 0;  ///< per-record miss cost in ns (0 = none)

    bool operator==(const ReplayRecord &) const = default;
};

namespace format
{

/** File magic: distinct from the legacy row-format "CSRT" of
 *  trace/TraceIO.h, which shares the first four bytes of neither. */
inline constexpr char kMagic[8] = {'c', 's', 'r', 't',
                                   'c', 'o', 'l', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kHeaderBytes = 64;
/** Records per block unless the writer is told otherwise. */
inline constexpr std::uint32_t kDefaultBlockSize = 4096;
/** Bytes per block-index entry (u64 offset, u32 records, u32 pad). */
inline constexpr std::uint32_t kIndexEntryBytes = 16;
/** Per-block prelude: u64 base timestamp + u32 record count. */
inline constexpr std::uint32_t kBlockHeaderBytes = 12;
/** Per-column prelude: u8 encoding + u32 payload bytes. */
inline constexpr std::uint32_t kColumnHeaderBytes = 5;
inline constexpr unsigned kColumns = 5;

/** Column numbers, in on-disk order. */
enum Column : unsigned
{
    kColTs = 0,        ///< u64 timestamp deltas (record i vs i-1)
    kColKey = 1,       ///< u64 keys
    kColOp = 2,        ///< u8 ops (always raw)
    kColValueSize = 3, ///< u32 value sizes
    kColCostHint = 4,  ///< u32 cost hints
};

/** Column encodings (the per-column header byte). */
enum Encoding : std::uint8_t
{
    kEncodingRaw = 0,    ///< fixed-width little-endian values
    kEncodingVarint = 1, ///< zig-zag varint of consecutive deltas
};

// --- little-endian scalar access ------------------------------------------

inline void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void
put32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void
put64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

inline std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

// --- zig-zag + varint -------------------------------------------------------

/** Map a signed delta onto an unsigned varint-friendly value:
 *  0,-1,1,-2,... -> 0,1,2,3,...  Small magnitudes of either sign
 *  stay small. */
inline std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** LEB128-style varint; at most 10 bytes for a u64. */
inline constexpr unsigned kMaxVarintBytes = 10;

/** Append @p v to @p out; returns bytes written. */
inline unsigned
putVarint(std::uint8_t *out, std::uint64_t v)
{
    unsigned n = 0;
    while (v >= 0x80) {
        out[n++] = static_cast<std::uint8_t>(v) | 0x80;
        v >>= 7;
    }
    out[n++] = static_cast<std::uint8_t>(v);
    return n;
}

/**
 * Decode one varint from [@p p, @p end); advances @p p.  Returns
 * false (leaving @p p untouched) on truncation or a varint longer
 * than 10 bytes -- the caller turns that into a TraceFormatError
 * with a real byte offset.
 */
inline bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    const std::uint8_t *q = p;
    while (q < end && shift < 64) {
        const std::uint8_t byte = *q++;
        v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            p = q;
            out = v;
            return true;
        }
        shift += 7;
    }
    return false;
}

// --- payload checksum -------------------------------------------------------

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

/** FNV-1a64, streamable: fold @p n bytes into @p h. */
inline std::uint64_t
fnv1a(std::uint64_t h, const std::uint8_t *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** FNV-1a64 of a string (used to hash non-numeric CSV keys). */
inline std::uint64_t
fnv1aString(const std::string &s)
{
    return fnv1a(kFnvOffset,
                 reinterpret_cast<const std::uint8_t *>(s.data()),
                 s.size());
}

} // namespace format

} // namespace csr::replay

#endif // CSR_REPLAY_FORMAT_H
