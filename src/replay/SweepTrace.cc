#include "replay/SweepTrace.h"

#include <unordered_set>

#include "replay/TraceReader.h"
#include "util/Random.h"

namespace csr::replay
{

namespace
{
/** Fan-out of the synthetic home assignment (the paper's CC-NUMA
 *  studies use 16-node machines). */
constexpr std::uint32_t kSyntheticHomes = 16;
} // namespace

std::string
traceCellName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::string suffix = ".csrt";
    if (base.size() > suffix.size() &&
        base.compare(base.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        base.resize(base.size() - suffix.size());
    return base;
}

SampledTrace
loadReplaySampledTrace(const std::string &path,
                       std::uint32_t block_bytes)
{
    TraceReader reader(path);

    SampledTrace trace;
    trace.benchmark = traceCellName(path);
    trace.sampledProc = 0;
    trace.blockBytes = block_bytes;
    trace.records.reserve(reader.recordCount());

    std::unordered_set<Addr> touched;
    std::uint64_t remote = 0;

    ReplayBlock block;
    for (std::uint64_t b = 0; b < reader.blockCount(); ++b) {
        reader.readBlock(b, block);
        for (std::size_t i = 0; i < block.size(); ++i) {
            const auto op = static_cast<TraceOp>(block.op[i]);
            if (op == TraceOp::Del)
                continue; // no load/store equivalent
            TraceRecord rec;
            rec.addr = block.key[i] * block_bytes;
            rec.proc = 0;
            rec.write = op == TraceOp::Set;

            const Addr blk = rec.addr / block_bytes; // == key
            const auto home = static_cast<ProcId>(
                hashMix64(blk) % kSyntheticHomes);
            if (touched.insert(blk).second)
                trace.homeOf.emplace(blk, home);
            if (home != trace.sampledProc)
                ++remote;

            trace.records.push_back(rec);
        }
    }

    trace.sampledRefs = trace.records.size();
    trace.touchedBytes =
        static_cast<std::uint64_t>(touched.size()) * block_bytes;
    trace.remoteAccessFraction =
        trace.sampledRefs
            ? static_cast<double>(remote) /
                  static_cast<double>(trace.sampledRefs)
            : 0.0;
    return trace;
}

} // namespace csr::replay
