/**
 * @file
 * Miss-latency prediction (Section 4.1).
 *
 * The paper's predictor is deliberately trivial: "we simply use the
 * last measured miss latency to predict the future miss latency to
 * the same block by the same processor", justified by Table 3 (93% of
 * consecutive misses to the same block have identical unloaded
 * latency).  Latency is measured by timestamping requests and taking
 * the difference when the data becomes available.
 *
 * One predictor instance lives in each node; the "same processor"
 * scoping falls out of that placement.
 */

#ifndef CSR_COST_LATENCYPREDICTOR_H
#define CSR_COST_LATENCYPREDICTOR_H

#include <cstdint>
#include <unordered_map>

#include "util/Types.h"

namespace csr
{

/**
 * Last-value miss-latency predictor.
 *
 * The table is unbounded in this model; a hardware realization would
 * piggyback the value on the cache line / a small tagged table, which
 * only changes capacity effects, not the mechanism (Section 5
 * discusses quantizing the stored costs).
 */
class LatencyPredictor
{
  public:
    /** @param default_latency prediction for never-missed blocks
     *  (the local clean latency is a sensible choice). */
    explicit LatencyPredictor(Cost default_latency)
        : defaultLatency_(default_latency)
    {
    }

    /** Record a measured miss latency for a block. */
    void
    update(Addr block_addr, Cost measured_latency)
    {
        table_[block_addr] = measured_latency;
        ++updates_;
    }

    /** Predicted next miss latency for a block. */
    Cost
    predict(Addr block_addr) const
    {
        auto it = table_.find(block_addr);
        return it == table_.end() ? defaultLatency_ : it->second;
    }

    /** True if the block has a recorded history. */
    bool
    known(Addr block_addr) const
    {
        return table_.find(block_addr) != table_.end();
    }

    std::uint64_t updates() const { return updates_; }
    std::size_t tableSize() const { return table_.size(); }

    void
    reset()
    {
        table_.clear();
        updates_ = 0;
    }

  private:
    Cost defaultLatency_;
    std::unordered_map<Addr, Cost> table_;
    std::uint64_t updates_ = 0;
};

} // namespace csr

#endif // CSR_COST_LATENCYPREDICTOR_H
