#include "cost/MigrationCost.h"

#include <unordered_map>

namespace csr
{

TableCost
buildMigratedCostModel(const SampledTrace &trace, CostRatio ratio,
                       std::uint64_t hot_threshold,
                       MigrationOutcome *outcome)
{
    // Access counts of the sampled processor per block.
    std::unordered_map<Addr, std::uint64_t> counts;
    for (const auto &record : trace.records) {
        if (record.proc == trace.sampledProc)
            ++counts[trace.blockOf(record)];
    }

    TableCost model(ratio.low);
    MigrationOutcome stats;
    std::uint64_t residual_remote_accesses = 0;
    std::uint64_t sampled_accesses = 0;

    for (const auto &[block, home] : trace.homeOf) {
        if (home == trace.sampledProc)
            continue; // already local
        ++stats.remoteBlocks;
        auto it = counts.find(block);
        const std::uint64_t count = it == counts.end() ? 0 : it->second;
        if (count >= hot_threshold) {
            ++stats.migratedBlocks; // re-homed: stays at low cost
        } else {
            model.set(block, ratio.high);
            residual_remote_accesses += count;
        }
    }
    for (const auto &[block, count] : counts)
        sampled_accesses += count;

    stats.residualRemoteFraction =
        sampled_accesses
            ? static_cast<double>(residual_remote_accesses) /
                  static_cast<double>(sampled_accesses)
            : 0.0;
    if (outcome)
        *outcome = stats;
    return model;
}

} // namespace csr
