/**
 * @file
 * The static cost mappings of Section 3.
 */

#ifndef CSR_COST_STATICCOSTMODELS_H
#define CSR_COST_STATICCOSTMODELS_H

#include <unordered_map>
#include <unordered_set>

#include "cost/CostModel.h"
#include "util/Random.h"

namespace csr
{

/** Every miss costs the same: the degenerate case in which every
 *  cost-sensitive algorithm should match LRU. */
class UniformCost : public CostModel
{
  public:
    explicit UniformCost(Cost cost = 1.0) : cost_(cost) {}

    Cost missCost(Addr) const override { return cost_; }

    std::string
    describe() const override
    {
        return "uniform";
    }

  private:
    Cost cost_;
};

/**
 * Random cost mapping (Section 3.2): each block address is
 * independently high-cost with probability HAF ("high-cost access
 * fraction"... strictly the high-cost *block* fraction; with random
 * placement the two coincide in expectation).  The mapping is a pure
 * hash of the block address, so it is static across the run, exactly
 * reproducible, and requires no table.
 */
class RandomTwoCost : public CostModel
{
  public:
    RandomTwoCost(CostRatio ratio, double haf, std::uint64_t seed = 0x51AB)
        : ratio_(ratio), haf_(haf), seed_(seed)
    {
    }

    bool
    isHighCost(Addr block_addr) const
    {
        const double u =
            static_cast<double>(hashMix64(block_addr ^ seed_) >> 11) *
            0x1.0p-53;
        return u < haf_;
    }

    Cost
    missCost(Addr block_addr) const override
    {
        return isHighCost(block_addr) ? ratio_.high : ratio_.low;
    }

    std::string
    describe() const override
    {
        return "random(" + ratio_.label() +
               ",HAF=" + std::to_string(haf_) + ")";
    }

    double haf() const { return haf_; }
    const CostRatio &ratio() const { return ratio_; }

  private:
    CostRatio ratio_;
    double haf_;
    std::uint64_t seed_;
};

/**
 * First-touch cost mapping (Section 3.3): blocks whose first-touch
 * home is the sampled processor's node are local (low cost); all
 * others are remote (high cost).  Blocks never seen in the home map
 * are treated as local (they can only be blocks the sampled processor
 * never touches).
 */
class FirstTouchTwoCost : public CostModel
{
  public:
    FirstTouchTwoCost(CostRatio ratio,
                      const std::unordered_map<Addr, ProcId> &home_of,
                      ProcId local_proc)
        : ratio_(ratio), homeOf_(&home_of), localProc_(local_proc)
    {
    }

    bool
    isRemote(Addr block_addr) const
    {
        auto it = homeOf_->find(block_addr);
        return it != homeOf_->end() && it->second != localProc_;
    }

    Cost
    missCost(Addr block_addr) const override
    {
        return isRemote(block_addr) ? ratio_.high : ratio_.low;
    }

    std::string
    describe() const override
    {
        return "first-touch(" + ratio_.label() + ")";
    }

  private:
    CostRatio ratio_;
    const std::unordered_map<Addr, ProcId> *homeOf_;
    ProcId localProc_;
};

/**
 * Explicit per-block cost table with a default, for tests and custom
 * cost functions (e.g. power or bandwidth weights).
 */
class TableCost : public CostModel
{
  public:
    explicit TableCost(Cost default_cost = 1.0)
        : defaultCost_(default_cost)
    {
    }

    void set(Addr block_addr, Cost cost) { table_[block_addr] = cost; }

    Cost
    missCost(Addr block_addr) const override
    {
        auto it = table_.find(block_addr);
        return it == table_.end() ? defaultCost_ : it->second;
    }

    std::string
    describe() const override
    {
        return "table";
    }

  private:
    Cost defaultCost_;
    std::unordered_map<Addr, Cost> table_;
};

} // namespace csr

#endif // CSR_COST_STATICCOSTMODELS_H
