/**
 * @file
 * Miss-cost models (Section 2: the cost function c(x_t)).
 *
 * A cost model answers one question: if this block misses, what does
 * the miss cost?  Hits always cost zero, which the simulators handle;
 * models only see misses.  The two-static-cost study (Section 3) uses
 * RandomTwoCost / FirstTouchTwoCost; the CC-NUMA study (Section 4)
 * measures latencies at run time and uses LatencyPredictor instead of
 * a static model.
 */

#ifndef CSR_COST_COSTMODEL_H
#define CSR_COST_COSTMODEL_H

#include <string>

#include "util/Types.h"

namespace csr
{

/**
 * Static (time-invariant) cost assignment by block address.
 */
class CostModel
{
  public:
    virtual ~CostModel() = default;

    /** Cost of a miss on @p block_addr (block-granular address). */
    virtual Cost missCost(Addr block_addr) const = 0;

    /** Short description for table headers. */
    virtual std::string describe() const = 0;
};

/**
 * The two-static-cost parameterization of Section 2: low-cost misses
 * cost `low`, high-cost ones cost `high`.  A finite cost ratio r maps
 * to (1, r); the infinite ratio maps to (0, 1), which makes the
 * aggregate cost a pure count of high-cost misses and neutralizes
 * cost depreciation, exactly as the paper describes.
 */
struct CostRatio
{
    Cost low = 1.0;
    Cost high = 2.0;
    bool infinite = false;

    static CostRatio
    finite(double r)
    {
        return {1.0, r, false};
    }

    static CostRatio
    makeInfinite()
    {
        return {0.0, 1.0, true};
    }

    std::string
    label() const
    {
        if (infinite)
            return "r=inf";
        return "r=" + std::to_string(static_cast<long long>(high));
    }
};

} // namespace csr

#endif // CSR_COST_COSTMODEL_H
