/**
 * @file
 * Dynamic page-migration cost study (the paper's Section 7 outlook:
 * "the memory mapping of blocks may vary with time, adapting
 * dynamically to the reference patterns ... such as page migration
 * and COMAs").
 *
 * An idealized migration policy moves the hottest remotely-homed
 * blocks to the accessing node, turning their future misses into
 * local (cheap) ones.  This module builds the post-migration cost
 * assignment for a sampled trace so the trace study can quantify how
 * much of the cost-sensitive-replacement opportunity migration
 * removes -- the two mechanisms compete for the same remote misses.
 */

#ifndef CSR_COST_MIGRATIONCOST_H
#define CSR_COST_MIGRATIONCOST_H

#include <cstdint>

#include "cost/StaticCostModels.h"
#include "trace/SampledTrace.h"

namespace csr
{

/** Statistics of a migration pass. */
struct MigrationOutcome
{
    std::uint64_t remoteBlocks = 0;   ///< blocks homed remotely
    std::uint64_t migratedBlocks = 0; ///< blocks re-homed locally
    /** Fraction of the sampled processor's accesses that remain
     *  remote after migration. */
    double residualRemoteFraction = 0.0;
};

/**
 * Build a two-cost model in which the remote blocks that received at
 * least @p hot_threshold accesses from the sampled processor have
 * been migrated to it (cost -> low); all other first-touch homes are
 * kept.
 *
 * @param trace         the sampled trace (provides homes + counts)
 * @param ratio         low/high costs for the resulting model
 * @param hot_threshold minimum access count to justify a migration
 * @param outcome       optional statistics sink
 */
TableCost buildMigratedCostModel(const SampledTrace &trace,
                                 CostRatio ratio,
                                 std::uint64_t hot_threshold,
                                 MigrationOutcome *outcome = nullptr);

} // namespace csr

#endif // CSR_COST_MIGRATIONCOST_H
