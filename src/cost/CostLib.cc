/**
 * @file
 * Anchor translation unit for the (otherwise header-only) cost
 * library; also a good home for out-of-line definitions if the
 * models grow.
 */

#include "cost/CostModel.h"
#include "cost/LatencyPredictor.h"
#include "cost/StaticCostModels.h"

namespace csr
{

// Intentionally empty: all current cost models are header-only.

} // namespace csr
