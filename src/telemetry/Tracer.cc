#include "telemetry/Tracer.h"

#include <algorithm>
#include <fstream>

#include "util/Logging.h"

namespace csr::telemetry
{

namespace detail
{
std::atomic<bool> gTracingEnabled{false};
} // namespace detail

void
setTracingEnabled(bool on)
{
    detail::gTracingEnabled.store(on, std::memory_order_relaxed);
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t
Tracer::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

Tracer::ThreadBuffer &
Tracer::threadBuffer()
{
    // One registration per (thread, process); the cached pointer makes
    // the enabled-path cost one TLS read + one buffer-mutex lock.
    static thread_local ThreadBuffer *buffer = nullptr;
    if (buffer == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        buffers_.emplace_back();
        buffers_.back().tid =
            static_cast<std::uint32_t>(buffers_.size() - 1);
        buffer = &buffers_.back();
    }
    return *buffer;
}

void
Tracer::record(const char *cat, const char *name, char phase,
               double value, bool has_value)
{
    recordCalls_.fetch_add(1, std::memory_order_relaxed);
    ThreadBuffer &buffer = threadBuffer();
    TraceEvent event;
    event.name = name;
    event.cat = cat;
    event.phase = phase;
    event.tid = buffer.tid;
    event.tsNs = nowNs();
    event.value = value;
    event.hasValue = has_value;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(event);
}

void
Tracer::begin(const char *cat, const char *name)
{
    record(cat, name, 'B', 0.0, false);
}

void
Tracer::end(const char *cat, const char *name)
{
    record(cat, name, 'E', 0.0, false);
}

void
Tracer::instant(const char *cat, const char *name)
{
    record(cat, name, 'i', 0.0, false);
}

void
Tracer::instant(const char *cat, const char *name, double value)
{
    record(cat, name, 'i', value, true);
}

void
Tracer::counter(const char *cat, const char *name, double value)
{
    record(cat, name, 'C', value, true);
}

const char *
Tracer::intern(const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string &existing : interned_)
        if (existing == label)
            return existing.c_str();
    interned_.push_back(label);
    return interned_.back().c_str();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (ThreadBuffer &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer.mutex);
        buffer.events.clear();
    }
    epoch_ = std::chrono::steady_clock::now();
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const ThreadBuffer &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer.mutex);
        total += buffer.events.size();
    }
    return total;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceEvent> out;
    for (const ThreadBuffer &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer.mutex);
        out.insert(out.end(), buffer.events.begin(),
                   buffer.events.end());
    }
    return out;
}

namespace
{

/** JSON string escaping (names are controlled, but stay safe). */
void
writeJsonString(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    const std::vector<TraceEvent> events = snapshot();
    os << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &event = events[i];
        os << "{\"name\":";
        writeJsonString(os, event.name);
        os << ",\"cat\":";
        writeJsonString(os, event.cat);
        os << ",\"ph\":\"" << event.phase << "\"";
        // Chrome's ts unit is microseconds; keep ns precision.
        char ts[32];
        std::snprintf(ts, sizeof(ts), "%.3f",
                      static_cast<double>(event.tsNs) / 1000.0);
        os << ",\"ts\":" << ts << ",\"pid\":0,\"tid\":" << event.tid;
        if (event.phase == 'i')
            os << ",\"s\":\"t\""; // thread-scoped instant
        if (event.hasValue) {
            char value[32];
            std::snprintf(value, sizeof(value), "%.6g", event.value);
            os << ",\"args\":{\"value\":" << value << "}";
        }
        os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
}

void
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        csr_fatal("cannot write trace to '%s'", path.c_str());
    writeChromeTrace(os);
}

} // namespace csr::telemetry
