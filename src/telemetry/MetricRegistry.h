/**
 * @file
 * Unified metric registry: counters, distributions, timers and
 * histograms behind one name space and one dump schema.
 *
 * Before this layer, every component exported its own ad-hoc shape:
 * StatGroup counter maps, loose RunningStats (miss latency), loose
 * Histograms, and per-bench JSON writers.  The registry gives them
 * one sink: components (or their result structs) export into a
 * MetricRegistry, and every consumer -- csrsim --metrics, the bench
 * JSON emitters, tests -- reads one schema, as a text table or as
 * JSON:
 *
 *   {
 *     "counters":   { "name": 123, ... },
 *     "stats":      { "name": {"count":..,"mean":..,"stddev":..,
 *                              "min":..,"max":..}, ... },
 *     "timersSec":  { same shape as stats, unit seconds },
 *     "histograms": { "name": {"lo":..,"bucketWidth":..,
 *                              "underflow":..,"overflow":..,
 *                              "counts":[..]}, ... }
 *   }
 *
 * The registry is a reporting-path object: build/merge it after a run
 * (or from one thread), then dump it.  Map mutations are mutex-
 * guarded so concurrent import is safe, but references returned by
 * stat()/histogram() are only safe to mutate single-threaded.
 */

#ifndef CSR_TELEMETRY_METRICREGISTRY_H
#define CSR_TELEMETRY_METRICREGISTRY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "util/Stats.h"
#include "util/Table.h"

namespace csr
{

class MetricRegistry
{
  public:
    MetricRegistry() = default;

    // --- recording --------------------------------------------------------

    /** Increment a named counter (created at zero if absent). */
    void incCounter(std::string_view name, std::uint64_t by = 1);
    /** Overwrite a named counter. */
    void setCounter(std::string_view name, std::uint64_t value);

    /** Named RunningStat (created empty if absent). */
    RunningStat &stat(std::string_view name);

    /** Named timer: a RunningStat of seconds. */
    void recordTimerSec(std::string_view name, double seconds);

    /** Named histogram; created with the given shape if absent (an
     *  existing histogram keeps its shape; fatal on a shape clash). */
    Histogram &histogram(std::string_view name, double lo, double hi,
                         std::size_t buckets);

    // --- merging ----------------------------------------------------------

    /** Import every counter of @p group as "<prefix><name>". */
    void importCounters(const StatGroup &group,
                        const std::string &prefix = "");
    /** Merge @p other into the named stat. */
    void mergeStat(std::string_view name, const RunningStat &other);
    /** Merge @p other into the named histogram (created as a copy if
     *  absent; fatal on a shape clash). */
    void mergeHistogram(std::string_view name, const Histogram &other);
    /** Merge every metric of @p other into this registry. */
    void merge(const MetricRegistry &other);

    // --- reading ----------------------------------------------------------

    std::uint64_t counter(std::string_view name) const;
    /** Empty-stat fallback if absent. */
    RunningStat statOf(std::string_view name) const;
    const Histogram *histogramOf(std::string_view name) const;
    bool empty() const;

    // --- dumping (the one schema) -----------------------------------------

    /** One row per metric: Metric | Kind | Count | Value | Min | Max. */
    TextTable toTable(const std::string &title = "metrics") const;

    /** The JSON schema documented in the file comment. */
    void writeJson(std::ostream &os) const;
    /** Same, to a file; fatal if @p path cannot be opened. */
    void writeJson(const std::string &path) const;

    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, RunningStat, std::less<>> stats_;
    std::map<std::string, RunningStat, std::less<>> timers_;
    std::map<std::string, Histogram, std::less<>> histograms_;
};

} // namespace csr

#endif // CSR_TELEMETRY_METRICREGISTRY_H
