/**
 * @file
 * The instrumentation macros every component uses.
 *
 * All tracing in csr goes through these macros rather than direct
 * Tracer calls so that the whole subsystem can be compiled out with
 * -DCSR_TELEMETRY_DISABLED (CMake: -DCSR_TELEMETRY=OFF) and, when
 * compiled in, costs exactly one relaxed load + predictable branch
 * while runtime-disabled.  See Tracer.h for the overhead contract and
 * DESIGN.md "Telemetry" for the event taxonomy.
 *
 *   CSR_TRACE_SPAN(cat, name)        RAII duration span; name must be
 *                                    a string literal.
 *   CSR_TRACE_SPAN_DYN(cat, expr)    span with a computed label; the
 *                                    label expression is evaluated
 *                                    (and interned) only when tracing
 *                                    is enabled.
 *   CSR_TRACE_INSTANT(cat, name)     instant event.
 *   CSR_TRACE_INSTANT_V(cat, name, v) instant with a numeric arg.
 *   CSR_TRACE_COUNTER(cat, name, v)  counter sample (Perfetto track).
 */

#ifndef CSR_TELEMETRY_TELEMETRY_H
#define CSR_TELEMETRY_TELEMETRY_H

#include "telemetry/Tracer.h"

#if !defined(CSR_TELEMETRY_DISABLED)

#define CSR_TELEM_CAT2(a, b) a##b
#define CSR_TELEM_CAT(a, b) CSR_TELEM_CAT2(a, b)

#define CSR_TRACE_SPAN(cat, name)                                            \
    ::csr::telemetry::ScopedSpan CSR_TELEM_CAT(csr_trace_span_,              \
                                               __LINE__)(cat, name)

#define CSR_TRACE_SPAN_DYN(cat, labelExpr)                                   \
    ::csr::telemetry::ScopedSpan CSR_TELEM_CAT(csr_trace_span_, __LINE__)(   \
        cat, ::csr::telemetry::tracingEnabled()                              \
                 ? ::csr::telemetry::Tracer::instance().intern(labelExpr)    \
                 : "")

#define CSR_TRACE_INSTANT(cat, name)                                         \
    do {                                                                     \
        if (::csr::telemetry::tracingEnabled())                              \
            ::csr::telemetry::Tracer::instance().instant(cat, name);         \
    } while (0)

#define CSR_TRACE_INSTANT_V(cat, name, value)                                \
    do {                                                                     \
        if (::csr::telemetry::tracingEnabled())                              \
            ::csr::telemetry::Tracer::instance().instant(                    \
                cat, name, static_cast<double>(value));                      \
    } while (0)

#define CSR_TRACE_COUNTER(cat, name, value)                                  \
    do {                                                                     \
        if (::csr::telemetry::tracingEnabled())                              \
            ::csr::telemetry::Tracer::instance().counter(                    \
                cat, name, static_cast<double>(value));                      \
    } while (0)

#else // CSR_TELEMETRY_DISABLED

#define CSR_TRACE_SPAN(cat, name) ((void)0)
#define CSR_TRACE_SPAN_DYN(cat, labelExpr) ((void)0)
#define CSR_TRACE_INSTANT(cat, name) ((void)0)
#define CSR_TRACE_INSTANT_V(cat, name, value) ((void)0)
#define CSR_TRACE_COUNTER(cat, name, value) ((void)0)

#endif // CSR_TELEMETRY_DISABLED

#endif // CSR_TELEMETRY_TELEMETRY_H
