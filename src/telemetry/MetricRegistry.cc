#include "telemetry/MetricRegistry.h"

#include <fstream>

#include "util/Logging.h"

namespace csr
{

void
MetricRegistry::incCounter(std::string_view name, std::uint64_t by)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.lower_bound(name);
    if (it != counters_.end() && it->first == name) {
        it->second += by;
        return;
    }
    counters_.emplace_hint(it, std::string(name), by);
}

void
MetricRegistry::setCounter(std::string_view name, std::uint64_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.lower_bound(name);
    if (it != counters_.end() && it->first == name) {
        it->second = value;
        return;
    }
    counters_.emplace_hint(it, std::string(name), value);
}

RunningStat &
MetricRegistry::stat(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.lower_bound(name);
    if (it == stats_.end() || it->first != name)
        it = stats_.emplace_hint(it, std::string(name), RunningStat());
    return it->second;
}

void
MetricRegistry::recordTimerSec(std::string_view name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = timers_.lower_bound(name);
    if (it == timers_.end() || it->first != name)
        it = timers_.emplace_hint(it, std::string(name), RunningStat());
    it->second.add(seconds);
}

Histogram &
MetricRegistry::histogram(std::string_view name, double lo, double hi,
                          std::size_t buckets)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.lower_bound(name);
    if (it == histograms_.end() || it->first != name) {
        it = histograms_.emplace_hint(it, std::string(name),
                                      Histogram(lo, hi, buckets));
    } else {
        csr_assert(it->second.sameShape(Histogram(lo, hi, buckets)),
                   "histogram '%.*s' re-registered with another shape",
                   static_cast<int>(name.size()), name.data());
    }
    return it->second;
}

void
MetricRegistry::importCounters(const StatGroup &group,
                               const std::string &prefix)
{
    for (const auto &[name, value] : group.all())
        incCounter(prefix + name, value);
}

void
MetricRegistry::mergeStat(std::string_view name, const RunningStat &other)
{
    stat(name).merge(other);
}

void
MetricRegistry::mergeHistogram(std::string_view name,
                               const Histogram &other)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.lower_bound(name);
    if (it == histograms_.end() || it->first != name) {
        histograms_.emplace_hint(it, std::string(name), other);
        return;
    }
    csr_assert(it->second.sameShape(other),
               "histogram '%.*s' merged with another shape",
               static_cast<int>(name.size()), name.data());
    it->second.merge(other);
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    // Snapshot the source outside our own lock (self-merge is not
    // supported; the reporting path never needs it).
    std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto &[name, value] : other.counters_)
        incCounter(name, value);
    for (const auto &[name, value] : other.stats_)
        stat(name).merge(value);
    for (const auto &[name, value] : other.timers_) {
        std::lock_guard<std::mutex> self(mutex_);
        auto it = timers_.lower_bound(name);
        if (it == timers_.end() || it->first != name)
            it = timers_.emplace_hint(it, name, RunningStat());
        it->second.merge(value);
    }
    for (const auto &[name, value] : other.histograms_)
        mergeHistogram(name, value);
}

std::uint64_t
MetricRegistry::counter(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

RunningStat
MetricRegistry::statOf(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(name);
    return it == stats_.end() ? RunningStat() : it->second;
}

const Histogram *
MetricRegistry::histogramOf(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

bool
MetricRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && stats_.empty() && timers_.empty() &&
           histograms_.empty();
}

TextTable
MetricRegistry::toTable(const std::string &title) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    TextTable table(title);
    table.setHeader({"Metric", "Kind", "Count", "Value", "Min", "Max"});
    for (const auto &[name, value] : counters_)
        table.addRow({name, "counter", "-", TextTable::count(value),
                      "-", "-"});
    for (const auto &[name, value] : stats_)
        table.addRow({name, "stat", TextTable::count(value.count()),
                      TextTable::num(value.mean(), 3),
                      TextTable::num(value.min(), 3),
                      TextTable::num(value.max(), 3)});
    for (const auto &[name, value] : timers_)
        table.addRow({name, "timer(s)",
                      TextTable::count(value.count()),
                      TextTable::num(value.mean(), 4),
                      TextTable::num(value.min(), 4),
                      TextTable::num(value.max(), 4)});
    for (const auto &[name, value] : histograms_)
        table.addRow({name, "histogram",
                      TextTable::count(value.totalCount()),
                      "p50=" + TextTable::num(value.percentile(0.5), 1),
                      "p10=" + TextTable::num(value.percentile(0.1), 1),
                      "p99=" + TextTable::num(value.percentile(0.99), 1)});
    return table;
}

namespace
{

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char raw : s) {
        const unsigned char c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << raw;
            }
        }
    }
    os << '"';
}

std::string
numStr(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
writeStatMap(
    std::ostream &os,
    const std::map<std::string, RunningStat, std::less<>> &stats)
{
    bool first = true;
    for (const auto &[name, value] : stats) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        os << ": {\"count\": " << value.count()
           << ", \"mean\": " << numStr(value.mean())
           << ", \"stddev\": " << numStr(value.stddev())
           << ", \"min\": " << numStr(value.min())
           << ", \"max\": " << numStr(value.max()) << "}";
    }
    if (!stats.empty())
        os << "\n  ";
}

} // namespace

void
MetricRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        os << ": " << value;
    }
    if (!counters_.empty())
        os << "\n  ";
    os << "},\n  \"stats\": {";
    writeStatMap(os, stats_);
    os << "},\n  \"timersSec\": {";
    writeStatMap(os, timers_);
    os << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, value] : histograms_) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        writeJsonString(os, name);
        os << ": {\"lo\": " << numStr(value.bucketLo(0))
           << ", \"bucketWidth\": " << numStr(value.bucketWidth())
           << ", \"underflow\": " << value.underflow()
           << ", \"overflow\": " << value.overflow() << ", \"counts\": [";
        for (std::size_t i = 0; i < value.numBuckets(); ++i)
            os << (i ? ", " : "") << value.bucketCount(i);
        os << "]}";
    }
    if (!histograms_.empty())
        os << "\n  ";
    os << "}\n}\n";
}

void
MetricRegistry::writeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        csr_fatal("cannot write metrics to '%s'", path.c_str());
    writeJson(os);
}

void
MetricRegistry::reset()
{
    std::lock_guard lock(mutex_);
    counters_.clear();
    stats_.clear();
    timers_.clear();
    histograms_.clear();
}

} // namespace csr
