/**
 * @file
 * Event tracer with Chrome trace-event JSON export.
 *
 * The paper's algorithms are interesting for their *dynamics* -- when
 * a reservation opens, how fast depreciation closes it, when ACL's
 * two-bit counter flips -- none of which is visible in end-of-run
 * aggregates.  The Tracer records timestamped duration spans and
 * instant events into per-thread buffers and exports them in the
 * Chrome trace-event format, so a recorded run can be opened directly
 * in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Overhead contract (see DESIGN.md "Telemetry"):
 *
 *  - compiled out (-DCSR_TELEMETRY_DISABLED), the CSR_TRACE_* macros
 *    expand to nothing;
 *  - compiled in but runtime-disabled (the default), every macro is a
 *    single relaxed atomic load and a predictable branch -- no call
 *    into the Tracer is made, which tests/test_telemetry.cc verifies
 *    through the recordCalls() counter;
 *  - enabled, events append to a per-thread buffer under that
 *    buffer's own uncontended mutex (taken only so that export can
 *    run concurrently with stragglers under TSan).
 *
 * Event names are expected to be string literals; dynamic labels
 * (e.g. a sweep cell's "barnes/DCL/random/r=4" label) must be
 * interned first via Tracer::intern(), which returns a pointer that
 * stays valid for the process lifetime.
 */

#ifndef CSR_TELEMETRY_TRACER_H
#define CSR_TELEMETRY_TRACER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace csr::telemetry
{

namespace detail
{
/** The one runtime switch every tracing macro checks. */
extern std::atomic<bool> gTracingEnabled;
} // namespace detail

/** True while tracing is runtime-enabled (relaxed load; the disabled
 *  hot path is this one predictable branch). */
inline bool
tracingEnabled()
{
    return detail::gTracingEnabled.load(std::memory_order_relaxed);
}

/** Flip the runtime switch (typically once, before/after a run). */
void setTracingEnabled(bool on);

/** One recorded event.  POD-sized so per-thread buffers stay flat. */
struct TraceEvent
{
    const char *name = "";  ///< literal or Tracer::intern()ed
    const char *cat = "";   ///< literal category ("sweep", "policy", ...)
    char phase = 'i';       ///< Chrome phase: 'B', 'E', 'i' or 'C'
    std::uint32_t tid = 0;  ///< dense per-thread id (registration order)
    std::uint64_t tsNs = 0; ///< nanoseconds since the trace epoch
    double value = 0.0;     ///< numeric argument (when hasValue)
    bool hasValue = false;
};

/**
 * Process-wide tracer.  All recording goes through the singleton so
 * that instrumentation sites need no plumbing; sessions are delimited
 * by setTracingEnabled() + clear().
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** Open a duration span ('B'); pair with end(). */
    void begin(const char *cat, const char *name);
    /** Close the innermost span of this thread with @p name ('E'). */
    void end(const char *cat, const char *name);
    /** Record an instant event ('i'). */
    void instant(const char *cat, const char *name);
    /** Instant event carrying one numeric argument. */
    void instant(const char *cat, const char *name, double value);
    /** Counter sample ('C'): Perfetto renders these as a track. */
    void counter(const char *cat, const char *name, double value);

    /**
     * Copy @p label into process-lifetime storage and return a stable
     * pointer usable as an event name.  Repeated labels are collapsed
     * to one entry.
     */
    const char *intern(const std::string &label);

    /** Drop every recorded event and restart the trace epoch.  Buffers
     *  registered by live threads stay valid (they are emptied, not
     *  freed). */
    void clear();

    /** Total record() invocations since process start (never reset):
     *  the telemetry test's proof that the disabled path makes zero
     *  Tracer calls. */
    std::uint64_t recordCalls() const
    {
        return recordCalls_.load(std::memory_order_relaxed);
    }

    /** Number of buffered events across all threads. */
    std::size_t eventCount() const;

    /** Merged copy of every buffered event (stable per-thread order;
     *  threads are concatenated by tid). */
    std::vector<TraceEvent> snapshot() const;

    /** Export the buffered events as Chrome trace-event JSON. */
    void writeChromeTrace(std::ostream &os) const;
    /** Same, to a file; fatal if @p path cannot be opened. */
    void writeChromeTrace(const std::string &path) const;

  private:
    struct ThreadBuffer
    {
        std::uint32_t tid = 0;
        mutable std::mutex mutex;
        std::vector<TraceEvent> events;
    };

    Tracer();

    /** The buffer of the calling thread (registered on first use). */
    ThreadBuffer &threadBuffer();

    void record(const char *cat, const char *name, char phase,
                double value, bool has_value);

    std::uint64_t nowNs() const;

    mutable std::mutex mutex_; ///< guards buffers_ / interned_ / epoch_
    std::deque<ThreadBuffer> buffers_; ///< stable addresses, never freed
    std::deque<std::string> interned_;
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> recordCalls_{0};
};

/**
 * RAII duration span.  Construction latches the enabled state so the
 * matching 'E' event is emitted even if tracing is switched off while
 * the span is open (keeps begin/end balanced).
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *cat, const char *name)
        : cat_(cat), name_(name), active_(tracingEnabled())
    {
        if (active_)
            Tracer::instance().begin(cat_, name_);
    }

    ~ScopedSpan()
    {
        if (active_)
            Tracer::instance().end(cat_, name_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *cat_;
    const char *name_;
    bool active_;
};

} // namespace csr::telemetry

#endif // CSR_TELEMETRY_TRACER_H
