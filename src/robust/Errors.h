/**
 * @file
 * Typed error hierarchy of the csr robustness layer.
 *
 * Everything a *user* or the *environment* can get wrong -- bad
 * configuration, a corrupt trace file, a stale checkpoint, a
 * simulation that stops making progress -- is reported as a subclass
 * of csr::Error instead of csr_fatal()'s exit(1) or a bare
 * std::runtime_error.  Each class carries a stable kind() string and
 * the process exit code drivers map it to, so a sweep supervisor (or
 * csrsim itself) can tell "retryable cell failure" from "the whole
 * invocation is misconfigured" without parsing message text.
 *
 * csr_panic()/csr_assert() remain the tool for *internal* invariant
 * violations that indicate a bug in csr itself; those still abort.
 *
 * Header-only on purpose: the hierarchy is depended on from every
 * layer (util's CliArgs up to the NUMA simulator), so it must not
 * drag a library link dependency with it.
 */

#ifndef CSR_ROBUST_ERRORS_H
#define CSR_ROBUST_ERRORS_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace csr
{

/** Process exit codes, one per error class (csrsim's contract). */
namespace exitcode
{
constexpr int kOk = 0;
constexpr int kGeneric = 1;       ///< usage errors, csr_fatal, unknown
constexpr int kConfig = 2;        ///< ConfigError
constexpr int kTraceFormat = 3;   ///< TraceFormatError
constexpr int kCheckpoint = 4;    ///< CheckpointError
constexpr int kStall = 5;         ///< SimulationStallError
constexpr int kGeometry = 6;      ///< CacheGeometryError
constexpr int kInvariant = 7;     ///< InvariantError
constexpr int kInjectedFault = 8; ///< InjectedFaultError
constexpr int kTimeout = 9;       ///< TimeoutError
/** A sweep finished but some cells failed (partial success). */
constexpr int kSweepPartial = 10;
constexpr int kNet = 11;          ///< NetError
constexpr int kCircuitOpen = 12;  ///< CircuitOpenError
} // namespace exitcode

/**
 * Base of all typed csr errors.  what() is the human-readable
 * message; kind() is a stable machine-readable class name (also the
 * string journaled into sweep checkpoints and JSON failure
 * appendices); exitCode() is the process exit status drivers use.
 */
class Error : public std::runtime_error
{
  public:
    Error(const char *kind, int exit_code, const std::string &what)
        : std::runtime_error(what), kind_(kind), exitCode_(exit_code)
    {
    }

    const char *kind() const { return kind_; }
    int exitCode() const { return exitCode_; }

  private:
    const char *kind_;
    int exitCode_;
};

/** The user asked for something impossible: bad flag value, unknown
 *  preset, unwritable output path, inconsistent parameters. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string &what)
        : Error("ConfigError", exitcode::kConfig, what)
    {
    }
};

/** A trace file is malformed: bad magic, truncated records, garbage
 *  lines.  Carries the byte offset at which parsing failed. */
class TraceFormatError : public Error
{
  public:
    explicit TraceFormatError(const std::string &what,
                              std::uint64_t byte_offset = 0)
        : Error("TraceFormatError", exitcode::kTraceFormat,
                what + " (at byte offset " +
                    std::to_string(byte_offset) + ")"),
          byteOffset_(byte_offset)
    {
    }

    /** Offset of the first byte that could not be consumed. */
    std::uint64_t byteOffset() const { return byteOffset_; }

  private:
    std::uint64_t byteOffset_;
};

/** A sweep checkpoint is unreadable, malformed, or was written for a
 *  different grid. */
class CheckpointError : public Error
{
  public:
    explicit CheckpointError(const std::string &what)
        : Error("CheckpointError", exitcode::kCheckpoint, what)
    {
    }
};

/**
 * The simulator stopped making forward progress (coherence livelock,
 * drained event queue with unfinished processors) or exceeded its
 * cycle budget.  Raised by the NumaSystem watchdog *instead of
 * hanging*; carries the diagnostic snapshot taken at the point of
 * stall (per-node MSHR occupancy, directory transactions, network
 * state, event-queue depth).
 */
class SimulationStallError : public Error
{
  public:
    SimulationStallError(const std::string &what,
                         const std::string &snapshot)
        : Error("SimulationStallError", exitcode::kStall,
                snapshot.empty() ? what : what + "\n" + snapshot),
          snapshot_(snapshot)
    {
    }

    /** The component-state dump taken when the watchdog fired. */
    const std::string &snapshot() const { return snapshot_; }

  private:
    std::string snapshot_;
};

/** An always-on validation pass (--validate) found corrupted
 *  simulator state: recency stack out of sync with the cache model,
 *  duplicate ETD tags, coherence violations. */
class InvariantError : public Error
{
  public:
    explicit InvariantError(const std::string &what)
        : Error("InvariantError", exitcode::kInvariant, what)
    {
    }
};

/**
 * A bounded wait expired: a serve-layer waiter gave up on a wedged
 * single-flight leader, or a network client ran out of patience on a
 * socket.  Distinct from SimulationStallError (which diagnoses the
 * simulator's own event loop): a timeout names an *external* party --
 * a backend, a peer -- that stopped answering, and the right reaction
 * is usually to fail the one request, not the process.
 */
class TimeoutError : public Error
{
  public:
    explicit TimeoutError(const std::string &what)
        : Error("TimeoutError", exitcode::kTimeout, what)
    {
    }
};

/**
 * A socket-layer operation failed: bind/listen/connect refused, a
 * peer spoke garbage RESP, a write hit a dead connection.  Carries
 * the errno text when one applies.  ConfigError stays the right type
 * for user-supplied addresses that fail to *parse*; NetError is for
 * the OS or the peer saying no at runtime.
 */
class NetError : public Error
{
  public:
    explicit NetError(const std::string &what)
        : Error("NetError", exitcode::kNet, what)
    {
    }
};

/**
 * A circuit breaker is open: the serve layer refused to start a
 * backend fetch because recent fetches against the same shard kept
 * failing or timing out.  Distinct from TimeoutError -- no wait
 * happened; the request was failed *fast*, which is the whole point.
 * Callers holding a stale resident value may prefer serving it
 * (--stale-while-broken) over surfacing this error.
 */
class CircuitOpenError : public Error
{
  public:
    explicit CircuitOpenError(const std::string &what)
        : Error("CircuitOpenError", exitcode::kCircuitOpen, what)
    {
    }
};

/** A deterministic fault injected by csr::FaultInjector (only ever
 *  raised in builds with -DCSR_FAULT_INJECT=ON). */
class InjectedFaultError : public Error
{
  public:
    explicit InjectedFaultError(const std::string &what)
        : Error("InjectedFaultError", exitcode::kInjectedFault, what)
    {
    }
};

} // namespace csr

#endif // CSR_ROBUST_ERRORS_H
