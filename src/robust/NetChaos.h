/**
 * @file
 * Deterministic network chaos injection for csr::serve (the wire-tier
 * sibling of FaultInjector).
 *
 * FaultInjector's probes are scoped to a (cell, attempt) and advance a
 * thread-local draw index -- the right shape for a sweep, the wrong
 * one for a server where the set of threads and their interleaving is
 * not part of the contract.  Network chaos decisions must instead be
 * a pure function of *what* is being perturbed, never of *when* or
 * *on which thread*:
 *
 *     decide(cfg, site, a, b) = f(cfg.seed, site, a, b)
 *
 * where (a, b) name the operation deterministically -- a key and its
 * per-key fetch-attempt ordinal for backend faults, a connection
 * serial and write ordinal for short writes.  Two runs with the same
 * seed and the same client stream inject the same backend faults into
 * the same fetches, no matter how the epoll workers interleave; CI
 * soaks diff their summaries per seed.
 *
 * Sites split into two determinism classes, documented per enumerator:
 * CONTENT faults change observable replies/totals deterministically;
 * TIMING faults (short writes, deferred accepts) only perturb pacing
 * and must leave every byte of the summary unchanged.  ConnReset is
 * the deliberate exception -- it loses queued commands, so it is
 * opt-in (`resets`) and excluded from summary-diffed CI legs.
 *
 * Header-only, like Errors.h: depended on from src/serve and tools
 * without dragging a library edge.
 */

#ifndef CSR_ROBUST_NETCHAOS_H
#define CSR_ROBUST_NETCHAOS_H

#include <cstdint>
#include <string>

#include "robust/Errors.h"
#include "util/Random.h"

namespace csr
{

/** Named wire-tier chaos sites. */
enum class ChaosSite : unsigned
{
    ShortWrite = 0, ///< TIMING: cap one send() below the queued bytes
    DeferAccept,    ///< TIMING: delay servicing an accepted socket
    BackendError,   ///< CONTENT: fetchAsync completes with an error
    BackendLatency, ///< CONTENT: scale a fetch's reported latency
    ConnReset,      ///< LOSSY: close a connection mid-command (opt-in)
    Count_,
};

inline const char *
chaosSiteName(ChaosSite site)
{
    switch (site) {
    case ChaosSite::ShortWrite: return "ShortWrite";
    case ChaosSite::DeferAccept: return "DeferAccept";
    case ChaosSite::BackendError: return "BackendError";
    case ChaosSite::BackendLatency: return "BackendLatency";
    case ChaosSite::ConnReset: return "ConnReset";
    case ChaosSite::Count_: break;
    }
    return "?";
}

/** Wire chaos knobs (csrserve --chaos-rate / --chaos-seed /
 *  --chaos-resets).  rate <= 0 turns every site off. */
struct ChaosConfig
{
    double rate = 0.0;
    std::uint64_t seed = 0;
    /** Enable the lossy ConnReset site (drops queued commands, so the
     *  deterministic-summary contract no longer holds). */
    bool resets = false;

    bool enabled() const { return rate > 0.0; }

    /** Consume --chaos-* flags from @p args (templated on the CliArgs
     *  accessor surface so the robust layer keeps zero util header
     *  dependencies beyond Random.h). */
    template <typename Args>
    static ChaosConfig fromArgs(const Args &args)
    {
        ChaosConfig cfg;
        cfg.rate = args.getDouble("chaos-rate", cfg.rate);
        cfg.seed = args.getUInt("chaos-seed", cfg.seed);
        cfg.resets = args.has("chaos-resets");
        return cfg;
    }

    /** @throws ConfigError on out-of-range values. */
    void validate() const
    {
        if (rate < 0.0 || rate > 1.0)
            throw ConfigError("--chaos-rate must be in [0, 1], got " +
                              std::to_string(rate));
        if (resets && !(rate > 0.0))
            throw ConfigError(
                "--chaos-resets requires --chaos-rate > 0");
    }
};

namespace detail
{
/** One shared draw chain for every chaos decision: mix the seed with
 *  a site-distinct constant and the two operation coordinates.  The
 *  0x9E37... odd multiplier keeps neighbouring sites/ordinals from
 *  producing correlated draws (same discipline as FaultInjector). */
inline std::uint64_t
chaosHash(const ChaosConfig &cfg, ChaosSite site, std::uint64_t a,
          std::uint64_t b)
{
    std::uint64_t h = hashMix64(cfg.seed ^ 0xC4A05C4A05ull);
    h = hashMix64(h ^ (static_cast<std::uint64_t>(site) + 1) *
                          0x9E3779B97F4A7C15ull);
    h = hashMix64(h ^ a * 0xBF58476D1CE4E5B9ull);
    h = hashMix64(h ^ b * 0x94D049BB133111EBull);
    return h;
}
} // namespace detail

/** Uniform draw in [0, 1) for (site, a, b) -- pure function of the
 *  config.  Used both for Bernoulli decisions and for scaling
 *  magnitudes (latency spike factor, short-write cap). */
inline double
chaosDraw(const ChaosConfig &cfg, ChaosSite site, std::uint64_t a,
          std::uint64_t b = 0)
{
    // Top 53 bits -> double in [0, 1), exactly representable.
    return static_cast<double>(detail::chaosHash(cfg, site, a, b) >>
                               11) *
           0x1.0p-53;
}

/** Deterministic Bernoulli decision: should this (site, a, b) fault
 *  fire?  Always false when chaos is off. */
inline bool
chaosDecide(const ChaosConfig &cfg, ChaosSite site, std::uint64_t a,
            std::uint64_t b = 0)
{
    if (!cfg.enabled())
        return false;
    if (site == ChaosSite::ConnReset && !cfg.resets)
        return false;
    return chaosDraw(cfg, site, a, b) < cfg.rate;
}

} // namespace csr

#endif // CSR_ROBUST_NETCHAOS_H
