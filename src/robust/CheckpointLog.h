/**
 * @file
 * Append-only JSONL journal: the persistence substrate of sweep
 * checkpoint/resume.
 *
 * A checkpoint is one JSON object per line.  Appends are atomic at
 * line granularity (single fwrite + flush under a mutex), so a killed
 * process can leave at most one torn line -- and only as the *last*
 * line of the file.  The reader therefore discards an unterminated
 * final line silently (that is the expected kill signature) but
 * treats any other malformed input as CheckpointError, with the line
 * number and byte offset of the failure.
 *
 * The JSON subset handled here is exactly what the writers emit: one
 * flat object per line, string/number/bool values, no nesting.  The
 * parser is bounds-checked end to end; feeding it arbitrary garbage
 * raises CheckpointError, never UB.  Doubles that must round-trip
 * bit-exactly (the resume-equivalence contract) are stored as 16-hex-
 * digit bit patterns via jsonDoubleBits()/getDoubleBits().
 */

#ifndef CSR_ROBUST_CHECKPOINTLOG_H
#define CSR_ROBUST_CHECKPOINTLOG_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "robust/Errors.h"

namespace csr
{

/** JSON string escaping ("\"", "\\", control characters). */
std::string jsonEscape(const std::string &s);

/** Bit-exact double encoding: 16 hex digits of the IEEE-754 image. */
std::string jsonDoubleBits(double v);

/**
 * Thread-safe append-only line writer.  open() truncates or appends;
 * appendLine() writes one complete line and flushes so the journal
 * survives a kill of the process.
 */
class JsonlWriter
{
  public:
    JsonlWriter() = default;
    ~JsonlWriter() { close(); }

    JsonlWriter(const JsonlWriter &) = delete;
    JsonlWriter &operator=(const JsonlWriter &) = delete;

    /** Open @p path; throws ConfigError when it cannot be opened. */
    void open(const std::string &path, bool truncate);

    bool isOpen() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    /** Append @p json + '\n' and flush.  No-op when not open. */
    void appendLine(const std::string &json);

    void close();

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::mutex mutex_;
};

/** One line read back from a JSONL file. */
struct JsonlRecord
{
    std::string text;            ///< without the trailing newline
    std::uint64_t byteOffset = 0; ///< of the line's first byte
    std::size_t lineNumber = 0;   ///< 1-based
    bool terminated = false;      ///< line ended with '\n'
};

/**
 * Read every line of @p path.  A missing file yields an empty vector
 * (resume from nothing); an unreadable file raises CheckpointError.
 */
std::vector<JsonlRecord> readJsonlFile(const std::string &path);

/**
 * Bounds-checked view of one flat JSON object line.  The constructor
 * tokenizes the whole line (so a malformed line fails loudly and
 * early); accessors throw CheckpointError naming the line and byte
 * offset on missing keys or type mismatches.
 */
class JsonLineView
{
  public:
    explicit JsonLineView(const JsonlRecord &record);

    bool has(const std::string &key) const
    {
        return fields_.count(key) != 0;
    }

    /** String value (unescaped). */
    std::string getString(const std::string &key) const;

    /** Unsigned integer value. */
    std::uint64_t getUInt(const std::string &key) const;

    /** Plain (lossy) number value. */
    double getDouble(const std::string &key) const;

    /** Bit-exact double stored with jsonDoubleBits(). */
    double getDoubleBits(const std::string &key) const;

  private:
    /** key -> raw value text; strings already unescaped and marked. */
    struct Field
    {
        std::string value;
        bool isString = false;
    };

    [[noreturn]] void fail(const std::string &what) const;
    const Field &field(const std::string &key) const;

    std::map<std::string, Field> fields_;
    std::size_t lineNumber_;
    std::uint64_t byteOffset_;
};

} // namespace csr

#endif // CSR_ROBUST_CHECKPOINTLOG_H
