#include "robust/CheckpointLog.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>

#include "robust/FaultInjector.h"

namespace csr
{

namespace
{

/** Append c as a \u00XX escape. */
void
appendUnicodeEscape(std::string &out, unsigned char c)
{
    static const char hex[] = "0123456789abcdef";
    out += "\\u00";
    out += hex[(c >> 4) & 0xF];
    out += hex[c & 0xF];
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                appendUnicodeEscape(out, c);
            else
                out += ch;
        }
    }
    return out;
}

std::string
jsonDoubleBits(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, bits);
    return buf;
}

void
JsonlWriter::open(const std::string &path, bool truncate)
{
    close();
    file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (file_ == nullptr)
        throw ConfigError("cannot open checkpoint '" + path +
                          "' for writing: " + std::strerror(errno));
    path_ = path;
}

void
JsonlWriter::appendLine(const std::string &json)
{
    if (file_ == nullptr)
        return;
    // Fires only for callers with an active FaultInjector::Scope
    // (unit tests of checkpoint robustness); an injected fault here
    // behaves like a real failed disk write.
    CSR_FAULT_POINT(FaultSite::CheckpointIO, "journal append");
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::string line = json + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fflush(file_) != 0)
        throw CheckpointError("write failure on checkpoint '" + path_ +
                              "': " + std::strerror(errno));
}

void
JsonlWriter::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

std::vector<JsonlRecord>
readJsonlFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (errno == ENOENT)
            return {};
        throw CheckpointError("cannot open checkpoint '" + path +
                              "' for reading: " + std::strerror(errno));
    }

    std::vector<JsonlRecord> records;
    JsonlRecord current;
    current.byteOffset = 0;
    current.lineNumber = 1;
    std::uint64_t offset = 0;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        for (std::size_t i = 0; i < n; ++i, ++offset) {
            if (buf[i] == '\n') {
                current.terminated = true;
                records.push_back(std::move(current));
                current = JsonlRecord{};
                current.byteOffset = offset + 1;
                current.lineNumber = records.size() + 1;
            } else {
                current.text += buf[i];
            }
        }
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw CheckpointError("read failure on checkpoint '" + path + "'");
    if (!current.text.empty())
        records.push_back(std::move(current)); // unterminated final line
    return records;
}

JsonLineView::JsonLineView(const JsonlRecord &record)
    : lineNumber_(record.lineNumber), byteOffset_(record.byteOffset)
{
    // One pass over the flat object: '{' (key : value ,)* '}'.
    const std::string &s = record.text;
    std::size_t i = 0;
    const auto skipSpace = [&] {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    };
    const auto parseString = [&]() -> std::string {
        // s[i] == '"' on entry, checked by the caller.
        ++i;
        std::string out;
        while (true) {
            if (i >= s.size())
                fail("unterminated string");
            const char c = s[i++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (i >= s.size())
                fail("dangling escape");
            const char esc = s[i++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                  if (i + 4 > s.size())
                      fail("truncated \\u escape");
                  unsigned code = 0;
                  for (int k = 0; k < 4; ++k) {
                      const char h = s[i++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          fail("bad \\u escape digit");
                  }
                  if (code > 0xFF)
                      fail("non-latin \\u escape unsupported");
                  out += static_cast<char>(code);
                  break;
              }
              default:
                fail(std::string("unknown escape '\\") + esc + "'");
            }
        }
    };

    skipSpace();
    if (i >= s.size() || s[i] != '{')
        fail("expected '{'");
    ++i;
    skipSpace();
    if (i < s.size() && s[i] == '}')
        ++i;
    else {
        while (true) {
            skipSpace();
            if (i >= s.size() || s[i] != '"')
                fail("expected key string");
            const std::string key = parseString();
            skipSpace();
            if (i >= s.size() || s[i] != ':')
                fail("expected ':' after key '" + key + "'");
            ++i;
            skipSpace();
            Field field;
            if (i >= s.size())
                fail("missing value for key '" + key + "'");
            if (s[i] == '"') {
                field.value = parseString();
                field.isString = true;
            } else {
                // Number / true / false / null: the run of chars up
                // to ',' '}' or whitespace.
                const std::size_t start = i;
                while (i < s.size() && s[i] != ',' && s[i] != '}' &&
                       !std::isspace(static_cast<unsigned char>(s[i])))
                    ++i;
                if (i == start)
                    fail("missing value for key '" + key + "'");
                field.value = s.substr(start, i - start);
                if (field.value != "true" && field.value != "false" &&
                    field.value != "null") {
                    char *end = nullptr;
                    std::strtod(field.value.c_str(), &end);
                    if (end != field.value.c_str() + field.value.size())
                        fail("malformed value for key '" + key + "'");
                }
            }
            fields_[key] = std::move(field);
            skipSpace();
            if (i >= s.size())
                fail("unterminated object");
            if (s[i] == ',') {
                ++i;
                continue;
            }
            if (s[i] == '}') {
                ++i;
                break;
            }
            fail("expected ',' or '}'");
        }
    }
    skipSpace();
    if (i != s.size())
        fail("trailing garbage after object");
}

void
JsonLineView::fail(const std::string &what) const
{
    throw CheckpointError(
        "checkpoint line " + std::to_string(lineNumber_) +
        " (byte offset " + std::to_string(byteOffset_) + "): " + what);
}

const JsonLineView::Field &
JsonLineView::field(const std::string &key) const
{
    const auto it = fields_.find(key);
    if (it == fields_.end())
        fail("missing key '" + key + "'");
    return it->second;
}

std::string
JsonLineView::getString(const std::string &key) const
{
    const Field &f = field(key);
    if (!f.isString)
        fail("key '" + key + "' is not a string");
    return f.value;
}

std::uint64_t
JsonLineView::getUInt(const std::string &key) const
{
    const Field &f = field(key);
    char *end = nullptr;
    errno = 0;
    const std::uint64_t v = std::strtoull(f.value.c_str(), &end, 10);
    if (f.isString || end == f.value.c_str() || *end != '\0' ||
        errno == ERANGE || f.value[0] == '-')
        fail("key '" + key + "' is not an unsigned integer");
    return v;
}

double
JsonLineView::getDouble(const std::string &key) const
{
    const Field &f = field(key);
    char *end = nullptr;
    const double v = std::strtod(f.value.c_str(), &end);
    if (f.isString || end == f.value.c_str() || *end != '\0')
        fail("key '" + key + "' is not a number");
    return v;
}

double
JsonLineView::getDoubleBits(const std::string &key) const
{
    const Field &f = field(key);
    if (!f.isString || f.value.size() != 16)
        fail("key '" + key + "' is not a 16-hex-digit bit pattern");
    std::uint64_t bits = 0;
    for (const char h : f.value) {
        bits <<= 4;
        if (h >= '0' && h <= '9')
            bits |= static_cast<std::uint64_t>(h - '0');
        else if (h >= 'a' && h <= 'f')
            bits |= static_cast<std::uint64_t>(h - 'a' + 10);
        else
            fail("key '" + key + "' is not a 16-hex-digit bit pattern");
    }
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace csr
