/**
 * @file
 * Deterministic fault injection for testing the robustness layer.
 *
 * The isolation/retry/checkpoint/watchdog machinery is itself code
 * that must be exercised in CI, which needs failures on demand.  The
 * injector provides seeded, reproducible fault decisions at named
 * probe points compiled into the simulators:
 *
 *   - probes are only present in builds configured with
 *     -DCSR_FAULT_INJECT=ON (the CSR_FAULT_POINT macro is a no-op
 *     otherwise), so release hot paths carry zero overhead;
 *   - decisions are a pure function of (global seed, thread context,
 *     probe site, per-site draw index) -- the same configuration
 *     injects the same faults into the same cells regardless of
 *     worker count or scheduling;
 *   - probes fire only inside an explicit FaultInjector::Scope.
 *     SweepRunner opens one scope per (cell, attempt), which is what
 *     makes a retried cell draw *fresh* decisions and the shared
 *     setup phase immune.
 *
 * A firing probe throws InjectedFaultError, which flows through
 * exactly the paths a real TraceFormatError or stall would take.
 */

#ifndef CSR_ROBUST_FAULTINJECTOR_H
#define CSR_ROBUST_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <string>

#include "robust/Errors.h"

namespace csr
{

/** Named probe points compiled into the simulators. */
enum class FaultSite : unsigned
{
    TraceLoad = 0, ///< TraceIO binary trace parsing
    TraceSim,      ///< TraceSimulator replay loop (per-cell work)
    NumaSim,       ///< NumaSystem event loop
    CheckpointIO,  ///< sweep checkpoint journal append
    Count_,
};

const char *faultSiteName(FaultSite site);

/** True when this binary carries the probes (-DCSR_FAULT_INJECT=ON);
 *  lets drivers warn when --fault-rate is asked of a build that
 *  cannot honour it. */
constexpr bool
faultInjectionCompiledIn()
{
#if defined(CSR_FAULT_INJECT)
    return true;
#else
    return false;
#endif
}

/**
 * Process-global injector.  configure() once (from the CLI, before
 * any worker threads start); shouldFail() from any thread.
 */
class FaultInjector
{
  public:
    static FaultInjector &instance();

    /** Set the global fault probability and seed.  rate <= 0 turns
     *  injection off (the default). */
    void configure(double rate, std::uint64_t seed);

    bool enabled() const { return rate_ > 0.0; }
    double rate() const { return rate_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Deterministic Bernoulli draw for one probe execution.  Returns
     * false when injection is off or the calling thread has no active
     * Scope.  Each call advances the calling thread's per-site draw
     * index, so consecutive probes in one scope are independent.
     */
    bool shouldFail(FaultSite site);

    /** Total faults injected since configure() (all threads). */
    std::uint64_t injectedCount() const
    {
        return injected_.load(std::memory_order_relaxed);
    }

    /**
     * RAII thread context.  The context value (e.g. a sweep cell's
     * hash mixed with the attempt number) seeds every draw made by
     * this thread while the scope is active; scopes nest, restoring
     * the previous context on destruction.
     */
    class Scope
    {
      public:
        explicit Scope(std::uint64_t context);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        bool prevActive_;
        std::uint64_t prevContext_;
    };

  private:
    FaultInjector() = default;

    double rate_ = 0.0;
    std::uint64_t seed_ = 0;
    std::atomic<std::uint64_t> injected_{0};
};

} // namespace csr

/**
 * Probe point: in CSR_FAULT_INJECT builds, asks the injector for a
 * decision and throws InjectedFaultError on a hit; compiled out
 * entirely otherwise.  @p what is a short human label for the thrown
 * message.
 */
#if defined(CSR_FAULT_INJECT)
#define CSR_FAULT_POINT(site, what)                                          \
    do {                                                                     \
        if (::csr::FaultInjector::instance().shouldFail(site)) {             \
            throw ::csr::InjectedFaultError(                                 \
                std::string("injected fault at ") +                          \
                ::csr::faultSiteName(site) + ": " + (what));                 \
        }                                                                    \
    } while (0)
#else
#define CSR_FAULT_POINT(site, what) ((void)0)
#endif

#endif // CSR_ROBUST_FAULTINJECTOR_H
