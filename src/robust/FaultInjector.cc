#include "robust/FaultInjector.h"

#include "util/Random.h"

namespace csr
{

namespace
{

/** Per-thread injection context: draws are a pure function of
 *  (seed, context, site, index), so each thread keeps its own draw
 *  indices, reset whenever a new Scope sets a new context. */
struct ThreadContext
{
    bool active = false;
    std::uint64_t context = 0;
    std::uint64_t drawIndex[static_cast<unsigned>(FaultSite::Count_)] = {};
};

thread_local ThreadContext tls_ctx;

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::TraceLoad:
        return "trace-load";
      case FaultSite::TraceSim:
        return "trace-sim";
      case FaultSite::NumaSim:
        return "numa-sim";
      case FaultSite::CheckpointIO:
        return "checkpoint-io";
      case FaultSite::Count_:
        break;
    }
    return "?";
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::configure(double rate, std::uint64_t seed)
{
    rate_ = rate;
    seed_ = seed;
    injected_.store(0, std::memory_order_relaxed);
}

bool
FaultInjector::shouldFail(FaultSite site)
{
    if (rate_ <= 0.0 || !tls_ctx.active)
        return false;
    const unsigned s = static_cast<unsigned>(site);
    const std::uint64_t index = tls_ctx.drawIndex[s]++;
    std::uint64_t h = hashMix64(seed_ ^ 0x0F417EC7ull);
    h = hashMix64(h ^ tls_ctx.context);
    h = hashMix64(h ^ (std::uint64_t{s} * 0x9E3779B97F4A7C15ull));
    h = hashMix64(h ^ index);
    // Top 53 bits -> uniform double in [0, 1).
    const double draw =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    if (draw >= rate_)
        return false;
    injected_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

FaultInjector::Scope::Scope(std::uint64_t context)
    : prevActive_(tls_ctx.active), prevContext_(tls_ctx.context)
{
    tls_ctx.active = true;
    tls_ctx.context = context;
    for (auto &index : tls_ctx.drawIndex)
        index = 0;
}

FaultInjector::Scope::~Scope()
{
    tls_ctx.active = prevActive_;
    tls_ctx.context = prevContext_;
    // Draw indices are only meaningful inside a scope; entering the
    // restored outer scope mid-stream is not supported (SweepRunner
    // opens exactly one scope per attempt), so leave them reset.
    for (auto &index : tls_ctx.drawIndex)
        index = 0;
}

} // namespace csr
