/**
 * @file
 * Random replacement -- a sanity baseline for the evaluation harness.
 */

#ifndef CSR_CACHE_RANDOMPOLICY_H
#define CSR_CACHE_RANDOMPOLICY_H

#include "cache/StackPolicyBase.h"
#include "util/Random.h"

namespace csr
{

/**
 * Uniform-random victim selection among resident ways.  Deterministic
 * under a fixed seed.
 */
class RandomPolicy : public StackPolicyBase
{
  public:
    explicit RandomPolicy(const CacheGeometry &geom,
                          std::uint64_t seed = 0xC5CADAull)
        : StackPolicyBase(geom), rng_(seed)
    {
    }

    std::string name() const override { return "Random"; }

    int
    selectVictim(std::uint32_t set) override
    {
        const int n = stackSize(set);
        csr_assert(n > 0, "victim requested on empty set");
        return wayAt(set, 1 + static_cast<int>(rng_.nextBelow(
                                 static_cast<std::uint64_t>(n))));
    }

  private:
    Rng rng_;
};

} // namespace csr

#endif // CSR_CACHE_RANDOMPOLICY_H
