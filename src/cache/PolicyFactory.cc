#include "cache/PolicyFactory.h"

#include <algorithm>
#include <cctype>

#include "cache/AclPolicy.h"
#include "cache/BclPolicy.h"
#include "cache/BeladyPolicy.h"
#include "cache/DclPolicy.h"
#include "cache/GreedyDualPolicy.h"
#include "cache/LfuPolicy.h"
#include "cache/LruPolicy.h"
#include "cache/RandomPolicy.h"
#include "robust/Errors.h"
#include "util/Logging.h"

namespace csr
{

PolicyPtr
makePolicy(PolicyKind kind, const CacheGeometry &geom,
           const PolicyParams &params)
{
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<LruPolicy>(geom);
      case PolicyKind::Random:
        return std::make_unique<RandomPolicy>(geom, params.seed);
      case PolicyKind::Lfu:
        return std::make_unique<LfuPolicy>(geom);
      case PolicyKind::GreedyDual:
        return std::make_unique<GreedyDualPolicy>(geom);
      case PolicyKind::Bcl:
        return std::make_unique<BclPolicy>(geom,
                                           params.depreciationFactor);
      case PolicyKind::Dcl:
        return std::make_unique<DclPolicy>(geom, params.etdAliasBits,
                                           params.depreciationFactor);
      case PolicyKind::Acl:
        return std::make_unique<AclPolicy>(geom, params.etdAliasBits,
                                           params.depreciationFactor);
      case PolicyKind::Opt:
        return std::make_unique<BeladyPolicy>(geom);
      case PolicyKind::CostOpt:
        return std::make_unique<CostAwareBeladyPolicy>(geom);
    }
    csr_panic("unhandled PolicyKind %d", static_cast<int>(kind));
}

std::optional<PolicyKind>
parsePolicyKind(const std::string &name)
{
    std::string lower = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "lru")
        return PolicyKind::Lru;
    if (lower == "random" || lower == "rand")
        return PolicyKind::Random;
    if (lower == "lfu")
        return PolicyKind::Lfu;
    if (lower == "gd" || lower == "greedydual")
        return PolicyKind::GreedyDual;
    if (lower == "bcl")
        return PolicyKind::Bcl;
    if (lower == "dcl")
        return PolicyKind::Dcl;
    if (lower == "acl")
        return PolicyKind::Acl;
    if (lower == "opt" || lower == "belady")
        return PolicyKind::Opt;
    if (lower == "costopt" || lower == "csopt")
        return PolicyKind::CostOpt;
    return std::nullopt;
}

PolicyKind
requirePolicyKind(const std::string &name)
{
    if (auto kind = parsePolicyKind(name))
        return *kind;
    throw ConfigError("unknown replacement policy '" + name +
                      "' (valid: " + policyNamesJoined() + ")");
}

const std::vector<std::string> &
listPolicyNames()
{
    static const std::vector<std::string> names = {
        "lru", "random", "lfu", "gd", "bcl",
        "dcl", "acl",    "opt", "costopt",
    };
    return names;
}

std::string
policyNamesJoined(const std::string &sep)
{
    std::string out;
    for (const std::string &name : listPolicyNames())
        out += (out.empty() ? "" : sep) + name;
    return out;
}

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Random:
        return "Random";
      case PolicyKind::Lfu:
        return "LFU";
      case PolicyKind::GreedyDual:
        return "GD";
      case PolicyKind::Bcl:
        return "BCL";
      case PolicyKind::Dcl:
        return "DCL";
      case PolicyKind::Acl:
        return "ACL";
      case PolicyKind::Opt:
        return "OPT";
      case PolicyKind::CostOpt:
        return "CostOPT~";
    }
    return "?";
}

const std::vector<PolicyKind> &
paperPolicies()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::GreedyDual,
        PolicyKind::Bcl,
        PolicyKind::Dcl,
        PolicyKind::Acl,
    };
    return kinds;
}

} // namespace csr
