/**
 * @file
 * ACL -- the Adaptive Cost-sensitive LRU algorithm (Section 2.5).
 */

#ifndef CSR_CACHE_ACLPOLICY_H
#define CSR_CACHE_ACLPOLICY_H

#include <vector>

#include "cache/DclPolicy.h"

namespace csr
{

/**
 * Adaptive Cost-sensitive LRU.
 *
 * DCL extended with a per-set two-bit saturating counter (Figure 2)
 * that enables reservations while greater than zero:
 *
 *   - a reservation success (hit on the reserved LRU block)
 *     increments the counter, a failure (eviction of the reserved
 *     block) decrements it;
 *   - the counter starts at zero, so every set starts with
 *     reservations disabled;
 *   - while disabled, victim selection is pure LRU, but an evicted
 *     LRU block enters the ETD whenever some other cached block had
 *     a lower cost (i.e. whenever DCL would have reserved it).  A
 *     subsequent access hitting that ETD entry is strong evidence a
 *     reservation would have saved cost: all ETD entries are dropped
 *     and the counter jumps to two, re-enabling reservations.
 *
 * The ETD is cleared on every enable/disable transition because its
 * meaning differs between modes (sacrificed blocks vs. missed
 * reservation opportunities).
 */
class AclPolicy : public DclPolicy
{
  public:
    /** Saturation limit of the two-bit counter. */
    static constexpr std::uint32_t kCounterMax = 3;
    /** Counter value installed when an ETD hit re-enables a set. */
    static constexpr std::uint32_t kEnableValue = 2;

    explicit AclPolicy(const CacheGeometry &geom,
                       unsigned etd_alias_bits = 0,
                       double depreciation_factor = 2.0)
        : DclPolicy(geom, etd_alias_bits, depreciation_factor),
          counter_(geom.numSets(), 0),
          statWatchInsert_(stats_.counter("acl.watch.insert")),
          statReenable_(stats_.counter("acl.reenable")),
          statDisable_(stats_.counter("acl.disable"))
    {
    }

    std::string
    name() const override
    {
        return etd_.aliasBits() ? "ACL(alias)" : "ACL";
    }

    /** Reservations are enabled while the counter is positive. */
    bool enabled(std::uint32_t set) const { return counter_[set] > 0; }

    /** Automaton state (0..3) of a set -- introspection for tests. */
    std::uint32_t counterOf(std::uint32_t set) const
    {
        return counter_[set];
    }

    int
    selectVictim(std::uint32_t set) override
    {
        if (enabled(set))
            return DclPolicy::selectVictim(set);

        // Disabled: pure LRU, but watch for the opportunity we are
        // passing up.  The evicted LRU block enters the ETD if any
        // other cached block is cheaper (the reservation condition).
        const int n = stackSize(set);
        csr_assert(n > 0, "victim requested on empty set");
        const int lru = wayAt(set, n);
        const Cost lru_cost = costOf(set, lru);
        for (int pos = n - 1; pos >= 1; --pos) {
            if (costOf(set, wayAt(set, pos)) < lru_cost) {
                etd_.insert(set, tagOf(set, lru), lru_cost);
                ++statWatchInsert_;
                break;
            }
        }
        return lru;
    }

    void
    reset() override
    {
        DclPolicy::reset();
        std::fill(counter_.begin(), counter_.end(), 0);
    }

  protected:
    void
    onMissAccess(std::uint32_t set, Addr tag) override
    {
        if (enabled(set)) {
            DclPolicy::onMissAccess(set, tag);
            return;
        }
        if (etd_.lookupAndInvalidate(set, tag)) {
            // We would have saved this miss by reserving: re-enable.
            etd_.invalidateAll(set);
            counter_[set] = kEnableValue;
            ++statReenable_;
            CSR_TRACE_INSTANT_V("policy", "acl.reenable", kEnableValue);
        }
    }

    void
    onHit(std::uint32_t set, int way, int old_pos) override
    {
        if (enabled(set)) {
            DclPolicy::onHit(set, way, old_pos);
        } else {
            // Keep the base reservation bookkeeping consistent (no
            // reservation can be active while disabled, so this is a
            // recency-only update).
            CostSensitiveLruBase::onHit(set, way, old_pos);
        }
    }

    void
    onReservationSucceeded(std::uint32_t set) override
    {
        if (counter_[set] < kCounterMax)
            ++counter_[set];
        CSR_TRACE_INSTANT_V("policy", "acl.counter_up", counter_[set]);
    }

    void
    onReservationFailed(std::uint32_t set) override
    {
        if (counter_[set] > 0)
            --counter_[set];
        CSR_TRACE_INSTANT_V("policy", "acl.counter_down", counter_[set]);
        if (counter_[set] == 0) {
            // Mode switch: the ETD's meaning changes, drop stale
            // sacrifice records.
            etd_.invalidateAll(set);
            ++statDisable_;
            CSR_TRACE_INSTANT("policy", "acl.disable");
        }
    }

  private:
    std::vector<std::uint32_t> counter_;
    // Per-miss hot-path counters, pre-resolved (StatGroup::counter).
    std::uint64_t &statWatchInsert_;
    std::uint64_t &statReenable_;
    std::uint64_t &statDisable_;
};

} // namespace csr

#endif // CSR_CACHE_ACLPOLICY_H
