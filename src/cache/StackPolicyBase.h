/**
 * @file
 * Shared recency-stack machinery for LRU-family policies.
 *
 * The paper describes every algorithm in terms of positions in the LRU
 * stack [Mattson et al.]: position 1 is the MRU block and position s
 * the LRU block of an s-way set.  This base class maintains that stack
 * per set, together with the per-way miss cost c(i) and the tag of the
 * resident block (needed by the ETD in DCL/ACL), and gives derived
 * policies a hook that fires whenever the identity of the LRU block
 * changes -- the moment at which BCL/DCL/ACL reload Acost with the
 * cost of the new LRU block ("upon_entering_LRU_position" in Fig. 1).
 */

#ifndef CSR_CACHE_STACKPOLICYBASE_H
#define CSR_CACHE_STACKPOLICYBASE_H

#include <cstdint>
#include <vector>

#include "cache/ReplacementPolicy.h"

namespace csr
{

/**
 * Recency bookkeeping common to LRU, GD, BCL, DCL and ACL.
 *
 * Only valid ways appear in a set's stack; the owner fills invalid
 * ways directly, so selectVictim() is only consulted on full sets.
 */
class StackPolicyBase : public ReplacementPolicy
{
  public:
    explicit StackPolicyBase(const CacheGeometry &geom);

    void access(std::uint32_t set, Addr tag, int hit_way) override;
    void fill(std::uint32_t set, int way, Addr tag, Cost cost) override;
    void invalidate(std::uint32_t set, Addr tag, int way) override;
    void updateCost(std::uint32_t set, int way, Cost cost) override;
    void reset() override;

    // --- introspection (tests, stats) ------------------------------------

    /** Ways ordered MRU first; only valid ways appear. */
    const std::vector<int> &stackOf(std::uint32_t set) const
    {
        return stacks_[set];
    }

    /** Current LRU way of the set, or kInvalidWay if the set is empty. */
    int
    lruWay(std::uint32_t set) const
    {
        return stacks_[set].empty() ? kInvalidWay : stacks_[set].back();
    }

    /** Predicted next-miss cost of a resident way. */
    Cost costOf(std::uint32_t set, int way) const
    {
        return costs_[idx(set, way)];
    }

    /** Tag mirrored at fill time (used by the ETD). */
    Addr tagOf(std::uint32_t set, int way) const
    {
        return tags_[idx(set, way)];
    }

  protected:
    /**
     * Hook called after any stack mutation that changed which way is
     * at the LRU position (including the set becoming non-empty or
     * empty).  @p lru_way is the new LRU way or kInvalidWay.
     */
    virtual void onLruChanged(std::uint32_t set, int lru_way)
    {
        (void)set;
        (void)lru_way;
    }

    /**
     * Hook called on a cache hit after the recency update, with the
     * position (1-based, 1 = MRU) the way occupied *before* promotion.
     */
    virtual void onHit(std::uint32_t set, int way, int old_pos)
    {
        (void)set;
        (void)way;
        (void)old_pos;
    }

    /** Hook called on a cache miss during access() (ETD lookup point). */
    virtual void onMissAccess(std::uint32_t set, Addr tag)
    {
        (void)set;
        (void)tag;
    }

    /** Hook called when a resident way is invalidated, before removal. */
    virtual void onInvalidateWay(std::uint32_t set, Addr tag, int way)
    {
        (void)set;
        (void)tag;
        (void)way;
    }

    /** Hook called when a non-resident tag is invalidated (ETD scrub). */
    virtual void onInvalidateAbsent(std::uint32_t set, Addr tag)
    {
        (void)set;
        (void)tag;
    }

    // --- stack manipulation helpers for derived classes ------------------

    /** 1-based LRU-stack position of a way (1 = MRU); way must be in
     *  the stack. */
    int posOf(std::uint32_t set, int way) const;

    /** Way at 1-based position pos (1 = MRU). */
    int
    wayAt(std::uint32_t set, int pos) const
    {
        return stacks_[set][static_cast<std::size_t>(pos - 1)];
    }

    /** Number of valid ways in the set. */
    int
    stackSize(std::uint32_t set) const
    {
        return static_cast<int>(stacks_[set].size());
    }

    /** Move a resident way to the MRU position. */
    void promoteToMru(std::uint32_t set, int way);

    /** Remove a way from the stack (eviction / invalidation). */
    void removeFromStack(std::uint32_t set, int way);

    std::size_t
    idx(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) * geom_.assoc() +
               static_cast<std::size_t>(way);
    }

    void setCost(std::uint32_t set, int way, Cost cost)
    {
        costs_[idx(set, way)] = cost;
    }

  private:
    /** Fire onLruChanged if the LRU identity differs from the cached
     *  one. */
    void checkLruChanged(std::uint32_t set);

    std::vector<std::vector<int>> stacks_; // per set, MRU first
    std::vector<Cost> costs_;              // per (set, way)
    std::vector<Addr> tags_;               // per (set, way)
    std::vector<int> lastLru_;             // per set, for change detection
};

} // namespace csr

#endif // CSR_CACHE_STACKPOLICYBASE_H
