/**
 * @file
 * Shared recency-stack machinery for LRU-family policies.
 *
 * The paper describes every algorithm in terms of positions in the LRU
 * stack [Mattson et al.]: position 1 is the MRU block and position s
 * the LRU block of an s-way set.  This base class maintains that stack
 * per set in a flat, fixed-capacity assoc-stride array (no nested
 * vectors, no per-set heap allocations) and gives derived policies a
 * hook that fires whenever the identity of the LRU block changes --
 * the moment at which BCL/DCL/ACL reload Acost with the cost of the
 * new LRU block ("upon_entering_LRU_position" in Fig. 1).
 *
 * Per-way miss costs and resident tags are NOT mirrored here: they
 * live in the owning CacheModel, and costOf()/tagOf() read them from
 * it.
 */

#ifndef CSR_CACHE_STACKPOLICYBASE_H
#define CSR_CACHE_STACKPOLICYBASE_H

#include <cstdint>
#include <vector>

#include "cache/CacheModel.h"
#include "cache/ReplacementPolicy.h"

namespace csr
{

/**
 * Recency bookkeeping common to LRU, GD, BCL, DCL and ACL.
 *
 * Only valid ways appear in a set's stack; the owner fills invalid
 * ways directly, so selectVictim() is only consulted on full sets.
 */
class StackPolicyBase : public ReplacementPolicy
{
  public:
    explicit StackPolicyBase(const CacheGeometry &geom);

    void access(std::uint32_t set, Addr tag, int hit_way) override;
    void fill(std::uint32_t set, int way, Addr tag, Cost cost) override;
    void invalidate(std::uint32_t set, Addr tag, int way) override;
    void reset() override;

    /** --validate: every set's recency stack must be a permutation
     *  of exactly the model's valid ways. */
    void checkInvariants() const override;

    // --- introspection (tests, stats) ------------------------------------

    /** Ways ordered MRU first; only valid ways appear. */
    std::vector<int>
    stackOf(std::uint32_t set) const
    {
        std::vector<int> ways;
        const std::int32_t n = count_[set];
        ways.reserve(static_cast<std::size_t>(n));
        for (std::int32_t pos = 1; pos <= n; ++pos)
            ways.push_back(wayAt(set, static_cast<int>(pos)));
        return ways;
    }

    /** Current LRU way of the set, or kInvalidWay if the set is empty. */
    int
    lruWay(std::uint32_t set) const
    {
        const std::int32_t n = count_[set];
        return n == 0 ? kInvalidWay : wayAt(set, static_cast<int>(n));
    }

    /** Predicted next-miss cost of a resident way (from the model). */
    Cost costOf(std::uint32_t set, int way) const
    {
        return model_->costAt(set, way);
    }

    /** Resident tag (from the model; used by the ETD). */
    Addr tagOf(std::uint32_t set, int way) const
    {
        return model_->tagAt(set, way);
    }

  protected:
    /**
     * Hook called after any stack mutation that changed which way is
     * at the LRU position (including the set becoming non-empty or
     * empty).  @p lru_way is the new LRU way or kInvalidWay.
     */
    virtual void onLruChanged(std::uint32_t set, int lru_way)
    {
        (void)set;
        (void)lru_way;
    }

    /**
     * Hook called on a cache hit after the recency update, with the
     * position (1-based, 1 = MRU) the way occupied *before* promotion.
     */
    virtual void onHit(std::uint32_t set, int way, int old_pos)
    {
        (void)set;
        (void)way;
        (void)old_pos;
    }

    /** Hook called on a cache miss during access() (ETD lookup point). */
    virtual void onMissAccess(std::uint32_t set, Addr tag)
    {
        (void)set;
        (void)tag;
    }

    /** Hook called when a resident way is invalidated, before removal. */
    virtual void onInvalidateWay(std::uint32_t set, Addr tag, int way)
    {
        (void)set;
        (void)tag;
        (void)way;
    }

    /** Hook called when a non-resident tag is invalidated (ETD scrub). */
    virtual void onInvalidateAbsent(std::uint32_t set, Addr tag)
    {
        (void)set;
        (void)tag;
    }

    // --- stack manipulation helpers for derived classes ------------------

    /** 1-based LRU-stack position of a way (1 = MRU); way must be in
     *  the stack. */
    int posOf(std::uint32_t set, int way) const;

    /** Way at 1-based position pos (1 = MRU). */
    int
    wayAt(std::uint32_t set, int pos) const
    {
        return packed_
                   ? static_cast<int>(
                         (packedOrder_[set] >>
                          (static_cast<std::uint32_t>(pos - 1) * 8)) &
                         0xFF)
                   : static_cast<int>(
                         order_[orderBase(set) +
                                static_cast<std::size_t>(pos) - 1]);
    }

    /** Number of valid ways in the set. */
    int
    stackSize(std::uint32_t set) const
    {
        return count_[set];
    }

    /** Move a resident way to the MRU position. */
    void promoteToMru(std::uint32_t set, int way);

    /** Remove a way from the stack (eviction / invalidation). */
    void removeFromStack(std::uint32_t set, int way);

    /**
     * Hot-path hook gating: a derived class that overrides
     * onLruChanged / onHit / onMissAccess must set the matching flag
     * in its constructor.  The base skips the virtual dispatch (and,
     * for the LRU hook, the LRU-identity tracking) when no override
     * exists, which keeps plain LRU/Random at array-op cost.
     */
    bool usesLruHook_ = false;
    bool usesHitHook_ = false;
    bool usesMissHook_ = false;
    /**
     * Stronger promise a derived class may make on top of
     * usesHitHook_: its whole onHit chain is a no-op unless the hit
     * landed on the LRU position (old_pos == stackSize).  True for
     * the paper's reservation bookkeeping (BCL/DCL/ACL act only on
     * LRU hits), false for GD/LFU whose onHit touches every hit.
     * Lets access() skip the virtual dispatch on the ~(s-1)/s of
     * hits that land above the LRU position -- the branch-light fast
     * path that narrows the cost-policy vs plain-LRU gap in
     * BENCH_micro.
     */
    bool hitHookLruOnly_ = false;

    std::size_t
    idx(std::uint32_t set, int way) const
    {
        return static_cast<std::size_t>(set) * geom_.assoc() +
               static_cast<std::size_t>(way);
    }

  private:
    std::size_t
    orderBase(std::uint32_t set) const
    {
        return static_cast<std::size_t>(set) * geom_.assoc();
    }

    /** Mask covering the low @p k bytes of a packed order word. */
    static std::uint64_t
    maskBytes(std::uint32_t k)
    {
        return k >= 8 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << (8 * k)) - 1;
    }

    /** Index of the byte equal to @p value among the low @p n bytes
     *  of @p word, or -1.  Zero-byte bit trick; way ids are unique in
     *  a stack, so the lowest candidate bit is always a true match. */
    static std::int32_t
    findByte(std::uint64_t word, std::uint32_t n, std::uint8_t value)
    {
        const std::uint64_t pat = 0x0101010101010101ULL * value;
        const std::uint64_t x = word ^ pat;
        std::uint64_t zeros = (x - 0x0101010101010101ULL) & ~x &
                              0x8080808080808080ULL;
        zeros &= maskBytes(n);
        return zeros ? static_cast<std::int32_t>(
                           __builtin_ctzll(zeros) >> 3)
                     : -1;
    }

    /** Fire onLruChanged if the LRU identity differs from the cached
     *  one. */
    void checkLruChanged(std::uint32_t set);

    /**
     * Recency order, MRU first.  For assoc <= 8 (packed_) each set is
     * one uint64 in packedOrder_, byte p holding the way at stack
     * position p+1 -- promote/insert/remove are branchless
     * mask-and-shift ops on a single word.  Larger caches fall back
     * to the flat assoc-stride int32 array.
     */
    bool packed_;
    std::vector<std::uint64_t> packedOrder_; // one word per set
    std::vector<std::int32_t> order_; // assoc-stride, MRU first
    std::vector<std::int32_t> count_; // valid ways per set
    std::vector<std::int32_t> lastLru_; // per set, for change detection
};

} // namespace csr

#endif // CSR_CACHE_STACKPOLICYBASE_H
