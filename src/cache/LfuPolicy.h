/**
 * @file
 * Least-frequently-used replacement (aging by eviction), a secondary
 * cost-blind baseline used in the harness's extension experiments.
 */

#ifndef CSR_CACHE_LFUPOLICY_H
#define CSR_CACHE_LFUPOLICY_H

#include <vector>

#include "cache/StackPolicyBase.h"

namespace csr
{

/**
 * LFU with per-line reference counters; ties are broken toward the
 * LRU end of the stack so that LFU degenerates to LRU on a flat
 * frequency profile.
 */
class LfuPolicy : public StackPolicyBase
{
  public:
    explicit LfuPolicy(const CacheGeometry &geom)
        : StackPolicyBase(geom),
          refs_(static_cast<std::size_t>(geom.numSets()) * geom.assoc(), 0)
    {
        usesHitHook_ = true;
    }

    std::string name() const override { return "LFU"; }

    int
    selectVictim(std::uint32_t set) override
    {
        const int n = stackSize(set);
        csr_assert(n > 0, "victim requested on empty set");
        int victim = wayAt(set, n);
        std::uint64_t best = refs_[idx(set, victim)];
        // Scan from the LRU end so that equal counts prefer the
        // least-recently-used line.
        for (int pos = n; pos >= 1; --pos) {
            const int way = wayAt(set, pos);
            if (refs_[idx(set, way)] < best) {
                best = refs_[idx(set, way)];
                victim = way;
            }
        }
        return victim;
    }

    void
    fill(std::uint32_t set, int way, Addr tag, Cost cost) override
    {
        StackPolicyBase::fill(set, way, tag, cost);
        refs_[idx(set, way)] = 1;
    }

    void
    reset() override
    {
        StackPolicyBase::reset();
        std::fill(refs_.begin(), refs_.end(), 0);
    }

  protected:
    void
    onHit(std::uint32_t set, int way, int old_pos) override
    {
        (void)old_pos;
        ++refs_[idx(set, way)];
    }

  private:
    std::vector<std::uint64_t> refs_;
};

} // namespace csr

#endif // CSR_CACHE_LFUPOLICY_H
