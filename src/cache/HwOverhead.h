/**
 * @file
 * Hardware-overhead model of Section 5.
 *
 * Reproduces the paper's per-set storage accounting for the four
 * cost-sensitive algorithms relative to plain LRU:
 *
 *   BCL needs s+1 cost fields (s fixed + the computed Acost);
 *   GD  needs 2s cost fields (one fixed + one computed per block);
 *   DCL needs 2s cost fields (s fixed + Acost in the cache, s-1 fixed
 *       in the ETD) plus s-1 ETD tag+valid fields;
 *   ACL adds a two-bit counter and a reserved bit to DCL.
 *
 * When the cost function is static and derivable from the address
 * ("a simple table lookup can be used"), the fixed cost fields vanish
 * and only computed fields plus ETD tag storage remain.
 *
 * The LRU baseline against which the percentage is computed is the
 * per-set data + tag storage (s * (8*blockBytes + tagBits)); with the
 * paper's example (4-way, 25-bit tags, 8-bit cost fields, 64-byte
 * blocks) this model reproduces its 1.9% / 6.6% / 6.7% figures for
 * BCL / DCL / ACL and the 11 / 20 / 32 / 35 bit counts of the
 * quantized-latency example.
 */

#ifndef CSR_CACHE_HWOVERHEAD_H
#define CSR_CACHE_HWOVERHEAD_H

#include <cstdint>

#include "cache/PolicyFactory.h"

namespace csr
{

/** Storage parameters of the overhead model. */
struct HwOverheadParams
{
    std::uint32_t assoc = 4;           ///< ways per set (s)
    std::uint32_t tagBits = 25;        ///< cache tag width
    std::uint32_t blockBytes = 64;     ///< line size (data bits = 8x)
    std::uint32_t fixedCostBits = 8;   ///< width of a fixed cost field
    std::uint32_t computedCostBits = 8;///< width of a computed field
    std::uint32_t etdTagBits = 25;     ///< ETD tag width (aliasing < tagBits)
    /** Static cost derivable from the address: drop fixed cost
     *  fields (Section 5's second accounting). */
    bool staticCostTable = false;
};

/** Extra bits per set required by @p kind over plain LRU.
 *  Only GD/BCL/DCL/ACL are meaningful; LRU returns 0. */
std::uint64_t hwOverheadBitsPerSet(PolicyKind kind,
                                   const HwOverheadParams &params);

/** Baseline per-set storage (data + tags) in bits. */
std::uint64_t hwBaselineBitsPerSet(const HwOverheadParams &params);

/** Overhead as a percentage of the baseline. */
double hwOverheadPercent(PolicyKind kind, const HwOverheadParams &params);

} // namespace csr

#endif // CSR_CACHE_HWOVERHEAD_H
