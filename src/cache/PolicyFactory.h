/**
 * @file
 * Construction of replacement policies by symbolic kind, so that
 * simulators, benches and examples can be configured with a string or
 * enum instead of hard-wiring types.
 */

#ifndef CSR_CACHE_POLICYFACTORY_H
#define CSR_CACHE_POLICYFACTORY_H

#include <optional>
#include <string>
#include <vector>

#include "cache/ReplacementPolicy.h"

namespace csr
{

/** Policy selector. */
enum class PolicyKind
{
    Lru,
    Random,
    Lfu,
    GreedyDual,
    Bcl,
    Dcl,
    Acl,
    Opt,        ///< offline Belady (miss count)
    CostOpt,    ///< offline greedy cost-weighted oracle
};

/** Tunables shared by the factory. */
struct PolicyParams
{
    /** ETD tag aliasing for DCL/ACL (0 = full tags). */
    unsigned etdAliasBits = 0;
    /** Acost depreciation multiplier for BCL/DCL/ACL (paper: 2). */
    double depreciationFactor = 2.0;
    /** Seed for RandomPolicy. */
    std::uint64_t seed = 0xC5CADAull;
};

/** Build a policy instance. */
PolicyPtr makePolicy(PolicyKind kind, const CacheGeometry &geom,
                     const PolicyParams &params = {});

/** Parse "lru" / "gd" / "bcl" / "dcl" / "acl" / ... (case-insensitive);
 *  std::nullopt on unknown names so callers can report their own
 *  diagnostic (CLIs print listPolicyNames()). */
std::optional<PolicyKind> parsePolicyKind(const std::string &name);

/** Like parsePolicyKind but throws ConfigError on unknown names,
 *  with the valid names in the diagnostic (grid specs, replay and
 *  bench flags -- drivers map it to exitcode::kConfig). */
PolicyKind requirePolicyKind(const std::string &name);

/** The accepted canonical policy names, parse order
 *  ("lru random lfu gd bcl dcl acl opt costopt"), for error messages
 *  and --help text. */
const std::vector<std::string> &listPolicyNames();

/** listPolicyNames() joined with @p sep ("|" for usage strings). */
std::string policyNamesJoined(const std::string &sep = "|");

/** Display name matching the paper's terminology. */
std::string policyKindName(PolicyKind kind);

/** The four cost-sensitive algorithms evaluated by the paper, in the
 *  order its tables use: GD, BCL, DCL, ACL. */
const std::vector<PolicyKind> &paperPolicies();

} // namespace csr

#endif // CSR_CACHE_POLICYFACTORY_H
