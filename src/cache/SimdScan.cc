#include "cache/SimdScan.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CSR_SIMD_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace csr::simd
{

std::uint64_t
tagEqMaskScalar(const std::uint64_t *tags, std::uint32_t count,
                std::uint64_t needle)
{
    std::uint64_t mask = 0;
    for (std::uint32_t i = 0; i < count; ++i)
        mask |= std::uint64_t{tags[i] == needle} << i;
    return mask;
}

namespace
{

#if defined(CSR_SIMD_X86_DISPATCH)

__attribute__((target("avx2"))) std::uint64_t
tagEqMaskAvx2(const std::uint64_t *tags, std::uint32_t count,
              std::uint64_t needle)
{
    const __m256i needle4 =
        _mm256_set1_epi64x(static_cast<long long>(needle));
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256i lane = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + i));
        const __m256i eq = _mm256_cmpeq_epi64(lane, needle4);
        mask |= static_cast<std::uint64_t>(_mm256_movemask_pd(
                    _mm256_castsi256_pd(eq)))
                << i;
    }
    for (; i < count; ++i)
        mask |= std::uint64_t{tags[i] == needle} << i;
    return mask;
}

#endif // CSR_SIMD_X86_DISPATCH

TagEqMaskFn
resolveKernel()
{
#if defined(CSR_SIMD_X86_DISPATCH)
    if (__builtin_cpu_supports("avx2"))
        return &tagEqMaskAvx2;
#endif
    return &tagEqMaskScalar;
}

} // namespace

const TagEqMaskFn kTagEqMask = resolveKernel();

const char *
tagScanIsa()
{
#if defined(CSR_SIMD_X86_DISPATCH)
    if (kTagEqMask != &tagEqMaskScalar)
        return "avx2";
#endif
    return "scalar";
}

} // namespace csr::simd
