#include "cache/StackPolicyBase.h"

#include <algorithm>
#include <string>
#include <vector>

#include "robust/Errors.h"
#include "util/Logging.h"

namespace csr
{

StackPolicyBase::StackPolicyBase(const CacheGeometry &geom)
    : ReplacementPolicy(geom), packed_(geom.assoc() <= 8),
      packedOrder_(packed_ ? geom.numSets() : 0, 0),
      order_(packed_ ? 0
                     : static_cast<std::size_t>(geom.numSets()) *
                           geom.assoc(),
             kInvalidWay),
      count_(geom.numSets(), 0), lastLru_(geom.numSets(), kInvalidWay)
{
}

void
StackPolicyBase::access(std::uint32_t set, Addr tag, int hit_way)
{
    if (hit_way == kInvalidWay) {
        if (usesMissHook_)
            onMissAccess(set, tag);
        return;
    }
    csr_assert(model_->tagAt(set, hit_way) == tag,
               "hit way holds a different tag");
    const std::int32_t n = count_[set];
    int old_pos;
    if (packed_) {
        std::uint64_t &w = packedOrder_[set];
        // Fast path: a re-hit on the MRU way of a multi-way stack
        // needs no promotion and cannot move the LRU position, so
        // the word stays untouched and the LRU-only hit hooks and
        // LRU-change scan are skipped wholesale.  (n == 1 falls
        // through: there MRU == LRU and the hooks must fire.)
        if (n > 1 &&
            static_cast<std::int32_t>(w & 0xFF) == hit_way) {
            if (usesHitHook_ && !hitHookLruOnly_)
                onHit(set, hit_way, 1);
            return;
        }
        const std::int32_t p =
            findByte(w, static_cast<std::uint32_t>(n),
                     static_cast<std::uint8_t>(hit_way));
        if (p < 0)
            csr_panic("way %d not in stack of set %u", hit_way, set);
        old_pos = static_cast<int>(p) + 1;
        // Promote: bytes [0, p) slide up one slot, way lands at MRU.
        w = ((w & maskBytes(static_cast<std::uint32_t>(p))) << 8) |
            (w & ~maskBytes(static_cast<std::uint32_t>(p) + 1)) |
            static_cast<std::uint64_t>(hit_way);
    } else {
        old_pos = posOf(set, hit_way);
        promoteToMru(set, hit_way);
    }
    // Promoting a way that was NOT at the LRU position leaves the
    // LRU identity untouched, so both the LRU-change scan and the
    // LRU-only hit hooks are skippable for it.
    const bool was_lru = old_pos == static_cast<int>(n);
    if (usesHitHook_ && (was_lru || !hitHookLruOnly_))
        onHit(set, hit_way, old_pos);
    if (usesLruHook_ && was_lru)
        checkLruChanged(set);
}

void
StackPolicyBase::fill(std::uint32_t set, int way, Addr tag, Cost cost)
{
    (void)tag;
    (void)cost; // tag and cost are already recorded in the CacheModel
    // The way may still be in the stack if the owner reuses a victim
    // way without an explicit invalidate; scrub it first.
    if (packed_) {
        std::uint64_t &w = packedOrder_[set];
        std::int32_t p =
            findByte(w, static_cast<std::uint32_t>(count_[set]),
                     static_cast<std::uint8_t>(way));
        if (p < 0) {
            p = count_[set]++;
            csr_assert(count_[set] <=
                       static_cast<std::int32_t>(geom_.assoc()),
                       "stack overflow");
        }
        w = ((w & maskBytes(static_cast<std::uint32_t>(p))) << 8) |
            (w & ~maskBytes(static_cast<std::uint32_t>(p) + 1)) |
            static_cast<std::uint64_t>(way);
    } else {
        std::int32_t *order = &order_[orderBase(set)];
        const std::int32_t n = count_[set];
        std::int32_t pos = n;
        for (std::int32_t j = 0; j < n; ++j)
            pos = order[j] == way ? j : pos;
        if (pos == n) {
            ++count_[set];
            csr_assert(count_[set] <=
                       static_cast<std::int32_t>(geom_.assoc()),
                       "stack overflow");
        }
        for (std::int32_t j = count_[set] - 1; j > 0; --j)
            order[j] = j <= pos ? order[j - 1] : order[j];
        order[0] = way;
    }
    if (usesLruHook_)
        checkLruChanged(set);
}

void
StackPolicyBase::invalidate(std::uint32_t set, Addr tag, int way)
{
    if (way == kInvalidWay) {
        onInvalidateAbsent(set, tag);
        return;
    }
    onInvalidateWay(set, tag, way);
    removeFromStack(set, way);
    if (usesLruHook_)
        checkLruChanged(set);
}

void
StackPolicyBase::reset()
{
    std::fill(packedOrder_.begin(), packedOrder_.end(), 0);
    std::fill(order_.begin(), order_.end(), kInvalidWay);
    std::fill(count_.begin(), count_.end(), 0);
    std::fill(lastLru_.begin(), lastLru_.end(), kInvalidWay);
    stats_.reset();
}

void
StackPolicyBase::checkInvariants() const
{
    for (std::uint32_t set = 0; set < geom_.numSets(); ++set) {
        const std::int32_t n = count_[set];
        if (n < 0 || n > static_cast<std::int32_t>(geom_.assoc()))
            throw InvariantError(
                "recency stack of set " + std::to_string(set) +
                " has impossible size " + std::to_string(n));
        if (model_ != nullptr &&
            n != static_cast<std::int32_t>(model_->validCountOf(set)))
            throw InvariantError(
                "recency stack of set " + std::to_string(set) +
                " holds " + std::to_string(n) + " ways but the model"
                " has " + std::to_string(model_->validCountOf(set)) +
                " valid lines");
        std::vector<char> seen(geom_.assoc(), 0);
        for (std::int32_t pos = 1; pos <= n; ++pos) {
            const int way = wayAt(set, static_cast<int>(pos));
            if (way < 0 ||
                way >= static_cast<int>(geom_.assoc()) ||
                seen[static_cast<std::size_t>(way)])
                throw InvariantError(
                    "recency stack of set " + std::to_string(set) +
                    " is not a permutation (way " +
                    std::to_string(way) + " at position " +
                    std::to_string(pos) + ")");
            seen[static_cast<std::size_t>(way)] = 1;
            if (model_ != nullptr && !model_->isValid(set, way))
                throw InvariantError(
                    "recency stack of set " + std::to_string(set) +
                    " lists invalid way " + std::to_string(way));
        }
    }
}

int
StackPolicyBase::posOf(std::uint32_t set, int way) const
{
    if (packed_) {
        const std::int32_t p =
            findByte(packedOrder_[set],
                     static_cast<std::uint32_t>(count_[set]),
                     static_cast<std::uint8_t>(way));
        if (p < 0)
            csr_panic("way %d not in stack of set %u", way, set);
        return static_cast<int>(p) + 1;
    }
    const std::int32_t *order = &order_[orderBase(set)];
    const std::int32_t n = count_[set];
    for (std::int32_t i = 0; i < n; ++i) {
        if (order[i] == way)
            return static_cast<int>(i) + 1;
    }
    csr_panic("way %d not in stack of set %u", way, set);
}

void
StackPolicyBase::promoteToMru(std::uint32_t set, int way)
{
    if (packed_) {
        std::uint64_t &w = packedOrder_[set];
        const std::int32_t p =
            findByte(w, static_cast<std::uint32_t>(count_[set]),
                     static_cast<std::uint8_t>(way));
        if (p < 0)
            csr_panic("promote of non-resident way %d in set %u", way,
                      set);
        w = ((w & maskBytes(static_cast<std::uint32_t>(p))) << 8) |
            (w & ~maskBytes(static_cast<std::uint32_t>(p) + 1)) |
            static_cast<std::uint64_t>(way);
        return;
    }
    std::int32_t *order = &order_[orderBase(set)];
    const std::int32_t n = count_[set];
    for (std::int32_t i = 0; i < n; ++i) {
        if (order[i] == way) {
            for (; i > 0; --i)
                order[i] = order[i - 1];
            order[0] = way;
            return;
        }
    }
    csr_panic("promote of non-resident way %d in set %u", way, set);
}

void
StackPolicyBase::removeFromStack(std::uint32_t set, int way)
{
    if (packed_) {
        std::uint64_t &w = packedOrder_[set];
        const std::int32_t p =
            findByte(w, static_cast<std::uint32_t>(count_[set]),
                     static_cast<std::uint8_t>(way));
        if (p < 0)
            return;
        // Bytes above p slide down one slot.
        const std::uint64_t below =
            maskBytes(static_cast<std::uint32_t>(p));
        w = (w & below) | ((w >> 8) & ~below);
        --count_[set];
        return;
    }
    std::int32_t *order = &order_[orderBase(set)];
    const std::int32_t n = count_[set];
    for (std::int32_t i = 0; i < n; ++i) {
        if (order[i] == way) {
            for (; i < n - 1; ++i)
                order[i] = order[i + 1];
            --count_[set];
            return;
        }
    }
}

void
StackPolicyBase::checkLruChanged(std::uint32_t set)
{
    const int lru = lruWay(set);
    if (lru != lastLru_[set]) {
        lastLru_[set] = lru;
        onLruChanged(set, lru);
    }
}

} // namespace csr
