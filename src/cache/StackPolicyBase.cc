#include "cache/StackPolicyBase.h"

#include <algorithm>

#include "util/Logging.h"

namespace csr
{

StackPolicyBase::StackPolicyBase(const CacheGeometry &geom)
    : ReplacementPolicy(geom), stacks_(geom.numSets()),
      costs_(static_cast<std::size_t>(geom.numSets()) * geom.assoc(), 0.0),
      tags_(static_cast<std::size_t>(geom.numSets()) * geom.assoc(), 0),
      lastLru_(geom.numSets(), kInvalidWay)
{
    for (auto &stack : stacks_)
        stack.reserve(geom.assoc());
}

void
StackPolicyBase::access(std::uint32_t set, Addr tag, int hit_way)
{
    if (hit_way == kInvalidWay) {
        onMissAccess(set, tag);
        return;
    }
    csr_assert(tags_[idx(set, hit_way)] == tag,
               "hit way holds a different tag");
    const int old_pos = posOf(set, hit_way);
    promoteToMru(set, hit_way);
    onHit(set, hit_way, old_pos);
    checkLruChanged(set);
}

void
StackPolicyBase::fill(std::uint32_t set, int way, Addr tag, Cost cost)
{
    // The way may still be in the stack if the owner reuses a victim
    // way without an explicit invalidate; scrub it first.
    auto &stack = stacks_[set];
    auto it = std::find(stack.begin(), stack.end(), way);
    if (it != stack.end())
        stack.erase(it);
    stack.insert(stack.begin(), way);
    csr_assert(stack.size() <= geom_.assoc(), "stack overflow");
    costs_[idx(set, way)] = cost;
    tags_[idx(set, way)] = tag;
    checkLruChanged(set);
}

void
StackPolicyBase::invalidate(std::uint32_t set, Addr tag, int way)
{
    if (way == kInvalidWay) {
        onInvalidateAbsent(set, tag);
        return;
    }
    onInvalidateWay(set, tag, way);
    removeFromStack(set, way);
    checkLruChanged(set);
}

void
StackPolicyBase::updateCost(std::uint32_t set, int way, Cost cost)
{
    costs_[idx(set, way)] = cost;
}

void
StackPolicyBase::reset()
{
    for (auto &stack : stacks_)
        stack.clear();
    std::fill(costs_.begin(), costs_.end(), 0.0);
    std::fill(tags_.begin(), tags_.end(), 0);
    std::fill(lastLru_.begin(), lastLru_.end(), kInvalidWay);
    stats_.reset();
}

int
StackPolicyBase::posOf(std::uint32_t set, int way) const
{
    const auto &stack = stacks_[set];
    for (std::size_t i = 0; i < stack.size(); ++i) {
        if (stack[i] == way)
            return static_cast<int>(i) + 1;
    }
    csr_panic("way %d not in stack of set %u", way, set);
}

void
StackPolicyBase::promoteToMru(std::uint32_t set, int way)
{
    auto &stack = stacks_[set];
    auto it = std::find(stack.begin(), stack.end(), way);
    csr_assert(it != stack.end(), "promote of non-resident way");
    stack.erase(it);
    stack.insert(stack.begin(), way);
}

void
StackPolicyBase::removeFromStack(std::uint32_t set, int way)
{
    auto &stack = stacks_[set];
    auto it = std::find(stack.begin(), stack.end(), way);
    if (it != stack.end())
        stack.erase(it);
}

void
StackPolicyBase::checkLruChanged(std::uint32_t set)
{
    const int lru = lruWay(set);
    if (lru != lastLru_[set]) {
        lastLru_[set] = lru;
        onLruChanged(set, lru);
    }
}

} // namespace csr
