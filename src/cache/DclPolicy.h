/**
 * @file
 * DCL -- the Dynamic Cost-sensitive LRU algorithm (Section 2.4).
 */

#ifndef CSR_CACHE_DCLPOLICY_H
#define CSR_CACHE_DCLPOLICY_H

#include "cache/CostSensitiveLruBase.h"
#include "cache/ExtendedTagDirectory.h"

namespace csr
{

/**
 * Dynamic Cost-sensitive LRU.
 *
 * Victim selection is identical to BCL (Figure 1 scan), but the
 * reserved block's cost is depreciated only when a block sacrificed
 * in its place is *actually re-referenced* before the reserved block,
 * which the ETD detects:
 *
 *   - sacrificing a non-LRU block allocates an ETD entry with the
 *     victim's tag and cost;
 *   - an access that misses in the cache but hits in the ETD
 *     depreciates Acost by 2x the entry's cost and invalidates the
 *     entry;
 *   - a hit on the LRU block (the reservation paid off) invalidates
 *     every ETD entry of the set;
 *   - a coherence invalidation scrubs a matching ETD entry.
 *
 * Tag aliasing (storing only a few low-order tag bits in the ETD) is
 * supported via @p etd_alias_bits; false matches merely accelerate
 * depreciation (Section 4.3 finds the effect marginal).
 */
class DclPolicy : public CostSensitiveLruBase
{
  public:
    /**
     * @param geom                cache geometry (the ETD gets
     *                            assoc-1 entries per set)
     * @param etd_alias_bits      0 = full tags, else low-bit aliasing
     * @param depreciation_factor see CostSensitiveLruBase
     */
    explicit DclPolicy(const CacheGeometry &geom,
                       unsigned etd_alias_bits = 0,
                       double depreciation_factor = 2.0)
        : CostSensitiveLruBase(geom, depreciation_factor),
          etd_(geom.numSets(),
               geom.assoc() > 1 ? geom.assoc() - 1 : 1,
               etd_alias_bits),
          statEtdInsert_(stats_.counter("dcl.etd.insert")),
          statEtdHit_(stats_.counter("dcl.etd.hit"))
    {
        usesMissHook_ = true;
    }

    std::string
    name() const override
    {
        return etd_.aliasBits() ? "DCL(alias)" : "DCL";
    }

    int
    selectVictim(std::uint32_t set) override
    {
        const int victim = findReservationVictim(set);
        if (victim != lruWay(set)) {
            // Remember the sacrificed block; its return will be the
            // evidence that the reservation cost a real miss.
            etd_.insert(set, tagOf(set, victim), costOf(set, victim));
            ++statEtdInsert_;
        }
        return victim;
    }

    const ExtendedTagDirectory &etd() const { return etd_; }

    void
    reset() override
    {
        CostSensitiveLruBase::reset();
        etd_.reset();
    }

    void
    checkInvariants() const override
    {
        CostSensitiveLruBase::checkInvariants();
        etd_.checkInvariants();
    }

  protected:
    void
    onMissAccess(std::uint32_t set, Addr tag) override
    {
        if (auto cost = etd_.lookupAndInvalidate(set, tag)) {
            // The sacrificed block came back before the reserved one:
            // charge the reservation.
            CSR_TRACE_INSTANT_V("policy", "etd.hit", *cost);
            depreciate(set, *cost);
            ++statEtdHit_;
        }
    }

    void
    onHit(std::uint32_t set, int way, int old_pos) override
    {
        const bool was_lru = old_pos == stackSize(set);
        CostSensitiveLruBase::onHit(set, way, old_pos);
        if (was_lru) {
            // Hit on the (possibly reserved) LRU block: the pending
            // evidence is moot, drop it.
            etd_.invalidateAll(set);
        }
    }

    void
    onInvalidateWay(std::uint32_t set, Addr tag, int way) override
    {
        CostSensitiveLruBase::onInvalidateWay(set, tag, way);
        etd_.invalidateTag(set, tag);
    }

    void
    onInvalidateAbsent(std::uint32_t set, Addr tag) override
    {
        etd_.invalidateTag(set, tag);
    }

    ExtendedTagDirectory etd_;
    // Per-miss hot-path counters, pre-resolved (StatGroup::counter).
    std::uint64_t &statEtdInsert_;
    std::uint64_t &statEtdHit_;
};

} // namespace csr

#endif // CSR_CACHE_DCLPOLICY_H
