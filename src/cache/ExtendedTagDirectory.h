/**
 * @file
 * Extended Tag Directory (ETD) -- Section 2.4.
 *
 * The ETD remembers, per cache set, the s-1 most recently sacrificed
 * blocks (tag + miss cost + valid bit).  DCL consults it on every
 * access: a miss in the cache that hits in the ETD proves that a block
 * replaced in the reserved block's place was re-referenced before the
 * reserved block, i.e. that the reservation caused a real extra miss,
 * and only then is the reserved block's cost depreciated.
 *
 * Section 2.4/4.3 also describe storing only a few low-order tag bits
 * to shrink the ETD; the resulting aliasing causes false matches and
 * hence overly aggressive depreciation but never affects correctness.
 * alias_bits == 0 stores full tags.
 */

#ifndef CSR_CACHE_EXTENDEDTAGDIRECTORY_H
#define CSR_CACHE_EXTENDEDTAGDIRECTORY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "robust/Errors.h"
#include "util/Logging.h"
#include "util/Types.h"

namespace csr
{

/**
 * Per-set victim-tag directory with LRU allocation (invalid entries
 * first), full-tag or aliased-tag matching.
 */
class ExtendedTagDirectory
{
  public:
    /**
     * @param num_sets        one directory slice per cache set
     * @param entries_per_set s-1 for an s-way cache (Section 2.4 shows
     *                        more entries can never be useful)
     * @param alias_bits      number of low-order tag bits kept;
     *                        0 keeps the full tag
     */
    ExtendedTagDirectory(std::uint32_t num_sets,
                         std::uint32_t entries_per_set,
                         unsigned alias_bits = 0)
        : entriesPerSet_(entries_per_set), aliasBits_(alias_bits),
          entries_(static_cast<std::size_t>(num_sets) * entries_per_set)
    {
        csr_assert(alias_bits <= 63, "alias_bits out of range");
    }

    /** Tag value as stored/compared (aliased to the low bits). */
    Addr
    maskTag(Addr tag) const
    {
        if (aliasBits_ == 0)
            return tag;
        return tag & ((Addr{1} << aliasBits_) - 1);
    }

    /**
     * Record a sacrificed block.  Allocation picks an invalid entry
     * first, otherwise the least-recently allocated one.  A duplicate
     * (same masked tag) is refreshed in place rather than duplicated,
     * preserving the cache/ETD tag-exclusivity invariant.
     */
    void
    insert(std::uint32_t set, Addr tag, Cost cost)
    {
        const Addr masked = maskTag(tag);
        Entry *slot = nullptr;
        for (auto &entry : slice(set)) {
            if (entry.valid && entry.tag == masked) {
                slot = &entry;
                break;
            }
            if (!entry.valid && !slot)
                slot = &entry;
        }
        if (!slot) {
            // All valid and no duplicate: replace the oldest.
            slot = slice(set).begin();
            for (auto &entry : slice(set)) {
                if (entry.stamp < slot->stamp)
                    slot = &entry;
            }
        }
        slot->valid = true;
        slot->tag = masked;
        slot->cost = cost;
        slot->stamp = ++clock_;
    }

    /**
     * Look up a tag; on a hit the entry is invalidated (the paper
     * invalidates the matching entry once its evidence is consumed)
     * and its recorded cost returned.
     */
    std::optional<Cost>
    lookupAndInvalidate(std::uint32_t set, Addr tag)
    {
        const Addr masked = maskTag(tag);
        for (auto &entry : slice(set)) {
            if (entry.valid && entry.tag == masked) {
                entry.valid = false;
                return entry.cost;
            }
        }
        return std::nullopt;
    }

    /** Non-destructive probe (tests/stats). */
    bool
    contains(std::uint32_t set, Addr tag) const
    {
        const Addr masked = maskTag(tag);
        for (const auto &entry : cslice(set)) {
            if (entry.valid && entry.tag == masked)
                return true;
        }
        return false;
    }

    /** Coherence invalidation of a block that may be recorded here. */
    void
    invalidateTag(std::uint32_t set, Addr tag)
    {
        const Addr masked = maskTag(tag);
        for (auto &entry : slice(set)) {
            if (entry.valid && entry.tag == masked)
                entry.valid = false;
        }
    }

    /** Drop every entry of a set (hit on the reserved LRU block). */
    void
    invalidateAll(std::uint32_t set)
    {
        for (auto &entry : slice(set))
            entry.valid = false;
    }

    /** Number of valid entries in a set. */
    std::uint32_t
    validCount(std::uint32_t set) const
    {
        std::uint32_t n = 0;
        for (const auto &entry : cslice(set))
            n += entry.valid ? 1 : 0;
        return n;
    }

    std::uint32_t entriesPerSet() const { return entriesPerSet_; }
    unsigned aliasBits() const { return aliasBits_; }

    void
    reset()
    {
        for (auto &entry : entries_)
            entry.valid = false;
        clock_ = 0;
    }

    /** --validate: insert() refreshes duplicates in place, so two
     *  valid entries of a set must never share a masked tag.  Throws
     *  InvariantError on violation. */
    void
    checkInvariants() const
    {
        const std::uint32_t num_sets = static_cast<std::uint32_t>(
            entries_.size() / entriesPerSet_);
        for (std::uint32_t set = 0; set < num_sets; ++set) {
            for (const auto &a : cslice(set)) {
                if (!a.valid)
                    continue;
                for (const Entry *b = &a + 1; b != cslice(set).end();
                     ++b) {
                    if (b->valid && b->tag == a.tag)
                        throw InvariantError(
                            "ETD set " + std::to_string(set) +
                            ": duplicate valid masked tag");
                }
            }
        }
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Cost cost = 0.0;
        std::uint64_t stamp = 0;
    };

    struct Span
    {
        Entry *first;
        Entry *last;
        Entry *begin() const { return first; }
        Entry *end() const { return last; }
    };

    struct CSpan
    {
        const Entry *first;
        const Entry *last;
        const Entry *begin() const { return first; }
        const Entry *end() const { return last; }
    };

    Span
    slice(std::uint32_t set)
    {
        Entry *base =
            entries_.data() + static_cast<std::size_t>(set) * entriesPerSet_;
        return {base, base + entriesPerSet_};
    }

    CSpan
    cslice(std::uint32_t set) const
    {
        const Entry *base =
            entries_.data() + static_cast<std::size_t>(set) * entriesPerSet_;
        return {base, base + entriesPerSet_};
    }

    std::uint32_t entriesPerSet_;
    unsigned aliasBits_;
    std::vector<Entry> entries_;
    std::uint64_t clock_ = 0;
};

} // namespace csr

#endif // CSR_CACHE_EXTENDEDTAGDIRECTORY_H
