/**
 * @file
 * Cache geometry: size / associativity / block size and the address
 * decomposition (tag | set | block offset) derived from them.
 */

#ifndef CSR_CACHE_CACHEGEOMETRY_H
#define CSR_CACHE_CACHEGEOMETRY_H

#include <cstdint>
#include <string>

#include "robust/Errors.h"
#include "util/Logging.h"
#include "util/MathUtil.h"
#include "util/Types.h"

namespace csr
{

/**
 * Invalid cache geometry.  Thrown (rather than aborting) so that
 * drivers can surface a clean message naming the offending parameter
 * -- a bad --l2 / --assoc on the csrsim command line is user error,
 * not a program bug.  Part of the csr::Error hierarchy so drivers
 * map it to its own exit code (exitcode::kGeometry).
 */
class CacheGeometryError : public Error
{
  public:
    explicit CacheGeometryError(const std::string &what)
        : Error("CacheGeometryError", exitcode::kGeometry, what)
    {
    }
};

/**
 * Geometry of a set-associative cache.
 *
 * All three quantities must be powers of two; a direct-mapped cache is
 * expressed as assoc == 1 and a fully-associative cache as
 * assoc == sizeBytes / blockBytes.
 */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes  total capacity in bytes
     * @param assoc       number of ways per set
     * @param block_bytes line size in bytes (the paper uses 64 B)
     * @throws CacheGeometryError naming the offending parameter when a
     *         quantity is not a power of two or the sizes are
     *         inconsistent.
     */
    CacheGeometry(std::uint64_t size_bytes, std::uint32_t assoc,
                  std::uint32_t block_bytes)
        : sizeBytes_(size_bytes), assoc_(assoc), blockBytes_(block_bytes)
    {
        if (!isPow2(size_bytes))
            throw CacheGeometryError(
                "cache size (" + std::to_string(size_bytes) +
                " bytes) must be a power of two");
        if (!isPow2(assoc))
            throw CacheGeometryError(
                "associativity (" + std::to_string(assoc) +
                ") must be a power of two");
        if (!isPow2(block_bytes))
            throw CacheGeometryError(
                "block size (" + std::to_string(block_bytes) +
                " bytes) must be a power of two");
        if (size_bytes < static_cast<std::uint64_t>(assoc) * block_bytes)
            throw CacheGeometryError(
                "cache size (" + std::to_string(size_bytes) +
                " bytes) is smaller than one set (" +
                std::to_string(assoc) + " ways x " +
                std::to_string(block_bytes) + " bytes)");
        numSets_ = static_cast<std::uint32_t>(
            size_bytes / (static_cast<std::uint64_t>(assoc) * block_bytes));
        blockBits_ = floorLog2(block_bytes);
        setBits_ = floorLog2(numSets_);
    }

    std::uint64_t sizeBytes() const { return sizeBytes_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t blockBytes() const { return blockBytes_; }
    std::uint32_t numSets() const { return numSets_; }
    int blockBits() const { return blockBits_; }
    int setBits() const { return setBits_; }

    /** Block-granular address (byte address with offset stripped). */
    Addr blockAddr(Addr byte_addr) const { return byte_addr >> blockBits_; }

    /** Set index of a byte address. */
    std::uint32_t
    setIndex(Addr byte_addr) const
    {
        return static_cast<std::uint32_t>(blockAddr(byte_addr) &
                                          (numSets_ - 1));
    }

    /** Tag of a byte address (block address with set bits stripped). */
    Addr tag(Addr byte_addr) const { return blockAddr(byte_addr) >> setBits_; }

    /** Recompose a block address from (set, tag). */
    Addr
    blockAddrOf(std::uint32_t set, Addr tag_value) const
    {
        return (tag_value << setBits_) | set;
    }

    /** Human-readable description, e.g. "16KB 4-way 64B". */
    std::string
    describe() const
    {
        return std::to_string(sizeBytes_ / 1024) + "KB " +
               std::to_string(assoc_) + "-way " +
               std::to_string(blockBytes_) + "B";
    }

  private:
    std::uint64_t sizeBytes_;
    std::uint32_t assoc_;
    std::uint32_t blockBytes_;
    std::uint32_t numSets_;
    int blockBits_;
    int setBits_;
};

} // namespace csr

#endif // CSR_CACHE_CACHEGEOMETRY_H
