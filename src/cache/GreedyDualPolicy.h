/**
 * @file
 * GreedyDual (GD) replacement, adapted to processor caches.
 *
 * GreedyDual [Young, Algorithmica'94; Cao & Irani, USITS'97] is the
 * cost-centric prior art the paper compares against (Section 2.1):
 *
 *   - every cached block carries a credit H, initialized to its miss
 *     cost when the block is brought in;
 *   - the victim is the block with the least H, regardless of recency;
 *   - when a block is victimized, its H is subtracted from the H of
 *     every block remaining in the set (the classic "inflate L"
 *     formulation, implemented by deflation to keep values bounded);
 *   - on a hit, the block's H is restored to its full miss cost.
 *
 * Ties on H are broken toward the LRU end of the recency stack, which
 * is the only other way locality enters the decision besides the
 * restore-on-hit rule.
 */

#ifndef CSR_CACHE_GREEDYDUALPOLICY_H
#define CSR_CACHE_GREEDYDUALPOLICY_H

#include <vector>

#include "cache/StackPolicyBase.h"

namespace csr
{

/**
 * GreedyDual for set-associative processor caches.
 *
 * Uses the CacheModel's cost field as the block's *full* miss cost and
 * keeps the depreciating credit H separately (the paper's Section 5
 * accounting: GD needs one fixed and one computed cost field per
 * block, i.e. 2s cost fields per set).
 */
class GreedyDualPolicy : public StackPolicyBase
{
  public:
    explicit GreedyDualPolicy(const CacheGeometry &geom)
        : StackPolicyBase(geom),
          credit_(static_cast<std::size_t>(geom.numSets()) * geom.assoc(),
                  0.0),
          statEvictions_(stats_.counter("gd.evictions"))
    {
        usesHitHook_ = true;
    }

    std::string name() const override { return "GD"; }

    int
    selectVictim(std::uint32_t set) override
    {
        const int n = stackSize(set);
        csr_assert(n > 0, "victim requested on empty set");
        // Scan from the LRU end so that equal credits evict the
        // least-recently-used block.
        int victim = wayAt(set, n);
        Cost min_credit = credit_[idx(set, victim)];
        for (int pos = n; pos >= 1; --pos) {
            const int way = wayAt(set, pos);
            if (credit_[idx(set, way)] < min_credit) {
                min_credit = credit_[idx(set, way)];
                victim = way;
            }
        }
        // Deflate every surviving block by the victim's credit.
        for (int pos = 1; pos <= n; ++pos) {
            const int way = wayAt(set, pos);
            if (way == victim)
                continue;
            Cost &h = credit_[idx(set, way)];
            h = h > min_credit ? h - min_credit : 0.0;
        }
        ++statEvictions_;
        return victim;
    }

    void
    fill(std::uint32_t set, int way, Addr tag, Cost cost) override
    {
        StackPolicyBase::fill(set, way, tag, cost);
        credit_[idx(set, way)] = cost;
    }

    void
    updateCost(std::uint32_t set, int way, Cost cost) override
    {
        // The CacheModel has already refreshed the stored cost; only
        // the credit needs resetting to the new full miss cost.
        credit_[idx(set, way)] = cost;
    }

    void
    reset() override
    {
        StackPolicyBase::reset();
        std::fill(credit_.begin(), credit_.end(), 0.0);
    }

    /** Current credit of a resident way (introspection for tests). */
    Cost creditOf(std::uint32_t set, int way) const
    {
        return credit_[idx(set, way)];
    }

  protected:
    void
    onHit(std::uint32_t set, int way, int old_pos) override
    {
        (void)old_pos;
        // Restore the full miss cost on every hit.
        credit_[idx(set, way)] = costOf(set, way);
    }

  private:
    std::vector<Cost> credit_;
    // Per-eviction counter, pre-resolved (StatGroup::counter).
    std::uint64_t &statEvictions_;
};

} // namespace csr

#endif // CSR_CACHE_GREEDYDUALPOLICY_H
