#include "cache/HwOverhead.h"

#include "util/Logging.h"

namespace csr
{

std::uint64_t
hwOverheadBitsPerSet(PolicyKind kind, const HwOverheadParams &p)
{
    const std::uint64_t s = p.assoc;
    const std::uint64_t fixed = p.staticCostTable ? 0 : p.fixedCostBits;
    const std::uint64_t computed = p.computedCostBits;
    // Each ETD entry stores a (possibly aliased) tag plus a valid bit;
    // its fixed cost field is accounted through the `fixed` terms.
    const std::uint64_t etd_entry = p.etdTagBits + 1;

    switch (kind) {
      case PolicyKind::Lru:
        return 0;
      case PolicyKind::Bcl:
        // s fixed cost fields in the cache + the computed Acost.
        return s * fixed + computed;
      case PolicyKind::GreedyDual:
        // One fixed + one computed cost field per block.
        return s * fixed + s * computed;
      case PolicyKind::Dcl:
        // s fixed + Acost in the cache, s-1 fixed in the ETD, plus
        // s-1 ETD tag/valid fields.
        return s * fixed + computed + (s - 1) * fixed +
               (s - 1) * etd_entry;
      case PolicyKind::Acl:
        // DCL plus the two-bit counter and the reserved bit.
        return hwOverheadBitsPerSet(PolicyKind::Dcl, p) + 3;
      default:
        csr_fatal("hardware overhead model only covers LRU/GD/BCL/DCL/ACL");
    }
}

std::uint64_t
hwBaselineBitsPerSet(const HwOverheadParams &p)
{
    return static_cast<std::uint64_t>(p.assoc) *
           (8ull * p.blockBytes + p.tagBits);
}

double
hwOverheadPercent(PolicyKind kind, const HwOverheadParams &p)
{
    return 100.0 * static_cast<double>(hwOverheadBitsPerSet(kind, p)) /
           static_cast<double>(hwBaselineBitsPerSet(p));
}

} // namespace csr
