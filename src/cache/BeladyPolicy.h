/**
 * @file
 * Offline (oracle) replacement policies.
 *
 * BeladyPolicy is the classic OPT/MIN algorithm that minimizes miss
 * *count*; CostAwareBeladyPolicy is a greedy cost-weighted variant.
 * Neither is part of the paper's online proposal -- they implement the
 * offline bounds the paper discusses via its companion work [Jeong &
 * Dubois, SPAA'99] and are used by the bench_offline_bound extension
 * experiment.  The true cost-optimal schedule (CSOPT) requires search
 * over reservation schedules; the greedy variant here is a documented
 * heuristic, not CSOPT.
 */

#ifndef CSR_CACHE_BELADYPOLICY_H
#define CSR_CACHE_BELADYPOLICY_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/StackPolicyBase.h"

namespace csr
{

/**
 * Belady's OPT.  Must be primed with the exact future stream of block
 * addresses that will be presented to access(), in order; the policy
 * advances an internal cursor on every access and evicts the resident
 * block whose next use is farthest in the future (never-reused blocks
 * first).
 *
 * Because an L1 filter above the cache would make the access stream
 * depend on the L2's own evictions (through inclusion victims),
 * offline policies should only be used on caches fed a fixed stream
 * (the offline bench runs L2-only configurations).
 */
class BeladyPolicy : public StackPolicyBase
{
  public:
    explicit BeladyPolicy(const CacheGeometry &geom)
        : StackPolicyBase(geom)
    {
    }

    std::string name() const override { return "OPT"; }

    /**
     * Register the future access stream (block addresses, i.e. byte
     * addresses already divided by the block size).  Resets the
     * cursor.
     */
    void
    prepare(const std::vector<Addr> &block_stream)
    {
        occurrences_.clear();
        cursors_.clear();
        for (std::size_t i = 0; i < block_stream.size(); ++i)
            occurrences_[block_stream[i]].push_back(i);
        streamLen_ = block_stream.size();
        time_ = 0;
    }

    void
    access(std::uint32_t set, Addr tag, int hit_way) override
    {
        StackPolicyBase::access(set, tag, hit_way);
        ++time_;
    }

    int
    selectVictim(std::uint32_t set) override
    {
        const int n = stackSize(set);
        csr_assert(n > 0, "victim requested on empty set");
        int victim = kInvalidWay;
        double best = -1.0;
        for (int pos = 1; pos <= n; ++pos) {
            const int way = wayAt(set, pos);
            const Addr block = geom_.blockAddrOf(set, tagOf(set, way));
            const std::size_t next = nextUse(block);
            const double score = this->score(set, way, next);
            if (score > best) {
                best = score;
                victim = way;
            }
        }
        return victim;
    }

    void
    reset() override
    {
        StackPolicyBase::reset();
        time_ = 0;
        cursors_.clear();
    }

  protected:
    /**
     * Victim score; highest wins.  OPT scores by next-use distance
     * alone (never-reused == streamLen_ sorts above everything).
     */
    virtual double
    score(std::uint32_t set, int way, std::size_t next_use)
    {
        (void)set;
        (void)way;
        return static_cast<double>(next_use);
    }

    /** Index of the block's next use strictly after the current access
     *  (which has already advanced the cursor), or streamLen_ if it is
     *  never used again. */
    std::size_t
    nextUse(Addr block)
    {
        auto it = occurrences_.find(block);
        if (it == occurrences_.end())
            return streamLen_;
        const auto &occ = it->second;
        std::size_t &cur = cursors_[block]; // default 0
        while (cur < occ.size() && occ[cur] < time_)
            ++cur;
        return cur < occ.size() ? occ[cur] : streamLen_;
    }

    std::size_t streamLen_ = 0;
    std::size_t time_ = 0;

  private:
    std::unordered_map<Addr, std::vector<std::size_t>> occurrences_;
    std::unordered_map<Addr, std::size_t> cursors_;
};

/**
 * Greedy cost-weighted oracle: evicts the block with the largest
 * next-use-distance / cost ratio, i.e. prefers victims that are both
 * far in the future and cheap to bring back.  Never-reused blocks are
 * always evicted first (their miss cost is never paid).
 */
class CostAwareBeladyPolicy : public BeladyPolicy
{
  public:
    explicit CostAwareBeladyPolicy(const CacheGeometry &geom)
        : BeladyPolicy(geom)
    {
    }

    std::string name() const override { return "CostOPT~"; }

  protected:
    double
    score(std::uint32_t set, int way, std::size_t next_use) override
    {
        if (next_use >= streamLen_)
            return 2.0 * static_cast<double>(streamLen_ + 1);
        const double distance =
            static_cast<double>(next_use) - static_cast<double>(time_);
        const Cost cost = costOf(set, way);
        return distance / (cost > 0.0 ? cost : 0.5);
    }
};

} // namespace csr

#endif // CSR_CACHE_BELADYPOLICY_H
