/**
 * @file
 * Plain LRU replacement -- the paper's baseline.
 */

#ifndef CSR_CACHE_LRUPOLICY_H
#define CSR_CACHE_LRUPOLICY_H

#include "cache/StackPolicyBase.h"

namespace csr
{

/**
 * Least-recently-used replacement.  Cost-blind: the cost fields kept
 * by the base class are ignored; the victim is always the stack
 * bottom.
 */
class LruPolicy : public StackPolicyBase
{
  public:
    explicit LruPolicy(const CacheGeometry &geom) : StackPolicyBase(geom) {}

    std::string name() const override { return "LRU"; }

    int
    selectVictim(std::uint32_t set) override
    {
        const int victim = lruWay(set);
        csr_assert(victim != kInvalidWay, "victim requested on empty set");
        return victim;
    }
};

} // namespace csr

#endif // CSR_CACHE_LRUPOLICY_H
